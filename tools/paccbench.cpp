// paccbench — OSU-style command-line harness for the simulated cluster.
//
// Collective sweep (one op, sizes stepped ×4; --jobs parallelises the cells):
//   paccbench --op alltoall --ranks 64 --ppn 8 --min 16K --max 1M \
//             --scheme proposed --iters 5 --warmup 2 [--csv] [--jobs 8]
//
// Full capability-matrix sweep (every supported op × scheme per size):
//   paccbench --sweep --ranks 32 --ppn 4 --min 16K --max 256K --jobs 8 \
//             --json sweep.json
//
// Application workload from a trace file (see src/apps/trace.hpp):
//   paccbench --workload my_app.wl --ranks 32 --ppn 4 --scheme dvfs
//
// Autotuning (race registered variants, persist winners, re-use them):
//   paccbench --op bcast --min 16K --max 1M --tune --tuned-table tuned.json
//   paccbench --op bcast --min 16K --max 1M --tuned-table tuned.json
// Force one registered algorithm (see docs/TUNING.md):
//   paccbench --op bcast --algo bcast_tree_chain:seg=32K
//
// Cluster knobs: --nodes, --affinity bunch|scatter, --mode polling|blocking,
// --governor [threshold_us], --core-throttle, --racks <nodes_per_rack>,
// --fabric <size[:oversub],...> (fat-tree levels, bottom-up), --collapse
// <0 auto | 1 full | N forced multiplicity>.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/trace.hpp"
#include "coll/registry.hpp"
#include "coll/tuner.hpp"
#include "pacc/campaign.hpp"
#include "pacc/journal.hpp"
#include "pacc/simulation.hpp"
#include "pacc/tuning.hpp"
#include "util/args.hpp"
#include "util/fsio.hpp"
#include "util/table.hpp"

namespace {

using namespace pacc;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --op NAME          alltoall|alltoallv|bcast|reduce|allreduce|\n"
      << "                     allgather|gather|scatter|scan|reduce_scatter|barrier\n"
      << "  --sweep            run every supported op x scheme combination\n"
      << "  --workload FILE    run a workload trace instead of a collective\n"
      << "  --algo SPEC        force one registered algorithm instead of the\n"
      << "                     op's default dispatch; SPEC is NAME[:seg=BYTES]\n"
      << "                     (e.g. bcast_tree_chain:seg=32K). Run with an\n"
      << "                     unknown NAME to list the registry\n"
      << "  --tune             race every registered candidate per size and\n"
      << "                     record the winners (needs --op and\n"
      << "                     --tuned-table; sizes already in the table are\n"
      << "                     skipped). The sweep then runs tuned\n"
      << "  --tuned-table FILE persistent tuned-decision table (JSON,\n"
      << "                     pacc-tuned-v1): loaded if present and consulted\n"
      << "                     by dispatch; rewritten after --tune\n"
      << "  --scheme NAME      none|dvfs|proposed (default none)\n"
      << "  --ranks N          MPI ranks (default 64)\n"
      << "  --ppn N            ranks per node (default 8)\n"
      << "  --nodes N          nodes (default ranks/ppn)\n"
      << "  --min SIZE         sweep start (default 16K)\n"
      << "  --max SIZE         sweep end (default 1M)\n"
      << "  --iters N          timed iterations per size (default 5)\n"
      << "  --warmup N         warmup iterations (default 2)\n"
      << "  --jobs N           worker threads for sweep cells (default 1;\n"
      << "                     0 = one per hardware thread); output is\n"
      << "                     identical for every value\n"
      << "  --json FILE        also write a pacc-campaign-v1 JSON artifact\n"
      << "  --affinity NAME    bunch|scatter (default bunch)\n"
      << "  --mode NAME        polling|blocking (default polling)\n"
      << "  --governor [SPEC]  enable a runtime power governor; SPEC is\n"
      << "                     KIND[:ARG]: reactive[:threshold_us] (default),\n"
      << "                     slack[:timer_us] (COUNTDOWN-style, ~500us),\n"
      << "                     powercap:WATTS[:uniform] (per-node budget;\n"
      << "                     :uniform disables redistribution). A bare\n"
      << "                     number is the reactive threshold in us\n"
      << "  --core-throttle    core-granular T-states (default socket)\n"
      << "  --racks N          nodes per rack (default: no rack layer)\n"
      << "  --fabric SPEC      multi-level fat-tree, bottom-up; SPEC is\n"
      << "                     comma-separated size[:oversub] levels, e.g.\n"
      << "                     4:2 (4-node groups, 2:1 oversubscribed) or\n"
      << "                     4:2,2 (plus a non-blocking 2-group level).\n"
      << "                     Or a dragonfly: dragonfly:G,R,N[:adaptive]\n"
      << "                     (G groups of R routers with N nodes each;\n"
      << "                     G*R*N must equal --nodes; :adaptive enables\n"
      << "                     Valiant detours, which de-collapses)\n"
      << "  --materialized-plans  build per-rank schedule tables instead of\n"
      << "                     class-compressed templates (same bytes out;\n"
      << "                     equivalence/debug aid)\n"
      << "  --collapse N       rank-symmetry collapse: 0 = automatic\n"
      << "                     (default), 1 = force the full 1:1 run,\n"
      << "                     N>1 = demand exactly that multiplicity\n"
      << "  --faults SPEC      inject faults; SPEC is comma-separated\n"
      << "                     key=value pairs, e.g.\n"
      << "                     seed=7,drop=0.01,flap=200,tfail=0.2\n"
      << "                     (see docs/FAULTS.md for every key). Adds a\n"
      << "                     status column; faulted/unreachable cells are\n"
      << "                     expected outcomes, not failures\n"
      << "  --journal FILE     write-ahead cell journal (pacc-journal-v1):\n"
      << "                     every completed cell is durably appended\n"
      << "                     before the sweep moves on. Without --resume an\n"
      << "                     existing FILE is restarted from scratch\n"
      << "  --resume           with --journal: replay already-journaled cells\n"
      << "                     instead of re-running them. A killed sweep\n"
      << "                     re-run with the same flags converges on the\n"
      << "                     byte-identical artifact (see docs/DURABILITY.md)\n"
      << "  --result-cache FILE  cross-campaign content-addressed result\n"
      << "                     cache (same format as the journal): cells any\n"
      << "                     previous campaign already measured are served\n"
      << "                     from FILE, new results are appended\n"
      << "  --isolate-cells    fork a worker subprocess per cell; a cell that\n"
      << "                     aborts or is OOM-killed classifies as status\n"
      << "                     \"crashed\" and the other cells complete\n"
      << "  --crash-retries N  retries before a dead worker classifies as\n"
      << "                     crashed (default 1)\n"
      << "  --crash-cell N     test hook: abort() inside cell N's worker\n"
      << "                     (needs --isolate-cells)\n"
      << "  --watchdog MS[:COUNT]  faulted-run quiescence watchdog: sample\n"
      << "                     interval in ms and consecutive still samples\n"
      << "                     before declaring deadlock (default 50:4)\n"
      << "  --verify-artifact FILE  strictly validate a pacc-campaign-v1\n"
      << "                     artifact (exit 0 = intact) and do nothing else\n"
      << "  --csv              emit CSV instead of an aligned table\n"
      << "  --profile          print a per-operation profile (workload mode)\n"
      << "  --node-power       print per-node mean power (workload mode)\n"
      << "  --trace FILE       write a Chrome trace (chrome://tracing) of the\n"
      << "                     last sweep point (collective mode)\n"
      << "  --energy-breakdown print exact per-phase joules per sweep point\n"
      << "                     (collective mode)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);

  if (args.has("help")) return usage(argv[0]);

  const auto scheme = coll::parse_scheme(args.get_or("scheme", "none"));
  if (!scheme) {
    std::cerr << "bad --scheme\n";
    return usage(argv[0]);
  }

  ClusterConfig cfg;
  cfg.ranks = static_cast<int>(args.int_or("ranks", 64));
  cfg.ranks_per_node = static_cast<int>(args.int_or("ppn", 8));
  cfg.nodes = static_cast<int>(
      args.int_or("nodes", cfg.ranks / std::max(1, cfg.ranks_per_node)));
  cfg.nodes_per_rack = static_cast<int>(args.int_or("racks", 0));
  if (const auto fabric_arg = args.get("fabric");
      fabric_arg && fabric_arg->rfind("dragonfly:", 0) == 0) {
    // dragonfly:G,R,N[:adaptive] — G groups x R routers x N nodes/router.
    std::string spec = fabric_arg->substr(std::strlen("dragonfly:"));
    if (const auto colon = spec.find(':'); colon != std::string::npos) {
      const std::string tail = spec.substr(colon + 1);
      if (tail != "adaptive") {
        std::cerr << "bad --fabric dragonfly suffix \"" << tail
                  << "\" (only :adaptive is understood)\n";
        return usage(argv[0]);
      }
      cfg.dragonfly.adaptive = true;
      spec = spec.substr(0, colon);
    }
    int groups = 0;
    try {
      std::size_t pos = 0;
      groups = std::stoi(spec, &pos);
      if (spec.at(pos) != ',') throw std::invalid_argument(spec);
      spec = spec.substr(pos + 1);
      cfg.dragonfly.routers_per_group = std::stoi(spec, &pos);
      if (spec.at(pos) != ',') throw std::invalid_argument(spec);
      cfg.dragonfly.nodes_per_router = std::stoi(spec.substr(pos + 1));
    } catch (const std::exception&) {
      std::cerr << "bad --fabric dragonfly spec \"" << *fabric_arg
                << "\" (want dragonfly:G,R,N[:adaptive])\n";
      return usage(argv[0]);
    }
    if (groups < 2 || cfg.dragonfly.routers_per_group < 1 ||
        cfg.dragonfly.nodes_per_router < 1) {
      std::cerr << "bad --fabric dragonfly shape: need >=2 groups and "
                   ">=1 routers/nodes per level\n";
      return usage(argv[0]);
    }
    const long long df_nodes = 1ll * groups *
                               cfg.dragonfly.routers_per_group *
                               cfg.dragonfly.nodes_per_router;
    if (df_nodes != cfg.nodes) {
      std::cerr << "--fabric dragonfly shape covers " << df_nodes
                << " nodes but --nodes is " << cfg.nodes
                << " (need G*R*N == nodes)\n";
      return usage(argv[0]);
    }
  } else if (fabric_arg) {
    // size[:oversub] per level, comma-separated, bottom-up.
    std::string spec = *fabric_arg;
    while (!spec.empty()) {
      const auto comma = spec.find(',');
      std::string level = spec.substr(0, comma);
      spec = comma == std::string::npos ? "" : spec.substr(comma + 1);
      hw::FabricLevelSpec parsed;
      const auto colon = level.find(':');
      try {
        parsed.group_size = std::stoi(level.substr(0, colon));
        if (colon != std::string::npos) {
          parsed.oversubscription = std::stod(level.substr(colon + 1));
        }
      } catch (const std::exception&) {
        parsed.group_size = 0;
      }
      if (parsed.group_size < 2 || parsed.oversubscription < 1.0) {
        std::cerr << "bad --fabric level \"" << level << "\"\n";
        return usage(argv[0]);
      }
      cfg.fabric.push_back(parsed);
    }
  }
  cfg.collapse_multiplicity = static_cast<int>(args.int_or("collapse", 0));
  if (cfg.collapse_multiplicity < 0) {
    std::cerr << "bad --collapse\n";
    return usage(argv[0]);
  }
  if (cfg.collapse_multiplicity > 1 && cfg.dragonfly.adaptive) {
    std::cerr << "--collapse " << cfg.collapse_multiplicity
              << " cannot quotient an adaptive dragonfly: Valiant detours "
                 "pick absolute intermediate groups, so groups are not "
                 "interchangeable. Drop :adaptive or use --collapse 1\n";
    return usage(argv[0]);
  }
  cfg.materialized_plans = args.has("materialized-plans");
  cfg.core_level_throttling = args.has("core-throttle");
  const std::string affinity = args.get_or("affinity", "bunch");
  if (affinity == "scatter") {
    cfg.affinity = hw::AffinityPolicy::kScatter;
  } else if (affinity != "bunch") {
    std::cerr << "bad --affinity\n";
    return usage(argv[0]);
  }
  const std::string mode = args.get_or("mode", "polling");
  if (mode == "blocking") {
    cfg.progress = mpi::ProgressMode::kBlocking;
  } else if (mode != "polling") {
    std::cerr << "bad --mode\n";
    return usage(argv[0]);
  }
  if (args.has("governor")) {
    cfg.governor.enabled = true;
    std::string spec = args.get_or("governor", "");
    char* end = nullptr;
    const double bare_us =
        spec.empty() ? 0.0 : std::strtod(spec.c_str(), &end);
    if (spec.empty()) {
      // `--governor` alone keeps the historical reactive defaults.
    } else if (end != nullptr && *end == '\0') {
      // Bare number: the historical `--governor US` reactive threshold.
      if (bare_us > 0) cfg.governor.wait_threshold = Duration::micros(bare_us);
    } else {
      const auto colon = spec.find(':');
      const auto kind = mpi::parse_governor_kind(spec.substr(0, colon));
      if (!kind) {
        std::cerr << "bad --governor kind \"" << spec.substr(0, colon)
                  << "\"\n";
        return usage(argv[0]);
      }
      cfg.governor.kind = *kind;
      std::string arg =
          colon == std::string::npos ? "" : spec.substr(colon + 1);
      const auto colon2 = arg.find(':');
      std::string extra;
      if (colon2 != std::string::npos) {
        extra = arg.substr(colon2 + 1);
        arg = arg.substr(0, colon2);
      }
      double value = 0.0;
      if (!arg.empty()) {
        try {
          value = std::stod(arg);
        } catch (const std::exception&) {
          std::cerr << "bad --governor argument \"" << arg << "\"\n";
          return usage(argv[0]);
        }
      }
      switch (*kind) {
        case mpi::GovernorKind::kReactive:
          if (value > 0) cfg.governor.wait_threshold = Duration::micros(value);
          break;
        case mpi::GovernorKind::kSlack:
          if (value > 0) cfg.governor.slack_threshold = Duration::micros(value);
          break;
        case mpi::GovernorKind::kPowerCap:
          if (value <= 0) {
            std::cerr << "--governor powercap:WATTS needs a positive budget\n";
            return usage(argv[0]);
          }
          cfg.governor.node_power_cap = value;
          if (extra == "uniform") {
            cfg.governor.redistribute = false;
          } else if (!extra.empty()) {
            std::cerr << "bad --governor powercap option \"" << extra
                      << "\"\n";
            return usage(argv[0]);
          }
          break;
      }
    }
  }
  if (const auto faults_arg = args.get("faults")) {
    std::string error;
    const auto parsed = fault::FaultSpec::parse(*faults_arg, &error);
    if (!parsed) {
      std::cerr << "bad --faults: " << error << "\n";
      return usage(argv[0]);
    }
    cfg.faults = *parsed;
  }
  const bool faulty = cfg.faults.active();

  const bool csv = args.has("csv");
  const bool profile = args.has("profile");
  const bool node_power = args.has("node-power");
  cfg.obs.per_node_meter = node_power;
  const auto workload_file = args.get("workload");
  const auto trace_file = args.get("trace");
  const bool energy_breakdown = args.has("energy-breakdown");
  cfg.obs.trace = trace_file.has_value() || energy_breakdown;
  const auto op = coll::parse_op(args.get_or("op", "alltoall"));
  const bool sweep_all = args.has("sweep");
  const Bytes min_size = args.bytes_or("min", 16 * 1024);
  const Bytes max_size = args.bytes_or("max", 1 << 20);
  const int iters = static_cast<int>(args.int_or("iters", 5));
  const int warmup = static_cast<int>(args.int_or("warmup", 2));
  const int jobs = static_cast<int>(args.int_or("jobs", 1));
  const auto json_file = args.get("json");
  const bool tune = args.has("tune");
  const auto tuned_table_file = args.get("tuned-table");
  const auto journal_file = args.get("journal");
  const bool resume = args.has("resume");
  const auto cache_file = args.get("result-cache");
  const bool isolate = args.has("isolate-cells");
  const int crash_retries = static_cast<int>(args.int_or("crash-retries", 1));
  const long long crash_cell = args.int_or("crash-cell", -1);
  const auto verify_file = args.get("verify-artifact");
  if (const auto wd = args.get("watchdog")) {
    const auto colon = wd->find(':');
    double interval_ms = 0.0;
    long long stall_ticks = cfg.watchdog.stall_ticks;
    try {
      interval_ms = std::stod(wd->substr(0, colon));
      if (colon != std::string::npos) {
        stall_ticks = std::stoll(wd->substr(colon + 1));
      }
    } catch (const std::exception&) {
      interval_ms = 0.0;
    }
    if (interval_ms <= 0.0 || stall_ticks < 1) {
      std::cerr << "bad --watchdog \"" << *wd << "\" (want MS[:COUNT], both "
                << "positive)\n";
      return usage(argv[0]);
    }
    cfg.watchdog.interval = Duration::millis(interval_ms);
    cfg.watchdog.stall_ticks = static_cast<int>(stall_ticks);
  }

  // --algo NAME[:seg=BYTES]: force one registered algorithm.
  const coll::AlgoDesc* forced_algo = nullptr;
  Bytes forced_seg = 0;
  if (const auto algo_arg = args.get("algo")) {
    std::string name = *algo_arg;
    if (const auto pos = name.find(":seg="); pos != std::string::npos) {
      const auto seg = parse_bytes(name.substr(pos + 5));
      if (!seg || *seg <= 0) {
        std::cerr << "bad --algo segment \"" << name.substr(pos + 5)
                  << "\"\n";
        return usage(argv[0]);
      }
      forced_seg = *seg;
      name = name.substr(0, pos);
    }
    forced_algo = coll::find_algorithm(name);
    if (forced_algo == nullptr) {
      std::cerr << "unknown algorithm \"" << name
                << "\" (registered: " << coll::algorithm_names() << ")\n";
      return usage(argv[0]);
    }
    if (forced_seg > 0 && !forced_algo->segmented) {
      std::cerr << "algorithm \"" << name << "\" is not segmented\n";
      return usage(argv[0]);
    }
  }

  const auto unknown = args.unknown();
  if (!unknown.empty()) {
    std::cerr << "unknown flag(s):";
    for (const auto& f : unknown) std::cerr << " " << f;
    std::cerr << "\n";
    return usage(argv[0]);
  }

  if (verify_file) {
    std::ifstream in(*verify_file);
    if (!in) {
      std::cerr << "cannot open " << *verify_file << "\n";
      return 1;
    }
    std::string error;
    const auto loaded = load_campaign_json(in, &error);
    if (!loaded) {
      std::cerr << *verify_file << ": " << error << "\n";
      return 1;
    }
    std::cout << *verify_file << ": valid pacc-campaign-v1 artifact, "
              << loaded->cells.size() << " cell(s)\n";
    return 0;
  }

  if (resume && !journal_file) {
    std::cerr << "--resume needs --journal FILE\n";
    return usage(argv[0]);
  }
  if (crash_cell >= 0 && !isolate) {
    std::cerr << "--crash-cell needs --isolate-cells\n";
    return usage(argv[0]);
  }
  std::shared_ptr<CellJournal> journal;
  if (journal_file) {
    // Without --resume this invocation owns the sweep from cell zero: a
    // stale journal from an earlier run must not mask fresh work.
    if (!resume) std::remove(journal_file->c_str());
    std::string error;
    journal = CellJournal::open(*journal_file, &error);
    if (!journal) {
      std::cerr << "bad --journal: " << error << "\n";
      return 1;
    }
    if (resume && journal->replayed() > 0) {
      std::cerr << "# resuming: " << journal->replayed()
                << " journaled cell(s) will be replayed\n";
    }
  }
  std::shared_ptr<CellJournal> result_cache;
  if (cache_file) {
    std::string error;
    result_cache = CellJournal::open(*cache_file, &error);
    if (!result_cache) {
      std::cerr << "bad --result-cache: " << error << "\n";
      return 1;
    }
  }

  std::shared_ptr<coll::Tuner> tuner;
  if (tuned_table_file) {
    tuner = std::make_shared<coll::Tuner>();
    if (std::ifstream in(*tuned_table_file); in) {
      std::string error;
      if (!tuner->load(in, &error)) {
        std::cerr << "bad --tuned-table " << *tuned_table_file << ": "
                  << error << "\n";
        return 1;
      }
    }
    cfg.tuner = tuner;
  }
  if (tune) {
    if (!tuned_table_file) {
      std::cerr << "--tune needs --tuned-table FILE\n";
      return usage(argv[0]);
    }
    if (!args.has("op") || sweep_all || workload_file ||
        forced_algo != nullptr) {
      std::cerr << "--tune needs an explicit --op and is incompatible with "
                   "--sweep/--workload/--algo\n";
      return usage(argv[0]);
    }
  }
  if (forced_algo != nullptr && (sweep_all || workload_file)) {
    std::cerr << "--algo applies to single-op collective mode only\n";
    return usage(argv[0]);
  }

  if (workload_file) {
    if (cfg.obs.trace) {
      std::cerr << "--trace/--energy-breakdown apply to collective mode only\n";
      return usage(argv[0]);
    }
    const auto parsed = apps::load_workload(*workload_file);
    if (!parsed.ok()) {
      std::cerr << "error: " << parsed.error << "\n";
      return 1;
    }
    const auto report = apps::run_workload(cfg, parsed.spec, *scheme);
    if (!report.status.usable()) {
      std::cerr << "simulation failed: " << report.status.describe() << "\n";
      return 1;
    }
    if (!report.status.ok()) {
      std::cerr << "# run disturbed by injected faults: "
                << report.status.describe() << "\n";
    }
    Table t({"workload", "scheme", "ranks", "total_s", "comm_s", "alltoall_s",
             "energy_KJ", "mean_kW"});
    t.add_row({report.workload, coll::to_string(report.scheme),
               std::to_string(report.ranks),
               Table::num(report.total_time.sec(), 3),
               Table::num(report.comm_time.sec(), 3),
               Table::num(report.alltoall_time.sec(), 3),
               Table::num(report.energy / 1000.0, 3),
               Table::num(report.mean_power / 1000.0, 3)});
    if (csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    if (node_power && !report.mean_node_power.empty()) {
      const bool sampled = report.mean_node_power.front() > 0.0;
      if (!sampled) {
        std::cout << "\nper-node power: no samples — the simulated run is\n"
                     "shorter than the 0.5 s meter interval; raise the\n"
                     "workload's `iterations`.\n";
      } else {
        std::cout << "\nper-node mean power (kW):\n";
        Table nt({"node", "mean_kW"});
        for (std::size_t n = 0; n < report.mean_node_power.size(); ++n) {
          nt.add_row({std::to_string(n),
                      Table::num(report.mean_node_power[n] / 1000.0, 3)});
        }
        nt.print(std::cout);
      }
    }
    if (profile && !report.profile.empty()) {
      std::cout << "\nper-operation profile (simulated iterations only):\n";
      Table pt({"op", "calls", "bytes", "rank_time_s", "mean_us", "max_us"});
      for (const auto& [name, s] : report.profile) {
        pt.add_row({name, std::to_string(s.calls), std::to_string(s.bytes),
                    Table::num(s.total_time.sec(), 4),
                    Table::num(s.mean_us(), 1),
                    Table::num(s.max_time.us(), 1)});
      }
      pt.print(std::cout);
    }
    return 0;
  }

  if (!sweep_all && !op) {
    std::cerr << "bad --op\n";
    return usage(argv[0]);
  }
  if (forced_algo != nullptr) {
    if (forced_algo->op != *op) {
      std::cerr << "algorithm \"" << forced_algo->name << "\" implements "
                << coll::to_string(forced_algo->op) << ", not "
                << coll::to_string(*op)
                << " (registered for this op: " << coll::algorithm_names(*op)
                << ")\n";
      return usage(argv[0]);
    }
    if (!coll::algo_supports(*forced_algo, *scheme)) {
      std::cerr << "algorithm \"" << forced_algo->name
                << "\" does not implement scheme "
                << coll::to_string(*scheme) << "\n";
      return usage(argv[0]);
    }
  }
  if (min_size < 0 || max_size < min_size) {
    std::cerr << "bad --min/--max\n";
    return usage(argv[0]);
  }

  // 0 (zero-byte regression point) steps to 1, then ×4 like OSU.
  std::vector<Bytes> sizes;
  for (Bytes size = min_size; size <= max_size;
       size = size == 0 ? Bytes{1} : size * 4) {
    sizes.push_back(size);
  }

  if (tune) {
    TuneRequest treq;
    treq.cluster = cfg;
    treq.op = *op;
    treq.scheme = *scheme;
    treq.sizes = sizes;
    treq.iterations = iters;
    treq.warmup = warmup;
    const TuneReport tr = tune_collective(*tuner, treq, jobs);
    for (const TuneCellResult& cell : tr.cells) {
      if (cell.skipped || !cell.decision.algo.empty()) continue;
      std::cerr << "tuning failed at " << format_bytes(cell.message)
                << ": every candidate errored\n";
      return 1;
    }
    if (!tuner->save_file(*tuned_table_file)) {
      std::cerr << "cannot write " << *tuned_table_file << "\n";
      return 1;
    }
    std::cerr << "# tuned: raced " << tr.raced_cells
              << " candidate run(s), skipped " << tr.skipped_cells
              << " already-tuned size(s); table written to "
              << *tuned_table_file << "\n";
  }

  auto make_spec = [&](coll::Op o, coll::PowerScheme s, Bytes size) {
    CollectiveBenchSpec spec;
    spec.op = o;
    spec.message = size;
    spec.scheme = s;
    spec.iterations = iters;
    spec.warmup = warmup;
    if (forced_algo != nullptr) {
      spec.algo = std::string(forced_algo->name);
      spec.seg = forced_seg;
    }
    return spec;
  };

  SweepSpec sweep;
  if (sweep_all) {
    // Capability matrix: every op × scheme the registry supports, per size.
    for (const coll::Op o : coll::kAllOps) {
      for (const coll::PowerScheme s : coll::kAllSchemes) {
        if (!coll::supported(o, s)) continue;
        for (const Bytes size : sizes) {
          sweep.add(cfg, make_spec(o, s, size));
          if (o == coll::Op::kBarrier) break;  // size is meaningless
        }
      }
    }
  } else {
    for (const Bytes size : sizes) {
      sweep.add(cfg, make_spec(*op, *scheme, size));
      if (*op == coll::Op::kBarrier) break;  // size is meaningless
    }
  }

  CampaignOptions opts;
  opts.jobs = jobs;
  opts.journal = journal;
  opts.resume = resume;
  opts.result_cache = result_cache;
  opts.isolate_cells = isolate;
  opts.crash_retries = crash_retries;
  if (crash_cell >= 0) {
    opts.before_cell = [crash_cell](std::size_t i) {
      if (static_cast<long long>(i) == crash_cell) std::abort();
    };
  }
  const auto results = Campaign(sweep, opts).run();

  std::vector<std::string> columns;
  if (sweep_all) {
    columns.insert(columns.end(), {"op", "scheme"});
  }
  columns.insert(columns.end(),
                 {"size", "latency_us", "energy_per_op_J", "mean_kW"});
  const bool status_column = faulty || isolate;
  if (status_column) columns.push_back("status");
  Table t(columns);
  std::vector<std::pair<Bytes, std::vector<obs::PhaseEnergy>>> breakdowns;
  std::string last_trace;
  int hard_failures = 0;
  for (const CellResult& r : results) {
    const SweepCell& cell = sweep.cells[r.index];
    // Under fault injection, disturbed-but-correct (faulted) and
    // retry-budget-exhausted (unreachable) cells are CLASSIFIED outcomes
    // the sweep reports and carries on from; under --isolate-cells a dead
    // worker (crashed) is too. Only an unclassified ending (timeout,
    // deadlock, error) fails the harness.
    const bool classified =
        r.status.usable() ||
        (faulty && r.status.outcome == RunOutcome::kUnreachable) ||
        (isolate && r.status.outcome == RunOutcome::kCrashed);
    if (!classified) {
      std::cerr << "cell " << coll::to_string(cell.bench.op) << "/"
                << coll::to_string(cell.bench.scheme) << "/"
                << format_bytes(cell.bench.message)
                << " failed: " << r.status.describe() << "\n";
      if (!faulty && !isolate) return 1;
      ++hard_failures;
      continue;
    }
    std::vector<std::string> row;
    if (sweep_all) {
      row.push_back(coll::to_string(cell.bench.op));
      row.push_back(coll::to_string(cell.bench.scheme));
    }
    row.push_back(format_bytes(cell.bench.message));
    if (r.status.usable()) {
      row.push_back(Table::num(r.report.latency.us(), 2));
      row.push_back(Table::num(r.report.energy_per_op, 3));
      row.push_back(Table::num(r.report.mean_power / 1000.0, 3));
    } else {
      // Unreachable/crashed: the timed window never closed (or the worker
      // died before reporting), the numbers are void.
      row.insert(row.end(), {"-", "-", "-"});
    }
    if (status_column) row.push_back(to_string(r.status.outcome));
    t.add_row(row);
    if (energy_breakdown) {
      breakdowns.emplace_back(cell.bench.message, r.report.energy_phases);
    }
    if (trace_file) last_trace = r.report.trace_json;
  }
  if (json_file) {
    // Atomic replace: a crash mid-write must leave either no artifact or a
    // complete one — never a torn file --verify-artifact would reject.
    std::ostringstream artifact;
    write_campaign_json(artifact, sweep, results);
    std::string error;
    if (!atomic_write_file(*json_file, artifact.str(), &error)) {
      std::cerr << "cannot write " << *json_file << ": " << error << "\n";
      return 1;
    }
    std::cerr << "# campaign artifact written to " << *json_file << "\n";
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    std::cout << "# pacc "
              << (sweep_all ? std::string("capability sweep")
                            : coll::to_string(*op) + ", " +
                                  coll::to_string(*scheme))
              << ", " << cfg.ranks << " ranks ("
              << cfg.ranks_per_node << "/node), "
              << hw::to_string(cfg.affinity) << ", " << to_string(cfg.progress)
              << (cfg.governor.enabled
                      ? (cfg.governor.kind == mpi::GovernorKind::kReactive
                             ? std::string(", governor")
                             : ", governor=" +
                                   mpi::to_string(cfg.governor.kind))
                      : "")
              << (faulty ? ", faults[" + args.get_or("faults", "") + "]" : "")
              << "\n";
    t.print(std::cout);
  }
  for (const auto& [size, phases] : breakdowns) {
    Joules total = 0.0;
    for (const auto& p : phases) total += p.joules;
    std::cout << "\n# per-phase energy at " << format_bytes(size)
              << " (exact; sums to the run's total integral)\n";
    Table et({"phase", "joules", "time_ms", "calls", "share_pct"});
    for (const auto& p : phases) {
      et.add_row({p.name, Table::num(p.joules, 3),
                  Table::num(p.time.ms(), 3), std::to_string(p.calls),
                  Table::num(total > 0 ? 100.0 * p.joules / total : 0.0, 1)});
    }
    if (csv) {
      et.print_csv(std::cout);
    } else {
      et.print(std::cout);
    }
  }
  if (trace_file) {
    std::string error;
    if (!atomic_write_file(*trace_file, last_trace, &error)) {
      std::cerr << "cannot write " << *trace_file << ": " << error << "\n";
      return 1;
    }
    std::cerr << "# trace (last sweep point) written to " << *trace_file
              << "\n";
  }
  if (hard_failures > 0) {
    std::cerr << hard_failures
              << " cell(s) ended without a classified outcome\n";
    return 1;
  }
  return 0;
}

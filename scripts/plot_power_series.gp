# gnuplot script for the Fig 6(b)/7(b)/8(b)-style power-series plots.
#
# Extract a series from a bench run into CSV first, e.g.:
#   build/bench/bench_fig7_alltoall_power \
#     | awk '/proposed power samples/,/^$/' \
#     | grep -E '^\|\s+[0-9]' | tr -d '|' | awk '{print $1","$2}' \
#     > proposed.csv
# then:
#   gnuplot -e "infile='proposed.csv'; outfile='fig7b.png'" \
#       scripts/plot_power_series.gp
if (!exists("infile")) infile = 'power.csv'
if (!exists("outfile")) outfile = 'power_series.png'

set terminal pngcairo size 900,480
set output outfile
set datafile separator ','
set xlabel 'Time (s)'
set ylabel 'System power (kW)'
set yrange [1.4:2.5]
set grid
set style data linespoints
plot infile using 1:2 title 'sampled power (0.5 s meter)' lw 2 pt 7 ps 0.6

#!/usr/bin/env bash
# Crash-resume smoke: SIGKILLs a journaled paccbench sweep at random
# points until one invocation survives to completion, then proves the
# stitched-together artifact is byte-identical to an uninterrupted run —
# the durability contract of docs/DURABILITY.md. Also exercises the
# resume path at --jobs 4, the --verify-artifact strict loader, and the
# --isolate-cells crash classification.
#
#   scripts/crash_resume_smoke.sh <path-to-paccbench> [workdir]
set -euo pipefail

PACCBENCH="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"
cd "$WORK"

# A faulted sweep: resume must reproduce disturbed cells (whose fault
# seeds derive from the cell index) exactly, not just clean ones.
SWEEP=(--op alltoall --ranks 64 --ppn 8 --min 16K --max 256K
       --scheme proposed --iters 2 --warmup 1
       --faults "seed=13,drop=0.01,flap=40,tfail=0.25")

echo "== reference: uninterrupted run =="
"$PACCBENCH" "${SWEEP[@]}" --json ref.json

kill_until_done() {
  local jobs="$1" journal="$2" artifact="$3"
  rm -f "$journal" "$artifact"
  local attempt=0 rc=0
  while :; do
    attempt=$((attempt + 1))
    if [ "$attempt" -gt 80 ]; then
      echo "FAIL: sweep never survived a kill window after 80 attempts"
      exit 1
    fi
    # Random kill point in [0.01, 0.15] s — the sweep takes ~0.25 s, so
    # early attempts die mid-sweep. Note --resume from the first attempt:
    # it creates the journal, and every restart replays it.
    local delay
    delay="$(awk -v r=$((10 + RANDOM % 140)) 'BEGIN { printf "%.3f", r / 1000 }')"
    set +e
    timeout -s KILL "$delay" \
      "$PACCBENCH" "${SWEEP[@]}" --jobs "$jobs" \
      --journal "$journal" --resume --json "$artifact"
    rc=$?
    set -e
    case "$rc" in
      0) echo "   survived on attempt $attempt (jobs=$jobs)"; break ;;
      137 | 124) ;;  # killed mid-sweep: the whole point — go again
      *) echo "FAIL: unexpected exit code $rc"; exit 1 ;;
    esac
  done
  # Whatever the kill history, one more restart must replay EVERY cell
  # from the journal and still emit the same bytes — hard proof the
  # resume path (not a lucky uninterrupted run) produced the artifact.
  "$PACCBENCH" "${SWEEP[@]}" --jobs "$jobs" \
    --journal "$journal" --resume --json "$artifact" 2> resume-stderr.txt
  grep -q "^# resuming:" resume-stderr.txt
}

echo "== kill-and-resume, jobs=1 =="
kill_until_done 1 j1.journal out-j1.json
cmp ref.json out-j1.json
echo "   artifact byte-identical to the uninterrupted run"

echo "== kill-and-resume, jobs=4 =="
kill_until_done 4 j4.journal out-j4.json
cmp ref.json out-j4.json
echo "   artifact byte-identical at jobs=4"

echo "== strict artifact loader =="
"$PACCBENCH" --verify-artifact out-j1.json
head -c 200 ref.json > torn.json
if "$PACCBENCH" --verify-artifact torn.json; then
  echo "FAIL: truncated artifact accepted"
  exit 1
fi
echo "   intact artifact accepted, truncated artifact rejected"

echo "== process isolation: deliberate crash is classified =="
"$PACCBENCH" --op bcast --ranks 16 --ppn 4 --min 4K --max 16K \
  --iters 1 --warmup 0 --isolate-cells --crash-cell 1 \
  --crash-retries 1 > isolate.txt
grep -q crashed isolate.txt
echo "   crashed cell classified, neighbours completed"

echo "crash-resume smoke: OK (workdir $WORK)"

#!/usr/bin/env bash
# Builds everything, runs the full test suite, regenerates every paper
# figure/table plus the extension experiments, and archives the output.
#
#   scripts/reproduce_all.sh [build-dir]
#
# PACC_BENCH_JOBS=N parallelises each bench's sweep cells over N worker
# threads (0 = one per hardware thread) via pacc::Campaign; the output is
# byte-identical for any value (see docs/CAMPAIGN.md). The default of 1
# keeps peak memory low — paper-testbed cells at 1 MiB allocate gigabytes
# of simulated rank buffers.
set -euo pipefail

export PACC_BENCH_JOBS="${PACC_BENCH_JOBS:-1}"

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build}"

cmake -B "$BUILD" -G Ninja -S "$REPO"
cmake --build "$BUILD"

echo "== tests =="
ctest --test-dir "$BUILD" -j"$(nproc)" 2>&1 | tee "$REPO/test_output.txt" | tail -3

echo "== benches (one per paper figure/table + extensions) =="
echo "   (sweep cells on PACC_BENCH_JOBS=$PACC_BENCH_JOBS worker thread(s))"
: > "$REPO/bench_output.txt"
for b in "$BUILD"/bench/*; do
  [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$REPO/bench_output.txt"
  "$b" 2>&1 | tee -a "$REPO/bench_output.txt"
  echo | tee -a "$REPO/bench_output.txt"
done

echo "== examples =="
for e in "$BUILD"/examples/example_*; do
  [ -x "$e" ] || continue
  echo "### $(basename "$e")"
  "$e"
  echo
done

echo "done: test_output.txt and bench_output.txt written to $REPO"

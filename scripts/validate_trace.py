#!/usr/bin/env python3
"""Validates a Chrome trace JSON produced by pacc's TraceRecorder.

Checks:
  1. The file parses as JSON with a top-level "traceEvents" list.
  2. Every event has the required fields for its phase type.
  3. Timestamps and durations are non-negative.
  4. Per (pid, tid) track, "X" spans obey stack discipline: sorted by
     begin time, spans either nest properly or are disjoint — partial
     overlaps mean a broken begin/end pairing.

Exit status: 0 on a valid trace, 1 on any violation.

Usage: validate_trace.py TRACE.json
"""

import json
import sys
from collections import defaultdict

REQUIRED = {"name", "ph", "ts", "pid", "tid"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('top level must contain a "traceEvents" list')

    spans = defaultdict(list)  # (pid, tid) -> [(ts, dur, name)]
    counts = defaultdict(int)
    for i, e in enumerate(events):
        ph = e.get("ph")
        counts[ph] += 1
        if ph == "M":
            # Metadata carries no timestamp semantics.
            if {"name", "pid", "tid"} - e.keys():
                fail(f"metadata event {i} missing fields: {e}")
            continue
        missing = REQUIRED - e.keys()
        if missing:
            fail(f"event {i} missing fields {sorted(missing)}: {e}")
        ts = float(e["ts"])
        if ts < 0:
            fail(f"event {i} has negative ts: {e}")
        if ph == "X":
            dur = float(e.get("dur", -1))
            if dur < 0:
                fail(f"span {i} missing or negative dur: {e}")
            spans[(e["pid"], e["tid"])].append((ts, dur, e["name"]))
        elif ph == "i":
            if e.get("s") not in ("t", "p", "g"):
                fail(f"instant {i} has bad scope: {e}")
        elif ph == "C":
            if "args" not in e:
                fail(f"counter {i} missing args: {e}")
        else:
            fail(f"event {i} has unknown phase type {ph!r}")

    # Stack discipline per track: after sorting by (begin, -dur) — an outer
    # span sorts before the inner span it starts with — every span must
    # either nest inside the enclosing open span or begin after it ends.
    for track, track_spans in spans.items():
        track_spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []  # (end, name) of currently open spans
        for ts, dur, name in track_spans:
            end = ts + dur
            while stack and ts >= stack[-1][0] - 1e-9:
                stack.pop()
            if stack and end > stack[-1][0] + 1e-9:
                fail(
                    f"track {track}: span {name!r} [{ts}, {end}] partially "
                    f"overlaps enclosing span ending at {stack[-1][0]} "
                    f"({stack[-1][1]!r})"
                )
            stack.append((end, name))

    total = sum(counts.values())
    summary = ", ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    print(f"validate_trace: OK: {total} events ({summary}), "
          f"{len(spans)} span tracks")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))

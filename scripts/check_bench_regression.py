#!/usr/bin/env python3
"""Gate on simulator micro-benchmark regressions.

Compares a freshly emitted ``bench_micro_sim --emit-json`` report against
the committed ``BENCH_micro.json`` baseline and fails (exit 1) when any
gated figure regresses by more than the threshold (default 10%):

  * ``event_dispatch.events_per_sec``   — lower is a regression
  * ``alltoall64_1mib.wall_seconds``    — higher is a regression
  * ``fattree4096_1mib.wall_seconds``   — higher is a regression, and also
    capped at an absolute 10 s budget: the collapsed 4096-rank fat-tree
    sweep cell must stay interactive regardless of what the committed
    baseline says.

Counter sections (``steady_state``, ``plan_cache``, ``symmetry_collapse``)
are reported but never gated: they are deterministic counts, and a change
there means behaviour changed — the byte-identity test suite, not this
gate, judges that.

With ``--governor-current`` (or ``--governor-bench``) the gate also judges
the ``bench_ext_governor --emit-json`` report (committed baseline:
``BENCH_governor.json``). Its simulated figures are deterministic, so the
gate enforces the acceptance invariants directly rather than ratios:

  * slack energy_per_op  ≤ reactive energy_per_op  (slack saves at least
    as much as the reactive black-box governor)
  * slack latency        ≤ 1.01 × static latency   (equal-runtime bound)
  * every powercap cell's redistribution speedup > 1.0
  * each sweep's wall_seconds capped at an absolute 30 s budget,
    mirroring the fattree4096_1mib treatment

Drift of the simulated figures against ``--governor-baseline`` is printed
informationally; the byte-identity suite judges behavioural change.

With ``--adapt-current`` (or ``--adapt-bench``) the gate also judges the
``bench_ext_adapt --emit-json`` report (committed baseline:
``BENCH_adapt.json``), enforcing the adaptive-engine acceptance
invariants per cell:

  * adaptive_us == best_static_us within 0.1% — tuned dispatch must land
    on the raced winner (the simulations are deterministic, so "within
    noise" is essentially equality)
  * best_static_us ≤ default_us — the race never picks a loser
  * wall_seconds capped at an absolute 60 s budget (the race sweeps every
    registered candidate per size on the 64-rank testbed)

Winner changes against ``--adapt-baseline`` are printed informationally:
a different tree/segment winning is a behaviour change for the
byte-identity suite to judge, not a perf regression.

With ``--dragonfly-current`` (or ``--dragonfly-bench``) the gate also
judges the ``bench_ext_dragonfly --emit-json`` report (committed
baseline: ``BENCH_dragonfly.json``), enforcing the 16384-rank collapsed
cell's acceptance invariants:

  * wall_seconds capped at an absolute 40 s budget
  * plan_memory_bytes ≤ the 150 MB ceiling for the class-compressed
    schedule tables (the materialized per-rank layout needs ~1.3 GB)

Simulated-figure drift against ``--dragonfly-baseline`` is printed
informationally; the byte-identity suite judges behavioural change.

Usage:
  check_bench_regression.py --baseline BENCH_micro.json --current new.json
  check_bench_regression.py --baseline BENCH_micro.json --bench build/bench/bench_micro_sim
  check_bench_regression.py --baseline BENCH_micro.json --current new.json \
      --governor-baseline BENCH_governor.json --governor-current gov.json
  check_bench_regression.py --baseline BENCH_micro.json --current new.json \
      --adapt-baseline BENCH_adapt.json --adapt-bench build/bench/bench_ext_adapt
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def load(path: Path) -> dict:
    with path.open() as f:
        return json.load(f)


def emit_current(bench: Path) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench_current.json"
        subprocess.run([str(bench), "--emit-json", str(out)], check=True)
        return load(out)


#: Absolute wall budget per governor sweep, mirroring fattree4096_1mib's
#: 10 s cap (the governor sweeps carry three full-testbed cells each, so
#: they get proportionally more headroom).
GOVERNOR_WALL_BUDGET = 30.0


def check_governor(current: dict, baseline: dict | None,
                   failures: list[str]) -> None:
    """Gates the pacc-bench-governor-v1 acceptance invariants."""
    eq = current["equal_runtime"]
    static_e = eq["static"]["energy_per_op_j"]
    reactive_e = eq["reactive"]["energy_per_op_j"]
    slack_e = eq["slack"]["energy_per_op_j"]
    static_lat = eq["static"]["latency_us"]
    slack_lat = eq["slack"]["latency_us"]

    def gate(name: str, ok: bool, detail: str) -> None:
        print(f"  {name}: {detail} -> {'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(name)

    gate("governor.slack_energy_vs_reactive", slack_e <= reactive_e,
         f"slack {slack_e:g} J vs reactive {reactive_e:g} J")
    gate("governor.slack_equal_runtime", slack_lat <= 1.01 * static_lat,
         f"slack {slack_lat:g} us vs static {static_lat:g} us (1% budget)")
    print(f"  governor.slack_savings (informational): "
          f"{1 - slack_e / static_e:.1%} of static energy")

    for cell in current["powercap_step"]["caps"]:
        gate(f"governor.powercap_{cell['cap_watts']:g}W_speedup",
             cell["speedup"] > 1.0,
             f"redistribution speedup {cell['speedup']:g}")

    for section in ("equal_runtime", "powercap_step"):
        wall = current[section]["wall_seconds"]
        gate(f"governor.{section}.wall_seconds",
             wall <= GOVERNOR_WALL_BUDGET,
             f"absolute budget {GOVERNOR_WALL_BUDGET:g}, current {wall:g}")

    if baseline is not None:
        base_eq = baseline["equal_runtime"]
        for variant in ("static", "reactive", "slack"):
            b = base_eq[variant]["energy_per_op_j"]
            c = eq[variant]["energy_per_op_j"]
            if b != c:
                print(f"  governor.{variant}.energy_per_op_j "
                      f"(informational drift): baseline {b:g}, current {c:g}")


#: Absolute wall budget for the adaptive-engine race: every registered
#: candidate × four sweep sizes on the 64-rank testbed, plus the adaptive
#: re-measurement per cell.
ADAPT_WALL_BUDGET = 60.0


def check_adapt(current: dict, baseline: dict | None,
                failures: list[str]) -> None:
    """Gates the pacc-bench-adapt-v1 acceptance invariants."""

    def gate(name: str, ok: bool, detail: str) -> None:
        print(f"  {name}: {detail} -> {'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(name)

    for cell in current["cells"]:
        label = f"adapt.{cell['message']}"
        adaptive = cell["adaptive_us"]
        best = cell["best_static_us"]
        default = cell["default_us"]
        gate(f"{label}.adaptive_matches_winner",
             adaptive <= 1.001 * best,
             f"adaptive {adaptive:g} us vs best static {best:g} us "
             f"(0.1% budget, winner {cell['winner']})")
        gate(f"{label}.winner_not_worse_than_default",
             best <= default,
             f"winner {best:g} us vs default {default:g} us")

    wall = current["wall_seconds"]
    gate("adapt.wall_seconds", wall <= ADAPT_WALL_BUDGET,
         f"absolute budget {ADAPT_WALL_BUDGET:g}, current {wall:g}")

    if baseline is not None:
        base_cells = {c["message"]: c for c in baseline["cells"]}
        for cell in current["cells"]:
            base = base_cells.get(cell["message"])
            if base is None:
                continue
            if (base["winner"], base["seg"]) != (cell["winner"], cell["seg"]):
                print(f"  adapt.{cell['message']}.winner (informational "
                      f"drift): baseline {base['winner']}:{base['seg']}, "
                      f"current {cell['winner']}:{cell['seg']}")
            if base["adaptive_us"] != cell["adaptive_us"]:
                print(f"  adapt.{cell['message']}.adaptive_us (informational "
                      f"drift): baseline {base['adaptive_us']:g}, "
                      f"current {cell['adaptive_us']:g}")


#: Absolute wall budget for the collapsed 16384-rank dragonfly cell — four
#: times fattree4096's 10 s: the representative-flow count scales with the
#: logical rank count (256 representatives × 16383 peers).
DRAGONFLY_WALL_BUDGET = 40.0


def check_dragonfly(current: dict, baseline: dict | None,
                    failures: list[str]) -> None:
    """Gates the pacc-bench-dragonfly-v1 acceptance invariants."""

    def gate(name: str, ok: bool, detail: str) -> None:
        print(f"  {name}: {detail} -> {'ok' if ok else 'REGRESSED'}")
        if not ok:
            failures.append(name)

    cell = current["proposed_1mib"]
    wall = cell["wall_seconds"]
    gate("dragonfly.proposed_1mib.wall_seconds",
         wall <= DRAGONFLY_WALL_BUDGET,
         f"absolute budget {DRAGONFLY_WALL_BUDGET:g}, current {wall:g}")
    plan_bytes = cell["plan_memory_bytes"]
    budget = cell.get("plan_memory_budget_bytes", 150 * 1024 * 1024)
    gate("dragonfly.proposed_1mib.plan_memory_bytes",
         plan_bytes <= budget,
         f"ceiling {budget} B, current {plan_bytes} B "
         f"({plan_bytes / 2**20:.1f} MiB)")
    print(f"  dragonfly.collapse (informational): "
          f"{json.dumps(cell['collapse'], sort_keys=True)}")

    if baseline is not None:
        base = baseline["proposed_1mib"]
        for field in ("latency_ms", "energy_per_op_j", "plan_memory_bytes"):
            if base.get(field) != cell.get(field):
                print(f"  dragonfly.proposed_1mib.{field} (informational "
                      f"drift): baseline {base.get(field)}, "
                      f"current {cell.get(field)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_micro.json")
    parser.add_argument("--current", type=Path,
                        help="freshly emitted report (alternative: --bench)")
    parser.add_argument("--bench", type=Path,
                        help="bench_micro_sim binary to run --emit-json with")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    parser.add_argument("--governor-baseline", type=Path,
                        help="committed BENCH_governor.json (informational)")
    parser.add_argument("--governor-current", type=Path,
                        help="freshly emitted bench_ext_governor report")
    parser.add_argument("--governor-bench", type=Path,
                        help="bench_ext_governor binary to run --emit-json "
                             "with")
    parser.add_argument("--adapt-baseline", type=Path,
                        help="committed BENCH_adapt.json (informational)")
    parser.add_argument("--adapt-current", type=Path,
                        help="freshly emitted bench_ext_adapt report")
    parser.add_argument("--adapt-bench", type=Path,
                        help="bench_ext_adapt binary to run --emit-json with")
    parser.add_argument("--dragonfly-baseline", type=Path,
                        help="committed BENCH_dragonfly.json (informational)")
    parser.add_argument("--dragonfly-current", type=Path,
                        help="freshly emitted bench_ext_dragonfly report")
    parser.add_argument("--dragonfly-bench", type=Path,
                        help="bench_ext_dragonfly binary to run --emit-json "
                             "with")
    args = parser.parse_args()
    if (args.current is None) == (args.bench is None):
        parser.error("exactly one of --current / --bench is required")
    if args.governor_current is not None and args.governor_bench is not None:
        parser.error("at most one of --governor-current / --governor-bench")
    if args.adapt_current is not None and args.adapt_bench is not None:
        parser.error("at most one of --adapt-current / --adapt-bench")
    if (args.dragonfly_current is not None
            and args.dragonfly_bench is not None):
        parser.error(
            "at most one of --dragonfly-current / --dragonfly-bench")

    baseline = load(args.baseline)
    current = load(args.current) if args.current else emit_current(args.bench)

    failures = []

    def check(name: str, base: float, cur: float, higher_is_better: bool):
        if base <= 0:
            print(f"  {name}: baseline {base} unusable, skipped")
            return
        ratio = cur / base
        regressed = (ratio < 1 - args.threshold if higher_is_better
                     else ratio > 1 + args.threshold)
        verdict = "REGRESSED" if regressed else "ok"
        print(f"  {name}: baseline {base:g}, current {cur:g} "
              f"({ratio:.1%} of baseline) -> {verdict}")
        if regressed:
            failures.append(name)

    print("bench regression gate "
          f"(threshold {args.threshold:.0%}):")
    check("event_dispatch.events_per_sec",
          baseline["event_dispatch"]["events_per_sec"],
          current["event_dispatch"]["events_per_sec"],
          higher_is_better=True)
    check("alltoall64_1mib.wall_seconds",
          baseline["alltoall64_1mib"]["wall_seconds"],
          current["alltoall64_1mib"]["wall_seconds"],
          higher_is_better=False)
    if "fattree4096_1mib" in current:
        fattree = current["fattree4096_1mib"]["wall_seconds"]
        # Relative gate only once the committed baseline records the figure
        # (older baselines predate the fat-tree bench).
        if "fattree4096_1mib" in baseline:
            check("fattree4096_1mib.wall_seconds",
                  baseline["fattree4096_1mib"]["wall_seconds"],
                  fattree, higher_is_better=False)
        budget = 10.0
        verdict = "REGRESSED" if fattree > budget else "ok"
        print(f"  fattree4096_1mib.wall_seconds: absolute budget {budget:g}, "
              f"current {fattree:g} -> {verdict}")
        if fattree > budget:
            failures.append("fattree4096_1mib.wall_seconds (absolute budget)")
    else:
        print("  fattree4096_1mib.wall_seconds: missing from current report, "
              "skipped")

    for section in ("steady_state", "plan_cache", "symmetry_collapse"):
        if section in current:
            print(f"  {section} (informational): "
                  f"{json.dumps(current[section], sort_keys=True)}")

    governor = None
    if args.governor_current is not None:
        governor = load(args.governor_current)
    elif args.governor_bench is not None:
        governor = emit_current(args.governor_bench)
    if governor is not None:
        print("governor gate:")
        gov_baseline = (load(args.governor_baseline)
                        if args.governor_baseline else None)
        check_governor(governor, gov_baseline, failures)

    adapt = None
    if args.adapt_current is not None:
        adapt = load(args.adapt_current)
    elif args.adapt_bench is not None:
        adapt = emit_current(args.adapt_bench)
    if adapt is not None:
        print("adapt gate:")
        adapt_baseline = (load(args.adapt_baseline)
                          if args.adapt_baseline else None)
        check_adapt(adapt, adapt_baseline, failures)

    dragonfly = None
    if args.dragonfly_current is not None:
        dragonfly = load(args.dragonfly_current)
    elif args.dragonfly_bench is not None:
        dragonfly = emit_current(args.dragonfly_bench)
    if dragonfly is not None:
        print("dragonfly gate:")
        dragonfly_baseline = (load(args.dragonfly_baseline)
                              if args.dragonfly_baseline else None)
        check_dragonfly(dragonfly, dragonfly_baseline, failures)

    if failures:
        print(f"FAIL: {', '.join(failures)} regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate on simulator micro-benchmark regressions.

Compares a freshly emitted ``bench_micro_sim --emit-json`` report against
the committed ``BENCH_micro.json`` baseline and fails (exit 1) when any
gated figure regresses by more than the threshold (default 10%):

  * ``event_dispatch.events_per_sec``   — lower is a regression
  * ``alltoall64_1mib.wall_seconds``    — higher is a regression
  * ``fattree4096_1mib.wall_seconds``   — higher is a regression, and also
    capped at an absolute 10 s budget: the collapsed 4096-rank fat-tree
    sweep cell must stay interactive regardless of what the committed
    baseline says.

Counter sections (``steady_state``, ``plan_cache``, ``symmetry_collapse``)
are reported but never gated: they are deterministic counts, and a change
there means behaviour changed — the byte-identity test suite, not this
gate, judges that.

Usage:
  check_bench_regression.py --baseline BENCH_micro.json --current new.json
  check_bench_regression.py --baseline BENCH_micro.json --bench build/bench/bench_micro_sim
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def load(path: Path) -> dict:
    with path.open() as f:
        return json.load(f)


def emit_current(bench: Path) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench_current.json"
        subprocess.run([str(bench), "--emit-json", str(out)], check=True)
        return load(out)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_micro.json")
    parser.add_argument("--current", type=Path,
                        help="freshly emitted report (alternative: --bench)")
    parser.add_argument("--bench", type=Path,
                        help="bench_micro_sim binary to run --emit-json with")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    args = parser.parse_args()
    if (args.current is None) == (args.bench is None):
        parser.error("exactly one of --current / --bench is required")

    baseline = load(args.baseline)
    current = load(args.current) if args.current else emit_current(args.bench)

    failures = []

    def check(name: str, base: float, cur: float, higher_is_better: bool):
        if base <= 0:
            print(f"  {name}: baseline {base} unusable, skipped")
            return
        ratio = cur / base
        regressed = (ratio < 1 - args.threshold if higher_is_better
                     else ratio > 1 + args.threshold)
        verdict = "REGRESSED" if regressed else "ok"
        print(f"  {name}: baseline {base:g}, current {cur:g} "
              f"({ratio:.1%} of baseline) -> {verdict}")
        if regressed:
            failures.append(name)

    print("bench regression gate "
          f"(threshold {args.threshold:.0%}):")
    check("event_dispatch.events_per_sec",
          baseline["event_dispatch"]["events_per_sec"],
          current["event_dispatch"]["events_per_sec"],
          higher_is_better=True)
    check("alltoall64_1mib.wall_seconds",
          baseline["alltoall64_1mib"]["wall_seconds"],
          current["alltoall64_1mib"]["wall_seconds"],
          higher_is_better=False)
    if "fattree4096_1mib" in current:
        fattree = current["fattree4096_1mib"]["wall_seconds"]
        # Relative gate only once the committed baseline records the figure
        # (older baselines predate the fat-tree bench).
        if "fattree4096_1mib" in baseline:
            check("fattree4096_1mib.wall_seconds",
                  baseline["fattree4096_1mib"]["wall_seconds"],
                  fattree, higher_is_better=False)
        budget = 10.0
        verdict = "REGRESSED" if fattree > budget else "ok"
        print(f"  fattree4096_1mib.wall_seconds: absolute budget {budget:g}, "
              f"current {fattree:g} -> {verdict}")
        if fattree > budget:
            failures.append("fattree4096_1mib.wall_seconds (absolute budget)")
    else:
        print("  fattree4096_1mib.wall_seconds: missing from current report, "
              "skipped")

    for section in ("steady_state", "plan_cache", "symmetry_collapse"):
        if section in current:
            print(f"  {section} (informational): "
                  f"{json.dumps(current[section], sort_keys=True)}")

    if failures:
        print(f"FAIL: {', '.join(failures)} regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

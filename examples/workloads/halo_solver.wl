# Example workload trace: an iterative solver with a skewed key exchange
# (IS-like) plus a broadcast of updated coefficients each iteration.
name        halo-solver
iterations  10
seed        3

phase compute 25ms imbalance 0.10
phase alltoallv 48K imbalance 0.25
phase allreduce 8K
phase bcast 256K

# Example workload trace: a CPMD-flavoured SCF loop (see src/apps/trace.hpp
# for the format). Run with:
#   build/tools/paccbench --workload examples/workloads/cpmd_like.wl \
#       --ranks 32 --ppn 4 --scheme proposed
name        cpmd-like
iterations  8
extrapolate 12
seed        7

# local plane-wave FFTs + density build
phase compute 77ms imbalance 0.03
# 3-D FFT transposes (the dominant communication)
phase alltoall 128K repeat 5
# energy reductions at the end of the step
phase allreduce 4K

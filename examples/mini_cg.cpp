// mini_cg — a distributed conjugate-gradient solver on the simulated
// cluster: the Allreduce-heavy communication pattern of NAS CG and of
// implicit solvers generally.
//
// Solves A·x = b for a diagonally dominant tridiagonal system
// [-1, 4, -1] (a shifted 1-D Laplacian, condition number ≈ 3) with the
// vector row-block-distributed over the ranks. Each iteration performs
//   - one halo exchange (point-to-point with the two neighbours),
//   - one local sparse mat-vec (real arithmetic),
//   - two Allreduce dot-products,
// exactly the real algorithm; convergence of the residual is the
// end-to-end proof that the simulated MPI layer moves the right bytes.
#include <cmath>
#include <iostream>
#include <vector>

#include "pacc/simulation.hpp"
#include "coll/registry.hpp"

namespace {

using namespace pacc;

constexpr int kGlobalN = 4096;

constexpr int kRanks = 16;
constexpr int kLocalN = kGlobalN / kRanks;
constexpr int kMaxIters = 100;
constexpr double kTolerance = 1e-8;

/// Allreduce-sum of one double.
sim::Task<double> global_dot(mpi::Rank& self, mpi::Comm& world, double local,
                             coll::PowerScheme scheme) {
  std::vector<std::byte> in(sizeof(double)), out(sizeof(double));
  *reinterpret_cast<double*>(in.data()) = local;
  co_await coll::allreduce(self, world, in, out,
                           {.scheme = scheme, .op = coll::ReduceOp::kSum});
  co_return *reinterpret_cast<const double*>(out.data());
}

struct CgResult {
  int iterations = 0;
  double residual = 0.0;
  Duration elapsed;
  Joules energy = 0.0;
  bool completed = false;
};

CgResult run_cg(coll::PowerScheme scheme) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.ranks = kRanks;
  cfg.ranks_per_node = 4;
  Simulation sim(cfg);

  int iterations = 0;
  double final_residual = 0.0;

  auto body = [&, scheme](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    const int left = me - 1;
    const int right = me + 1;

    // Local rows [me·kLocalN, (me+1)·kLocalN) with one halo cell each side.
    std::vector<double> x(kLocalN, 0.0), r(kLocalN), p(kLocalN), ap(kLocalN);
    std::vector<double> p_halo(kLocalN + 2, 0.0);

    // b = A·ones has a closed form; CG must recover x = ones.
    for (int i = 0; i < kLocalN; ++i) {
      const int gi = me * kLocalN + i;
      r[i] = 4.0 - (gi > 0 ? 1.0 : 0.0) - (gi < kGlobalN - 1 ? 1.0 : 0.0);
      p[i] = r[i];
    }

    // Exchanges p's boundary cells with the neighbours.
    auto halo_exchange = [&]() -> sim::Task<> {
      std::vector<std::byte> cell(sizeof(double));
      if (left >= 0) {
        *reinterpret_cast<double*>(cell.data()) = p[0];
        co_await self.send(left, 1, cell);
      }
      if (right < kRanks) {
        *reinterpret_cast<double*>(cell.data()) = p[kLocalN - 1];
        co_await self.send(right, 2, cell);
      }
      if (right < kRanks) {
        co_await self.recv(right, 1, cell);
        p_halo[static_cast<std::size_t>(kLocalN) + 1] =
            *reinterpret_cast<const double*>(cell.data());
      } else {
        p_halo[static_cast<std::size_t>(kLocalN) + 1] = 0.0;
      }
      if (left >= 0) {
        co_await self.recv(left, 2, cell);
        p_halo[0] = *reinterpret_cast<const double*>(cell.data());
      } else {
        p_halo[0] = 0.0;
      }
    };

    double rr = 0.0;
    for (int i = 0; i < kLocalN; ++i) rr += r[i] * r[i];
    rr = co_await global_dot(self, world, rr, scheme);

    int iter = 0;
    while (iter < kMaxIters && std::sqrt(rr) > kTolerance) {
      co_await halo_exchange();
      for (int i = 0; i < kLocalN; ++i) p_halo[static_cast<std::size_t>(i) + 1] = p[i];
      // ap = A·p (tridiagonal [-1, 4, -1]).
      for (int i = 0; i < kLocalN; ++i) {
        ap[i] = 4.0 * p_halo[static_cast<std::size_t>(i) + 1] -
                p_halo[static_cast<std::size_t>(i)] -
                p_halo[static_cast<std::size_t>(i) + 2];
      }
      co_await self.compute(Duration::micros(kLocalN * 0.002));

      double pap = 0.0;
      for (int i = 0; i < kLocalN; ++i) pap += p[i] * ap[i];
      pap = co_await global_dot(self, world, pap, scheme);

      const double alpha = rr / pap;
      for (int i = 0; i < kLocalN; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      double rr_new = 0.0;
      for (int i = 0; i < kLocalN; ++i) rr_new += r[i] * r[i];
      rr_new = co_await global_dot(self, world, rr_new, scheme);

      const double beta = rr_new / rr;
      for (int i = 0; i < kLocalN; ++i) p[i] = r[i] + beta * p[i];
      rr = rr_new;
      ++iter;
    }
    if (me == 0) {
      iterations = iter;
      final_residual = std::sqrt(rr);
    }
  };

  const RunReport run = sim.run(body);
  CgResult result;
  result.completed = run.status.ok();
  result.iterations = iterations;
  result.residual = final_residual;
  result.elapsed = run.elapsed;
  result.energy = run.energy;
  return result;
}

}  // namespace

int main() {
  std::cout << "mini CG: shifted 1-D Laplacian, n = " << kGlobalN << " over "
            << kRanks << " ranks; two Allreduce dot-products plus a halo\n"
            << "exchange per iteration (the NAS-CG communication pattern)\n\n";

  bool all_ok = true;
  for (const auto scheme : coll::kAllSchemes) {
    const CgResult r = run_cg(scheme);
    const bool ok = r.completed && r.residual < kTolerance;
    all_ok = all_ok && ok;
    std::cout << coll::to_string(scheme) << ": converged in " << r.iterations
              << " iterations (residual " << r.residual << "), "
              << r.elapsed.ms() << " ms simulated, " << r.energy << " J"
              << (ok ? "  [PASS]" : "  [FAIL]") << "\n";
  }
  if (!all_ok) {
    std::cerr << "\nCG failed to converge — data corruption in the stack\n";
    return 1;
  }
  std::cout << "\nIdentical convergence under every power scheme: the\n"
               "power-aware collectives never touch the numerics.\n";
  return 0;
}

// mini_bucket_sort — a real distributed integer sort (the NAS-IS pattern)
// on the simulated cluster.
//
// Each rank generates random keys, the ranks agree on bucket boundaries,
// every key is routed to its bucket's owner with MPI_Alltoallv (uneven
// per-peer segments — the reason IS stresses Alltoallv), and each rank
// sorts its bucket locally. The verification walks the distributed result:
// locally sorted everywhere, globally ordered across ranks, and not a
// single key lost or duplicated (checksummed with an Allreduce).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <numeric>
#include <vector>

#include "pacc/simulation.hpp"
#include "util/rng.hpp"
#include "coll/registry.hpp"

namespace {

using namespace pacc;

constexpr int kRanks = 16;
constexpr int kKeysPerRank = 1 << 14;  // 16 Ki keys each, 256 Ki total
constexpr std::uint32_t kKeyRange = 1u << 20;

struct SortOutcome {
  bool completed = false;
  bool locally_sorted = true;
  bool globally_ordered = true;
  bool checksum_ok = false;
  Duration elapsed;
  Joules energy = 0.0;
};

SortOutcome run_sort(coll::PowerScheme scheme) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.ranks = kRanks;
  cfg.ranks_per_node = 4;
  Simulation sim(cfg);

  std::vector<std::uint32_t> bucket_min(kRanks), bucket_max(kRanks);
  std::vector<bool> sorted_ok(kRanks, false);
  double checksum_delta = 1.0;

  auto body = [&, scheme](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());

    // Deterministic per-rank keys.
    Rng rng(0xB0C5 + static_cast<std::uint64_t>(me));
    std::vector<std::uint32_t> keys(kKeysPerRank);
    double local_sum = 0.0;
    for (auto& k : keys) {
      k = static_cast<std::uint32_t>(rng.next_below(kKeyRange));
      local_sum += k;
    }

    // Bucket r owns [r, r+1) · kKeyRange / kRanks.
    auto owner = [](std::uint32_t key) {
      return static_cast<int>(static_cast<std::uint64_t>(key) * kRanks /
                              kKeyRange);
    };

    // Count, pack and exchange.
    std::vector<Bytes> send_counts(kRanks, 0);
    for (const auto k : keys) {
      send_counts[static_cast<std::size_t>(owner(k))] +=
          static_cast<Bytes>(sizeof(std::uint32_t));
    }
    std::vector<std::size_t> offsets(kRanks + 1, 0);
    for (int r = 0; r < kRanks; ++r) {
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] +
          static_cast<std::size_t>(send_counts[static_cast<std::size_t>(r)]);
    }
    std::vector<std::byte> send_buf(offsets.back());
    {
      auto cursor = offsets;
      for (const auto k : keys) {
        const auto dst = static_cast<std::size_t>(owner(k));
        std::memcpy(send_buf.data() + cursor[dst], &k, sizeof(k));
        cursor[dst] += sizeof(k);
      }
    }

    // Everyone needs everyone's counts: transpose them with an alltoall.
    std::vector<std::byte> counts_out(kRanks * sizeof(Bytes));
    std::memcpy(counts_out.data(), send_counts.data(), counts_out.size());
    std::vector<std::byte> counts_in(counts_out.size());
    co_await coll::alltoall(self, world, counts_out, counts_in,
                            sizeof(Bytes), {.scheme = scheme});
    std::vector<Bytes> recv_counts(kRanks);
    std::memcpy(recv_counts.data(), counts_in.data(), counts_in.size());

    const auto recv_total = static_cast<std::size_t>(
        std::accumulate(recv_counts.begin(), recv_counts.end(), Bytes{0}));
    std::vector<std::byte> recv_buf(recv_total);
    co_await coll::alltoallv(self, world, send_buf, send_counts, recv_buf,
                             recv_counts, {.scheme = scheme});

    // Local sort of my bucket (modelled + actually performed).
    std::vector<std::uint32_t> bucket(recv_total / sizeof(std::uint32_t));
    std::memcpy(bucket.data(), recv_buf.data(), recv_total);
    std::sort(bucket.begin(), bucket.end());
    co_await self.compute(Duration::micros(
        0.02 * static_cast<double>(bucket.size())));

    // --- verification -------------------------------------------------
    sorted_ok[static_cast<std::size_t>(me)] =
        std::is_sorted(bucket.begin(), bucket.end()) &&
        (bucket.empty() || (owner(bucket.front()) == me &&
                            owner(bucket.back()) == me));
    bucket_min[static_cast<std::size_t>(me)] =
        bucket.empty() ? 0 : bucket.front();
    bucket_max[static_cast<std::size_t>(me)] =
        bucket.empty() ? 0 : bucket.back();

    // Checksum: the sum of all keys must survive the redistribution.
    double bucket_sum = 0.0;
    for (const auto k : bucket) bucket_sum += k;
    std::vector<std::byte> in(sizeof(double)), out_total(sizeof(double)),
        out_original(sizeof(double));
    std::memcpy(in.data(), &bucket_sum, sizeof(double));
    co_await coll::allreduce(self, world, in, out_total, {.scheme = scheme});
    std::memcpy(in.data(), &local_sum, sizeof(double));
    co_await coll::allreduce(self, world, in, out_original,
                             {.scheme = scheme});
    if (me == 0) {
      double total = 0.0, original = 0.0;
      std::memcpy(&total, out_total.data(), sizeof(double));
      std::memcpy(&original, out_original.data(), sizeof(double));
      checksum_delta = std::abs(total - original);
    }
  };

  const RunReport run = sim.run(body);
  SortOutcome outcome;
  outcome.completed = run.status.ok();
  outcome.elapsed = run.elapsed;
  outcome.energy = run.energy;
  outcome.checksum_ok = checksum_delta == 0.0;
  for (int r = 0; r < kRanks; ++r) {
    outcome.locally_sorted =
        outcome.locally_sorted && sorted_ok[static_cast<std::size_t>(r)];
    if (r > 0 && bucket_max[static_cast<std::size_t>(r - 1)] >
                     bucket_min[static_cast<std::size_t>(r)] &&
        bucket_min[static_cast<std::size_t>(r)] != 0) {
      outcome.globally_ordered = false;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::cout << "mini bucket sort (NAS-IS pattern): " << kRanks << " ranks x "
            << kKeysPerRank << " keys, redistributed with Alltoallv\n\n";

  bool all_ok = true;
  for (const auto scheme : coll::kAllSchemes) {
    const SortOutcome r = run_sort(scheme);
    const bool ok = r.completed && r.locally_sorted && r.globally_ordered &&
                    r.checksum_ok;
    all_ok = all_ok && ok;
    std::cout << coll::to_string(scheme) << ": " << r.elapsed.ms()
              << " ms simulated, " << r.energy << " J — local sort "
              << (r.locally_sorted ? "ok" : "BAD") << ", global order "
              << (r.globally_ordered ? "ok" : "BAD") << ", checksum "
              << (r.checksum_ok ? "ok" : "BAD")
              << (ok ? "  [PASS]" : "  [FAIL]") << "\n";
  }
  if (!all_ok) {
    std::cerr << "\nsort verification FAILED\n";
    return 1;
  }
  std::cout << "\nEvery key arrived exactly once under every power scheme:\n"
               "the skewed Alltoallv segments are preserved bit-for-bit.\n";
  return 0;
}

// Example: estimate how much energy power-aware collectives save for a
// CPMD-like ab-initio molecular dynamics run (the paper's §VII-F study).
//
//   $ ./example_cpmd_energy_study [dataset]
//
// dataset ∈ {wat-32-inp-1, wat-32-inp-2, ta-inp-md}; default ta-inp-md,
// the long production-style run where the paper reports ≈8 % savings.
#include <iostream>
#include <string>

#include "apps/cpmd.hpp"
#include "pacc/simulation.hpp"

int main(int argc, char** argv) {
  using namespace pacc;

  std::string dataset = "ta-inp-md";
  if (argc > 1) dataset = argv[1];
  bool known = false;
  for (const auto name : apps::kCpmdDatasets) {
    if (dataset == name) known = true;
  }
  if (!known) {
    std::cerr << "unknown dataset '" << dataset << "'; choose one of:";
    for (const auto name : apps::kCpmdDatasets) std::cerr << " " << name;
    std::cerr << "\n";
    return 1;
  }

  std::cout << "CPMD dataset " << dataset
            << ", strong scaling on the 8-node testbed\n\n";

  for (const int ranks : {32, 64}) {
    ClusterConfig cluster;
    cluster.nodes = 8;
    cluster.ranks = ranks;
    cluster.ranks_per_node = ranks / 8;
    const auto spec = apps::cpmd_workload(dataset, ranks);

    std::cout << ranks << " processes (" << cluster.ranks_per_node
              << " per node):\n";
    double base_energy = 0.0;
    for (const auto scheme : coll::kAllSchemes) {
      const auto report = apps::run_workload(cluster, spec, scheme);
      if (!report.status.ok()) {
        std::cerr << "run did not complete\n";
        return 1;
      }
      if (scheme == coll::PowerScheme::kNone) base_energy = report.energy;
      std::cout << "  " << coll::to_string(scheme) << ": "
                << report.total_time.sec() << " s total, "
                << report.alltoall_time.sec() << " s in Alltoall, "
                << report.energy / 1000.0 << " KJ";
      if (scheme != coll::PowerScheme::kNone) {
        std::cout << " (" << (1.0 - report.energy / base_energy) * 100.0
                  << " % saved)";
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}

// Example: drive the low-level hardware API directly — write your own rank
// program that mixes computation, point-to-point messaging and explicit
// DVFS / T-state control, then inspect per-core statistics.
//
// This is the "library" view beneath the collectives: everything the
// power-aware algorithms do (§V) is built from these primitives.
#include <array>
#include <iostream>

#include "pacc/simulation.hpp"

namespace {

using namespace pacc;

sim::Task<> rank_program(mpi::Rank& self) {
  auto& machine = self.machine();
  const auto fmin = machine.params().fmin;
  const auto fmax = machine.params().fmax;

  // Phase 1: compute at full speed.
  co_await self.compute(Duration::millis(5.0));

  // Phase 2: a communication phase, run power-aware by hand.
  co_await self.dvfs(fmin);  // pays O_dvfs
  std::array<std::byte, 64 * 1024> buf{};
  const int peer = self.id() ^ 1;
  if (self.id() % 2 == 0) {
    co_await self.send(peer, /*tag=*/7, buf);
    co_await self.recv(peer, /*tag=*/8, buf);
  } else {
    co_await self.recv(peer, /*tag=*/7, buf);
    co_await self.send(peer, /*tag=*/8, buf);
  }

  // Phase 3: this rank has little to do while others work — throttle.
  co_await self.throttle(7);  // socket-granular on Nehalem-style machines
  co_await self.compute(Duration::millis(1.0));  // runs 8x slower at T7
  co_await self.throttle(0);

  co_await self.dvfs(fmax);
}

}  // namespace

int main() {
  using namespace pacc;

  ClusterConfig cluster;
  cluster.nodes = 2;
  cluster.ranks = 16;
  cluster.ranks_per_node = 8;

  Simulation sim(cluster);
  const RunReport report = sim.run(rank_program);
  if (!report.status.ok()) {
    std::cerr << "deadlock detected\n";
    return 1;
  }

  std::cout << "program finished in " << report.elapsed.ms() << " ms, "
            << report.energy << " J, mean "
            << report.mean_power / 1000.0 << " kW\n\n";

  std::cout << "per-core accounting (rank -> busy/idle/throttled ms, J):\n";
  for (int r = 0; r < cluster.ranks; ++r) {
    const auto core = sim.runtime().placement().core_of(r);
    const auto stats = sim.machine().core_stats(core);
    std::cout << "  rank " << r << " (node " << core.node << ", socket "
              << (core.socket == 0 ? 'A' : 'B') << "): busy "
              << stats.busy_time.ms() << " ms, idle " << stats.idle_time.ms()
              << " ms, throttled " << stats.throttled_time.ms() << " ms, "
              << stats.energy << " J\n";
  }

  std::cout << "\nEvery rank paid O_dvfs twice and O_throttle twice — the\n"
            << "same accounting the paper's models charge (eqs 3-4).\n";
  return 0;
}

// Quickstart: build the paper's 8-node testbed, run one power-aware
// MPI_Alltoall, and read back latency / power / energy.
//
//   $ ./example_quickstart
//
// This is the smallest end-to-end use of the public API: ClusterConfig →
// measure_collective → CollectiveReport.
#include <iostream>

#include "pacc/simulation.hpp"

int main() {
  using namespace pacc;

  // The paper's testbed: 8 Intel "Nehalem" nodes (2 sockets × 4 cores,
  // 1.6-2.4 GHz), InfiniBand QDR, 64 MPI ranks, MVAPICH2 "bunch" affinity.
  ClusterConfig cluster;
  cluster.nodes = 8;
  cluster.ranks = 64;
  cluster.ranks_per_node = 8;

  std::cout << "Simulating a 1 MiB MPI_Alltoall across " << cluster.ranks
            << " ranks under three power schemes...\n\n";

  for (const auto scheme : coll::kAllSchemes) {
    CollectiveBenchSpec spec;
    spec.op = coll::Op::kAlltoall;
    spec.message = 1 << 20;
    spec.scheme = scheme;
    spec.iterations = 5;
    spec.warmup = 1;

    const CollectiveReport report = measure_collective(cluster, spec);
    if (!report.status.ok()) {
      std::cerr << "simulation did not complete\n";
      return 1;
    }
    std::cout << coll::to_string(scheme) << ":\n"
              << "  latency      " << report.latency.us() << " us/op\n"
              << "  mean power   " << report.mean_power / 1000.0 << " kW\n"
              << "  energy       " << report.energy_per_op << " J/op\n";
  }

  std::cout << "\nThe proposed scheme (§V-A of the paper) throttles the\n"
               "socket that is not driving the network to T7, trading a\n"
               "small latency overhead for the lowest power draw.\n";
  return 0;
}

// Example: the NAS FT kernel (transpose-dominated 3-D FFT) on the
// simulated cluster — demonstrates how an Alltoall-heavy application
// responds to the power-aware collectives, and how the Alltoall time stays
// nearly constant under strong scaling (§VII-F/G).
#include <iostream>

#include "apps/nas.hpp"
#include "pacc/simulation.hpp"

int main() {
  using namespace pacc;

  std::cout << "NAS FT (class-C-shaped) on the 8-node testbed\n\n";

  for (const int ranks : {32, 64}) {
    ClusterConfig cluster;
    cluster.nodes = 8;
    cluster.ranks = ranks;
    cluster.ranks_per_node = ranks / 8;
    const auto spec = apps::nas_ft(ranks);

    std::cout << ranks << " processes:\n";
    for (const auto scheme : coll::kAllSchemes) {
      const auto report = apps::run_workload(cluster, spec, scheme);
      if (!report.status.ok()) {
        std::cerr << "run did not complete\n";
        return 1;
      }
      const double a2a_share =
          report.alltoall_time.sec() / report.total_time.sec();
      std::cout << "  " << coll::to_string(scheme) << ": "
                << report.total_time.sec() << " s ("
                << a2a_share * 100.0 << " % Alltoall), "
                << report.energy / 1000.0 << " KJ, mean "
                << report.mean_power / 1000.0 << " kW\n";
    }
    std::cout << "\n";
  }
  std::cout << "Note how doubling the process count halves the compute\n"
               "time while the Alltoall time barely moves: the pair-wise\n"
               "exchange cost is ∝ P·M with M ∝ 1/P² (§VII-F).\n";
  return 0;
}

// mini_fft3d — a real distributed 3-D FFT on the simulated cluster.
//
// This is the computation that motivates the paper's Alltoall work (CPMD's
// plane-wave transposes, NAS FT): an n³ complex grid, slab-decomposed over
// P ranks, forward-transformed by local 2-D FFTs + a global transpose via
// MPI_Alltoall + local 1-D FFTs — and then inverted the same way.
//
// Unlike the calibrated phase profiles in src/apps/, every byte here is
// real: the example runs actual Cooley-Tukey FFTs, pushes the actual
// spectral data through the simulated network, inverts the transform and
// checks the round trip against the original grid to 1e-9. It demonstrates
// that the power-aware collectives are *transparent*: the same numerics
// under default / freq-scaling / proposed schemes, at different energy.
#include <complex>
#include <cstring>
#include <iostream>
#include <numbers>
#include <vector>

#include "pacc/simulation.hpp"
#include "coll/registry.hpp"

namespace {

using namespace pacc;
using Complex = std::complex<double>;

constexpr int kN = 32;     // grid edge: 32³ = 32768 points
constexpr int kRanks = 8;  // 2 nodes × 4 ranks; kN % kRanks == 0
constexpr int kSlab = kN / kRanks;

/// In-place iterative radix-2 Cooley-Tukey FFT (inverse when sign = +1).
void fft1d(Complex* data, int n, int stride, double sign) {
  // Bit-reversal permutation.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i * stride], data[j * stride]);
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi / len;
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (int i = 0; i < n; i += len) {
      Complex w(1.0);
      for (int k = 0; k < len / 2; ++k) {
        Complex u = data[(i + k) * stride];
        Complex v = data[(i + k + len / 2) * stride] * w;
        data[(i + k) * stride] = u + v;
        data[(i + k + len / 2) * stride] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Index into a z-slab: plane z (local), row y, column x.
std::size_t at(int z_local, int y, int x) {
  return (static_cast<std::size_t>(z_local) * kN + static_cast<std::size_t>(y)) *
             kN +
         static_cast<std::size_t>(x);
}

/// Estimated CPU time of `lines` n-point FFTs on one Nehalem core at fmax
/// (~5n·log2(n) flops per line at ~2 GFLOP/s sustained).
Duration fft_cost(int lines) {
  const double flops = 5.0 * kN * 5.0 /*log2(32)*/ * lines;
  return Duration::seconds(flops / 2.0e9);
}

struct SchemeResult {
  coll::PowerScheme scheme;
  Duration elapsed;
  Joules energy = 0.0;
  double max_error = 0.0;
  bool completed = false;
};

SchemeResult run_fft(coll::PowerScheme scheme) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = kRanks;
  cfg.ranks_per_node = 4;
  Simulation sim(cfg);

  std::vector<double> max_error(kRanks, 0.0);

  auto body = [&, scheme](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());

    // Each rank owns kSlab z-planes of the n³ grid.
    std::vector<Complex> grid(static_cast<std::size_t>(kSlab) * kN * kN);
    std::vector<Complex> original(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const double phase = static_cast<double>(i % 97) / 97.0 + me * 0.37;
      grid[i] = Complex(std::cos(phase * 6.28), std::sin(phase * 2.72));
    }
    original = grid;

    std::vector<Complex> transposed(grid.size());
    std::vector<std::byte> send_bytes(grid.size() * sizeof(Complex));
    std::vector<std::byte> recv_bytes(send_bytes.size());
    const Bytes block = static_cast<Bytes>(send_bytes.size()) / kRanks;

    // Packs grid (z-slab layout) into per-destination x-slab blocks.
    auto pack = [&](const std::vector<Complex>& src) {
      auto* out = reinterpret_cast<Complex*>(send_bytes.data());
      std::size_t idx = 0;
      for (int dst = 0; dst < kRanks; ++dst) {
        for (int z = 0; z < kSlab; ++z) {
          for (int y = 0; y < kN; ++y) {
            for (int xl = 0; xl < kSlab; ++xl) {
              out[idx++] = src[at(z, y, dst * kSlab + xl)];
            }
          }
        }
      }
    };
    // Unpacks received blocks into x-slab layout: plane x (local), row y,
    // column z (global).
    auto unpack = [&](std::vector<Complex>& dst) {
      const auto* in = reinterpret_cast<const Complex*>(recv_bytes.data());
      std::size_t idx = 0;
      for (int src_rank = 0; src_rank < kRanks; ++src_rank) {
        for (int zl = 0; zl < kSlab; ++zl) {
          for (int y = 0; y < kN; ++y) {
            for (int xl = 0; xl < kSlab; ++xl) {
              dst[at(xl, y, src_rank * kSlab + zl)] = in[idx++];
            }
          }
        }
      }
    };

    auto transform = [&](double sign) -> sim::Task<> {
      // 2-D FFTs over every owned z-plane (x lines then y lines).
      for (int z = 0; z < kSlab; ++z) {
        for (int y = 0; y < kN; ++y) fft1d(&grid[at(z, y, 0)], kN, 1, sign);
        for (int x = 0; x < kN; ++x) fft1d(&grid[at(z, 0, x)], kN, kN, sign);
      }
      co_await self.compute(fft_cost(2 * kSlab * kN));

      // Global transpose: z-slabs → x-slabs.
      pack(grid);
      co_await coll::alltoall(self, world, send_bytes, recv_bytes, block,
                              {.scheme = scheme});
      unpack(transposed);

      // 1-D FFTs along the now-local z axis.
      for (int xl = 0; xl < kSlab; ++xl) {
        for (int y = 0; y < kN; ++y) {
          fft1d(&transposed[at(xl, y, 0)], kN, 1, sign);
        }
      }
      co_await self.compute(fft_cost(kSlab * kN));

      // Transpose back to z-slabs (the inverse mapping is symmetric).
      pack(transposed);
      co_await coll::alltoall(self, world, send_bytes, recv_bytes, block,
                              {.scheme = scheme});
      unpack(grid);
    };

    co_await transform(-1.0);  // forward
    co_await transform(+1.0);  // inverse

    // The round trip scales by n³ (and the double transpose restores
    // layout); verify against the original grid.
    const double scale = static_cast<double>(kN) * kN * kN;
    double err = 0.0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      err = std::max(err, std::abs(grid[i] / scale - original[i]));
    }
    max_error[static_cast<std::size_t>(me)] = err;
  };

  const RunReport run = sim.run(body);
  SchemeResult result;
  result.scheme = scheme;
  result.completed = run.status.ok();
  result.elapsed = run.elapsed;
  result.energy = run.energy;
  for (const double e : max_error) {
    result.max_error = std::max(result.max_error, e);
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "mini 3-D FFT: " << kN << "^3 complex grid over " << kRanks
            << " ranks (slab decomposition), forward + inverse with global\n"
            << "transposes through the simulated power-aware Alltoall\n\n";

  bool all_ok = true;
  for (const auto scheme : coll::kAllSchemes) {
    const SchemeResult r = run_fft(scheme);
    const bool ok = r.completed && r.max_error < 1e-9;
    all_ok = all_ok && ok;
    std::cout << coll::to_string(r.scheme) << ": " << r.elapsed.ms()
              << " ms simulated, " << r.energy << " J, round-trip error "
              << r.max_error << (ok ? "  [PASS]" : "  [FAIL]") << "\n";
  }
  if (!all_ok) {
    std::cerr << "\nnumerical verification FAILED\n";
    return 1;
  }
  std::cout << "\nIdentical numerics under every scheme — the power-aware\n"
               "algorithms are transparent to the application, trading a\n"
               "little latency for lower energy.\n";
  return 0;
}

// E6 — Figure 8: MPI_Bcast at 64 processes under the three schemes.
// (a) latency sweep (expected ~15 % overhead at 1 MB for the power-aware
// variants); (b) 0.5 s power series while looping at 1 MB (bands ≈ 2.3 /
// 1.8 / 1.6 KW as in Fig 7).
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header("Power-aware MPI_Bcast, 64 processes",
                      "Fig 8(a,b), Kandalla et al., ICPP 2010");

  bench::scheme_latency_and_power_report(coll::Op::kBcast,
                                         bench::paper_cluster(64, 8), 8.0);

  std::cout << "\nShape check (paper): ≤15% overhead at 1 MB; power bands\n"
               "2.3 / 1.8 / 1.6 KW; socket B fully throttled to T7 while\n"
               "the leader socket runs at T4 (§V-B).\n";
  return 0;
}

// E19 (extension) — adaptive collective engine: registry-driven tree/
// segment variants raced by the persistent autotuner (coll/tuner.hpp,
// pacc/tuning.hpp, docs/TUNING.md).
//
// Fig-8 testbed (64 ranks, 8 × 8, bcast) over the large-message sweep: the
// tuner races every registered candidate per size — the default SMP
// dispatch plus four tree shapes × the segment ladder — then the adaptive
// run re-measures with only the tuned table attached. The claim under
// test: adaptive dispatch lands exactly on the best static candidate of
// every cell (the simulations are deterministic, so "within noise" here
// means equal), while the default loses to pipelined chains at large
// sizes.
//
// `--emit-json [PATH]` writes the machine-readable cells that
// scripts/check_bench_regression.py gates in CI (BENCH_adapt.json is the
// committed baseline).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "coll/tuner.hpp"
#include "pacc/tuning.hpp"
#include "util/table.hpp"

namespace {

using namespace pacc;

struct AdaptCell {
  Bytes message = 0;
  coll::TunedDecision winner;
  double default_us = 0.0;      ///< the op's static dispatch
  double best_static_us = 0.0;  ///< fastest raced candidate
  double adaptive_us = 0.0;     ///< tuned-table dispatch, no forced algo
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<AdaptCell> run_cells(const std::shared_ptr<coll::Tuner>& tuner) {
  TuneRequest req;
  req.cluster = bench::paper_cluster(64, 8);
  req.op = coll::Op::kBcast;
  req.scheme = coll::PowerScheme::kNone;
  req.sizes.assign(std::begin(bench::kLargeSweep),
                   std::end(bench::kLargeSweep));
  const TuneReport report =
      tune_collective(*tuner, req, bench::bench_jobs());

  std::vector<AdaptCell> cells;
  for (const TuneCellResult& raced : report.cells) {
    AdaptCell cell;
    cell.message = raced.message;
    cell.winner = raced.decision;
    if (raced.decision.algo.empty()) {
      std::cerr << "race at " << format_bytes(raced.message)
                << " produced no winner\n";
      std::exit(1);
    }
    for (const TuneCandidateResult& c : raced.candidates) {
      if (!c.status.ok()) {
        std::cerr << "candidate " << c.algo << " at "
                  << format_bytes(raced.message)
                  << " failed: " << c.status.describe() << "\n";
        std::exit(1);
      }
      if (c.algo == coll::to_string(coll::Op::kBcast) && c.seg == 0) {
        cell.default_us = c.latency.us();
      }
      if (c.algo == raced.decision.algo && c.seg == raced.decision.seg) {
        cell.best_static_us = c.latency.us();
      }
    }
    ClusterConfig tuned = req.cluster;
    tuned.tuner = tuner;
    const CollectiveReport adaptive = bench::measure_or_exit(
        tuned, bench::collective_spec(req.op, raced.message, req.scheme));
    cell.adaptive_us = adaptive.latency.us();
    cells.push_back(cell);
  }
  return cells;
}

int emit_json(const std::string& path) {
  const double start = now_seconds();
  const auto cells = run_cells(std::make_shared<coll::Tuner>());
  const double wall = now_seconds() - start;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"pacc-bench-adapt-v1\",\n");
  std::fprintf(out,
               "  \"op\": \"bcast\", \"ranks\": 64, \"wall_seconds\": %.3f,\n",
               wall);
  std::fprintf(out, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const AdaptCell& c = cells[i];
    std::fprintf(out,
                 "    {\"message\": %lld, \"winner\": \"%s\", \"seg\": %lld, "
                 "\"default_us\": %.3f, \"best_static_us\": %.3f, "
                 "\"adaptive_us\": %.3f}%s\n",
                 static_cast<long long>(c.message), c.winner.algo.c_str(),
                 static_cast<long long>(c.winner.seg), c.default_us,
                 c.best_static_us, c.adaptive_us,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-json") == 0) {
      const std::string path = i + 1 < argc ? argv[i + 1] : "BENCH_adapt.json";
      return emit_json(path);
    }
  }

  bench::print_header(
      "Extension: adaptive collective engine (tree/segment autotuner)",
      "coll/adapt-style racing over the Fig-8 bcast testbed");

  const auto cells = run_cells(std::make_shared<coll::Tuner>());
  Table t({"size", "default_us", "best_static_us", "adaptive_us", "winner",
           "seg", "speedup"});
  for (const AdaptCell& c : cells) {
    t.add_row({format_bytes(c.message), Table::num(c.default_us, 1),
               Table::num(c.best_static_us, 1), Table::num(c.adaptive_us, 1),
               c.winner.algo,
               c.winner.seg == 0 ? std::string("-")
                                 : format_bytes(c.winner.seg),
               Table::num(c.default_us / c.adaptive_us, 2)});
  }
  t.print(std::cout);
  std::cout << "\nadaptive == best static on every cell (deterministic\n"
               "simulations race deterministically); the default SMP bcast\n"
               "loses to pipelined trees as the payload grows.\n";
  return 0;
}

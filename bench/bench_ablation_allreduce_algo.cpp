// E17 (ablation) — allreduce algorithm selection: recursive doubling vs
// Rabenseifner (reduce-scatter + allgather) across message sizes on a flat
// 16-rank comm, plus the bytes each moves through the fabric.
//
// Classic result the library's thresholds rest on: recursive doubling moves
// M·log2(P) bytes per rank, Rabenseifner 2·M·(P−1)/P — the crossover puts
// Rabenseifner ahead for large vectors.
#include <iostream>
#include <stdexcept>
#include <vector>

#include "bench_support.hpp"
#include "coll/allreduce.hpp"
#include "coll/registry.hpp"

namespace {

using namespace pacc;

struct Outcome {
  Duration latency;
  std::uint64_t bytes_moved = 0;
};

Outcome run_algo(bool rabenseifner, Bytes size) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.ranks = 16;
  cfg.ranks_per_node = 4;
  Simulation sim(cfg);
  TimePoint done;
  auto body = [&, rabenseifner](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    std::vector<std::byte> send(static_cast<std::size_t>(size));
    std::vector<std::byte> recv(send.size());
    for (int i = 0; i < 3; ++i) {
      if (rabenseifner) {
        co_await coll::allreduce_rabenseifner(self, world, send, recv,
                                              coll::ReduceOp::kSum);
      } else {
        co_await coll::allreduce_recursive_doubling(self, world, send, recv,
                                                    coll::ReduceOp::kSum);
      }
    }
    if (self.id() == 0) done = self.engine().now();
  };
  sim.runtime().launch(body);
  if (!sim.engine().run_active().all_tasks_finished) {
    throw std::runtime_error("allreduce run did not drain");
  }
  Outcome o;
  o.latency = Duration::nanos(done.ns() / 3);
  o.bytes_moved = sim.network().bytes_delivered() / 3;
  return o;
}

}  // namespace

int main() {
  using namespace pacc;
  bench::print_header(
      "Allreduce algorithm ablation: recursive doubling vs Rabenseifner",
      "library threshold rationale (16 flat ranks)");

  const std::vector<Bytes> sizes = {Bytes{1024}, Bytes{16 * 1024},
                                    Bytes{128 * 1024}, Bytes{1 << 20}};
  // Two runs per size, recursive doubling first — same layout as the table.
  std::vector<Outcome> outcomes(sizes.size() * 2);
  bench::parallel_or_exit(outcomes.size(), [&](std::size_t i) {
    outcomes[i] = run_algo(/*rabenseifner=*/i % 2 == 1, sizes[i / 2]);
  });

  Table t({"size", "rec-doubling_us", "rabenseifner_us", "rd_bytes",
           "rab_bytes", "winner"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& rd = outcomes[2 * i];
    const auto& rab = outcomes[2 * i + 1];
    t.add_row({format_bytes(sizes[i]), Table::num(rd.latency.us(), 1),
               Table::num(rab.latency.us(), 1),
               std::to_string(rd.bytes_moved), std::to_string(rab.bytes_moved),
               rab.latency < rd.latency ? "rabenseifner" : "rec-doubling"});
  }
  t.print(std::cout);
  std::cout << "\nShape check: Rabenseifner moves ~2M(P-1)/P bytes per rank\n"
               "vs M·log2(P) for recursive doubling and should win at large\n"
               "sizes, which justifies the 64K dispatcher threshold.\n";
  return 0;
}

// E1 — Figure 2(a): MPI_Alltoall with 32 processes, 4-way (4 ranks/node ×
// 8 nodes) vs 8-way (8 ranks/node × 4 nodes), plus the theoretical estimate
// from equation (1). The 8-way configuration must be markedly slower at
// large messages due to HCA-link contention, even though the job size is
// identical.
#include <iostream>

#include "bench_support.hpp"
#include "model/perf_model.hpp"

int main() {
  using namespace pacc;
  bench::print_header("Alltoall scalability, 32 processes",
                      "Fig 2(a), Kandalla et al., ICPP 2010");

  const auto model = model::PerfModelParams::from(presets::paper_machine(8),
                                                  presets::paper_network());

  const Bytes sizes[] = {1024,   4096,   16384,
                         65536,  262144, 1048576};
  SweepSpec sweep;
  for (const Bytes message : sizes) {
    const auto spec = bench::collective_spec(coll::Op::kAlltoall, message);
    sweep.add(bench::paper_cluster(32, 4), spec);
    sweep.add(bench::paper_cluster(32, 8), spec);
  }
  const auto reports = bench::run_cells_or_exit(sweep);

  Table table({"size", "4way_us", "8way_us", "theory_4way_us", "8way/4way"});
  for (std::size_t i = 0; i < reports.size(); i += 2) {
    const Bytes message = sweep.cells[i].bench.message;
    const auto& four_way = reports[i];
    const auto& eight_way = reports[i + 1];
    const auto theory = model::alltoall_pairwise_time(model, 8, 4, message);
    table.add_row({format_bytes(message),
                   Table::num(four_way.latency.us(), 1),
                   Table::num(eight_way.latency.us(), 1),
                   Table::num(theory.us(), 1),
                   Table::num(eight_way.latency.us() /
                                  four_way.latency.us(),
                              2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: the paper reports ~54% degradation from the\n"
               "4-way to the 8-way placement at large messages.\n";
  return 0;
}

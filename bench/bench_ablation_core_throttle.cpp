// E12 — §V-B / §VI "future architectures" ablation: socket-granular
// throttling (Nehalem) vs core-granular throttling. With per-core T-states
// the leader core stays at T0 — lower overhead — while every non-leader
// core drops to T7 — more savings.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header(
      "Throttling granularity ablation: socket-level vs core-level",
      "§V-B / §VI 'future architectures', Kandalla et al., ICPP 2010");

  SweepSpec sweep;
  for (const coll::Op op :
       {coll::Op::kBcast, coll::Op::kReduce, coll::Op::kAllreduce,
        coll::Op::kAlltoall}) {
    for (const bool core_level : {false, true}) {
      ClusterConfig cfg = bench::paper_cluster(64, 8);
      cfg.core_level_throttling = core_level;
      sweep.add(cfg, bench::collective_spec(op, 1 << 20,
                                            coll::PowerScheme::kProposed));
    }
  }
  const auto reports = bench::run_cells_or_exit(sweep);

  Table table({"op", "granularity", "latency_us", "energy_per_op_J",
               "mean_power_kW"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SweepCell& cell = sweep.cells[i];
    const auto& r = reports[i];
    table.add_row({coll::to_string(cell.bench.op),
                   cell.cluster.core_level_throttling ? "core (future)"
                                                      : "socket (Nehalem)",
                   Table::num(r.latency.us(), 1),
                   Table::num(r.energy_per_op, 3),
                   Table::num(r.mean_power / 1000.0, 3)});
  }
  table.print(std::cout);
  std::cout
      << "\nShape check (paper §V-B): core-granular throttling should cut\n"
         "energy at least as much as socket-granular while shaving the\n"
         "leader-side overhead (leader core remains at T0).\n";
  return 0;
}

// E4 — Figure 6: polling vs blocking message progression with MPI_Alltoall
// at 64 processes. (a) latency for medium/large messages; (b) the 0.5 s
// clamp-meter power series while the benchmark loops at 1 MB.
//
// Expected shape: blocking is clearly slower (interrupt + reschedule per
// message and loss of the shared-memory channel) but draws less power,
// because waiting cores sleep instead of spinning (§VII-C).
#include <algorithm>
#include <iostream>

#include "bench_support.hpp"

namespace {

using namespace pacc;

ClusterConfig mode_cluster(mpi::ProgressMode mode) {
  ClusterConfig cfg = bench::paper_cluster(64, 8);
  cfg.progress = mode;
  return cfg;
}

CollectiveReport run_mode(mpi::ProgressMode mode,
                          const CollectiveBenchSpec& spec) {
  return bench::measure_or_exit(mode_cluster(mode), spec);
}

}  // namespace

int main() {
  using namespace pacc;
  bench::print_header("Polling vs Blocking, MPI_Alltoall, 64 processes",
                      "Fig 6(a,b), Kandalla et al., ICPP 2010");

  // --- (a) latency -----------------------------------------------------
  SweepSpec sweep;
  for (const Bytes message : bench::kLargeSweep) {
    const auto spec = bench::collective_spec(coll::Op::kAlltoall, message);
    sweep.add(mode_cluster(mpi::ProgressMode::kPolling), spec);
    sweep.add(mode_cluster(mpi::ProgressMode::kBlocking), spec);
  }
  const auto reports = bench::run_cells_or_exit(sweep);
  Table latency({"size", "polling_us", "blocking_us", "blocking/polling"});
  for (std::size_t i = 0; i < reports.size(); i += 2) {
    const auto& polling = reports[i];
    const auto& blocking = reports[i + 1];
    latency.add_row({format_bytes(sweep.cells[i].bench.message),
                     Table::num(polling.latency.us(), 1),
                     Table::num(blocking.latency.us(), 1),
                     Table::num(blocking.latency.us() / polling.latency.us(),
                                2)});
  }
  latency.print(std::cout);

  // --- (b) power series at 1 MB ----------------------------------------
  const Bytes big = 1 << 20;
  for (const auto mode :
       {mpi::ProgressMode::kPolling, mpi::ProgressMode::kBlocking}) {
    const auto probe = run_mode(
        mode, bench::collective_spec(coll::Op::kAlltoall, big,
                                     coll::PowerScheme::kNone, 2, 1));
    const int iters = std::max(
        4, static_cast<int>(10.0 / std::max(1e-3, probe.latency.sec())));
    const auto loop = run_mode(
        mode, bench::collective_spec(coll::Op::kAlltoall, big,
                                     coll::PowerScheme::kNone, iters, 1));
    bench::print_power_series(to_string(mode), loop.power);
    std::cout << to_string(mode)
              << ": mean power " << Table::num(loop.mean_power / 1000.0, 3)
              << " kW over " << iters << " iterations\n";
  }
  std::cout << "\nShape check: blocking saves power (cores sleep) but is\n"
               "much slower — the paper concludes it is not desirable.\n";
  return 0;
}

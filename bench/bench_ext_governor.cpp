// E16 (extension) — prior-work baseline: reactive "black-box" DVFS
// governor (§III, refs [5][6][9]) vs the paper's in-collective schemes.
//
// The governor watches the MPI library's own waits and downclocks after a
// threshold, restoring fmax on arrival — no knowledge of the algorithm, no
// T-states, and 2·O_dvfs per long wait. The paper argues that treating
// communication as a black box leaves savings on the table; this bench
// quantifies that claim on the simulated testbed.
#include <iostream>

#include "apps/cpmd.hpp"
#include "bench_support.hpp"

namespace {

using namespace pacc;

CollectiveReport alltoall_with(ClusterConfig cfg, coll::PowerScheme scheme,
                               Bytes message) {
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = message;
  spec.scheme = scheme;
  spec.iterations = 3;
  spec.warmup = 1;
  return measure_collective(cfg, spec);
}

}  // namespace

int main() {
  using namespace pacc;
  bench::print_header(
      "Extension: reactive black-box DVFS governor vs in-collective schemes",
      "§III related-work comparison, Kandalla et al., ICPP 2010");

  std::cout << "\nMPI_Alltoall, 64 ranks:\n";
  Table micro({"size", "variant", "latency_us", "energy_per_op_J"});
  for (const Bytes message : {Bytes{64 * 1024}, Bytes{1 << 20}}) {
    ClusterConfig plain = bench::paper_cluster(64, 8);
    const auto none = alltoall_with(plain, coll::PowerScheme::kNone, message);

    ClusterConfig governed = bench::paper_cluster(64, 8);
    governed.governor.enabled = true;
    const auto governor =
        alltoall_with(governed, coll::PowerScheme::kNone, message);

    const auto dvfs =
        alltoall_with(plain, coll::PowerScheme::kFreqScaling, message);
    const auto proposed =
        alltoall_with(plain, coll::PowerScheme::kProposed, message);

    micro.add_row({format_bytes(message), "default",
                   Table::num(none.latency.us(), 1),
                   Table::num(none.energy_per_op, 2)});
    micro.add_row({format_bytes(message), "black-box governor",
                   Table::num(governor.latency.us(), 1),
                   Table::num(governor.energy_per_op, 2)});
    micro.add_row({format_bytes(message), "per-call DVFS",
                   Table::num(dvfs.latency.us(), 1),
                   Table::num(dvfs.energy_per_op, 2)});
    micro.add_row({format_bytes(message), "proposed (§V-A)",
                   Table::num(proposed.latency.us(), 1),
                   Table::num(proposed.energy_per_op, 2)});
  }
  micro.print(std::cout);

  std::cout << "\nCPMD wat-32-inp-1, 64 processes:\n";
  Table app({"variant", "total_s", "energy_KJ"});
  {
    const auto spec = apps::cpmd_workload("wat-32-inp-1", 64);
    ClusterConfig cfg = bench::paper_cluster(64, 8);
    const auto none = apps::run_workload(cfg, spec, coll::PowerScheme::kNone);

    ClusterConfig governed = bench::paper_cluster(64, 8);
    governed.governor.enabled = true;
    const auto governor =
        apps::run_workload(governed, spec, coll::PowerScheme::kNone);

    const auto dvfs =
        apps::run_workload(cfg, spec, coll::PowerScheme::kFreqScaling);
    const auto proposed =
        apps::run_workload(cfg, spec, coll::PowerScheme::kProposed);

    app.add_row({"default", Table::num(none.total_time.sec(), 2),
                 Table::num(none.energy / 1000.0, 2)});
    app.add_row({"black-box governor", Table::num(governor.total_time.sec(), 2),
                 Table::num(governor.energy / 1000.0, 2)});
    app.add_row({"per-call DVFS", Table::num(dvfs.total_time.sec(), 2),
                 Table::num(dvfs.energy / 1000.0, 2)});
    app.add_row({"proposed (§V)", Table::num(proposed.total_time.sec(), 2),
                 Table::num(proposed.energy / 1000.0, 2)});
  }
  app.print(std::cout);

  std::cout << "\nShape check: the governor only downclocks the ranks that\n"
               "wait past its threshold and pays O_dvfs per long wait, so it\n"
               "saves less than per-call DVFS, which in turn saves less than\n"
               "the proposed throttled schedules — the paper's §III point\n"
               "about treating collectives as a black box.\n";
  return 0;
}

// E16 (extension) — prior-work baseline: reactive "black-box" DVFS
// governor (§III, refs [5][6][9]) vs the paper's in-collective schemes.
//
// The governor watches the MPI library's own waits and downclocks after a
// threshold, restoring fmax on arrival — no knowledge of the algorithm, no
// T-states, and 2·O_dvfs per long wait. The paper argues that treating
// communication as a black box leaves savings on the table; this bench
// quantifies that claim on the simulated testbed.
#include <iostream>
#include <vector>

#include "apps/cpmd.hpp"
#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header(
      "Extension: reactive black-box DVFS governor vs in-collective schemes",
      "§III related-work comparison, Kandalla et al., ICPP 2010");

  const ClusterConfig plain = bench::paper_cluster(64, 8);
  ClusterConfig governed = bench::paper_cluster(64, 8);
  governed.governor.enabled = true;

  // The four variants, in table order: default, black-box governor,
  // per-call DVFS, proposed.
  struct Variant {
    const char* micro_label;
    const char* app_label;
    const ClusterConfig* cluster;
    coll::PowerScheme scheme;
  };
  const std::vector<Variant> variants = {
      {"default", "default", &plain, coll::PowerScheme::kNone},
      {"black-box governor", "black-box governor", &governed,
       coll::PowerScheme::kNone},
      {"per-call DVFS", "per-call DVFS", &plain,
       coll::PowerScheme::kFreqScaling},
      {"proposed (§V-A)", "proposed (§V)", &plain,
       coll::PowerScheme::kProposed},
  };

  std::cout << "\nMPI_Alltoall, 64 ranks:\n";
  SweepSpec sweep;
  for (const Bytes message : {Bytes{64 * 1024}, Bytes{1 << 20}}) {
    for (const auto& v : variants) {
      sweep.add(*v.cluster,
                bench::collective_spec(coll::Op::kAlltoall, message, v.scheme));
    }
  }
  const auto reports = bench::run_cells_or_exit(sweep);

  Table micro({"size", "variant", "latency_us", "energy_per_op_J"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    micro.add_row({format_bytes(sweep.cells[i].bench.message),
                   variants[i % variants.size()].micro_label,
                   Table::num(reports[i].latency.us(), 1),
                   Table::num(reports[i].energy_per_op, 2)});
  }
  micro.print(std::cout);

  std::cout << "\nCPMD wat-32-inp-1, 64 processes:\n";
  const auto spec = apps::cpmd_workload("wat-32-inp-1", 64);
  std::vector<apps::AppReport> app_reports(variants.size());
  bench::parallel_or_exit(variants.size(), [&](std::size_t i) {
    app_reports[i] =
        bench::run_workload_or_exit(*variants[i].cluster, spec,
                                    variants[i].scheme);
  });

  Table app({"variant", "total_s", "energy_KJ"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    app.add_row({variants[i].app_label,
                 Table::num(app_reports[i].total_time.sec(), 2),
                 Table::num(app_reports[i].energy / 1000.0, 2)});
  }
  app.print(std::cout);

  std::cout << "\nShape check: the governor only downclocks the ranks that\n"
               "wait past its threshold and pays O_dvfs per long wait, so it\n"
               "saves less than per-call DVFS, which in turn saves less than\n"
               "the proposed throttled schedules — the paper's §III point\n"
               "about treating collectives as a black box.\n";
  return 0;
}

// E16 (extension) — prior-work baseline: reactive "black-box" DVFS
// governor (§III, refs [5][6][9]) vs the paper's in-collective schemes.
//
// The governor watches the MPI library's own waits and downclocks after a
// threshold, restoring fmax on arrival — no knowledge of the algorithm, no
// T-states, and 2·O_dvfs per long wait. The paper argues that treating
// communication as a black box leaves savings on the table; this bench
// quantifies that claim on the simulated testbed.
//
// Two governor families extend the comparison (docs/GOVERNORS.md):
//  * slack — COUNTDOWN-style deferred-timer DVFS at every wait site, which
//    should match or beat the reactive savings at near-zero runtime cost;
//  * powercap — a Medhat-style per-node RAPL budget, where redistributing
//    waiting ranks' headroom speeds up the capped critical path.
//
// `--emit-json [PATH]` writes the machine-readable cells that
// scripts/check_bench_regression.py gates in CI (BENCH_governor.json is
// the committed baseline). The default text tables are byte-identical to
// the pre-governor-refactor output.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "apps/cpmd.hpp"
#include "bench_support.hpp"

namespace {

using namespace pacc;

// ------------------------------------------------------------- JSON mode ---

/// One measured (latency, energy) cell of the equal-runtime comparison.
struct GovernorCell {
  const char* name;
  CollectiveReport report;
};

/// The slack timer for the 1 MiB rendezvous regime. The 500 µs default
/// parks ~12% of the pairwise-exchange waits, and those restores' O_dvfs
/// stalls cascade across rounds into a 2.7% slowdown; at 1 ms only the
/// multi-ms waits park, keeping ~16% energy savings at +0.35% runtime.
constexpr Duration kBenchSlackTimer = Duration::millis(1);

/// Governor-vs-static energy at equal runtime: the Fig-7 testbed (64 ranks,
/// 8 × 8) running 1 MiB Alltoalls with no §V scheme, so every joule saved
/// comes from the governor alone.
std::vector<GovernorCell> equal_runtime_cells(Bytes message) {
  ClusterConfig plain = bench::paper_cluster(64, 8);
  ClusterConfig reactive = bench::paper_cluster(64, 8);
  reactive.governor.enabled = true;
  ClusterConfig slack = bench::paper_cluster(64, 8);
  slack.governor.enabled = true;
  slack.governor.kind = mpi::GovernorKind::kSlack;
  slack.governor.slack_threshold = kBenchSlackTimer;

  SweepSpec sweep;
  const auto spec = bench::collective_spec(coll::Op::kAlltoall, message,
                                           coll::PowerScheme::kNone);
  sweep.add(plain, spec, "static");
  sweep.add(reactive, spec, "reactive");
  sweep.add(slack, spec, "slack");
  const auto reports = bench::run_cells_or_exit(sweep);
  return {{"static", reports[0]},
          {"reactive", reports[1]},
          {"slack", reports[2]}};
}

/// Speedup under a cluster power cap: one leader rank per node carries a
/// 5 ms critical path while its seven node-mates wait — the Medhat
/// imbalanced-BSP shape. With redistribution the waiters park at fmin and
/// the leader wins their headroom back; under the uniform cap it crawls at
/// the all-busy frequency. Returns simulated elapsed time.
Duration capped_step_elapsed(double cap_watts, bool redistribute) {
  ClusterConfig cfg = bench::paper_cluster(64, 8);
  cfg.governor.enabled = true;
  cfg.governor.kind = mpi::GovernorKind::kPowerCap;
  cfg.governor.node_power_cap = cap_watts;
  cfg.governor.redistribute = redistribute;
  Simulation sim(cfg);
  auto body = [](mpi::Rank& self) -> sim::Task<> {
    std::array<std::byte, 256> buf{};
    const int leader = (self.id() / 8) * 8;
    if (self.id() == leader) {
      // One event round so the waiters reach their governed recvs before
      // compute() samples the core's slowdown.
      co_await self.engine().delay(Duration::micros(10));
      co_await self.compute(Duration::millis(5));
      for (int peer = leader + 1; peer < leader + 8; ++peer) {
        co_await self.send(peer, 1, buf);
      }
    } else {
      co_await self.recv(leader, 1, buf);
    }
  };
  const RunReport report = sim.run(body);
  if (!report.status.ok()) {
    std::cerr << "capped step failed: " << report.status.describe() << "\n";
    std::exit(1);
  }
  return report.elapsed;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int emit_json(const std::string& path) {
  // Wall-clock figures ride along so the CI gate can hold each governor
  // sweep to an absolute budget, like the fattree4096_1mib cell.
  const Bytes message = 1 << 20;
  const double equal_start = now_seconds();
  const auto cells = equal_runtime_cells(message);
  const double equal_wall = now_seconds() - equal_start;

  // Per-node caps between the 192 W static draw and the unconstrained
  // 288 W all-busy fmax draw, so every cap binds.
  struct CapRow {
    double cap;
    Duration uniform;
    Duration shifted;
  };
  std::vector<CapRow> caps;
  const double caps_start = now_seconds();
  for (const double cap : {280.0, 260.0, 240.0}) {
    caps.push_back(CapRow{cap, capped_step_elapsed(cap, false),
                          capped_step_elapsed(cap, true)});
  }
  const double caps_wall = now_seconds() - caps_start;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"pacc-bench-governor-v1\",\n");
  std::fprintf(out,
               "  \"equal_runtime\": {\n    \"op\": \"alltoall\", "
               "\"ranks\": 64, \"message\": %lld, \"slack_timer_us\": %.0f, "
               "\"wall_seconds\": %.3f,\n",
               static_cast<long long>(message), kBenchSlackTimer.us(),
               equal_wall);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    std::fprintf(out,
                 "    \"%s\": {\"latency_us\": %.3f, "
                 "\"energy_per_op_j\": %.6f, \"gov_downclocks\": %llu, "
                 "\"gov_restores\": %llu}%s\n",
                 c.name, c.report.latency.us(), c.report.energy_per_op,
                 static_cast<unsigned long long>(
                     c.report.governor.downclocks),
                 static_cast<unsigned long long>(c.report.governor.restores),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"powercap_step\": {\n    \"wall_seconds\": %.3f,\n",
               caps_wall);
  std::fprintf(out, "    \"caps\": [\n");
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const CapRow& r = caps[i];
    std::fprintf(out,
                 "      {\"cap_watts\": %.0f, \"uniform_ms\": %.3f, "
                 "\"redistributed_ms\": %.3f, \"speedup\": %.4f}%s\n",
                 r.cap, r.uniform.ms(), r.shifted.ms(),
                 r.uniform.sec() / r.shifted.sec(),
                 i + 1 < caps.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pacc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_governor.json";
      return emit_json(path);
    }
  }
  bench::print_header(
      "Extension: reactive black-box DVFS governor vs in-collective schemes",
      "§III related-work comparison, Kandalla et al., ICPP 2010");

  const ClusterConfig plain = bench::paper_cluster(64, 8);
  ClusterConfig governed = bench::paper_cluster(64, 8);
  governed.governor.enabled = true;

  // The four variants, in table order: default, black-box governor,
  // per-call DVFS, proposed.
  struct Variant {
    const char* micro_label;
    const char* app_label;
    const ClusterConfig* cluster;
    coll::PowerScheme scheme;
  };
  const std::vector<Variant> variants = {
      {"default", "default", &plain, coll::PowerScheme::kNone},
      {"black-box governor", "black-box governor", &governed,
       coll::PowerScheme::kNone},
      {"per-call DVFS", "per-call DVFS", &plain,
       coll::PowerScheme::kFreqScaling},
      {"proposed (§V-A)", "proposed (§V)", &plain,
       coll::PowerScheme::kProposed},
  };

  std::cout << "\nMPI_Alltoall, 64 ranks:\n";
  SweepSpec sweep;
  for (const Bytes message : {Bytes{64 * 1024}, Bytes{1 << 20}}) {
    for (const auto& v : variants) {
      sweep.add(*v.cluster,
                bench::collective_spec(coll::Op::kAlltoall, message, v.scheme));
    }
  }
  const auto reports = bench::run_cells_or_exit(sweep);

  Table micro({"size", "variant", "latency_us", "energy_per_op_J"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    micro.add_row({format_bytes(sweep.cells[i].bench.message),
                   variants[i % variants.size()].micro_label,
                   Table::num(reports[i].latency.us(), 1),
                   Table::num(reports[i].energy_per_op, 2)});
  }
  micro.print(std::cout);

  std::cout << "\nCPMD wat-32-inp-1, 64 processes:\n";
  const auto spec = apps::cpmd_workload("wat-32-inp-1", 64);
  std::vector<apps::AppReport> app_reports(variants.size());
  bench::parallel_or_exit(variants.size(), [&](std::size_t i) {
    app_reports[i] =
        bench::run_workload_or_exit(*variants[i].cluster, spec,
                                    variants[i].scheme);
  });

  Table app({"variant", "total_s", "energy_KJ"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    app.add_row({variants[i].app_label,
                 Table::num(app_reports[i].total_time.sec(), 2),
                 Table::num(app_reports[i].energy / 1000.0, 2)});
  }
  app.print(std::cout);

  std::cout << "\nShape check: the governor only downclocks the ranks that\n"
               "wait past its threshold and pays O_dvfs per long wait, so it\n"
               "saves less than per-call DVFS, which in turn saves less than\n"
               "the proposed throttled schedules — the paper's §III point\n"
               "about treating collectives as a black box.\n";

  // ------------------------------------------------- governor families ----
  // Slack vs reactive at equal runtime, then the capped-cluster step —
  // the same cells --emit-json records for the CI gate.
  std::cout << "\nGovernor families, MPI_Alltoall 1 MiB, 64 ranks "
               "(no §V scheme, slack timer 1 ms):\n";
  const auto cells = equal_runtime_cells(1 << 20);
  Table fam({"governor", "latency_us", "energy_per_op_J", "vs_static"});
  const double static_energy = cells[0].report.energy_per_op;
  for (const auto& c : cells) {
    fam.add_row({c.name, Table::num(c.report.latency.us(), 1),
                 Table::num(c.report.energy_per_op, 2),
                 Table::num(c.report.energy_per_op / static_energy, 3)});
  }
  fam.print(std::cout);

  std::cout << "\nImbalanced step under a per-node power cap "
               "(5 ms leader, 7 waiters/node):\n";
  Table cap({"cap_W", "uniform_ms", "redistributed_ms", "speedup"});
  for (const double watts : {280.0, 260.0, 240.0}) {
    const Duration uniform = capped_step_elapsed(watts, false);
    const Duration shifted = capped_step_elapsed(watts, true);
    cap.add_row({Table::num(watts, 0), Table::num(uniform.ms(), 3),
                 Table::num(shifted.ms(), 3),
                 Table::num(uniform.sec() / shifted.sec(), 3)});
  }
  cap.print(std::cout);
  std::cout << "\nThe slack governor defers O_dvfs behind a deferred timer\n"
               "and covers every wait site (recv, rendezvous, barrier, ack),\n"
               "so it keeps the reactive savings without the short-wait tax;\n"
               "redistribution converts waiters' cap headroom into critical-\n"
               "path frequency, which a uniform cap cannot.\n";
  return 0;
}

// EXT — dragonfly fabrics at 16k ranks (beyond the paper).
//
// Dragonflies are the other production topology power-aware collectives
// meet: all-to-all-connected groups whose single-hop global links replace
// the fat tree's constricted core. This bench runs the §V proposed
// alltoall at 16384 ranks (2048 nodes × 8) on a 64-group dragonfly
// (8 routers × 4 nodes per group) — a scale that is only reachable
// because (a) the 64 groups are translation classes, so the
// rank-symmetry collapse simulates 256 representative ranks, and (b) the
// schedule tables are class-compressed templates instead of 16384
// materialized per-rank rows (docs/PERF.md §5).
//
// Two modes:
//   bench_ext_dragonfly                      human-readable table
//   bench_ext_dragonfly --emit-json [PATH]   machine-readable report
//                                            (default PATH: BENCH_dragonfly.json)
//
// scripts/check_bench_regression.py gates the JSON on an absolute wall
// budget and the 150 MB plan-memory ceiling for the compressed tables.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "bench_support.hpp"
#include "coll/plan.hpp"

namespace pacc::bench {
namespace {

constexpr int kNodes = 2048;
constexpr int kRanksPerNode = 8;
constexpr int kRanks = kNodes * kRanksPerNode;
/// 64 groups of 8 routers × 4 nodes → collapse multiplicity 64.
constexpr int kRoutersPerGroup = 8;
constexpr int kNodesPerRouter = 4;
constexpr int kGroups =
    kNodes / (kRoutersPerGroup * kNodesPerRouter);

/// Acceptance ceiling for the compressed plan tables (bytes). The
/// materialized 16384-row layout needs ~1.3 GB; the class-indexed
/// templates must stay two orders of magnitude under that.
constexpr std::size_t kPlanMemoryBudget = 150ull * 1024 * 1024;

ClusterConfig dragonfly_cluster() {
  ClusterConfig cfg = paper_cluster(kRanks, kRanksPerNode);
  cfg.dragonfly.routers_per_group = kRoutersPerGroup;
  cfg.dragonfly.nodes_per_router = kNodesPerRouter;
  return cfg;
}

struct CellResult {
  double wall_seconds = 0.0;
  std::size_t plan_bytes = 0;
  CollectiveReport report;
};

/// One collapsed 16384-rank proposed-alltoall cell at `message` bytes,
/// with the plan cache injected so the schedule-table footprint is
/// observable. Best-of-two wall: preemption only ever slows a run down.
CellResult run_cell(Bytes message) {
  CellResult result;
  for (int attempt = 0; attempt < 2; ++attempt) {
    ClusterConfig cfg = dragonfly_cluster();
    cfg.plan_cache = std::make_shared<coll::PlanCache>();
    const auto start = std::chrono::steady_clock::now();
    result.report = measure_or_exit(
        cfg, collective_spec(coll::Op::kAlltoall, message,
                             coll::PowerScheme::kProposed, 1, 0));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (attempt == 0 || wall < result.wall_seconds) {
      result.wall_seconds = wall;
    }
    result.plan_bytes = cfg.plan_cache->peak_bytes();
  }
  return result;
}

int emit_json(const std::string& path) {
  const CellResult cell = run_cell(1 << 20);
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"pacc-bench-dragonfly-v1\",\n");
  std::fprintf(out,
               "  \"cluster\": {\"ranks\": %d, \"nodes\": %d, \"ppn\": %d, "
               "\"groups\": %d, \"routers_per_group\": %d, "
               "\"nodes_per_router\": %d},\n",
               kRanks, kNodes, kRanksPerNode, kGroups, kRoutersPerGroup,
               kNodesPerRouter);
  std::fprintf(out,
               "  \"proposed_1mib\": {\"wall_seconds\": %.3f, "
               "\"latency_ms\": %.3f, \"energy_per_op_j\": %.3f,\n"
               "    \"plan_memory_bytes\": %llu, "
               "\"plan_memory_budget_bytes\": %llu,\n"
               "    \"collapse\": {\"multiplicity\": %d, \"classes\": %d, "
               "\"simulated_ranks\": %d, \"logical_ranks\": %d}},\n",
               cell.wall_seconds, cell.report.latency.ms(),
               cell.report.energy_per_op,
               static_cast<unsigned long long>(cell.plan_bytes),
               static_cast<unsigned long long>(kPlanMemoryBudget),
               cell.report.collapse.multiplicity, cell.report.collapse.classes,
               cell.report.collapse.simulated_ranks,
               cell.report.collapse.logical_ranks);
  // Deterministic simulated figures — drift means behaviour changed and
  // is the byte-identity suite's to judge, not a perf regression.
  std::fprintf(out, "  \"deterministic\": true\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int run() {
  print_header("EXT: 16384-rank alltoall on a 64-group dragonfly",
               "extension of §V at system scale; see docs/PERF.md §5");
  std::cout << "cluster: " << kRanks << " ranks = " << kNodes << " nodes × "
            << kRanksPerNode << " ppn, dragonfly " << kGroups << " groups × "
            << kRoutersPerGroup << " routers × " << kNodesPerRouter
            << " nodes (collapse multiplicity " << kGroups << ")\n\n";

  Table t({"size", "latency_ms", "energy_kJ", "collapse", "plan_MiB",
           "wall_s"});
  double gated_wall = -1.0;
  std::size_t gated_bytes = 0;
  for (const Bytes message : {Bytes{256 * 1024}, Bytes{1 << 20}}) {
    const CellResult cell = run_cell(message);
    if (message == 1 << 20) {
      gated_wall = cell.wall_seconds;
      gated_bytes = cell.plan_bytes;
    }
    t.add_row({format_bytes(message), Table::num(cell.report.latency.ms(), 1),
               Table::num(cell.report.energy_per_op / 1000.0, 2),
               std::to_string(cell.report.collapse.simulated_ranks) + "/" +
                   std::to_string(cell.report.collapse.logical_ranks),
               Table::num(static_cast<double>(cell.plan_bytes) /
                              (1024.0 * 1024.0),
                          1),
               Table::num(cell.wall_seconds, 2)});
  }
  t.print(std::cout);
  std::cout << "\ncollapse = simulated/logical ranks (multiplicity "
            << kGroups << ").\n"
            << "plan_MiB = peak schedule-table bytes (class-compressed; "
               "ceiling "
            << kPlanMemoryBudget / (1024 * 1024) << " MiB).\n"
            << "gate: proposed @ 1 MiB wall = " << Table::num(gated_wall, 2)
            << " s, plan memory = "
            << Table::num(static_cast<double>(gated_bytes) / (1024.0 * 1024.0),
                          1)
            << " MiB (see scripts/check_bench_regression.py)\n";
  return gated_wall >= 0.0 && gated_bytes <= kPlanMemoryBudget ? 0 : 1;
}

}  // namespace
}  // namespace pacc::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_dragonfly.json";
      return pacc::bench::emit_json(path);
    }
  }
  return pacc::bench::run();
}

// E14 — google-benchmark micro-benchmarks of the simulator substrate:
// event dispatch, coroutine switching, fluid-network rate recomputation and
// end-to-end collective simulation throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "pacc/simulation.hpp"

namespace {

using namespace pacc;

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      engine.schedule(Duration::nanos(i), [&sink] { ++sink; });
    }
    engine.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EngineEventDispatch);

sim::Task<> chain_task(sim::Engine& engine, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await engine.delay(Duration::nanos(1));
  }
}

void BM_CoroutineSwitching(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int t = 0; t < 16; ++t) {
      engine.spawn(chain_task(engine, 64));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_CoroutineSwitching);

sim::Task<> one_transfer(net::FlowNetwork& net, int src, int dst, Bytes n) {
  co_await net.transfer(src, dst, n);
}

void BM_FluidNetworkContention(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    net::FlowNetwork net(engine, hw::ClusterShape{8, 2, 4},
                         presets::paper_network());
    for (int f = 0; f < flows; ++f) {
      engine.spawn(one_transfer(net, f % 8, (f + 1) % 8, 64 * 1024));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidNetworkContention)->Arg(8)->Arg(32)->Arg(64);

void BM_Alltoall64Ranks(benchmark::State& state) {
  const auto scheme = static_cast<coll::PowerScheme>(state.range(0));
  for (auto _ : state) {
    ClusterConfig cfg;
    CollectiveBenchSpec spec;
    spec.op = coll::Op::kAlltoall;
    spec.message = 16 * 1024;
    spec.scheme = scheme;
    spec.iterations = 1;
    spec.warmup = 0;
    const auto report = measure_collective(cfg, spec);
    benchmark::DoNotOptimize(report.latency);
  }
}
BENCHMARK(BM_Alltoall64Ranks)
    ->Arg(static_cast<int>(coll::PowerScheme::kNone))
    ->Arg(static_cast<int>(coll::PowerScheme::kProposed))
    ->Unit(benchmark::kMillisecond);

void BM_SmpBcast64Ranks(benchmark::State& state) {
  for (auto _ : state) {
    ClusterConfig cfg;
    CollectiveBenchSpec spec;
    spec.op = coll::Op::kBcast;
    spec.message = 256 * 1024;
    spec.iterations = 1;
    spec.warmup = 0;
    const auto report = measure_collective(cfg, spec);
    benchmark::DoNotOptimize(report.latency);
  }
}
BENCHMARK(BM_SmpBcast64Ranks)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

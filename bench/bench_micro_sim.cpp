// E14 — micro-benchmarks of the simulator substrate: event dispatch,
// coroutine switching, fluid-network rate recomputation and end-to-end
// collective simulation throughput.
//
// Two modes:
//   bench_micro_sim                      google-benchmark suite
//   bench_micro_sim --emit-json [PATH]   machine-readable baseline
//                                        (default PATH: BENCH_micro.json)
//
// The JSON baseline records events/sec for the event core and
// recomputes/sec + ns/recompute for the incremental water-filling path at
// 16/64/256/1024 concurrent flows, plus the 64-rank 1 MiB Alltoall wall
// time, the collapsed 4096-rank fat-tree Alltoall wall time, the
// rank-symmetry collapse counters (classes, representative vs. logical
// flows), the steady-state fast-forward counters (batched completions,
// no-op recomputes), the collective plan cache's hit/miss counts and the
// plan-table memory (class-compressed vs materialized per-rank bytes).
// scripts/check_bench_regression.py gates CI on the event throughput and
// the two wall-clock figures against the committed copy.
// The committed BENCH_micro.json also carries the pre-optimization seed
// numbers measured on the same machine (see docs/PERF.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coll/plan.hpp"
#include "pacc/simulation.hpp"
#include "coll/registry.hpp"

namespace {

using namespace pacc;

// ------------------------------------------------------------ fixtures ----

sim::Task<> chain_task(sim::Engine& engine, int hops) {
  for (int i = 0; i < hops; ++i) {
    co_await engine.delay(Duration::nanos(1));
  }
}

sim::Task<> one_transfer(net::FlowNetwork& net, int src, int dst, Bytes n) {
  co_await net.transfer(src, dst, n);
}

/// One full event-core round: schedule 1024 events, drain them.
std::uint64_t dispatch_round() {
  sim::Engine engine;
  int sink = 0;
  for (int i = 0; i < 1024; ++i) {
    engine.schedule(Duration::nanos(i), [&sink] { ++sink; });
  }
  engine.run();
  benchmark::DoNotOptimize(sink);
  return engine.events_dispatched();
}

struct ChurnStats {
  std::uint64_t events = 0;
  std::uint64_t recomputes = 0;
  std::uint64_t reschedules = 0;
  std::uint64_t completion_batches = 0;
  std::uint64_t batched_completions = 0;
  std::uint64_t noop_recomputes = 0;
};

/// The contended-fabric scenario at `flows` concurrent flows: every flow
/// crosses a shared HCA uplink/downlink ring, so each arrival/departure
/// recomputes rates with ~`flows` active — the water-filling hot path.
ChurnStats flow_churn_round(int flows) {
  sim::Engine engine;
  net::FlowNetwork net(engine, hw::ClusterShape{8, 2, 4},
                       presets::paper_network());
  for (int f = 0; f < flows; ++f) {
    engine.spawn(one_transfer(net, f % 8, (f + 1) % 8, 64 * 1024));
  }
  engine.run();
  return ChurnStats{engine.events_dispatched(),      net.rate_recomputes(),
                    net.completion_reschedules(),    net.completion_batches(),
                    net.batched_completions(),       net.noop_recomputes()};
}

/// Steady-state fast-forward effectiveness on one 64-rank 64 KiB alltoall:
/// how many same-instant completions shared an event and how many
/// recompute passes were skipped outright. Counts are deterministic. (The
/// churn fixture above never batches — its flows complete one at a time —
/// so this reads the counters off a real collective instead.)
ChurnStats steady_state_round() {
  ClusterConfig cfg;
  cfg.synthetic_payloads = true;  // contents unread, as in measure_collective
  Simulation sim(cfg);
  mpi::Comm& world = sim.runtime().world();
  const Bytes msg = 64 * 1024;
  const auto total = static_cast<std::size_t>(world.size()) *
                     static_cast<std::size_t>(msg);
  std::vector<std::byte> send(total), recv(total);
  const auto report = sim.run([&](mpi::Rank& r) -> sim::Task<> {
    co_await coll::alltoall(r, world, send, recv, msg, coll::AlltoallOptions{});
  });
  benchmark::DoNotOptimize(report.elapsed);
  const net::FlowNetwork& net = sim.network();
  return ChurnStats{0,
                    net.rate_recomputes(),
                    net.completion_reschedules(),
                    net.completion_batches(),
                    net.batched_completions(),
                    net.noop_recomputes()};
}

/// Plan-cache behaviour on an iterated measurement: the first iteration
/// builds each schedule, every later one hits. Counts are deterministic.
std::pair<std::uint64_t, std::uint64_t> plan_cache_counters() {
  ClusterConfig cfg;
  cfg.plan_cache = std::make_shared<coll::PlanCache>();
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 16 * 1024;
  spec.scheme = coll::PowerScheme::kNone;
  spec.iterations = 4;
  spec.warmup = 1;
  const auto report = measure_collective(cfg, spec);
  benchmark::DoNotOptimize(report.latency);
  return {cfg.plan_cache->hits(), cfg.plan_cache->misses()};
}

/// Plan-table memory on the collapsed 4096-rank fat-tree proposed cell:
/// peak plan-cache bytes with class-compressed templates vs the
/// materialized per-rank tables they replace. Deterministic byte counts,
/// not timings.
std::pair<std::size_t, std::size_t> plan_memory_bytes() {
  const auto run = [](bool materialized) {
    ClusterConfig cfg;
    cfg.nodes = 512;
    cfg.ranks = 4096;
    cfg.ranks_per_node = 8;
    cfg.fabric = {{32, 2.0}};
    cfg.materialized_plans = materialized;
    cfg.plan_cache = std::make_shared<coll::PlanCache>();
    CollectiveBenchSpec spec;
    spec.op = coll::Op::kAlltoall;
    spec.message = 1_MiB;
    spec.scheme = coll::PowerScheme::kProposed;
    spec.iterations = 1;
    spec.warmup = 0;
    const auto report = measure_collective(cfg, spec);
    benchmark::DoNotOptimize(report.latency);
    return cfg.plan_cache->peak_bytes();
  };
  return {run(false), run(true)};
}

double alltoall64_seconds(Bytes message) {
  ClusterConfig cfg;
  // Force the full 1:1 simulation: this figure has tracked the 64-rank
  // end-to-end cost since the seed, and letting the rank-symmetry collapse
  // shrink it to 8 simulated ranks would turn it into noise (~6 ms).
  // The collapsed regime is gated by fattree4096_1mib below.
  cfg.collapse_multiplicity = 1;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = message;
  spec.scheme = coll::PowerScheme::kNone;
  spec.iterations = 1;
  spec.warmup = 0;
  const auto start = std::chrono::steady_clock::now();
  const auto report = measure_collective(cfg, spec);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(report.latency);
  return std::chrono::duration<double>(stop - start).count();
}

/// The collapsed sweep-scale cell bench_ext_fattree gates on: 4096 ranks
/// (512 nodes × 8) on a 2:1-oversubscribed fat tree, proposed scheme,
/// 1 MiB blocks. Collapse multiplicity 16 → 256 simulated ranks. Best of
/// two runs — preemption on a shared box only ever slows a run down.
/// Returns {wall_seconds, collapse stats} so the JSON can record both.
std::pair<double, CollapseStats> fattree4096_run() {
  ClusterConfig cfg;
  cfg.nodes = 512;
  cfg.ranks = 4096;
  cfg.ranks_per_node = 8;
  cfg.fabric = {{32, 2.0}};
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 1_MiB;
  spec.scheme = coll::PowerScheme::kProposed;
  spec.iterations = 1;
  spec.warmup = 0;
  double best = 0.0;
  CollapseStats collapse;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    const auto report = measure_collective(cfg, spec);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(report.latency);
    const double secs = std::chrono::duration<double>(stop - start).count();
    if (attempt == 0 || secs < best) best = secs;
    collapse = report.collapse;
  }
  return {best, collapse};
}

// ----------------------------------------------------- google-benchmark ----

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    dispatch_round();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_CoroutineSwitching(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int t = 0; t < 16; ++t) {
      engine.spawn(chain_task(engine, 64));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_CoroutineSwitching);

void BM_FluidNetworkContention(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    net::FlowNetwork net(engine, hw::ClusterShape{8, 2, 4},
                         presets::paper_network());
    for (int f = 0; f < flows; ++f) {
      engine.spawn(one_transfer(net, f % 8, (f + 1) % 8, 64 * 1024));
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidNetworkContention)->Arg(8)->Arg(32)->Arg(64);

void BM_RateRecompute(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  std::uint64_t recomputes = 0;
  for (auto _ : state) {
    recomputes += flow_churn_round(flows).recomputes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(recomputes));
}
BENCHMARK(BM_RateRecompute)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_Alltoall64Ranks(benchmark::State& state) {
  const auto scheme = static_cast<coll::PowerScheme>(state.range(0));
  for (auto _ : state) {
    ClusterConfig cfg;
    CollectiveBenchSpec spec;
    spec.op = coll::Op::kAlltoall;
    spec.message = 16 * 1024;
    spec.scheme = scheme;
    spec.iterations = 1;
    spec.warmup = 0;
    const auto report = measure_collective(cfg, spec);
    benchmark::DoNotOptimize(report.latency);
  }
}
BENCHMARK(BM_Alltoall64Ranks)
    ->Arg(static_cast<int>(coll::PowerScheme::kNone))
    ->Arg(static_cast<int>(coll::PowerScheme::kProposed))
    ->Unit(benchmark::kMillisecond);

void BM_SmpBcast64Ranks(benchmark::State& state) {
  for (auto _ : state) {
    ClusterConfig cfg;
    CollectiveBenchSpec spec;
    spec.op = coll::Op::kBcast;
    spec.message = 256 * 1024;
    spec.iterations = 1;
    spec.warmup = 0;
    const auto report = measure_collective(cfg, spec);
    benchmark::DoNotOptimize(report.latency);
  }
}
BENCHMARK(BM_SmpBcast64Ranks)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------- JSON baseline ----

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Repeats `round` until `min_seconds` of wall time accrues; returns
/// {total_seconds, rounds}.
template <typename Fn>
std::pair<double, int> run_for(double min_seconds, Fn&& round) {
  const double start = now_seconds();
  int rounds = 0;
  double elapsed = 0.0;
  do {
    round();
    ++rounds;
    elapsed = now_seconds() - start;
  } while (elapsed < min_seconds);
  return {elapsed, rounds};
}

int emit_json(const std::string& path) {
  // Event core: schedule+dispatch throughput. Best-of-round, not the
  // average: scheduler preemption on a shared CI box only ever slows a
  // round down, so the fastest round is the least-noisy estimate.
  double events_per_sec = 0.0;
  run_for(0.5, [&events_per_sec] {
    const double start = now_seconds();
    dispatch_round();
    const double secs = now_seconds() - start;
    if (secs > 0.0) {
      events_per_sec = std::max(events_per_sec, 1024.0 / secs);
    }
  });

  // Incremental water-filling at 16/64/256/1024 concurrent flows.
  struct Row {
    int flows;
    double recomputes_per_sec;
    double ns_per_recompute;
    double events_per_sec;
    double reschedules_per_recompute;
  };
  std::vector<Row> rows;
  for (const int flows : {16, 64, 256, 1024}) {
    ChurnStats total;
    const auto [secs, rounds] = run_for(0.5, [&] {
      const ChurnStats s = flow_churn_round(flows);
      total.events += s.events;
      total.recomputes += s.recomputes;
      total.reschedules += s.reschedules;
    });
    (void)rounds;
    const double rps = static_cast<double>(total.recomputes) / secs;
    rows.push_back(Row{flows, rps, 1e9 / rps,
                       static_cast<double>(total.events) / secs,
                       static_cast<double>(total.reschedules) /
                           static_cast<double>(total.recomputes)});
  }

  // End-to-end: 64-rank 1 MiB pairwise Alltoall (the Fig 2(a)/7 regime).
  const double alltoall_secs = alltoall64_seconds(1_MiB);

  // Sweep scale: the collapsed 4096-rank fat-tree cell (gated < 10 s).
  const auto [fattree_secs, fattree_collapse] = fattree4096_run();

  // Steady-state fast-forward effectiveness (counts, not timings —
  // deterministic on any machine).
  const ChurnStats steady = steady_state_round();

  // Plan cache hit/miss on an iterated measurement.
  const auto [plan_hits, plan_misses] = plan_cache_counters();

  // Plan-table memory: class-compressed vs materialized per-rank tables.
  const auto [compressed_bytes, materialized_bytes] = plan_memory_bytes();

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"pacc-bench-micro-v1\",\n");
  std::fprintf(out, "  \"event_dispatch\": {\"events_per_sec\": %.0f},\n",
               events_per_sec);
  std::fprintf(out, "  \"rate_recompute\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"flows\": %d, \"recomputes_per_sec\": %.0f, "
                 "\"ns_per_recompute\": %.1f, \"events_per_sec\": %.0f, "
                 "\"reschedules_per_recompute\": %.2f}%s\n",
                 r.flows, r.recomputes_per_sec, r.ns_per_recompute,
                 r.events_per_sec, r.reschedules_per_recompute,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"alltoall64_1mib\": {\"wall_seconds\": %.3f},\n",
               alltoall_secs);
  std::fprintf(out, "  \"fattree4096_1mib\": {\"wall_seconds\": %.3f},\n",
               fattree_secs);
  // Counts, not timings — deterministic on any machine. representative /
  // logical flows quantify the collapse's work reduction: 16 logical flows
  // per simulated flow on this shape.
  std::fprintf(out,
               "  \"symmetry_collapse\": {\"multiplicity\": %d, "
               "\"classes\": %d, \"representative_flows\": %llu, "
               "\"logical_flows\": %llu},\n",
               fattree_collapse.multiplicity, fattree_collapse.classes,
               static_cast<unsigned long long>(
                   fattree_collapse.representative_flows),
               static_cast<unsigned long long>(
                   fattree_collapse.logical_flows()));
  std::fprintf(out,
               "  \"steady_state\": {\"completion_batches\": %llu, "
               "\"batched_completions\": %llu, \"noop_recomputes\": %llu},\n",
               static_cast<unsigned long long>(steady.completion_batches),
               static_cast<unsigned long long>(steady.batched_completions),
               static_cast<unsigned long long>(steady.noop_recomputes));
  std::fprintf(out,
               "  \"plan_cache\": {\"hits\": %llu, \"misses\": %llu},\n",
               static_cast<unsigned long long>(plan_hits),
               static_cast<unsigned long long>(plan_misses));
  // Deterministic byte counts for the 4096-rank proposed cell's schedule
  // tables: one class-indexed template set vs 4096 materialized rows.
  std::fprintf(out,
               "  \"plan_memory\": {\"compressed_bytes\": %llu, "
               "\"materialized_bytes\": %llu, \"compression_ratio\": %.1f},\n",
               static_cast<unsigned long long>(compressed_bytes),
               static_cast<unsigned long long>(materialized_bytes),
               compressed_bytes > 0
                   ? static_cast<double>(materialized_bytes) /
                         static_cast<double>(compressed_bytes)
                   : 0.0);
  // Pre-optimization numbers, measured once from the seed tree (b434d80)
  // with the same fixtures, flags and machine as the live numbers above.
  // The seed recomputed rates exactly twice per flow per churn round (once
  // at start_flow, once at completion), so its recompute count needs no
  // instrumentation; it also rescheduled every active flow's completion on
  // every recompute, which is why no reschedules_per_recompute is recorded.
  std::fprintf(out,
               "  \"seed_baseline\": {\n"
               "    \"revision\": \"b434d80\",\n"
               "    \"event_dispatch\": {\"events_per_sec\": 12497235},\n"
               "    \"rate_recompute\": [\n"
               "      {\"flows\": 16, \"recomputes_per_sec\": 828487, "
               "\"ns_per_recompute\": 1207.0, \"events_per_sec\": 1242730},\n"
               "      {\"flows\": 64, \"recomputes_per_sec\": 183201, "
               "\"ns_per_recompute\": 5458.5, \"events_per_sec\": 274802},\n"
               "      {\"flows\": 256, \"recomputes_per_sec\": 40929, "
               "\"ns_per_recompute\": 24432.4, \"events_per_sec\": 61394}\n"
               "    ],\n"
               "    \"alltoall64_1mib\": {\"wall_seconds\": 8.443}\n"
               "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--emit-json") == 0) {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_micro.json";
      return emit_json(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// E7/E8 — Figure 9 and Table I: the CPMD application with the three
// datasets (wat-32-inp-1, wat-32-inp-2, ta-inp-md) at 32 and 64 processes,
// strong scaling, under the three power schemes. Reports overall execution
// time, the time spent in MPI_Alltoall, and total energy in kilojoules.
//
// Expected shape (paper): runtime roughly halves from 32 → 64 processes
// while the Alltoall time changes little; power schemes cost 2-5 % runtime;
// proposed ≤ freq-scaling ≤ default energy, up to ≈8 % savings
// (ta-inp-md, 64 processes).
#include <iostream>
#include <vector>

#include "apps/cpmd.hpp"
#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header("CPMD application: runtime, Alltoall time, energy",
                      "Fig 9(a-c) and Table I, Kandalla et al., ICPP 2010");

  // Fan the dataset × ranks × scheme grid over the worker pool, then build
  // the tables in order; kNone is first per group and supplies the baseline.
  struct Case {
    std::string_view dataset;
    int ranks;
    coll::PowerScheme scheme;
  };
  std::vector<Case> cases;
  for (const auto dataset : apps::kCpmdDatasets) {
    for (const int ranks : {32, 64}) {
      for (const auto scheme : coll::kAllSchemes) {
        cases.push_back({dataset, ranks, scheme});
      }
    }
  }
  std::vector<apps::AppReport> results(cases.size());
  bench::parallel_or_exit(cases.size(), [&](std::size_t i) {
    const auto& c = cases[i];
    results[i] = bench::run_workload_or_exit(
        bench::paper_cluster(c.ranks, c.ranks / 8),
        apps::cpmd_workload(c.dataset, c.ranks), c.scheme);
  });

  Table time_table({"dataset", "ranks", "scheme", "total_s", "alltoall_s",
                    "overhead"});
  Table energy_table({"dataset", "ranks", "scheme", "energy_KJ", "vs_default"});
  double base_time = 0.0;
  double base_energy = 0.0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto& report = results[i];
    if (c.scheme == coll::PowerScheme::kNone) {
      base_time = report.total_time.sec();
      base_energy = report.energy;
    }
    time_table.add_row(
        {std::string(c.dataset), std::to_string(c.ranks),
         coll::to_string(c.scheme), Table::num(report.total_time.sec(), 2),
         Table::num(report.alltoall_time.sec(), 2),
         Table::num(report.total_time.sec() / base_time, 3)});
    energy_table.add_row(
        {std::string(c.dataset), std::to_string(c.ranks),
         coll::to_string(c.scheme), Table::num(report.energy / 1000.0, 2),
         Table::num(report.energy / base_energy, 3)});
  }

  std::cout << "\nFig 9 — execution / Alltoall time:\n";
  time_table.print(std::cout);
  std::cout << "\nTable I — energy (KJ):\n";
  energy_table.print(std::cout);
  std::cout << "\nShape check (paper Table I): proposed < freq-scaling <\n"
               "default energy; ta-inp-md @64 saves ≈8 %; 32→64 processes\n"
               "halves runtime but barely moves the Alltoall time.\n";
  return 0;
}

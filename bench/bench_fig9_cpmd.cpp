// E7/E8 — Figure 9 and Table I: the CPMD application with the three
// datasets (wat-32-inp-1, wat-32-inp-2, ta-inp-md) at 32 and 64 processes,
// strong scaling, under the three power schemes. Reports overall execution
// time, the time spent in MPI_Alltoall, and total energy in kilojoules.
//
// Expected shape (paper): runtime roughly halves from 32 → 64 processes
// while the Alltoall time changes little; power schemes cost 2-5 % runtime;
// proposed ≤ freq-scaling ≤ default energy, up to ≈8 % savings
// (ta-inp-md, 64 processes).
#include <iostream>

#include "apps/cpmd.hpp"
#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header("CPMD application: runtime, Alltoall time, energy",
                      "Fig 9(a-c) and Table I, Kandalla et al., ICPP 2010");

  Table time_table({"dataset", "ranks", "scheme", "total_s", "alltoall_s",
                    "overhead"});
  Table energy_table({"dataset", "ranks", "scheme", "energy_KJ", "vs_default"});

  for (const auto dataset : apps::kCpmdDatasets) {
    for (const int ranks : {32, 64}) {
      const auto spec = apps::cpmd_workload(dataset, ranks);
      const ClusterConfig cfg = bench::paper_cluster(ranks, ranks / 8);
      double base_time = 0.0;
      double base_energy = 0.0;
      for (const auto scheme : coll::kAllSchemes) {
        const auto report = apps::run_workload(cfg, spec, scheme);
        if (!report.completed) {
          std::cerr << "run did not complete: " << dataset << "\n";
          return 1;
        }
        if (scheme == coll::PowerScheme::kNone) {
          base_time = report.total_time.sec();
          base_energy = report.energy;
        }
        time_table.add_row(
            {std::string(dataset), std::to_string(ranks),
             coll::to_string(scheme), Table::num(report.total_time.sec(), 2),
             Table::num(report.alltoall_time.sec(), 2),
             Table::num(report.total_time.sec() / base_time, 3)});
        energy_table.add_row(
            {std::string(dataset), std::to_string(ranks),
             coll::to_string(scheme), Table::num(report.energy / 1000.0, 2),
             Table::num(report.energy / base_energy, 3)});
      }
    }
  }

  std::cout << "\nFig 9 — execution / Alltoall time:\n";
  time_table.print(std::cout);
  std::cout << "\nTable I — energy (KJ):\n";
  energy_table.print(std::cout);
  std::cout << "\nShape check (paper Table I): proposed < freq-scaling <\n"
               "default energy; ta-inp-md @64 saves ≈8 %; 32→64 processes\n"
               "halves runtime but barely moves the Alltoall time.\n";
  return 0;
}

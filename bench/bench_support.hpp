// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>

#include "apps/workload.hpp"
#include "pacc/campaign.hpp"
#include "pacc/journal.hpp"
#include "pacc/simulation.hpp"
#include "util/table.hpp"

namespace pacc::bench {

/// The paper's full testbed: 8 Nehalem nodes, IB QDR.
inline ClusterConfig paper_cluster(int ranks, int ranks_per_node) {
  ClusterConfig cfg;
  cfg.nodes = ranks / ranks_per_node;
  cfg.ranks = ranks;
  cfg.ranks_per_node = ranks_per_node;
  return cfg;
}

/// OSU-benchmark message-size sweep (medium/large range used in the paper).
inline const Bytes kLargeSweep[] = {16 * 1024, 64 * 1024, 256 * 1024,
                                    1024 * 1024};

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "(reproduces " << paper << ")\n"
            << "==========================================================\n";
}

/// Prints the exact per-phase energy attribution of a traced run (see
/// docs/OBSERVABILITY.md): every joule lands in exactly one bucket, so the
/// rows sum to the run's total energy integral.
inline void print_energy_breakdown(
    const std::vector<obs::PhaseEnergy>& phases) {
  Joules total = 0.0;
  for (const auto& p : phases) total += p.joules;
  Table t({"phase", "joules", "time_ms", "calls", "share_pct"});
  for (const auto& p : phases) {
    t.add_row({p.name, Table::num(p.joules, 3), Table::num(p.time.ms(), 3),
               std::to_string(p.calls),
               Table::num(total > 0 ? 100.0 * p.joules / total : 0.0, 1)});
  }
  t.print(std::cout);
  std::cout << "total: " << Table::num(total, 3) << " J (exact integral)\n";
}

/// Prints one power time-series in the style of the paper's meter plots.
inline void print_power_series(const std::string& label,
                               const PowerSeries& series) {
  std::cout << "\n" << label << " power samples (0.5 s meter):\n";
  Table t({"time_s", "power_kW"});
  for (const auto& s : series.samples()) {
    t.add_row({Table::num(s.time.sec(), 1), Table::num(s.watts / 1000.0, 3)});
  }
  t.print(std::cout);
}

/// Worker threads for bench sweeps: $PACC_BENCH_JOBS (0 = one per hardware
/// thread). Defaults to 1 — each cell stands up a full simulated cluster,
/// and the paper-testbed cells at 1 MB reach gigabytes of rank buffers, so
/// parallelism is opt-in. The tables are byte-identical for every value.
inline int bench_jobs() {
  if (const char* env = std::getenv("PACC_BENCH_JOBS")) {
    return std::atoi(env);
  }
  return 1;
}

/// The one-liner every bench used to hand-roll.
inline CollectiveBenchSpec collective_spec(
    coll::Op op, Bytes message,
    coll::PowerScheme scheme = coll::PowerScheme::kNone, int iterations = 3,
    int warmup = 1) {
  CollectiveBenchSpec spec;
  spec.op = op;
  spec.message = message;
  spec.scheme = scheme;
  spec.iterations = iterations;
  spec.warmup = warmup;
  return spec;
}

/// Write-ahead journal for bench sweeps: $PACC_BENCH_JOURNAL names a
/// pacc-journal-v1 file shared by every Campaign the bench runs, opened in
/// resume mode — a killed bench re-run with the same environment replays
/// finished cells and picks up where it died (docs/DURABILITY.md). Unset
/// (the default) keeps benches journal-free.
inline std::shared_ptr<CellJournal> bench_journal() {
  const char* env = std::getenv("PACC_BENCH_JOURNAL");
  if (env == nullptr || *env == '\0') return nullptr;
  // One shared instance: sequential sweeps of a bench overlap in cells
  // (probe runs, repeated schemes), and the journal dedups by content key.
  static std::shared_ptr<CellJournal> journal = [env] {
    std::string error;
    std::shared_ptr<CellJournal> j = CellJournal::open(env, &error);
    if (!j) {
      std::cerr << "bad PACC_BENCH_JOURNAL: " << error << "\n";
      std::exit(1);
    }
    return j;
  }();
  return journal;
}

/// Runs every cell of the sweep through a Campaign on bench_jobs() workers
/// and returns the reports in cell order. A figure bench has no meaningful
/// partial output, so any failed cell aborts with its structured status.
inline std::vector<CollectiveReport> run_cells_or_exit(const SweepSpec& sweep) {
  CampaignOptions opts;
  opts.jobs = bench_jobs();
  if (auto journal = bench_journal()) {
    opts.journal = std::move(journal);
    opts.resume = true;
  }
  const auto results = Campaign(sweep, opts).run();
  std::vector<CollectiveReport> reports;
  reports.reserve(results.size());
  for (const auto& r : results) {
    if (!r.status.ok()) {
      std::cerr << "cell "
                << (r.label.empty() ? std::to_string(r.index) : r.label)
                << " failed: " << r.status.describe() << "\n";
      std::exit(1);
    }
    reports.push_back(r.report);
  }
  return reports;
}

/// Single-cell convenience for sequential spots (probe-then-loop power
/// measurements) that still want the fail-fast behaviour.
inline CollectiveReport measure_or_exit(const ClusterConfig& cluster,
                                        const CollectiveBenchSpec& spec) {
  SweepSpec sweep;
  sweep.add(cluster, spec);
  return run_cells_or_exit(sweep).front();
}

/// run_workload with the same fail-fast contract as run_cells_or_exit.
inline apps::AppReport run_workload_or_exit(const ClusterConfig& cluster,
                                            const apps::WorkloadSpec& spec,
                                            coll::PowerScheme scheme) {
  const auto report = apps::run_workload(cluster, spec, scheme);
  if (!report.status.ok()) {
    std::cerr << "workload " << spec.name
              << " failed: " << report.status.describe() << "\n";
    std::exit(1);
  }
  return report;
}

/// Fans independent thunks over Campaign's work-stealing pool with
/// bench_jobs() workers, exiting on the first failure. The caller indexes
/// into its own results array, so output stays deterministic.
inline void parallel_or_exit(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  const auto statuses = Campaign::for_each(count, bench_jobs(), fn);
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (!statuses[i].ok()) {
      std::cerr << "run " << i << " failed: " << statuses[i].describe()
                << "\n";
      std::exit(1);
    }
  }
}

/// Fig 7/8 shared skeleton: per-size latency table across the three power
/// schemes, looping power series with mean/peak summary, and a traced
/// per-phase energy attribution of the proposed scheme at 1 MB. The two
/// figures differ only in the collective and the loop's target duration.
inline void scheme_latency_and_power_report(coll::Op op,
                                            const ClusterConfig& cluster,
                                            double loop_seconds) {
  // (a) latency sweep — all sizes × schemes fan out as one Campaign.
  SweepSpec sweep;
  for (const Bytes message : kLargeSweep) {
    for (const auto scheme : coll::kAllSchemes) {
      sweep.add(cluster, collective_spec(op, message, scheme));
    }
  }
  const auto reports = run_cells_or_exit(sweep);
  Table latency({"size", "no-power_us", "freq-scaling_us", "proposed_us",
                 "freq/none", "prop/none"});
  for (std::size_t i = 0; i < reports.size(); i += 3) {
    const auto& none = reports[i];
    const auto& dvfs = reports[i + 1];
    const auto& prop = reports[i + 2];
    latency.add_row(
        {format_bytes(sweep.cells[i].bench.message),
         Table::num(none.latency.us(), 1), Table::num(dvfs.latency.us(), 1),
         Table::num(prop.latency.us(), 1),
         Table::num(dvfs.latency.us() / none.latency.us(), 2),
         Table::num(prop.latency.us() / none.latency.us(), 2)});
  }
  latency.print(std::cout);

  // (b) power series at 1 MB: probe the latency, then loop long enough for
  // the 0.5 s meter to accumulate a band. Inherently sequential per scheme.
  const Bytes big = 1 << 20;
  Table power({"scheme", "mean_kW", "peak_kW"});
  for (const auto scheme : coll::kAllSchemes) {
    const auto probe =
        measure_or_exit(cluster, collective_spec(op, big, scheme, 2, 1));
    const int iters = std::max(
        4, static_cast<int>(loop_seconds /
                            std::max(1e-3, probe.latency.sec())));
    const auto loop =
        measure_or_exit(cluster, collective_spec(op, big, scheme, iters, 1));
    print_power_series(coll::to_string(scheme), loop.power);
    power.add_row({coll::to_string(scheme),
                   Table::num(loop.mean_power / 1000.0, 3),
                   Table::num(loop.power.peak_watts() / 1000.0, 3)});
  }
  std::cout << "\nSummary:\n";
  power.print(std::cout);

  // Exact per-phase energy attribution of the proposed scheme at 1 MB. A
  // separate traced run keeps the figures above byte-identical to the
  // untraced configuration.
  ClusterConfig traced = cluster;
  traced.obs.trace = true;
  const auto attributed = measure_or_exit(
      traced, collective_spec(op, big, coll::PowerScheme::kProposed));
  std::cout << "\nPer-phase energy, proposed scheme at 1 MB:\n";
  print_energy_breakdown(attributed.energy_phases);
}

}  // namespace pacc::bench

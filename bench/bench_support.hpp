// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <iostream>
#include <string>

#include "apps/workload.hpp"
#include "pacc/simulation.hpp"
#include "util/table.hpp"

namespace pacc::bench {

/// The paper's full testbed: 8 Nehalem nodes, IB QDR.
inline ClusterConfig paper_cluster(int ranks, int ranks_per_node) {
  ClusterConfig cfg;
  cfg.nodes = ranks / ranks_per_node;
  cfg.ranks = ranks;
  cfg.ranks_per_node = ranks_per_node;
  return cfg;
}

/// OSU-benchmark message-size sweep (medium/large range used in the paper).
inline const Bytes kLargeSweep[] = {16 * 1024, 64 * 1024, 256 * 1024,
                                    1024 * 1024};

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "(reproduces " << paper << ")\n"
            << "==========================================================\n";
}

/// Prints the exact per-phase energy attribution of a traced run (see
/// docs/OBSERVABILITY.md): every joule lands in exactly one bucket, so the
/// rows sum to the run's total energy integral.
inline void print_energy_breakdown(
    const std::vector<obs::PhaseEnergy>& phases) {
  Joules total = 0.0;
  for (const auto& p : phases) total += p.joules;
  Table t({"phase", "joules", "time_ms", "calls", "share_pct"});
  for (const auto& p : phases) {
    t.add_row({p.name, Table::num(p.joules, 3), Table::num(p.time.ms(), 3),
               std::to_string(p.calls),
               Table::num(total > 0 ? 100.0 * p.joules / total : 0.0, 1)});
  }
  t.print(std::cout);
  std::cout << "total: " << Table::num(total, 3) << " J (exact integral)\n";
}

/// Prints one power time-series in the style of the paper's meter plots.
inline void print_power_series(const std::string& label,
                               const PowerSeries& series) {
  std::cout << "\n" << label << " power samples (0.5 s meter):\n";
  Table t({"time_s", "power_kW"});
  for (const auto& s : series.samples()) {
    t.add_row({Table::num(s.time.sec(), 1), Table::num(s.watts / 1000.0, 3)});
  }
  t.print(std::cout);
}

}  // namespace pacc::bench

// E11 — §V-C ablation: the power-aware algorithms depend on the MVAPICH2
// "bunch" process-to-core mapping. This bench compares bunch vs scatter
// affinity for the proposed Alltoall and Bcast, including the 4-way case
// where bunch leaves socket B empty (the schedule falls back to per-call
// DVFS) while scatter keeps it applicable.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header("Affinity ablation: bunch vs scatter mapping",
                      "§V-C discussion, Kandalla et al., ICPP 2010");

  SweepSpec sweep;
  for (const coll::Op op : {coll::Op::kAlltoall, coll::Op::kBcast}) {
    for (const int ppn : {4, 8}) {
      const int ranks = 8 * ppn;
      for (const auto affinity :
           {hw::AffinityPolicy::kBunch, hw::AffinityPolicy::kScatter}) {
        for (const auto scheme :
             {coll::PowerScheme::kNone, coll::PowerScheme::kProposed}) {
          ClusterConfig cfg = bench::paper_cluster(ranks, ppn);
          cfg.affinity = affinity;
          sweep.add(cfg,
                    bench::collective_spec(op, 256 * 1024, scheme));
        }
      }
    }
  }
  const auto reports = bench::run_cells_or_exit(sweep);

  Table table({"op", "ranks", "ppn", "affinity", "scheme", "latency_us",
               "energy_per_op_J"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const SweepCell& cell = sweep.cells[i];
    table.add_row({coll::to_string(cell.bench.op),
                   std::to_string(cell.cluster.ranks),
                   std::to_string(cell.cluster.ranks_per_node),
                   hw::to_string(cell.cluster.affinity),
                   coll::to_string(cell.bench.scheme),
                   Table::num(reports[i].latency.us(), 1),
                   Table::num(reports[i].energy_per_op, 3)});
  }
  table.print(std::cout);
  std::cout
      << "\nShape check: at 4 ranks/node the bunch mapping leaves socket B\n"
         "empty, so the proposed Alltoall degenerates to per-call DVFS; the\n"
         "scatter mapping keeps both socket groups populated and the\n"
         "socket-alternating schedule engaged (§V-C: the algorithms rely on\n"
         "the process-to-core mapping).\n";
  return 0;
}

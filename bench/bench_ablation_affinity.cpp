// E11 — §V-C ablation: the power-aware algorithms depend on the MVAPICH2
// "bunch" process-to-core mapping. This bench compares bunch vs scatter
// affinity for the proposed Alltoall and Bcast, including the 4-way case
// where bunch leaves socket B empty (the schedule falls back to per-call
// DVFS) while scatter keeps it applicable.
#include <iostream>

#include "bench_support.hpp"

namespace {

using namespace pacc;

CollectiveReport run_one(int ranks, int ppn, hw::AffinityPolicy affinity,
                         coll::Op op, coll::PowerScheme scheme) {
  ClusterConfig cfg = bench::paper_cluster(ranks, ppn);
  cfg.affinity = affinity;
  CollectiveBenchSpec spec;
  spec.op = op;
  spec.message = 256 * 1024;
  spec.scheme = scheme;
  spec.iterations = 3;
  spec.warmup = 1;
  return measure_collective(cfg, spec);
}

}  // namespace

int main() {
  using namespace pacc;
  bench::print_header("Affinity ablation: bunch vs scatter mapping",
                      "§V-C discussion, Kandalla et al., ICPP 2010");

  Table table({"op", "ranks", "ppn", "affinity", "scheme", "latency_us",
               "energy_per_op_J"});
  for (const coll::Op op : {coll::Op::kAlltoall, coll::Op::kBcast}) {
    for (const int ppn : {4, 8}) {
      const int ranks = 8 * ppn;
      for (const auto affinity :
           {hw::AffinityPolicy::kBunch, hw::AffinityPolicy::kScatter}) {
        for (const auto scheme :
             {coll::PowerScheme::kNone, coll::PowerScheme::kProposed}) {
          const auto r = run_one(ranks, ppn, affinity, op, scheme);
          if (!r.completed) {
            std::cerr << "run did not complete\n";
            return 1;
          }
          table.add_row({coll::to_string(op), std::to_string(ranks),
                         std::to_string(ppn), hw::to_string(affinity),
                         coll::to_string(scheme),
                         Table::num(r.latency.us(), 1),
                         Table::num(r.energy_per_op, 3)});
        }
      }
    }
  }
  table.print(std::cout);
  std::cout
      << "\nShape check: at 4 ranks/node the bunch mapping leaves socket B\n"
         "empty, so the proposed Alltoall degenerates to per-call DVFS; the\n"
         "scatter mapping keeps both socket groups populated and the\n"
         "socket-alternating schedule engaged (§V-C: the algorithms rely on\n"
         "the process-to-core mapping).\n";
  return 0;
}

// E15 (extension) — §VIII future work: topology-aware Scatter/Gather with
// rack-level power management on an oversubscribed two-rack fabric.
//
// Compares, for MPI_Scatter and MPI_Gather at 64 ranks over 8 nodes in two
// racks (4:1 oversubscribed aggregation uplinks):
//   flat      — binomial tree, topology-blind
//   topo      — hierarchical rack → node → core routing
//   topo+power— hierarchical + all non-rack-leaders throttled to T7 during
//               the inter-rack phase (scatter only; a gather has no waiting
//               window to throttle)
#include <functional>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "bench_support.hpp"
#include "coll/power_scheme.hpp"
#include "coll/registry.hpp"

namespace {

using namespace pacc;

struct Result {
  Duration latency;
  Joules energy = 0.0;
};

Result run_scatter(bool topo, coll::PowerScheme scheme, Bytes block,
                   int root) {
  ClusterConfig cfg = bench::paper_cluster(64, 8);
  cfg.nodes_per_rack = 4;
  Simulation sim(cfg);
  const auto blk = static_cast<std::size_t>(block);
  TimePoint done;
  auto body = [&, topo, scheme](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    std::vector<std::byte> send;
    if (me == root) send.resize(64 * blk);
    std::vector<std::byte> mine(blk);
    for (int i = 0; i < 4; ++i) {
      if (topo) {
        co_await coll::scatter_topo_aware(self, world, send, mine, block,
                                          root, {.scheme = scheme});
      } else {
        co_await coll::enter_low_power(self, scheme);
        co_await coll::scatter_binomial(self, world, send, mine, block, root);
        co_await coll::exit_low_power(self, scheme);
      }
    }
    if (self.id() == 0) done = self.engine().now();
  };
  sim.runtime().launch(body);
  const auto run = sim.engine().run_active();
  Result r;
  r.latency = Duration::nanos(done.ns() / 4);
  r.energy = sim.machine().total_energy() / 4.0;
  if (!run.all_tasks_finished) {
    throw std::runtime_error("scatter run did not drain");
  }
  return r;
}

Result run_gather(bool topo, Bytes block) {
  ClusterConfig cfg = bench::paper_cluster(64, 8);
  cfg.nodes_per_rack = 4;
  Simulation sim(cfg);
  const auto blk = static_cast<std::size_t>(block);
  TimePoint done;
  auto body = [&, topo](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    std::vector<std::byte> mine(blk);
    std::vector<std::byte> gathered;
    if (me == 0) gathered.resize(64 * blk);
    for (int i = 0; i < 4; ++i) {
      if (topo) {
        co_await coll::gather_topo_aware(self, world, mine, gathered, block,
                                         0, {});
      } else {
        co_await coll::gather_binomial(self, world, mine, gathered, block, 0);
      }
    }
    if (self.id() == 0) done = self.engine().now();
  };
  sim.runtime().launch(body);
  const auto run = sim.engine().run_active();
  Result r;
  r.latency = Duration::nanos(done.ns() / 4);
  r.energy = sim.machine().total_energy() / 4.0;
  if (!run.all_tasks_finished) {
    throw std::runtime_error("gather run did not drain");
  }
  return r;
}

}  // namespace

int main() {
  using namespace pacc;
  bench::print_header(
      "Extension: topology-aware Scatter/Gather with rack-level throttling",
      "§VIII future work, Kandalla et al., ICPP 2010");

  std::cout << "\nMPI_Scatter, 64 ranks, 2 racks (4:1 oversubscribed):\n";
  struct ScatterCase {
    Bytes block;
    int root;
    bool topo;
    coll::PowerScheme scheme;
    const char* variant;
  };
  std::vector<ScatterCase> scatter_cases;
  for (const Bytes block : {Bytes{64 * 1024}, Bytes{256 * 1024}}) {
    // root 0: the binomial tree happens to align with the rack layout.
    // root 21: the rotated tree pushes subtree payloads across the rack
    // uplink repeatedly — where topology-aware routing wins.
    for (const int root : {0, 21}) {
      scatter_cases.push_back({block, root, false, coll::PowerScheme::kNone,
                               "flat binomial"});
      scatter_cases.push_back({block, root, true, coll::PowerScheme::kNone,
                               "topology-aware"});
      scatter_cases.push_back({block, root, true, coll::PowerScheme::kProposed,
                               "topo + rack throttling"});
    }
  }
  std::vector<Result> scatter_results(scatter_cases.size());
  bench::parallel_or_exit(scatter_cases.size(), [&](std::size_t i) {
    const auto& c = scatter_cases[i];
    scatter_results[i] = run_scatter(c.topo, c.scheme, c.block, c.root);
  });

  Table scatter({"block", "root", "variant", "latency_us", "energy_J"});
  for (std::size_t i = 0; i < scatter_cases.size(); ++i) {
    const auto& c = scatter_cases[i];
    const auto& r = scatter_results[i];
    scatter.add_row({format_bytes(c.block), std::to_string(c.root), c.variant,
                     Table::num(r.latency.us(), 1), Table::num(r.energy, 2)});
  }
  scatter.print(std::cout);

  std::cout << "\nMPI_Gather, 64 ranks, same fabric:\n";
  struct GatherCase {
    Bytes block;
    bool topo;
    const char* variant;
  };
  std::vector<GatherCase> gather_cases;
  for (const Bytes block : {Bytes{64 * 1024}, Bytes{256 * 1024}}) {
    gather_cases.push_back({block, false, "flat binomial"});
    gather_cases.push_back({block, true, "topology-aware"});
  }
  std::vector<Result> gather_results(gather_cases.size());
  bench::parallel_or_exit(gather_cases.size(), [&](std::size_t i) {
    gather_results[i] = run_gather(gather_cases[i].topo, gather_cases[i].block);
  });

  Table gather({"block", "variant", "latency_us", "energy_J"});
  for (std::size_t i = 0; i < gather_cases.size(); ++i) {
    const auto& c = gather_cases[i];
    const auto& r = gather_results[i];
    gather.add_row({format_bytes(c.block), c.variant,
                    Table::num(r.latency.us(), 1), Table::num(r.energy, 2)});
  }
  gather.print(std::cout);

  std::cout
      << "\nShape check: with an aligned root the node-major binomial tree\n"
         "is already topology-optimal, and the hierarchical variant merely\n"
         "matches it; with a rotated root the flat tree drags subtree\n"
         "payloads across the oversubscribed rack uplink repeatedly and\n"
         "topology-aware routing wins. Rack-level throttling then trades a\n"
         "latency increase for lower energy — the effect §VIII anticipates\n"
         "for large clusters.\n";
  return 0;
}

// E13 — Section VI model validation: equations (1)-(4) for performance and
// (5)-(8) for energy, against the simulator across message sizes.
#include <iostream>

#include "bench_support.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"

int main() {
  using namespace pacc;
  bench::print_header("Analytical models (eqs 1-8) vs simulation",
                      "Section VI, Kandalla et al., ICPP 2010");

  const auto perf = model::PerfModelParams::from(presets::paper_machine(8),
                                                 presets::paper_network());
  const ClusterConfig cluster = bench::paper_cluster(64, 8);

  // --- eq (1): default pair-wise Alltoall, 64 ranks --------------------
  std::cout << "\nEquation (1) — pair-wise Alltoall, 8 nodes x 8 ranks:\n";
  {
    SweepSpec sweep;
    for (const Bytes m : bench::kLargeSweep) {
      sweep.add(cluster, bench::collective_spec(coll::Op::kAlltoall, m));
    }
    const auto sims = bench::run_cells_or_exit(sweep);
    Table t({"size", "model_us", "sim_us", "sim/model"});
    for (std::size_t i = 0; i < sims.size(); ++i) {
      const Bytes m = sweep.cells[i].bench.message;
      const auto predicted = model::alltoall_pairwise_time(perf, 8, 8, m);
      t.add_row({format_bytes(m), Table::num(predicted.us(), 1),
                 Table::num(sims[i].latency.us(), 1),
                 Table::num(sims[i].latency.us() / predicted.us(), 3)});
    }
    t.print(std::cout);
  }

  // --- eq (2) and (4): Bcast, default and proposed ----------------------
  std::cout << "\nEquations (2) and (4) — Bcast over 8 leaders:\n";
  {
    SweepSpec sweep;
    for (const Bytes m : bench::kLargeSweep) {
      sweep.add(cluster, bench::collective_spec(coll::Op::kBcast, m));
      sweep.add(cluster, bench::collective_spec(coll::Op::kBcast, m,
                                                coll::PowerScheme::kProposed));
    }
    const auto sims = bench::run_cells_or_exit(sweep);
    Table t({"size", "model_us", "sim_us", "model_prop_us", "sim_prop_us"});
    for (std::size_t i = 0; i < sims.size(); i += 2) {
      const Bytes m = sweep.cells[i].bench.message;
      t.add_row(
          {format_bytes(m),
           Table::num(model::bcast_scatter_allgather_time(perf, 8, m).us(), 1),
           Table::num(sims[i].latency.us(), 1),
           Table::num(model::bcast_power_aware_time(perf, 8, m).us(), 1),
           Table::num(sims[i + 1].latency.us(), 1)});
    }
    t.print(std::cout);
  }

  // --- eq (3): proposed Alltoall ----------------------------------------
  std::cout << "\nEquation (3) — proposed power-aware Alltoall:\n";
  {
    SweepSpec sweep;
    for (const Bytes m : bench::kLargeSweep) {
      sweep.add(cluster, bench::collective_spec(coll::Op::kAlltoall, m,
                                                coll::PowerScheme::kProposed));
    }
    const auto sims = bench::run_cells_or_exit(sweep);
    Table t({"size", "model_us", "sim_us", "sim/model"});
    for (std::size_t i = 0; i < sims.size(); ++i) {
      const Bytes m = sweep.cells[i].bench.message;
      const auto predicted = model::alltoall_power_aware_time(perf, 8, 8, m);
      t.add_row({format_bytes(m), Table::num(predicted.us(), 1),
                 Table::num(sims[i].latency.us(), 1),
                 Table::num(sims[i].latency.us() / predicted.us(), 3)});
    }
    t.print(std::cout);
  }

  // --- eqs (5)-(8): energy ----------------------------------------------
  std::cout << "\nEquations (5)-(8) — energy per 1 MiB Alltoall/Bcast op:\n";
  {
    const auto power = model::PowerModelParams::from(presets::paper_machine(8),
                                                     64);
    const Bytes m = 1 << 20;
    SweepSpec sweep;
    for (const auto scheme : coll::kAllSchemes) {
      sweep.add(cluster, bench::collective_spec(coll::Op::kAlltoall, m,
                                                scheme));
    }
    const auto sims = bench::run_cells_or_exit(sweep);
    const auto& none = sims[0];
    const auto& dvfs = sims[1];
    const auto& prop = sims[2];

    Table t({"scheme", "model_J", "sim_J"});
    t.add_row({"default (eq 5)",
               Table::num(model::energy_default(power, none.latency), 2),
               Table::num(none.energy_per_op, 2)});
    t.add_row({"freq-scaling (eq 6)",
               Table::num(model::energy_dvfs_only(power, dvfs.latency), 2),
               Table::num(dvfs.energy_per_op, 2)});
    t.add_row(
        {"proposed (eq 7)",
         Table::num(model::energy_alltoall_proposed(power, prop.latency), 2),
         Table::num(prop.energy_per_op, 2)});
    t.print(std::cout);
  }

  std::cout << "\nShape check: simulation within a few tens of percent of\n"
               "the closed-form models, with matching ordering.\n";
  return 0;
}

// E13 — Section VI model validation: equations (1)-(4) for performance and
// (5)-(8) for energy, against the simulator across message sizes.
#include <iostream>

#include "bench_support.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"

int main() {
  using namespace pacc;
  bench::print_header("Analytical models (eqs 1-8) vs simulation",
                      "Section VI, Kandalla et al., ICPP 2010");

  const auto perf = model::PerfModelParams::from(presets::paper_machine(8),
                                                 presets::paper_network());

  // --- eq (1): default pair-wise Alltoall, 64 ranks --------------------
  std::cout << "\nEquation (1) — pair-wise Alltoall, 8 nodes x 8 ranks:\n";
  {
    Table t({"size", "model_us", "sim_us", "sim/model"});
    for (const Bytes m : bench::kLargeSweep) {
      CollectiveBenchSpec spec;
      spec.op = coll::Op::kAlltoall;
      spec.message = m;
      spec.iterations = 3;
      spec.warmup = 1;
      const auto sim = measure_collective(bench::paper_cluster(64, 8), spec);
      const auto predicted = model::alltoall_pairwise_time(perf, 8, 8, m);
      t.add_row({format_bytes(m), Table::num(predicted.us(), 1),
                 Table::num(sim.latency.us(), 1),
                 Table::num(sim.latency.us() / predicted.us(), 3)});
    }
    t.print(std::cout);
  }

  // --- eq (2) and (4): Bcast, default and proposed ----------------------
  std::cout << "\nEquations (2) and (4) — Bcast over 8 leaders:\n";
  {
    Table t({"size", "model_us", "sim_us", "model_prop_us", "sim_prop_us"});
    for (const Bytes m : bench::kLargeSweep) {
      CollectiveBenchSpec spec;
      spec.op = coll::Op::kBcast;
      spec.message = m;
      spec.iterations = 3;
      spec.warmup = 1;
      const auto sim_default =
          measure_collective(bench::paper_cluster(64, 8), spec);
      spec.scheme = coll::PowerScheme::kProposed;
      const auto sim_prop =
          measure_collective(bench::paper_cluster(64, 8), spec);
      t.add_row({format_bytes(m),
                 Table::num(model::bcast_scatter_allgather_time(perf, 8, m).us(), 1),
                 Table::num(sim_default.latency.us(), 1),
                 Table::num(model::bcast_power_aware_time(perf, 8, m).us(), 1),
                 Table::num(sim_prop.latency.us(), 1)});
    }
    t.print(std::cout);
  }

  // --- eq (3): proposed Alltoall ----------------------------------------
  std::cout << "\nEquation (3) — proposed power-aware Alltoall:\n";
  {
    Table t({"size", "model_us", "sim_us", "sim/model"});
    for (const Bytes m : bench::kLargeSweep) {
      CollectiveBenchSpec spec;
      spec.op = coll::Op::kAlltoall;
      spec.message = m;
      spec.scheme = coll::PowerScheme::kProposed;
      spec.iterations = 3;
      spec.warmup = 1;
      const auto sim = measure_collective(bench::paper_cluster(64, 8), spec);
      const auto predicted = model::alltoall_power_aware_time(perf, 8, 8, m);
      t.add_row({format_bytes(m), Table::num(predicted.us(), 1),
                 Table::num(sim.latency.us(), 1),
                 Table::num(sim.latency.us() / predicted.us(), 3)});
    }
    t.print(std::cout);
  }

  // --- eqs (5)-(8): energy ----------------------------------------------
  std::cout << "\nEquations (5)-(8) — energy per 1 MiB Alltoall/Bcast op:\n";
  {
    const auto power = model::PowerModelParams::from(presets::paper_machine(8),
                                                     64);
    Table t({"scheme", "model_J", "sim_J"});
    const Bytes m = 1 << 20;
    CollectiveBenchSpec spec;
    spec.op = coll::Op::kAlltoall;
    spec.message = m;
    spec.iterations = 3;
    spec.warmup = 1;

    spec.scheme = coll::PowerScheme::kNone;
    const auto none = measure_collective(bench::paper_cluster(64, 8), spec);
    t.add_row({"default (eq 5)",
               Table::num(model::energy_default(power, none.latency), 2),
               Table::num(none.energy_per_op, 2)});

    spec.scheme = coll::PowerScheme::kFreqScaling;
    const auto dvfs = measure_collective(bench::paper_cluster(64, 8), spec);
    t.add_row({"freq-scaling (eq 6)",
               Table::num(model::energy_dvfs_only(power, dvfs.latency), 2),
               Table::num(dvfs.energy_per_op, 2)});

    spec.scheme = coll::PowerScheme::kProposed;
    const auto prop = measure_collective(bench::paper_cluster(64, 8), spec);
    t.add_row({"proposed (eq 7)",
               Table::num(model::energy_alltoall_proposed(power, prop.latency), 2),
               Table::num(prop.energy_per_op, 2)});
    t.print(std::cout);
  }

  std::cout << "\nShape check: simulation within a few tens of percent of\n"
               "the closed-form models, with matching ordering.\n";
  return 0;
}

// E9/E10 — Figure 10 and Table II: NAS FT and IS class-C-shaped kernels at
// 32 and 64 processes under the three power schemes.
//
// Expected shape (paper Table II): FT ≈ 15.5-17.1 KJ and IS ≈ 3.2-3.8 KJ
// bands with proposed < freq-scaling < default; ≈8 % savings on IS.
#include <iostream>

#include "apps/nas.hpp"
#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header("NAS FT / IS kernels: runtime, Alltoall time, energy",
                      "Fig 10(a,b) and Table II, Kandalla et al., ICPP 2010");

  Table time_table(
      {"kernel", "ranks", "scheme", "total_s", "alltoall_s", "overhead"});
  Table energy_table({"kernel", "ranks", "scheme", "energy_KJ", "vs_default"});

  struct Kernel {
    const char* name;
    apps::WorkloadSpec (*make)(int);
  };
  const Kernel kernels[] = {{"FT", apps::nas_ft}, {"IS", apps::nas_is}};

  for (const auto& kernel : kernels) {
    for (const int ranks : {32, 64}) {
      const auto spec = kernel.make(ranks);
      const ClusterConfig cfg = bench::paper_cluster(ranks, ranks / 8);
      double base_time = 0.0;
      double base_energy = 0.0;
      for (const auto scheme : coll::kAllSchemes) {
        const auto report = apps::run_workload(cfg, spec, scheme);
        if (!report.completed) {
          std::cerr << "run did not complete: " << kernel.name << "\n";
          return 1;
        }
        if (scheme == coll::PowerScheme::kNone) {
          base_time = report.total_time.sec();
          base_energy = report.energy;
        }
        time_table.add_row(
            {kernel.name, std::to_string(ranks), coll::to_string(scheme),
             Table::num(report.total_time.sec(), 2),
             Table::num(report.alltoall_time.sec(), 2),
             Table::num(report.total_time.sec() / base_time, 3)});
        energy_table.add_row(
            {kernel.name, std::to_string(ranks), coll::to_string(scheme),
             Table::num(report.energy / 1000.0, 3),
             Table::num(report.energy / base_energy, 3)});
      }
    }
  }

  std::cout << "\nFig 10 — execution / Alltoall time:\n";
  time_table.print(std::cout);
  std::cout << "\nTable II — energy (KJ):\n";
  energy_table.print(std::cout);
  std::cout << "\nShape check (paper Table II): proposed < freq-scaling <\n"
               "default for both kernels at both scales (≈5-8 % savings).\n";
  return 0;
}

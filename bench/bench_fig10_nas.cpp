// E9/E10 — Figure 10 and Table II: NAS FT and IS class-C-shaped kernels at
// 32 and 64 processes under the three power schemes.
//
// Expected shape (paper Table II): FT ≈ 15.5-17.1 KJ and IS ≈ 3.2-3.8 KJ
// bands with proposed < freq-scaling < default; ≈8 % savings on IS.
#include <iostream>
#include <vector>

#include "apps/nas.hpp"
#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header("NAS FT / IS kernels: runtime, Alltoall time, energy",
                      "Fig 10(a,b) and Table II, Kandalla et al., ICPP 2010");

  struct Kernel {
    const char* name;
    apps::WorkloadSpec (*make)(int);
  };
  const Kernel kernels[] = {{"FT", apps::nas_ft}, {"IS", apps::nas_is}};

  // Fan the kernel × ranks × scheme grid over the worker pool, then build
  // the tables in order; kNone is first per group and supplies the baseline.
  struct Case {
    const Kernel* kernel;
    int ranks;
    coll::PowerScheme scheme;
  };
  std::vector<Case> cases;
  for (const auto& kernel : kernels) {
    for (const int ranks : {32, 64}) {
      for (const auto scheme : coll::kAllSchemes) {
        cases.push_back({&kernel, ranks, scheme});
      }
    }
  }
  std::vector<apps::AppReport> results(cases.size());
  bench::parallel_or_exit(cases.size(), [&](std::size_t i) {
    const auto& c = cases[i];
    results[i] = bench::run_workload_or_exit(
        bench::paper_cluster(c.ranks, c.ranks / 8), c.kernel->make(c.ranks),
        c.scheme);
  });

  Table time_table(
      {"kernel", "ranks", "scheme", "total_s", "alltoall_s", "overhead"});
  Table energy_table({"kernel", "ranks", "scheme", "energy_KJ", "vs_default"});
  double base_time = 0.0;
  double base_energy = 0.0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto& report = results[i];
    if (c.scheme == coll::PowerScheme::kNone) {
      base_time = report.total_time.sec();
      base_energy = report.energy;
    }
    time_table.add_row(
        {c.kernel->name, std::to_string(c.ranks), coll::to_string(c.scheme),
         Table::num(report.total_time.sec(), 2),
         Table::num(report.alltoall_time.sec(), 2),
         Table::num(report.total_time.sec() / base_time, 3)});
    energy_table.add_row(
        {c.kernel->name, std::to_string(c.ranks), coll::to_string(c.scheme),
         Table::num(report.energy / 1000.0, 3),
         Table::num(report.energy / base_energy, 3)});
  }

  std::cout << "\nFig 10 — execution / Alltoall time:\n";
  time_table.print(std::cout);
  std::cout << "\nTable II — energy (KJ):\n";
  energy_table.print(std::cout);
  std::cout << "\nShape check (paper Table II): proposed < freq-scaling <\n"
               "default for both kernels at both scales (≈5-8 % savings).\n";
  return 0;
}

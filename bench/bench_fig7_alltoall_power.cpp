// E5 — Figure 7: MPI_Alltoall at 64 processes under the three schemes:
// default (no power optimisation), per-call frequency scaling, and the
// proposed socket-scheduled throttled algorithm (§V-A).
// (a) latency sweep; (b) 0.5 s power series while looping at 1 MB.
//
// Expected shape (paper): ~10 % latency overhead for either power scheme,
// negligible difference between the two; power bands ≈ 2.3 / 1.8 / 1.6 KW.
#include <iostream>

#include "bench_support.hpp"

int main() {
  using namespace pacc;
  bench::print_header("Power-aware MPI_Alltoall, 64 processes",
                      "Fig 7(a,b), Kandalla et al., ICPP 2010");

  bench::scheme_latency_and_power_report(coll::Op::kAlltoall,
                                         bench::paper_cluster(64, 8), 10.0);

  std::cout << "\nShape check (paper): ≈2.3 KW default, ≈1.8 KW with DVFS,\n"
               "≈1.6 KW proposed, at ~10% latency overhead.\n";
  return 0;
}

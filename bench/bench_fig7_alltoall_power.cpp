// E5 — Figure 7: MPI_Alltoall at 64 processes under the three schemes:
// default (no power optimisation), per-call frequency scaling, and the
// proposed socket-scheduled throttled algorithm (§V-A).
// (a) latency sweep; (b) 0.5 s power series while looping at 1 MB.
//
// Expected shape (paper): ~10 % latency overhead for either power scheme,
// negligible difference between the two; power bands ≈ 2.3 / 1.8 / 1.6 KW.
#include <algorithm>
#include <iostream>

#include "bench_support.hpp"

namespace {

using namespace pacc;

CollectiveReport run_scheme(coll::PowerScheme scheme, Bytes message,
                            int iterations, int warmup) {
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = message;
  spec.scheme = scheme;
  spec.iterations = iterations;
  spec.warmup = warmup;
  return measure_collective(bench::paper_cluster(64, 8), spec);
}

}  // namespace

int main() {
  using namespace pacc;
  bench::print_header("Power-aware MPI_Alltoall, 64 processes",
                      "Fig 7(a,b), Kandalla et al., ICPP 2010");

  Table latency({"size", "no-power_us", "freq-scaling_us", "proposed_us",
                 "freq/none", "prop/none"});
  for (const Bytes message : bench::kLargeSweep) {
    const auto none = run_scheme(coll::PowerScheme::kNone, message, 3, 1);
    const auto dvfs =
        run_scheme(coll::PowerScheme::kFreqScaling, message, 3, 1);
    const auto prop = run_scheme(coll::PowerScheme::kProposed, message, 3, 1);
    latency.add_row(
        {format_bytes(message), Table::num(none.latency.us(), 1),
         Table::num(dvfs.latency.us(), 1), Table::num(prop.latency.us(), 1),
         Table::num(dvfs.latency.us() / none.latency.us(), 2),
         Table::num(prop.latency.us() / none.latency.us(), 2)});
  }
  latency.print(std::cout);

  const Bytes big = 1 << 20;
  Table power({"scheme", "mean_kW", "peak_kW"});
  for (const auto scheme : coll::kAllSchemes) {
    const auto probe = run_scheme(scheme, big, 2, 1);
    const int iters = std::max(
        4, static_cast<int>(10.0 / std::max(1e-3, probe.latency.sec())));
    const auto loop = run_scheme(scheme, big, iters, 1);
    bench::print_power_series(coll::to_string(scheme), loop.power);
    power.add_row({coll::to_string(scheme),
                   Table::num(loop.mean_power / 1000.0, 3),
                   Table::num(loop.power.peak_watts() / 1000.0, 3)});
  }
  std::cout << "\nSummary:\n";
  power.print(std::cout);
  std::cout << "\nShape check (paper): ≈2.3 KW default, ≈1.8 KW with DVFS,\n"
               "≈1.6 KW proposed, at ~10% latency overhead.\n";

  // Exact per-phase energy attribution of the proposed algorithm at 1 MB.
  // A separate traced run keeps the figures above byte-identical to the
  // untraced configuration.
  ClusterConfig traced = bench::paper_cluster(64, 8);
  traced.trace = true;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = big;
  spec.scheme = coll::PowerScheme::kProposed;
  spec.iterations = 3;
  spec.warmup = 1;
  const auto attributed = measure_collective(traced, spec);
  std::cout << "\nPer-phase energy, proposed scheme at 1 MB:\n";
  bench::print_energy_breakdown(attributed.energy_phases);
  return 0;
}

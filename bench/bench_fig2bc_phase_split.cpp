// E2/E3 — Figures 2(b) and 2(c): total collective time vs the inter-leader
// network phase alone, for MPI_Bcast (4 KB–1 MB) and MPI_Reduce (4 B–4 KB)
// with 64 processes. The network phase must dominate, which is the paper's
// argument for throttling the non-leader cores (§IV-B).
#include <iostream>
#include <vector>

#include "bench_support.hpp"

namespace {

using namespace pacc;

void sweep(coll::Op op, const std::vector<Bytes>& sizes) {
  // Leaders-only cluster: the same collective on a communicator holding
  // just the 8 node leaders isolates the inter-leader network stage.
  ClusterConfig leaders = bench::paper_cluster(64, 8);
  leaders.ranks = 8;
  leaders.ranks_per_node = 1;

  SweepSpec cells;
  for (const Bytes message : sizes) {
    const auto spec = bench::collective_spec(op, message);
    cells.add(bench::paper_cluster(64, 8), spec);
    cells.add(leaders, spec);
  }
  const auto reports = bench::run_cells_or_exit(cells);

  Table table({"size", "total_us", "network_us", "network_share"});
  for (std::size_t i = 0; i < reports.size(); i += 2) {
    const auto total = reports[i].latency;
    const auto network = reports[i + 1].latency;
    table.add_row({format_bytes(cells.cells[i].bench.message),
                   Table::num(total.us(), 2), Table::num(network.us(), 2),
                   Table::num(network.us() / total.us(), 2)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace pacc;
  bench::print_header("Bcast / Reduce: total vs network phase, 64 processes",
                      "Fig 2(b) and 2(c), Kandalla et al., ICPP 2010");

  std::cout << "\nMPI_Bcast (Fig 2b):\n";
  sweep(coll::Op::kBcast, {Bytes{4096}, Bytes{16384}, Bytes{65536},
                           Bytes{262144}, Bytes{1048576}});

  std::cout << "\nMPI_Reduce (Fig 2c):\n";
  sweep(coll::Op::kReduce,
        {Bytes{8}, Bytes{64}, Bytes{256}, Bytes{1024}, Bytes{4096}});

  std::cout << "\nShape check: the network phase should account for most of\n"
               "the total time, motivating the power-aware designs of §V-B.\n";
  return 0;
}

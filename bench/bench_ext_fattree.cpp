// EXT — hierarchical fat-tree fabrics at sweep scale (beyond the paper).
//
// Kandalla et al. measured on one 8-node switch; production InfiniBand
// clusters hang hundreds of nodes off oversubscribed fat trees, where the
// constricted uplinks change the alltoall contention picture the power
// schemes act on. This bench asks the scaled-up question the testbed could
// not: at 4096 ranks (512 nodes × 8), how does the proposed scheme's win
// over plain DVFS move as the edge→core oversubscription goes 1:1 → 4:1?
//
// Every cell is rank-symmetry collapsed (docs/PERF.md §4): the 16
// top-level fabric groups are translation classes, so the simulator runs
// 256 representative ranks whose observables are bit-identical to the full
// 4096-rank run. That is what makes a 4096-rank 1 MiB sweep a
// seconds-not-hours bench; the per-cell wall column keeps it honest.
#include <chrono>
#include <iostream>

#include "bench_support.hpp"

namespace pacc::bench {
namespace {

constexpr int kNodes = 512;
constexpr int kRanksPerNode = 8;
constexpr int kRanks = kNodes * kRanksPerNode;
/// 32-node edge groups → 16 top-level groups = collapse multiplicity 16.
constexpr int kGroupNodes = 32;

ClusterConfig fat_tree_cluster(double oversubscription) {
  ClusterConfig cfg = paper_cluster(kRanks, kRanksPerNode);
  cfg.fabric = {{kGroupNodes, oversubscription}};
  return cfg;
}

int run() {
  print_header("EXT: 4096-rank alltoall on an oversubscribed fat tree",
               "extension of §V at cluster scale; see docs/PERF.md §4");
  const Bytes message = 1 << 20;
  std::cout << "cluster: " << kRanks << " ranks = " << kNodes << " nodes × "
            << kRanksPerNode << " ppn, fabric " << kGroupNodes
            << "-node groups (16 top-level groups)\n"
            << "message: " << format_bytes(message)
            << " blocks, 1 iteration per cell\n\n";

  Table t({"oversub", "scheme", "latency_ms", "vs_none", "prop_win",
           "energy_kJ", "mean_kW", "collapse", "wall_s"});
  double gated_wall = -1.0;
  for (const double oversub : {1.0, 2.0, 4.0}) {
    double none_ms = 0.0;
    double dvfs_ms = 0.0;
    for (const auto scheme : coll::kAllSchemes) {
      const auto start = std::chrono::steady_clock::now();
      const auto report = measure_or_exit(
          fat_tree_cluster(oversub),
          collective_spec(coll::Op::kAlltoall, message, scheme, 1, 0));
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double ms = report.latency.ms();
      if (scheme == coll::PowerScheme::kNone) none_ms = ms;
      if (scheme == coll::PowerScheme::kFreqScaling) dvfs_ms = ms;
      const bool proposed = scheme == coll::PowerScheme::kProposed;
      if (proposed && oversub == 2.0) gated_wall = wall;
      t.add_row({Table::num(oversub, 0) + ":1", coll::to_string(scheme),
                 Table::num(ms, 1),
                 Table::num(none_ms > 0 ? ms / none_ms : 1.0, 3),
                 // The headline: proposed-scheme slowdown relative to plain
                 // DVFS. < 1 means the §V schedule beats frequency scaling
                 // outright; the gap narrows as oversubscription rises and
                 // the constricted core soaks up the schedule's slack.
                 proposed ? Table::num(ms / dvfs_ms, 3) : std::string("-"),
                 Table::num(report.energy_per_op / 1000.0, 2),
                 Table::num(report.mean_power / 1000.0, 1),
                 std::to_string(report.collapse.simulated_ranks) + "/" +
                     std::to_string(report.collapse.logical_ranks),
                 Table::num(wall, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\ncollapse = simulated/logical ranks (multiplicity 16).\n"
            << "prop_win = proposed latency / freq-scaling latency at the "
               "same oversubscription.\n"
            << "gate: proposed @ 2:1 wall = " << Table::num(gated_wall, 2)
            << " s (CI budget: < 10 s; see "
               "scripts/check_bench_regression.py)\n";
  return gated_wall >= 0.0 ? 0 : 1;
}

}  // namespace
}  // namespace pacc::bench

int main() { return pacc::bench::run(); }

// E17 (extension) — fault injection: retry/timeout recovery and graceful
// power-scheme degradation on the paper's Fig-7 configuration.
//
// The paper measures healthy runs; production InfiniBand fabrics drop
// packets, flap links and reject P/T-state transitions. This bench runs the
// Fig-7 Alltoall sweep (64 ranks, 8 per node) under a combined
// drop + link-flap + transition-failure spec and shows that every cell
// terminates with a *classified* outcome — ok, faulted (disturbed but
// correct, with the recovery work itemised) or unreachable (retry budget
// exhausted) — instead of hanging or aborting. A second sweep escalates the
// drop rate to show the retransmit layer's response curve.
//
// Unlike the figure benches this one tolerates non-ok cells by design:
// disturbed outcomes are the subject under test, so it cannot reuse
// bench_support's fail-fast run_cells_or_exit.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support.hpp"

namespace {

using namespace pacc;

/// Runs the sweep and returns its results; exits only if a cell ends
/// UNclassified (timeout / deadlock / error) — the failure mode this
/// subsystem exists to prevent.
std::vector<CellResult> run_classified_or_exit(const SweepSpec& sweep) {
  CampaignOptions opts;
  opts.jobs = 0;  // all hardware threads; artifacts are jobs-independent
  const auto results = Campaign(sweep, opts).run();
  for (const CellResult& r : results) {
    const bool classified =
        r.status.usable() || r.status.outcome == RunOutcome::kUnreachable;
    if (!classified) {
      std::cerr << "cell " << r.label
                << " ended unclassified: " << r.status.describe() << "\n";
      std::exit(1);
    }
  }
  return results;
}

std::string num_or_dash(const CellResult& r, double value, int digits) {
  return r.status.usable() ? Table::num(value, digits) : "-";
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: fault-injected Alltoall — recovery and degradation",
      "robustness extension of Fig. 7, Kandalla et al., ICPP 2010");

  const auto base_spec =
      *fault::FaultSpec::parse("seed=11,drop=0.002,flap=10,tfail=0.1");

  std::cout << "\nMPI_Alltoall, 64 ranks (8/node), faults: 0.2% drop, "
               "10 Hz link flaps,\n10% transition failures:\n";
  SweepSpec sweep;
  for (const Bytes message : bench::kLargeSweep) {
    for (const coll::PowerScheme scheme :
         {coll::PowerScheme::kNone, coll::PowerScheme::kFreqScaling,
          coll::PowerScheme::kProposed}) {
      ClusterConfig cfg = bench::paper_cluster(64, 8);
      cfg.faults = base_spec;
      sweep.add(cfg, bench::collective_spec(coll::Op::kAlltoall, message,
                                            scheme, 2, 1),
                format_bytes(message) + "/" + coll::to_string(scheme));
    }
  }
  const auto results = run_classified_or_exit(sweep);

  Table t({"size", "scheme", "status", "latency_us", "energy_per_op_J",
           "retransmits", "preempted", "fallbacks"});
  for (const CellResult& r : results) {
    const SweepCell& cell = sweep.cells[r.index];
    const fault::FaultStats& f = r.report.faults;
    t.add_row({format_bytes(cell.bench.message),
               coll::to_string(cell.bench.scheme),
               to_string(r.status.outcome),
               num_or_dash(r, r.report.latency.us(), 1),
               num_or_dash(r, r.report.energy_per_op, 2),
               std::to_string(f.retransmits), std::to_string(f.flows_preempted),
               std::to_string(f.scheme_fallbacks)});
  }
  t.print(std::cout);

  std::cout << "\nDrop-rate escalation (256K, proposed): the retransmit\n"
               "layer absorbs rising loss until the retry budget gives out:\n";
  SweepSpec escalation;
  for (const double drop : {0.0, 0.001, 0.01, 0.05}) {
    ClusterConfig cfg = bench::paper_cluster(64, 8);
    cfg.faults = *fault::FaultSpec::parse("seed=11,tfail=0.1");
    cfg.faults.drop_rate = drop;
    escalation.add(cfg,
                   bench::collective_spec(coll::Op::kAlltoall, 256 * 1024,
                                          coll::PowerScheme::kProposed, 2, 1),
                   "drop=" + Table::num(drop, 3));
  }
  const auto esc = run_classified_or_exit(escalation);

  Table e({"drop_rate", "status", "latency_us", "retransmits", "abandoned"});
  for (const CellResult& r : esc) {
    const fault::FaultStats& f = r.report.faults;
    e.add_row({escalation.cells[r.index].label, to_string(r.status.outcome),
               num_or_dash(r, r.report.latency.us(), 1),
               std::to_string(f.retransmits),
               std::to_string(f.messages_abandoned)});
  }
  e.print(std::cout);

  std::cout << "\nShape check: every cell above carries a classified status —\n"
               "recovered runs report the retransmits/preemptions/fallbacks\n"
               "they absorbed, and overwhelmed runs degrade to 'unreachable'\n"
               "instead of deadlocking the sweep.\n";
  return 0;
}

#include "sym/collapse.hpp"

#include "fault/fault.hpp"
#include "pacc/simulation.hpp"

namespace pacc::sym {
namespace {

CollapseDecision full(std::string reason) {
  CollapseDecision d;
  d.reason = std::move(reason);
  return d;
}

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

/// Whether an alltoall/alltoallv run under PowerScheme::kProposed executes
/// an equivariant schedule. Mirrors the dispatch in coll/alltoall*.cpp plus
/// plan.cpp's power_exchange_is_xor: if the §V exchange is not applicable
/// (fewer than 2 nodes, non-2-socket machine, or one empty socket group per
/// node) the run falls back to per-call DVFS over the pairwise schedule —
/// equivariant. If it is applicable, the XOR-structured variant (fabric
/// shape, power-of-two nodes and ppn) is equivariant; the flat-switch
/// circle tournament is not.
bool proposed_is_equivariant(const ClusterConfig& config) {
  int sockets = 2;
  int cores_per_socket = 4;
  if (config.machine) {
    sockets = config.machine->shape.sockets_per_node;
    cores_per_socket = config.machine->shape.cores_per_socket;
  }
  const int ppn = config.ranks_per_node;
  const bool both_sockets_populated =
      config.affinity == hw::AffinityPolicy::kBunch ? ppn > cores_per_socket
                                                    : ppn >= 2;
  const bool applicable =
      config.nodes >= 2 && sockets == 2 && both_sockets_populated;
  if (!applicable) return true;  // falls back to DVFS over pairwise
  return (!config.fabric.empty() || config.dragonfly.enabled()) &&
         is_pow2(config.nodes) && is_pow2(ppn);
}

}  // namespace

CollapseDecision decide(const ClusterConfig& config,
                        const CollectiveBenchSpec& spec) {
  if (config.collapse_multiplicity == 1) {
    return full("collapse disabled by config");
  }

  // --- the run itself must be symmetric ----------------------------------
  switch (spec.op) {
    case coll::Op::kAlltoall:
    case coll::Op::kAlltoallv:
    case coll::Op::kBarrier:
      break;  // pairwise / Bruck / dissemination schedules are equivariant
    default:
      return full("op has no rank-equivariant schedule (rooted or unported)");
  }
  switch (spec.scheme) {
    case coll::PowerScheme::kNone:
    case coll::PowerScheme::kFreqScaling:
      break;  // per-call DVFS is a per-rank uniform action
    case coll::PowerScheme::kProposed:
      // Barrier has no §V variant — it runs DVFS-wrapped dissemination.
      if (spec.op != coll::Op::kBarrier && !proposed_is_equivariant(config)) {
        return full(
            "proposed scheme's circle tournament is not "
            "translation-equivariant on flat shapes");
      }
      break;
  }

  // --- the observation must not distinguish group members ----------------
  if (config.obs.trace) {
    return full("tracing records per-rank spans — every rank must exist");
  }
  if (config.governor.enabled) {
    switch (config.governor.kind) {
      case mpi::GovernorKind::kReactive:
        return full(
            "reactive governor state is per-core history, not symmetric");
      case mpi::GovernorKind::kPowerCap:
        return full(
            "power-cap redistribution tracks a per-node wait census — run "
            "1:1");
      case mpi::GovernorKind::kSlack:
        // The slack timer is a deterministic per-core policy driven only by
        // the rank's own wait durations, which are translation-equivariant
        // on an equivariant schedule — representatives behave exactly like
        // their images, so the run collapses.
        break;
    }
  }

  // --- the cluster must have the quotient structure ----------------------
  if (config.nodes_per_rack != 0) {
    return full("legacy rack layer groups nodes asymmetrically at the top");
  }
  if (config.ranks != config.nodes * config.ranks_per_node) {
    return full("partial occupancy breaks node interchangeability");
  }
  if (config.dragonfly.adaptive) {
    // The Valiant intermediate group is a function of absolute group ids,
    // so detour paths differ between a group and its translation image.
    return full(
        "adaptive dragonfly routing picks absolute intermediate groups — "
        "not translation-equivariant; use minimal routing to collapse");
  }
  const bool grouped_fabric =
      !config.fabric.empty() || config.dragonfly.enabled();
  int nodes_per_group = 1;
  if (config.dragonfly.enabled()) {
    nodes_per_group =
        config.dragonfly.routers_per_group * config.dragonfly.nodes_per_router;
  } else {
    for (const hw::FabricLevelSpec& level : config.fabric) {
      nodes_per_group *= level.group_size;
    }
  }
  const int groups =
      grouped_fabric ? config.nodes / nodes_per_group : config.nodes;
  if (groups < 2) {
    return full("single top-level group: no classes to merge");
  }

  CollapseDecision d;
  d.multiplicity = groups;
  d.classes = config.ranks / groups;

  if (config.collapse_multiplicity > 1 &&
      config.collapse_multiplicity != d.multiplicity) {
    return full("configured multiplicity does not match the fabric's top "
                "level");
  }

  // --- faults pin events to named nodes: de-collapse, with blame ---------
  if (config.faults.active()) {
    const int group_nodes = grouped_fabric ? config.nodes / groups : 1;
    CollapseDecision broken = full("fault injection breaks rank symmetry");
    for (int node :
         fault::FaultInjector::straggler_nodes(config.faults, config.nodes)) {
      broken.broken_classes.push_back(node % group_nodes);
    }
    return broken;
  }

  return d;
}

}  // namespace pacc::sym

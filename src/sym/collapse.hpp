// Rank-symmetry collapse: simulate one representative per symmetry class.
//
// Since the collective layer became a pure per-rank plan program (PR 5), a
// rank's behaviour is a function of (plan program, placement class, fabric
// position class) alone. On a fabric whose top level consists of m
// identical groups — or a flat switch, where every node is such a group —
// the ranks split into N/m classes of m interchangeable members each, and
// the whole run can be simulated on the quotient cluster holding just the
// first group: every flow, completion and energy integral of the missing
// groups is a byte-exact image of a representative's, so reports scale by
// the multiplicity m instead of being simulated m times.
//
// The collapse is sound only when the whole run commutes with the group
// action that permutes the classes:
//  - kCyclic: rank translation x → (x + k·R) mod N. Satisfied by the
//    non-power-of-two pairwise schedule, Bruck, and the dissemination
//    barrier, whose peer offsets depend only on distance.
//  - kXor: rank reflection x → x ⊕ (k·R) (N, R powers of two). Satisfied
//    by the power-of-two pairwise schedule (peer = me ^ step).
// The proposed power-aware exchange is NOT equivariant — its phase-4
// tournament (circle method, fixed player 0) singles ranks out — so it
// always runs 1:1, as do rooted collectives, traced runs and faulted runs
// (a straggler or link flap breaks exactly the classes it lands on).
//
// decide() is the single eligibility gate: it inspects a measurement's
// cluster + spec and returns the multiplicity to run with, the reason when
// it degrades to 1:1, and the classes a fault spec would break.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pacc {
struct ClusterConfig;
struct CollectiveBenchSpec;
}  // namespace pacc

namespace pacc::sym {

/// Group action a plan's schedule commutes with; executors stamp the
/// action on the sending rank while walking a plan, and the collapsed
/// runtime uses it to relabel cross-group messages (see mpi::Rank::send).
enum class CollapseAction : std::uint8_t {
  kNone,    ///< no rewrite legal — cross-group sends assert
  kCyclic,  ///< x → (x + k·R) mod N
  kXor,     ///< x → x ⊕ (k·R); requires power-of-two N and R
};

/// Verdict of the eligibility gate for one measurement.
struct CollapseDecision {
  /// Class size m: every simulated rank stands for m logical ranks.
  /// 1 = run uncollapsed.
  int multiplicity = 1;
  /// Distinct rank-symmetry classes (= representative ranks simulated).
  int classes = 0;
  /// Why the run stays 1:1 (empty when collapsed).
  std::string reason;
  /// Node classes (node index within the representative group, or the
  /// straggler's own node for pinned faults) whose symmetry the fault spec
  /// breaks. Non-empty only when faults forced multiplicity 1.
  std::vector<int> broken_classes;

  bool active() const { return multiplicity > 1; }
};

/// Eligibility gate: the multiplicity measure_collective should run
/// `spec` on `config` with. Honors ClusterConfig::collapse_multiplicity
/// (0 = decide here, 1 = forced full, >1 = forced — validated).
CollapseDecision decide(const ClusterConfig& config,
                        const CollectiveBenchSpec& spec);

}  // namespace pacc::sym

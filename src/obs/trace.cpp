#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "hw/machine.hpp"
#include "util/expect.hpp"

namespace pacc::obs {
namespace {

constexpr std::string_view kUntracked = "(untracked)";

/// JSON string escape for names/categories (control chars, quote, backslash).
void write_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Microseconds with nanosecond precision, as Chrome trace expects.
void write_us(std::ostream& os, std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  os << buf;
}

}  // namespace

TraceRecorder::TraceRecorder(sim::Engine& engine) : engine_(engine) {
  last_mark_ = engine_.now();
}

void TraceRecorder::attach_machine(hw::Machine& machine) {
  machine_ = &machine;
  shape_ = machine.shape();
  last_energy_ = machine.total_energy();
  last_mark_ = engine_.now();
}

TrackId TraceRecorder::core_track(const hw::CoreId& core) const {
  const int tid = machine_ != nullptr
                      ? core.socket * shape_.cores_per_socket + core.core_in_socket
                      : core.core_in_socket;
  return TrackId{core.node, tid};
}

void TraceRecorder::set_track_name(TrackId track, std::string name) {
  track_names_[{track.pid, track.tid}] = std::move(name);
}

TraceRecorder::Event& TraceRecorder::push(Event::Kind kind, TrackId track,
                                          std::string_view name,
                                          std::string_view cat,
                                          std::initializer_list<Arg> args) {
  Event& e = events_.emplace_back();
  e.kind = kind;
  e.track = track;
  e.name.assign(name);
  e.cat.assign(cat);
  PACC_EXPECTS(args.size() <= 3);
  for (const Arg& a : args) e.args[e.nargs++] = a;
  return e;
}

void TraceRecorder::complete_span(TrackId track, std::string_view name,
                                  std::string_view cat, TimePoint begin,
                                  std::initializer_list<Arg> args) {
  if (!enabled_) return;
  Event& e = push(Event::Kind::kSpan, track, name, cat, args);
  e.begin = begin;
  e.dur = engine_.now() - begin;
}

void TraceRecorder::complete_span(TrackId track, std::string_view name,
                                  std::string_view cat, TimePoint begin,
                                  const Arg* args, int nargs) {
  if (!enabled_) return;
  PACC_EXPECTS(nargs >= 0 && nargs <= 3);
  Event& e = push(Event::Kind::kSpan, track, name, cat, {});
  for (int i = 0; i < nargs; ++i) e.args[e.nargs++] = args[i];
  e.begin = begin;
  e.dur = engine_.now() - begin;
}

void TraceRecorder::instant(TrackId track, std::string_view name,
                            std::string_view cat,
                            std::initializer_list<Arg> args) {
  if (!enabled_) return;
  Event& e = push(Event::Kind::kInstant, track, name, cat, args);
  e.begin = engine_.now();
}

void TraceRecorder::counter(TrackId track, std::string_view name,
                            double value) {
  if (!enabled_) return;
  Event& e = push(Event::Kind::kCounter, track, name, {}, {});
  e.begin = engine_.now();
  e.value = value;
}

std::size_t TraceRecorder::bucket_index(std::string_view name) {
  if (auto it = bucket_by_name_.find(name); it != bucket_by_name_.end()) {
    return it->second;
  }
  const std::size_t idx = buckets_.size();
  PhaseEnergy& b = buckets_.emplace_back();
  b.name.assign(name);
  bucket_by_name_.emplace(b.name, idx);
  return idx;
}

void TraceRecorder::flush_energy() {
  if (machine_ == nullptr) return;
  const Joules e = machine_->total_energy();
  const TimePoint t = engine_.now();
  const std::size_t idx = phase_stack_.empty() ? bucket_index(kUntracked)
                                               : phase_stack_.back();
  buckets_[idx].joules += e - last_energy_;
  buckets_[idx].time += t - last_mark_;
  last_energy_ = e;
  last_mark_ = t;
}

void TraceRecorder::phase_begin(std::string_view name) {
  if (!enabled_) return;
  flush_energy();
  const std::size_t idx = bucket_index(name);
  buckets_[idx].calls += 1;
  phase_stack_.push_back(idx);
}

void TraceRecorder::phase_end() {
  if (!enabled_) return;
  PACC_EXPECTS_MSG(!phase_stack_.empty(), "phase_end without phase_begin");
  flush_energy();
  phase_stack_.pop_back();
}

std::vector<PhaseEnergy> TraceRecorder::energy_breakdown() {
  flush_energy();
  return buckets_;
}

Joules TraceRecorder::attributed_energy() {
  flush_energy();
  Joules total = 0.0;
  for (const PhaseEnergy& b : buckets_) total += b.joules;
  return total;
}

void TraceRecorder::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: process (node) and thread (core) names.
  std::int32_t last_pid = -1;
  for (const auto& [key, name] : track_names_) {
    if (key.first != last_pid) {
      last_pid = key.first;
      sep();
      os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << key.first
         << ",\"tid\":0,\"args\":{\"name\":\"node" << key.first << "\"}}";
    }
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"";
    write_escaped(os, name);
    os << "\"}}";
  }

  for (const Event& e : events_) {
    sep();
    os << "{\"name\":\"";
    write_escaped(os, e.name);
    os << "\",";
    if (!e.cat.empty()) {
      os << "\"cat\":\"";
      write_escaped(os, e.cat);
      os << "\",";
    }
    switch (e.kind) {
      case Event::Kind::kSpan:
        os << "\"ph\":\"X\",\"ts\":";
        write_us(os, e.begin.ns());
        os << ",\"dur\":";
        write_us(os, e.dur.ns());
        break;
      case Event::Kind::kInstant:
        os << "\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        write_us(os, e.begin.ns());
        break;
      case Event::Kind::kCounter:
        os << "\"ph\":\"C\",\"ts\":";
        write_us(os, e.begin.ns());
        break;
    }
    os << ",\"pid\":" << e.track.pid << ",\"tid\":" << e.track.tid;
    if (e.kind == Event::Kind::kCounter) {
      os << ",\"args\":{\"value\":" << e.value << "}";
    } else if (e.nargs > 0) {
      os << ",\"args\":{";
      for (int i = 0; i < e.nargs; ++i) {
        if (i > 0) os << ",";
        os << "\"" << e.args[i].key << "\":" << e.args[i].value;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace pacc::obs

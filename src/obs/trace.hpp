// Observability layer: Chrome-trace recording + exact energy attribution.
//
// TraceRecorder collects spans (collective phases, P/T-state transitions,
// point-to-point sends/recvs), instants and counters on (pid, tid) tracks —
// one pid per node, one tid per core — and writes them in the Chrome trace
// event format (chrome://tracing / Perfetto, "X"/"i"/"C" events).
//
// It also owns the *exact* per-phase energy attribution: hw::Machine already
// integrates power event-driven at every state change, so a phase boundary
// only has to snapshot Machine::total_energy(). A single designated rank
// (global rank 0) drives a stack of named phases; every joule of the run
// lands in exactly one bucket (the interval deltas telescope), so the
// per-phase breakdown sums to the machine's total energy integral exactly —
// unlike the sampled clamp meter, which is now just a view.
//
// Everything is zero-overhead when disabled: hook sites read one pointer
// from the engine (sim::Engine::tracer(), nullptr by default) and skip.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hw/topology.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace pacc::hw {
class Machine;
}  // namespace pacc::hw

namespace pacc::obs {

/// Chrome-trace track: pid = node, tid = linear core within the node.
struct TrackId {
  std::int32_t pid = 0;
  std::int32_t tid = 0;
};

/// One integer argument attached to an event. Keys must have static storage
/// duration (string literals at the hook sites).
struct Arg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// Aggregated exact energy of one named phase across a run.
struct PhaseEnergy {
  std::string name;
  Joules joules = 0.0;
  Duration time;          ///< wall time attributed to the phase
  std::uint64_t calls = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(sim::Engine& engine);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Enables energy attribution (phase_begin/phase_end) and core→track
  /// mapping; snapshots the machine's current energy as the baseline.
  void attach_machine(hw::Machine& machine);

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  sim::Engine& engine() { return engine_; }

  /// Track of a core: pid = node, tid = socket·cores_per_socket + core.
  /// Requires attach_machine (falls back to tid = core otherwise).
  TrackId core_track(const hw::CoreId& core) const;

  /// Names a track in the JSON metadata (thread_name).
  void set_track_name(TrackId track, std::string name);

  // --- event emission (no-ops while disabled) ---

  /// Complete span ("X") from `begin` to now.
  void complete_span(TrackId track, std::string_view name,
                     std::string_view cat, TimePoint begin,
                     std::initializer_list<Arg> args = {});
  void complete_span(TrackId track, std::string_view name,
                     std::string_view cat, TimePoint begin, const Arg* args,
                     int nargs);
  /// Instant event ("i").
  void instant(TrackId track, std::string_view name, std::string_view cat,
               std::initializer_list<Arg> args = {});
  /// Counter sample ("C").
  void counter(TrackId track, std::string_view name, double value);

  // --- exact energy attribution ---
  //
  // A single driver (by convention global rank 0) brackets phases; nesting
  // uses self-time semantics: while a child phase is open, energy accrues
  // to the child. Energy outside any phase accrues to "(untracked)".

  void phase_begin(std::string_view name);
  void phase_end();

  /// Flushes the open interval and returns the per-phase buckets in
  /// first-seen order. The joules over all buckets sum to the machine's
  /// total energy integral since attach_machine (exact, event-driven).
  std::vector<PhaseEnergy> energy_breakdown();

  /// Sum of all attributed joules (equals the breakdown's total).
  Joules attributed_energy();

  // --- inspection / output ---

  struct Event {
    enum class Kind : std::uint8_t { kSpan, kInstant, kCounter };
    Kind kind = Kind::kSpan;
    TrackId track;
    std::string name;
    std::string cat;
    TimePoint begin;
    Duration dur;        ///< spans only
    double value = 0.0;  ///< counters only
    int nargs = 0;
    Arg args[3];
  };

  const std::vector<Event>& events() const { return events_; }
  std::size_t event_count() const { return events_.size(); }

  /// Writes the full Chrome trace JSON ({"traceEvents": [...]}).
  void write_json(std::ostream& os) const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  Event& push(Event::Kind kind, TrackId track, std::string_view name,
              std::string_view cat, std::initializer_list<Arg> args);
  std::size_t bucket_index(std::string_view name);
  void flush_energy();

  sim::Engine& engine_;
  hw::Machine* machine_ = nullptr;
  hw::ClusterShape shape_;
  bool enabled_ = true;

  std::vector<Event> events_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string> track_names_;

  // Energy attribution state.
  std::vector<PhaseEnergy> buckets_;  ///< first-seen order
  std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>>
      bucket_by_name_;
  std::vector<std::size_t> phase_stack_;
  Joules last_energy_ = 0.0;
  TimePoint last_mark_;
};

/// RAII span guard: emits one complete span on `track` for the scope's
/// lifetime — including coroutine frames destroyed at an early co_return.
/// A null recorder (tracing disabled) makes it a no-op.
class PhaseSpan {
 public:
  PhaseSpan(TraceRecorder* recorder, TrackId track, const char* name,
            const char* cat, std::initializer_list<Arg> args = {})
      : tr_(recorder != nullptr && recorder->enabled() ? recorder : nullptr),
        track_(track),
        name_(name),
        cat_(cat) {
    if (tr_ == nullptr) return;
    begin_ = tr_->engine().now();
    for (const Arg& a : args) {
      if (nargs_ < 3) args_[nargs_++] = a;
    }
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;
  ~PhaseSpan() {
    if (tr_ != nullptr) {
      tr_->complete_span(track_, name_, cat_, begin_, args_, nargs_);
    }
  }

 private:
  TraceRecorder* tr_;
  TrackId track_;
  const char* name_;
  const char* cat_;
  TimePoint begin_;
  Arg args_[3];
  int nargs_ = 0;
};

}  // namespace pacc::obs

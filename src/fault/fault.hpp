// Deterministic, seeded fault injection for the whole simulated cluster.
//
// A FaultSpec describes what can go wrong — dropped or delayed inter-node
// messages, HCA/rack links that flap down for bounded intervals, straggler
// nodes, P/T-state transitions that fail or stretch — plus the recovery
// parameters (ack timeout, exponential backoff, retry budget) the runtime's
// IB-RC-style retransmit layer uses to survive it. A FaultInjector owns the
// run's fault state: it arms the machine's transition hook, slows straggler
// nodes, drives the link-flap timers, and answers the per-message and
// per-collective fault draws.
//
// Determinism: every draw comes from a counter-free or per-entity-counter
// hash stream keyed on (seed, category, entity, draw index) — SplitMix64
// finalizers, no shared RNG state — so a decision depends only on *which*
// entity is asking for its *n*-th verdict, never on how events interleaved
// to get there. Same seed ⇒ same faults, byte-identical artifacts, at any
// campaign --jobs value. An all-zero-rate spec is inactive: no injector is
// created and the run is bit-for-bit the fault-free baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hw/machine.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace pacc::fault {

/// What can go wrong, and how hard the runtime tries to recover.
struct FaultSpec {
  std::uint64_t seed = 1;

  // --- message faults (inter-node / HCA-loopback traffic only; the
  // --- shared-memory channel is exempt) ---
  double drop_rate = 0.0;   ///< P(a transmission attempt is lost on the wire)
  double delay_rate = 0.0;  ///< P(a delivery is late)
  Duration delay_max = Duration::micros(50.0);  ///< extra latency ∈ (0, max]

  // --- link faults ---
  double flap_rate_hz = 0.0;  ///< mean outages/second per HCA or rack unit
  Duration down_mean = Duration::micros(200.0);  ///< outage ∈ [0.5, 1.5]×mean
  double degrade_factor = 0.0;  ///< outage efficiency: 0 = hard down

  // --- straggler nodes ---
  int stragglers = 0;               ///< nodes whose cores run slow
  double straggler_slowdown = 1.0;  ///< cpu_slowdown multiplier on them

  // --- P/T-state transition faults ---
  double transition_fail_rate = 0.0;     ///< P(request rejected)
  double transition_stretch_rate = 0.0;  ///< P(latency stretched)
  double transition_stretch_max = 4.0;   ///< stretch ∈ (1, max]

  // --- recovery (IB-RC-style retransmit in mpi::Runtime) ---
  Duration ack_timeout = Duration::micros(40.0);  ///< first retry wait
  double backoff_factor = 2.0;  ///< wait grows by this per attempt
  int retry_budget = 6;         ///< retransmits before kUnreachable

  /// Whether messages must take the reliable (retransmit-capable) path.
  bool message_faults() const {
    return drop_rate > 0.0 || delay_rate > 0.0 || flap_rate_hz > 0.0;
  }

  /// Whether the spec injects anything at all. Inactive specs must not
  /// change a single byte of any artifact.
  bool active() const {
    return message_faults() || (stragglers > 0 && straggler_slowdown > 1.0) ||
           transition_fail_rate > 0.0 || transition_stretch_rate > 0.0;
  }

  /// Parses "key=value,key=value" (e.g. "seed=7,drop=0.02,flap=50,
  /// tfail=0.3"). Keys: seed, drop, delay, delay-us, flap, down-us,
  /// degrade, stragglers, slow, tfail, tstretch, stretch-max, ack-us,
  /// backoff, retries. Returns nullopt (and fills *error) on bad input.
  static std::optional<FaultSpec> parse(std::string_view text,
                                        std::string* error = nullptr);
};

/// What the injector (and the recovery layers reporting back to it) did to
/// one run. `disturbed()` is the kOk→kFaulted test.
struct FaultStats {
  std::uint64_t drops = 0;             ///< transmission attempts lost
  std::uint64_t delays = 0;            ///< deliveries made late
  std::uint64_t retransmits = 0;       ///< backoff waits entered
  std::uint64_t messages_abandoned = 0;  ///< retry budget exhausted
  std::uint64_t link_flaps = 0;        ///< outages begun
  std::uint64_t flows_preempted = 0;   ///< transfers killed by link-down
  std::uint64_t transition_failures = 0;
  std::uint64_t transition_stretches = 0;
  std::uint64_t scheme_fallbacks = 0;  ///< collectives degraded to default

  /// Whether any fault actually landed on the run.
  bool disturbed() const {
    return drops > 0 || delays > 0 || retransmits > 0 ||
           messages_abandoned > 0 || link_flaps > 0 || flows_preempted > 0 ||
           transition_failures > 0 || transition_stretches > 0 ||
           scheme_fallbacks > 0;
  }

  /// "drops=3 retransmits=5 …" — non-zero fields only; "" when clean.
  std::string summary() const;
};

/// Per-cell seed for campaign sweeps: derived from the cell's index in the
/// sweep (not the worker that happened to run it), so results are
/// byte-identical for any --jobs value.
std::uint64_t derive_cell_seed(std::uint64_t campaign_seed,
                               std::size_t cell_index);

class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, sim::Engine& engine,
                hw::Machine& machine, net::FlowNetwork& network);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs the machine's transition hook, slows the straggler nodes and
  /// starts the link-flap timers. Call once, before the run.
  void arm();

  /// Cancels every pending injector timer. Call before classifying the
  /// run's outcome: a live flap event would read as pending progress.
  void stop();

  const FaultSpec& spec() const { return spec_; }
  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }
  bool message_faults() const { return spec_.message_faults(); }

  /// One transmission attempt's verdict for the (src, dst) rank pair.
  struct MessageDraw {
    bool drop = false;
    Duration extra_delay;  ///< zero unless the delivery is delayed
  };
  MessageDraw next_message_draw(int src_rank, int dst_rank);

  /// Collective-consistent degradation verdict: would this call's power
  /// transition fail? Keyed on (context id, call sequence) — state every
  /// member rank shares — so all ranks of a matched call agree and the
  /// fallback algorithm stays symmetric. Pure hash; drawing is idempotent.
  bool scheme_entry_doomed(int context_id, int call_seq) const;

  /// Moves whenever a transmission attempt is made — feeds the quiescence
  /// watchdog's progress probe (an actively retrying run is not deadlocked).
  std::uint64_t attempt_count() const { return attempts_; }

  /// Fresh tid for a retransmit span track (pid = kRetryTrackPid): each
  /// reliable transmission gets its own track so overlapping retries keep
  /// the Chrome-trace per-track stack discipline.
  int next_transmission_track() { return transmission_tracks_++; }

  /// Trace track pids for fault machinery (negative: no node uses them).
  static constexpr std::int32_t kFabricTrackPid = -1;  ///< per-link flaps
  static constexpr std::int32_t kRetryTrackPid = -2;   ///< per-transmission

  /// The straggler node set `spec` selects on an `nodes`-node cluster — a
  /// pure function of (spec.seed, nodes), exactly the nodes arm() slows.
  /// Lets the symmetry-collapse gate name the classes a spec would break
  /// without standing up an injector. Empty when the spec has no effective
  /// stragglers.
  static std::vector<int> straggler_nodes(const FaultSpec& spec, int nodes);

 private:
  hw::TransitionOutcome on_transition(const hw::CoreId& core,
                                      hw::TransitionKind kind);
  void schedule_flap(int unit);
  void begin_outage(int unit);
  void end_outage(int unit, TimePoint began);
  void apply_unit_efficiency(int unit, double efficiency);
  /// Flap-unit decomposition (HCA / rack link / dragonfly router /
  /// dragonfly global link): trace label, outage span name, local index.
  std::string unit_label(int unit) const;
  const char* unit_span(int unit) const;
  int unit_index(int unit) const;
  double u01(std::uint64_t category, std::uint64_t entity,
             std::uint64_t draw) const;

  FaultSpec spec_;
  sim::Engine& engine_;
  hw::Machine& machine_;
  net::FlowNetwork& network_;
  FaultStats stats_;

  int flap_units_ = 0;  ///< nodes + racks with flappable links
  std::vector<sim::EventId> flap_event_;    ///< pending timer per unit
  std::vector<std::uint32_t> flap_count_;   ///< draw index per unit
  std::unordered_map<std::uint64_t, std::uint32_t> pair_counter_;
  std::vector<std::uint32_t> transition_counter_;  ///< per linear core
  std::uint64_t attempts_ = 0;
  int transmission_tracks_ = 0;
  std::uint64_t preempted_baseline_ = 0;
  bool armed_ = false;
};

}  // namespace pacc::fault

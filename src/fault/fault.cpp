#include "fault/fault.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace pacc::fault {

namespace {

// Draw categories: each (category, entity, draw-index) triple names one
// independent uniform variate. Decisions depend only on who is asking for
// their n-th verdict, never on event interleaving.
enum Category : std::uint64_t {
  kDropDraw = 1,
  kDelayDraw,
  kDelayAmount,
  kSchemeDoom,
  kFlapGap,
  kFlapLength,
  kTransitionFail,
  kTransitionStretch,
  kStretchAmount,
  kStragglerPick,
};

/// SplitMix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t cat, std::uint64_t a,
                    std::uint64_t b) {
  std::uint64_t h = mix64(seed + 0x9e3779b97f4a7c15ull * (cat + 1));
  h = mix64(h ^ a);
  return mix64(h ^ b);
}

std::uint64_t pair_key(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

void append_stat(std::string& out, const char* name, std::uint64_t v) {
  if (v == 0) return;
  if (!out.empty()) out += ' ';
  out += name;
  out += '=';
  out += std::to_string(v);
}

}  // namespace

std::uint64_t derive_cell_seed(std::uint64_t campaign_seed,
                               std::size_t cell_index) {
  return mix64(campaign_seed ^ mix64(0xc3a5c85c97cb3127ull + cell_index));
}

std::vector<int> FaultInjector::straggler_nodes(const FaultSpec& spec,
                                                int nodes) {
  std::vector<int> picked;
  if (spec.stragglers <= 0 || spec.straggler_slowdown <= 1.0 || nodes <= 0) {
    return picked;
  }
  std::vector<int> order(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) order[static_cast<std::size_t>(n)] = n;
  const int count = std::min(spec.stragglers, nodes);
  picked.reserve(static_cast<std::size_t>(count));
  // Partial Fisher–Yates with per-position draws: the straggler set is a
  // function of (seed, nodes) alone.
  for (int i = 0; i < count; ++i) {
    const double u = static_cast<double>(
                         hash3(spec.seed, kStragglerPick,
                               static_cast<std::uint64_t>(i), 0) >>
                         11) *
                     0x1.0p-53;
    const int j = i + static_cast<int>(u * static_cast<double>(nodes - i));
    std::swap(order[static_cast<std::size_t>(i)],
              order[static_cast<std::size_t>(j)]);
    picked.push_back(order[static_cast<std::size_t>(i)]);
  }
  return picked;
}

// ---------------------------------------------------------- FaultSpec ----

std::optional<FaultSpec> FaultSpec::parse(std::string_view text,
                                          std::string* error) {
  FaultSpec spec;
  auto fail = [error](std::string msg) -> std::optional<FaultSpec> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::string_view item = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return fail("expected key=value, got '" + std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    double num = 0.0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), num);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      return fail("bad number '" + std::string(value) + "' for '" +
                  std::string(key) + "'");
    }
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(num);
    } else if (key == "drop") {
      spec.drop_rate = num;
    } else if (key == "delay") {
      spec.delay_rate = num;
    } else if (key == "delay-us") {
      spec.delay_max = Duration::micros(num);
    } else if (key == "flap") {
      spec.flap_rate_hz = num;
    } else if (key == "down-us") {
      spec.down_mean = Duration::micros(num);
    } else if (key == "degrade") {
      spec.degrade_factor = num;
    } else if (key == "stragglers") {
      spec.stragglers = static_cast<int>(num);
    } else if (key == "slow") {
      spec.straggler_slowdown = num;
    } else if (key == "tfail") {
      spec.transition_fail_rate = num;
    } else if (key == "tstretch") {
      spec.transition_stretch_rate = num;
    } else if (key == "stretch-max") {
      spec.transition_stretch_max = num;
    } else if (key == "ack-us") {
      spec.ack_timeout = Duration::micros(num);
    } else if (key == "backoff") {
      spec.backoff_factor = num;
    } else if (key == "retries") {
      spec.retry_budget = static_cast<int>(num);
    } else {
      return fail("unknown fault key '" + std::string(key) + "'");
    }
  }
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!rate_ok(spec.drop_rate) || !rate_ok(spec.delay_rate) ||
      !rate_ok(spec.transition_fail_rate) ||
      !rate_ok(spec.transition_stretch_rate)) {
    return fail("rates must lie in [0, 1]");
  }
  if (spec.flap_rate_hz < 0.0 || spec.degrade_factor < 0.0 ||
      spec.degrade_factor >= 1.0) {
    return fail("flap must be >= 0 and degrade in [0, 1)");
  }
  if (spec.stragglers < 0 || spec.straggler_slowdown < 1.0) {
    return fail("stragglers must be >= 0 and slow >= 1");
  }
  if (spec.transition_stretch_max <= 1.0 || spec.backoff_factor < 1.0 ||
      spec.retry_budget < 0 || spec.ack_timeout.ns() <= 0 ||
      spec.down_mean.ns() <= 0 || spec.delay_max.ns() <= 0) {
    return fail("recovery/interval parameters out of range");
  }
  return spec;
}

std::string FaultStats::summary() const {
  std::string out;
  append_stat(out, "drops", drops);
  append_stat(out, "delays", delays);
  append_stat(out, "retransmits", retransmits);
  append_stat(out, "abandoned", messages_abandoned);
  append_stat(out, "flaps", link_flaps);
  append_stat(out, "preempted", flows_preempted);
  append_stat(out, "tfail", transition_failures);
  append_stat(out, "tstretch", transition_stretches);
  append_stat(out, "fallbacks", scheme_fallbacks);
  return out;
}

// ------------------------------------------------------- FaultInjector ----

FaultInjector::FaultInjector(const FaultSpec& spec, sim::Engine& engine,
                             hw::Machine& machine, net::FlowNetwork& network)
    : spec_(spec), engine_(engine), machine_(machine), network_(network) {
  PACC_EXPECTS_MSG(spec_.active(), "injector built from an inactive spec");
}

double FaultInjector::u01(std::uint64_t category, std::uint64_t entity,
                          std::uint64_t draw) const {
  return static_cast<double>(hash3(spec_.seed, category, entity, draw) >> 11) *
         0x1.0p-53;
}

void FaultInjector::arm() {
  PACC_EXPECTS_MSG(!armed_, "injector armed twice");
  armed_ = true;
  preempted_baseline_ = network_.flows_preempted();

  if (spec_.transition_fail_rate > 0.0 || spec_.transition_stretch_rate > 0.0) {
    transition_counter_.assign(
        static_cast<std::size_t>(machine_.shape().total_cores()), 0);
    machine_.set_transition_fault_hook(
        [this](const hw::CoreId& core, hw::TransitionKind kind) {
          return on_transition(core, kind);
        });
  }

  for (int node : straggler_nodes(spec_, machine_.shape().nodes)) {
    machine_.set_node_slowdown(node, spec_.straggler_slowdown);
  }

  if (spec_.flap_rate_hz > 0.0) {
    const auto& shape = machine_.shape();
    const bool rack_layer =
        shape.has_racks() && network_.params().rack_bandwidth > 0.0;
    // Flappable fabric units, in id order: every node's HCA, then the rack
    // aggregation links (legacy shapes), then — on dragonfly shapes — every
    // router's local link pair and every group's global link pair.
    flap_units_ = shape.nodes + (rack_layer ? shape.racks() : 0) +
                  (shape.has_dragonfly()
                       ? shape.df_routers_total() + shape.df_groups()
                       : 0);
    flap_event_.assign(static_cast<std::size_t>(flap_units_), 0);
    flap_count_.assign(static_cast<std::size_t>(flap_units_), 0);
    if (auto* tr = engine_.tracer()) {
      for (int u = 0; u < flap_units_; ++u) {
        tr->set_track_name(obs::TrackId{kFabricTrackPid, u},
                           unit_label(u) + " " + std::to_string(unit_index(u)));
      }
    }
    for (int u = 0; u < flap_units_; ++u) schedule_flap(u);
  }
}

void FaultInjector::stop() {
  for (auto& ev : flap_event_) {
    if (ev != 0) {
      engine_.cancel(ev);
      ev = 0;
    }
  }
  stats_.flows_preempted = network_.flows_preempted() - preempted_baseline_;
}

FaultInjector::MessageDraw FaultInjector::next_message_draw(int src_rank,
                                                            int dst_rank) {
  const std::uint64_t key = pair_key(src_rank, dst_rank);
  const std::uint32_t n = pair_counter_[key]++;
  ++attempts_;
  MessageDraw draw;
  if (spec_.drop_rate > 0.0 && u01(kDropDraw, key, n) < spec_.drop_rate) {
    draw.drop = true;
    ++stats_.drops;
    return draw;
  }
  if (spec_.delay_rate > 0.0 && u01(kDelayDraw, key, n) < spec_.delay_rate) {
    const double frac = u01(kDelayAmount, key, n);
    draw.extra_delay = Duration::nanos(
        1 + static_cast<std::int64_t>(frac *
                                      static_cast<double>(spec_.delay_max.ns() -
                                                          1)));
    ++stats_.delays;
  }
  return draw;
}

bool FaultInjector::scheme_entry_doomed(int context_id, int call_seq) const {
  if (spec_.transition_fail_rate <= 0.0) return false;
  return u01(kSchemeDoom, static_cast<std::uint64_t>(context_id),
             static_cast<std::uint64_t>(call_seq)) < spec_.transition_fail_rate;
}

hw::TransitionOutcome FaultInjector::on_transition(const hw::CoreId& core,
                                                   hw::TransitionKind kind) {
  const auto lc = static_cast<std::uint64_t>(
      hw::linear_core(machine_.shape(), core));
  // One draw index per transition the core issues, shared across kinds so
  // the stream stays a function of the core's own transition history.
  (void)kind;
  const std::uint32_t n =
      transition_counter_[static_cast<std::size_t>(lc)]++;
  hw::TransitionOutcome outcome;
  if (spec_.transition_fail_rate > 0.0 &&
      u01(kTransitionFail, lc, n) < spec_.transition_fail_rate) {
    outcome.apply = false;
    ++stats_.transition_failures;
  } else if (spec_.transition_stretch_rate > 0.0 &&
             u01(kTransitionStretch, lc, n) < spec_.transition_stretch_rate) {
    outcome.latency_scale =
        1.0 + u01(kStretchAmount, lc, n) * (spec_.transition_stretch_max - 1.0);
    ++stats_.transition_stretches;
  }
  return outcome;
}

void FaultInjector::schedule_flap(int unit) {
  const auto u = static_cast<std::size_t>(unit);
  const std::uint32_t n = flap_count_[u]++;
  // Exponential inter-outage gap with mean 1/flap_rate.
  const double draw = u01(kFlapGap, static_cast<std::uint64_t>(unit), n);
  const double gap_sec = -std::log1p(-draw) / spec_.flap_rate_hz;
  const auto gap = Duration::nanos(
      1 + static_cast<std::int64_t>(std::min(gap_sec * 1e9, 9.0e15)));
  flap_event_[u] =
      engine_.schedule(gap, [this, unit] { begin_outage(unit); });
}

void FaultInjector::begin_outage(int unit) {
  const auto u = static_cast<std::size_t>(unit);
  flap_event_[u] = 0;
  ++stats_.link_flaps;
  const TimePoint began = engine_.now();
  apply_unit_efficiency(unit, spec_.degrade_factor);
  const std::uint32_t n = flap_count_[u]++;
  // Bounded outage: [0.5, 1.5] × the configured mean.
  const double frac =
      0.5 + u01(kFlapLength, static_cast<std::uint64_t>(unit), n);
  const auto down = Duration::nanos(static_cast<std::int64_t>(
      frac * static_cast<double>(spec_.down_mean.ns())));
  flap_event_[u] = engine_.schedule(
      down, [this, unit, began] { end_outage(unit, began); });
}

void FaultInjector::end_outage(int unit, TimePoint began) {
  const auto u = static_cast<std::size_t>(unit);
  flap_event_[u] = 0;
  apply_unit_efficiency(unit, 1.0);
  if (auto* tr = engine_.tracer()) {
    tr->complete_span(obs::TrackId{kFabricTrackPid, unit}, unit_span(unit),
                      "fault", began, {{"unit", unit_index(unit)}});
  }
  schedule_flap(unit);
}

std::string FaultInjector::unit_label(int unit) const {
  const auto& shape = machine_.shape();
  int u = unit - shape.nodes;
  if (u < 0) return "hca node";
  if (!shape.has_dragonfly()) return "rack link";
  if (u < shape.df_routers_total()) return "df router";
  return "df global";
}

const char* FaultInjector::unit_span(int unit) const {
  const auto& shape = machine_.shape();
  int u = unit - shape.nodes;
  if (u < 0) return "hca_down";
  if (!shape.has_dragonfly()) return "rack_down";
  if (u < shape.df_routers_total()) return "df_router_down";
  return "df_global_down";
}

int FaultInjector::unit_index(int unit) const {
  const auto& shape = machine_.shape();
  int u = unit - shape.nodes;
  if (u < 0) return unit;
  if (!shape.has_dragonfly()) return u;
  if (u < shape.df_routers_total()) return u;
  return u - shape.df_routers_total();
}

void FaultInjector::apply_unit_efficiency(int unit, double efficiency) {
  const auto& shape = machine_.shape();
  const int u = unit - shape.nodes;
  if (u < 0) {
    network_.set_hca_efficiency(unit, efficiency);
  } else if (!shape.has_dragonfly()) {
    network_.set_rack_efficiency(u, efficiency);
  } else if (u < shape.df_routers_total()) {
    network_.set_dragonfly_router_efficiency(u, efficiency);
  } else {
    network_.set_dragonfly_global_efficiency(u - shape.df_routers_total(),
                                             efficiency);
  }
}

}  // namespace pacc::fault

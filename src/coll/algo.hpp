// Collective-algorithm registry: enumerations, capability queries and the
// data-driven AlgoDesc table — without the collective headers.
//
// This is the light half of the former registry.hpp umbrella: benches,
// paccbench, the Campaign engine and the autotuner enumerate operations and
// algorithm candidates through the declarations here and compile against
// forward declarations only (mpi::Rank / mpi::Comm are never dereferenced
// in this header). TUs that need the collective entry points themselves
// keep including coll/registry.hpp.
//
// The AlgoDesc table is the single source of truth for what the library
// can run: every entry names one executable algorithm (the per-op default
// dispatcher or a tree/segment variant), its op, the power schemes it
// implements, its segment-size domain and its executor hooks. The
// historical supported() / governor_supported() matrices are shims over
// this table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "sim/task.hpp"
#include "util/units.hpp"

namespace pacc::mpi {
class Rank;
class Comm;
enum class GovernorKind : std::uint8_t;
}  // namespace pacc::mpi

namespace pacc::coll {

/// Power optimisation applied to a collective call (§V, §VII).
enum class PowerScheme {
  kNone,         ///< default algorithm, all cores at fmax / T0
  kFreqScaling,  ///< per-call DVFS to fmin around the default algorithm
  kProposed,     ///< the paper's DVFS + throttling-scheduled algorithms
};

std::string to_string(PowerScheme s);

/// Reduction operator over double elements.
enum class ReduceOp { kSum, kMax, kMin };

std::string to_string(ReduceOp op);

/// The collective operations this library implements.
enum class Op {
  kAlltoall,
  kAlltoallv,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kGather,
  kScatter,
  kScan,
  kReduceScatter,
  kBarrier,
};

std::string to_string(Op op);

/// Every operation, in declaration order — iterable so sweeps and tests can
/// enumerate the library instead of hard-coding subsets.
inline constexpr Op kAllOps[] = {
    Op::kAlltoall,  Op::kAlltoallv,     Op::kBcast,   Op::kReduce,
    Op::kAllreduce, Op::kAllgather,     Op::kGather,  Op::kScatter,
    Op::kScan,      Op::kReduceScatter, Op::kBarrier,
};

/// All power schemes, in the order the paper's figures present them.
inline constexpr PowerScheme kAllSchemes[] = {
    PowerScheme::kNone, PowerScheme::kFreqScaling, PowerScheme::kProposed};

/// Tree shapes of the segmented bcast/reduce variants (after Open MPI's
/// coll/adapt component; see docs/ALGORITHMS.md).
enum class TreeKind : std::uint8_t { kBinomial, kBinary, kChain, kLinear };

std::string to_string(TreeKind t);
std::optional<TreeKind> parse_tree(std::string_view name);

/// Bit of `s` in an AlgoDesc scheme-capability mask.
constexpr std::uint8_t scheme_bit(PowerScheme s) {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(s));
}

inline constexpr std::uint8_t kSchemesNoneOnly = scheme_bit(PowerScheme::kNone);
inline constexpr std::uint8_t kSchemesAll =
    scheme_bit(PowerScheme::kNone) | scheme_bit(PowerScheme::kFreqScaling) |
    scheme_bit(PowerScheme::kProposed);

/// One collective invocation, op-agnostic: the registry's executor hooks
/// receive the union of every op's arguments so a single call shape drives
/// the whole table. Spans the op does not use stay empty.
struct AlgoCall {
  std::span<std::byte> send;               ///< send buffer (bcast: in/out)
  std::span<std::byte> recv;               ///< receive / result buffer
  std::span<const Bytes> send_counts;      ///< alltoallv only
  std::span<const Bytes> recv_counts;      ///< alltoallv only
  Bytes block = 0;       ///< per-peer block / message size
  int root = 0;          ///< rooted collectives
  PowerScheme scheme = PowerScheme::kNone;
  ReduceOp reduce_op = ReduceOp::kSum;
  Bytes seg = 0;         ///< segment size for segmented variants (0 = whole)
};

/// Executor hook: runs one matched call of the algorithm on this rank.
using AlgoExec = sim::Task<> (*)(mpi::Rank&, mpi::Comm&, const AlgoCall&);

/// One registered algorithm. `exec` is the full entry point (profiling +
/// scheme negotiation + DVFS bracket — what run_op_once and --algo invoke);
/// `exec_inner` is the body alone, for callers that already negotiated the
/// scheme (the tuned-dispatch path inside bcast()/reduce()). Default
/// dispatchers have no inner hook: a tuned decision naming them simply
/// falls through to the static choice.
struct AlgoDesc {
  std::string_view name;   ///< stable CLI / tuned-table name
  Op op = Op::kAlltoall;
  std::uint8_t schemes = kSchemesNoneOnly;  ///< scheme-capability mask
  bool is_default = false; ///< the dispatcher's static choice for `op`
  bool segmented = false;  ///< accepts a seg-size knob (":seg=BYTES")
  TreeKind tree = TreeKind::kBinomial;      ///< tree variants only
  Bytes min_seg = 0;       ///< segment-size domain (non-zero seg values)
  Bytes max_seg = 0;
  AlgoExec exec = nullptr;
  AlgoExec exec_inner = nullptr;
};

/// Whether the algorithm implements `scheme`.
constexpr bool algo_supports(const AlgoDesc& desc, PowerScheme scheme) {
  return (desc.schemes & scheme_bit(scheme)) != 0;
}

/// Every registered algorithm, in table order (defaults first, then the
/// tree/segment variants). Table order is the deterministic tie-break the
/// autotuner uses.
std::span<const AlgoDesc> algorithms();

/// The entry named `name`, or nullptr. Names are stable across releases —
/// they key tuned-decision tables.
const AlgoDesc* find_algorithm(std::string_view name);

/// The default dispatcher entry for `op` (always exists).
const AlgoDesc& default_algorithm(Op op);

/// Comma-separated registered names, optionally restricted to one op —
/// for unknown-name error messages.
std::string algorithm_names(std::optional<Op> op = std::nullopt);

/// Capability shim over the AlgoDesc table: true if any registered
/// algorithm for `op` implements `scheme`.
bool supported(Op op, PowerScheme scheme);

/// Governor × scheme capability matrix. The reactive and slack governors
/// compose with every scheme (their restores clamp to the scheme's floor);
/// the power-cap governor owns every core's frequency outright, which a §V
/// scheme would fight, so it runs only with kNone.
bool governor_supported(mpi::GovernorKind kind, PowerScheme scheme);

/// The flag names the tools accept ("alltoall", "reduce_scatter", …);
/// returns nullopt for unknown names.
std::optional<Op> parse_op(std::string_view name);

/// "none"/"no-power", "dvfs"/"freq-scaling", "proposed".
std::optional<PowerScheme> parse_scheme(std::string_view name);

}  // namespace pacc::coll

#include "coll/alltoallv.hpp"

#include <numeric>
#include <vector>

#include "coll/alltoall_power.hpp"
#include "coll/copy.hpp"
#include "coll/plan.hpp"
#include "coll/power_scheme.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

std::vector<std::size_t> displacements(std::span<const Bytes> counts) {
  std::vector<std::size_t> displs(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    PACC_EXPECTS(counts[i] >= 0);
    displs[i + 1] = displs[i] + static_cast<std::size_t>(counts[i]);
  }
  return displs;
}

void check(const mpi::Comm& comm, std::span<const std::byte> send,
           std::span<const Bytes> send_counts, std::span<std::byte> recv,
           std::span<const Bytes> recv_counts) {
  const auto P = static_cast<std::size_t>(comm.size());
  PACC_EXPECTS(send_counts.size() == P && recv_counts.size() == P);
  PACC_EXPECTS(send.size() ==
               static_cast<std::size_t>(std::accumulate(
                   send_counts.begin(), send_counts.end(), Bytes{0})));
  PACC_EXPECTS(recv.size() ==
               static_cast<std::size_t>(std::accumulate(
                   recv_counts.begin(), recv_counts.end(), Bytes{0})));
}

}  // namespace

sim::Task<> alltoallv_pairwise(mpi::Rank& self, mpi::Comm& comm,
                               std::span<const std::byte> send,
                               std::span<const Bytes> send_counts,
                               std::span<std::byte> recv,
                               std::span<const Bytes> recv_counts) {
  check(comm, send, send_counts, recv, recv_counts);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const PlanPtr plan = get_plan(comm, PlanKind::kAlltoallvPairwise,
                                static_cast<Bytes>(send.size()));
  mpi::Rank::ActionScope action(self, plan->action);
  const auto sdispl = displacements(send_counts);
  const auto rdispl = displacements(recv_counts);

  PACC_EXPECTS_MSG(send_counts[static_cast<std::size_t>(me)] ==
                       recv_counts[static_cast<std::size_t>(me)],
                   "self segment sizes must agree");
  copy_bytes(recv.data() + rdispl[static_cast<std::size_t>(me)],
             send.data() + sdispl[static_cast<std::size_t>(me)],
             static_cast<std::size_t>(send_counts[static_cast<std::size_t>(me)]));

  const PlanView view(*plan, me, comm.size());
  for (const PairStep& step : plan->pair_steps[view.row()]) {
    const auto dst = static_cast<std::size_t>(view.peer(step.dst));
    const auto src = static_cast<std::size_t>(view.peer(step.src));
    co_await self.send(
        comm.global_rank(static_cast<int>(dst)), tag,
        send.subspan(sdispl[dst], static_cast<std::size_t>(send_counts[dst])));
    co_await self.recv(
        comm.global_rank(static_cast<int>(src)), tag,
        recv.subspan(rdispl[src], static_cast<std::size_t>(recv_counts[src])));
  }
}

sim::Task<> alltoallv_power_aware(mpi::Rank& self, mpi::Comm& comm,
                                  std::span<const std::byte> send,
                                  std::span<const Bytes> send_counts,
                                  std::span<std::byte> recv,
                                  std::span<const Bytes> recv_counts) {
  check(comm, send, send_counts, recv, recv_counts);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto sdispl = displacements(send_counts);
  const auto rdispl = displacements(recv_counts);

  copy_bytes(recv.data() + rdispl[static_cast<std::size_t>(me)],
             send.data() + sdispl[static_cast<std::size_t>(me)],
             static_cast<std::size_t>(send_counts[static_cast<std::size_t>(me)]));

  ExchangeOps ops;
  ops.send_to = [&self, &comm, send, &sdispl, send_counts,
                 tag](int peer) -> sim::Task<> {
    const auto p = static_cast<std::size_t>(peer);
    co_await self.send(
        comm.global_rank(peer), tag,
        send.subspan(sdispl[p], static_cast<std::size_t>(send_counts[p])));
  };
  ops.recv_from = [&self, &comm, recv, &rdispl, recv_counts,
                   tag](int peer) -> sim::Task<> {
    const auto p = static_cast<std::size_t>(peer);
    co_await self.recv(
        comm.global_rank(peer), tag,
        recv.subspan(rdispl[p], static_cast<std::size_t>(recv_counts[p])));
  };
  co_await power_aware_exchange_schedule(self, comm, ops,
                                         static_cast<Bytes>(send.size()));
}

sim::Task<> alltoallv(mpi::Rank& self, mpi::Comm& comm,
                      std::span<const std::byte> send,
                      std::span<const Bytes> send_counts,
                      std::span<std::byte> recv,
                      std::span<const Bytes> recv_counts,
                      const AlltoallvOptions& options) {
  ProfileScope prof(self, "alltoallv", static_cast<Bytes>(send.size()));
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        if (scheme == PowerScheme::kProposed &&
            power_aware_alltoall_applicable(comm)) {
          co_await alltoallv_power_aware(self, comm, send, send_counts, recv,
                                         recv_counts);
        } else {
          co_await alltoallv_pairwise(self, comm, send, send_counts, recv,
                                      recv_counts);
        }
      });
}

}  // namespace pacc::coll

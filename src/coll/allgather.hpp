// MPI_Allgather: ring and recursive-doubling algorithms plus the
// MVAPICH2-style two-level (shared-memory leader) variant.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct AllgatherOptions {
  PowerScheme scheme = PowerScheme::kNone;
};

/// Every rank contributes `send` (block bytes); all ranks end with
/// comm.size() blocks in `recv` (comm-rank order). P-1 neighbour steps.
sim::Task<> allgather_ring(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv, Bytes block);

/// Recursive doubling; requires a power-of-two comm size.
sim::Task<> allgather_recursive_doubling(mpi::Rank& self, mpi::Comm& comm,
                                         std::span<const std::byte> send,
                                         std::span<std::byte> recv,
                                         Bytes block);

/// Two-level: intra-node gather to the leader, leader ring allgather,
/// intra-node broadcast of the assembled buffer (Fig 1).
sim::Task<> allgather_smp(mpi::Rank& self, mpi::Comm& comm,
                          std::span<const std::byte> send,
                          std::span<std::byte> recv, Bytes block,
                          const AllgatherOptions& options = {});

/// Dispatcher: two-level when the comm spans multiple nodes uniformly,
/// otherwise ring / recursive doubling.
sim::Task<> allgather(mpi::Rank& self, mpi::Comm& comm,
                      std::span<const std::byte> send,
                      std::span<std::byte> recv, Bytes block,
                      const AllgatherOptions& options = {});

/// MPI_Allgatherv over a ring: rank i contributes counts[i] bytes; every
/// rank ends with the concatenation (comm-rank order) in `recv`.
sim::Task<> allgatherv_ring(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv,
                            std::span<const Bytes> counts);

}  // namespace pacc::coll

#include "coll/tuner.hpp"

#include <cinttypes>
#include <fstream>
#include <ostream>
#include <sstream>

#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "util/fsio.hpp"

namespace pacc::coll {

std::optional<TunedDecision> Tuner::lookup(const TunedKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = table_.find(key);
  if (it == table_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

bool Tuner::contains(const TunedKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.find(key) != table_.end();
}

void Tuner::record(const TunedKey& key, TunedDecision decision) {
  std::lock_guard<std::mutex> lock(mu_);
  table_[key] = std::move(decision);
}

std::size_t Tuner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

std::uint64_t Tuner::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  // FNV-1a over the sorted entries (std::map iteration is ordered, so the
  // digest is insertion-order independent by construction).
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(table_.size());
  for (const auto& [key, decision] : table_) {
    mix(static_cast<std::uint64_t>(key.op));
    mix(static_cast<std::uint64_t>(key.scheme));
    mix(static_cast<std::uint64_t>(key.bytes));
    mix(key.fingerprint);
    mix(decision.algo.size());
    for (const char c : decision.algo) mix(static_cast<unsigned char>(c));
    mix(static_cast<std::uint64_t>(decision.seg));
  }
  return h;
}

void Tuner::save(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"schema\": \"pacc-tuned-v1\",\n  \"entries\": [\n";
  std::size_t i = 0;
  for (const auto& [key, decision] : table_) {
    // The fingerprint is a full uint64; emitted as a string so JSON
    // consumers that parse numbers as doubles cannot corrupt it.
    out << "    {\"op\": \"" << to_string(key.op) << "\", \"scheme\": \""
        << to_string(key.scheme) << "\", \"bytes\": " << key.bytes
        << ", \"fingerprint\": \"" << key.fingerprint << "\", \"algo\": \""
        << decision.algo << "\", \"seg\": " << decision.seg << "}"
        << (++i < table_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

bool Tuner::save_file(const std::string& path) const {
  // Atomic replace (util/fsio.hpp): a crash mid-save must leave the old
  // complete table, never a torn prefix the strict loader would reject.
  std::ostringstream out;
  save(out);
  return atomic_write_file(path, out.str());
}

namespace {

/// Value of `"key": "..."` within `line`, or nullopt. Entries are written
/// one per line by save(), so a line-oriented scan is a full parser for
/// everything this library produces — and tolerates reformatted files as
/// long as each entry object stays on one line.
std::optional<std::string> string_field(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = line.find('"', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  const auto end = line.find('"', pos + 1);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(pos + 1, end - pos - 1);
}

/// Value of `"key": 123` within `line`, or nullopt.
std::optional<std::uint64_t> int_field(const std::string& line,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[pos] - '0');
    ++pos;
  }
  return value;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool Tuner::load(std::istream& in, std::string* error) {
  std::string line;
  bool schema_seen = false;
  bool footer_seen = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!schema_seen) {
      if (const auto schema = string_field(line, "schema")) {
        if (*schema != "pacc-tuned-v1") {
          return fail(error, "unsupported tuned-table schema: " + *schema);
        }
        schema_seen = true;
      }
      continue;
    }
    std::string trimmed = line;
    trimmed.erase(0, trimmed.find_first_not_of(" \t\r"));
    const auto last = trimmed.find_last_not_of(" \t\r");
    trimmed.erase(last == std::string::npos ? 0 : last + 1);
    if (trimmed == "}") {
      footer_seen = true;
      continue;
    }
    if (footer_seen && !trimmed.empty()) {
      return fail(error, "trailing content after tuned-table footer at line " +
                             std::to_string(line_no) + ": " + line);
    }
    if (line.find("\"op\":") == std::string::npos) continue;
    const auto op_name = string_field(line, "op");
    const auto scheme_name = string_field(line, "scheme");
    const auto fingerprint = string_field(line, "fingerprint");
    const auto bytes = int_field(line, "bytes");
    const auto algo = string_field(line, "algo");
    const auto seg = int_field(line, "seg");
    if (!op_name || !scheme_name || !fingerprint || !bytes || !algo || !seg) {
      return fail(error, "malformed tuned-table entry at line " +
                             std::to_string(line_no) + ": " + line);
    }
    const auto op = parse_op(*op_name);
    const auto scheme = parse_scheme(*scheme_name);
    if (!op || !scheme) {
      return fail(error, "unknown op/scheme in tuned-table entry at line " +
                             std::to_string(line_no) + ": " + line);
    }
    std::uint64_t fp = 0;
    for (const char c : *fingerprint) {
      if (c < '0' || c > '9') {
        return fail(error, "non-numeric fingerprint at line " +
                               std::to_string(line_no));
      }
      fp = fp * 10 + static_cast<std::uint64_t>(c - '0');
    }
    record(TunedKey{.op = *op, .scheme = *scheme, .bytes = *bytes,
                    .fingerprint = fp},
           TunedDecision{.algo = *algo, .seg = *seg});
  }
  if (!schema_seen) return fail(error, "missing pacc-tuned-v1 schema header");
  // A table without its closing brace is a torn write, not a shorter
  // table — reject it instead of silently dropping the lost tail.
  if (!footer_seen) {
    return fail(error, "truncated tuned table: missing closing brace");
  }
  return true;
}

bool Tuner::load_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) return fail(error, "cannot open tuned table: " + path);
  return load(in, error);
}

TunedDispatch tuned_choice(mpi::Comm& comm, Op op, PowerScheme scheme,
                           Bytes bytes) {
  Tuner* tuner = comm.runtime().tuner().get();
  if (tuner == nullptr) return {};
  const TunedKey key{.op = op,
                     .scheme = scheme,
                     .bytes = bytes,
                     .fingerprint = comm.structure_fingerprint()};
  const auto decision = tuner->lookup(key);
  if (!decision) return {};
  const AlgoDesc* desc = find_algorithm(decision->algo);
  if (desc == nullptr || desc->op != op || desc->exec_inner == nullptr ||
      !algo_supports(*desc, scheme)) {
    return {};
  }
  return TunedDispatch{.desc = desc, .seg = decision->seg};
}

}  // namespace pacc::coll

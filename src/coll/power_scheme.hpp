// Per-call power-management helpers shared by the power-aware collectives.
//
// The paper performs DVFS on a per-call basis: every core drops to fmin at
// the start of the collective and returns to fmax at the end, paying O_dvfs
// twice (§V). Throttle transitions are issued by each rank for its own
// socket (or core, under core-granular throttling) and pay O_throttle.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

/// Drops the calling rank's core to fmin (O_dvfs charged) when the scheme
/// performs per-call DVFS; no-op for PowerScheme::kNone.
sim::Task<> enter_low_power(mpi::Rank& self, PowerScheme scheme);

/// Restores the calling rank's core to fmax; no-op for PowerScheme::kNone.
sim::Task<> exit_low_power(mpi::Rank& self, PowerScheme scheme);

/// Throttles the calling rank (socket- or core-granular per the machine),
/// charging O_throttle.
sim::Task<> throttle_self(mpi::Rank& self, int tstate);

/// Frame-local profiling scope: records (op, bytes, elapsed) into the
/// runtime's Profiler when the enclosing coroutine body finishes. Declared
/// at the top of every collective dispatcher.
class ProfileScope {
 public:
  ProfileScope(mpi::Rank& self, const char* op, Bytes bytes)
      : self_(self), op_(op), bytes_(bytes), start_(self.engine().now()) {}
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope() {
    self_.runtime().profiler().record(op_, bytes_,
                                      self_.engine().now() - start_);
  }

 private:
  mpi::Rank& self_;
  const char* op_;
  Bytes bytes_;
  TimePoint start_;
};

/// Restores the calling rank's throttle to T0, charging O_throttle.
sim::Task<> unthrottle_self(mpi::Rank& self);

}  // namespace pacc::coll

// Per-call power-management helpers shared by the power-aware collectives.
//
// The paper performs DVFS on a per-call basis: every core drops to fmin at
// the start of the collective and returns to fmax at the end, paying O_dvfs
// twice (§V). Throttle transitions are issued by each rank for its own
// socket (or core, under core-granular throttling) and pay O_throttle.
#pragma once

#include "coll/types.hpp"
#include "obs/trace.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

/// Fault-aware scheme gate: the scheme this call should actually run with.
/// Returns `requested` on a healthy run. When the run's fault injector
/// dooms this call's power transition, the caller pays the failed O_dvfs,
/// the fallback is reported (stats + trace instant), and PowerScheme::kNone
/// comes back — the collective then runs the paper's default algorithm at
/// full power instead of silently computing in a wrong power state. Every
/// member of `comm` reaches the same verdict: the doom draw is keyed on
/// (context id, call sequence), state all members share, so the fallback
/// algorithm stays symmetric and matched calls cannot deadlock.
sim::Task<PowerScheme> negotiate_scheme(mpi::Rank& self, mpi::Comm& comm,
                                        PowerScheme requested);

/// Drops the calling rank's core to fmin (O_dvfs charged) when the scheme
/// performs per-call DVFS; no-op for PowerScheme::kNone.
sim::Task<> enter_low_power(mpi::Rank& self, PowerScheme scheme);

/// Restores the calling rank's core to fmax; no-op for PowerScheme::kNone.
sim::Task<> exit_low_power(mpi::Rank& self, PowerScheme scheme);

/// Throttles the calling rank (socket- or core-granular per the machine),
/// charging O_throttle.
sim::Task<> throttle_self(mpi::Rank& self, int tstate);

/// Shared dispatch skeleton for the collective entry points: negotiates the
/// effective scheme (fault-aware fallback to kNone), brackets the body with
/// the per-call DVFS enter/exit — both no-ops under kNone — and hands the
/// body the scheme that actually runs so it can pick the power-aware
/// algorithm variant. `body` is any callable returning sim::Task<>; it may
/// capture the dispatcher's locals by reference (the dispatcher's frame
/// outlives this call).
template <typename Body>
sim::Task<> run_with_scheme(mpi::Rank& self, mpi::Comm& comm,
                            PowerScheme requested, Body body) {
  const PowerScheme scheme = co_await negotiate_scheme(self, comm, requested);
  co_await enter_low_power(self, scheme);
  co_await body(scheme);
  co_await exit_low_power(self, scheme);
}

/// Frame-local profiling scope: records (op, bytes, elapsed) into the
/// runtime's Profiler when the enclosing coroutine body finishes. Declared
/// at the top of every collective dispatcher. When a TraceRecorder is
/// attached, the Profiler also emits the matching "coll" span; global rank 0
/// additionally brackets the op as an energy-attribution phase, so every
/// joule of a run lands in exactly one named bucket.
class ProfileScope {
 public:
  ProfileScope(mpi::Rank& self, const char* op, Bytes bytes)
      : self_(self), op_(op), bytes_(bytes), start_(self.engine().now()) {
    if (self_.id() == 0) {
      if (auto* tr = self_.engine().tracer(); tr != nullptr && tr->enabled()) {
        tr->phase_begin(op_);
        drives_phase_ = true;
      }
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope() {
    self_.runtime().profiler().record(op_, bytes_,
                                      self_.engine().now() - start_,
                                      self_.core());
    if (drives_phase_) self_.engine().tracer()->phase_end();
  }

 private:
  mpi::Rank& self_;
  const char* op_;
  Bytes bytes_;
  TimePoint start_;
  bool drives_phase_ = false;
};

/// Scope guard for one named phase *inside* a collective (e.g. the throttled
/// Phase 2 of the power-aware Alltoall). Every rank gets a span on its own
/// track; global rank 0 additionally drives the exact energy-attribution
/// bucket, nested under the enclosing ProfileScope's op bucket.
class CollPhase {
 public:
  CollPhase(mpi::Rank& self, const char* name)
      : self_(self), name_(name), start_(self.engine().now()) {
    auto* tr = self_.engine().tracer();
    if (tr == nullptr || !tr->enabled()) return;
    tr_ = tr;
    if (self_.id() == 0) {
      tr_->phase_begin(name_);
      drives_phase_ = true;
    }
  }
  CollPhase(const CollPhase&) = delete;
  CollPhase& operator=(const CollPhase&) = delete;
  ~CollPhase() {
    if (tr_ == nullptr) return;
    tr_->complete_span(tr_->core_track(self_.core()), name_, "phase", start_);
    if (drives_phase_) tr_->phase_end();
  }

 private:
  mpi::Rank& self_;
  const char* name_;
  TimePoint start_;
  obs::TraceRecorder* tr_ = nullptr;
  bool drives_phase_ = false;
};

/// Restores the calling rank's throttle to T0, charging O_throttle.
sim::Task<> unthrottle_self(mpi::Rank& self);

}  // namespace pacc::coll

#include "coll/reduce_scatter.hpp"

#include <vector>

#include "coll/copy.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/power_scheme.hpp"
#include "coll/reduce.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

void check(const mpi::Comm& comm, std::span<const std::byte> send,
           std::span<std::byte> recv, Bytes block) {
  PACC_EXPECTS(block >= 0 && block % 8 == 0);
  PACC_EXPECTS(send.size() == static_cast<std::size_t>(comm.size()) *
                                  static_cast<std::size_t>(block));
  PACC_EXPECTS(recv.size() == static_cast<std::size_t>(block));
}

}  // namespace

sim::Task<> reduce_scatter_halving(mpi::Rank& self, mpi::Comm& comm,
                                   std::span<const std::byte> send,
                                   std::span<std::byte> recv, Bytes block,
                                   ReduceOp op) {
  check(comm, send, recv, block);
  const int P = comm.size();
  PACC_EXPECTS_MSG(is_pow2(P), "recursive halving needs a power-of-two comm");
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto blk = static_cast<std::size_t>(block);

  // accum holds the blocks this rank is still responsible for:
  // the window [lo, lo + span) shrinks by half each round.
  std::vector<std::byte> accum(send.begin(), send.end());
  std::vector<std::byte> incoming;
  int lo = 0;
  int span = P;

  for (int mask = P >> 1; mask > 0; mask >>= 1) {
    const int partner = me ^ mask;
    // The half of the current window containing the partner is sent away;
    // the half containing me is kept and reduced with what arrives.
    const int mid = lo + span / 2;
    const bool keep_low = me < mid;
    const int send_lo = keep_low ? mid : lo;
    const int keep_lo = keep_low ? lo : mid;
    const auto half_bytes = static_cast<std::size_t>(span / 2) * blk;

    incoming.resize(half_bytes);
    co_await self.send(
        comm.global_rank(partner), tag,
        std::span<const std::byte>(accum).subspan(
            static_cast<std::size_t>(send_lo) * blk, half_bytes));
    co_await self.recv(comm.global_rank(partner), tag, incoming);
    reduce_bytes(op,
                 std::span<std::byte>(accum).subspan(
                     static_cast<std::size_t>(keep_lo) * blk, half_bytes),
                 incoming);
    lo = keep_lo;
    span /= 2;
  }
  PACC_ASSERT(span == 1 && lo == me);
  copy_bytes(recv.data(), accum.data() + static_cast<std::size_t>(me) * blk,
             blk);
}

sim::Task<> reduce_scatter(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv, Bytes block,
                           const ReduceScatterOptions& options) {
  check(comm, send, recv, block);
  ProfileScope prof(self, "reduce_scatter", static_cast<Bytes>(send.size()));
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme) -> sim::Task<> {
        if (is_pow2(comm.size())) {
          co_await reduce_scatter_halving(self, comm, send, recv, block,
                                          options.op);
          co_return;
        }
        // Reduce the full vector to rank 0, then scatter the blocks.
        const int me = comm.comm_rank_of(self.id());
        std::vector<std::byte> reduced(me == 0 ? send.size() : 0);
        co_await reduce_binomial(self, comm, send, reduced, options.op, 0);
        co_await scatter_binomial(
            self, comm,
            me == 0 ? std::span<const std::byte>(reduced)
                    : std::span<const std::byte>{},
            recv, block, 0);
      });
}

}  // namespace pacc::coll

#include "coll/allgather.hpp"

#include <vector>

#include "coll/bcast.hpp"
#include "coll/copy.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/power_scheme.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

void check(const mpi::Comm& comm, std::span<const std::byte> send,
           std::span<std::byte> recv, Bytes block) {
  PACC_EXPECTS(block >= 0);
  PACC_EXPECTS(send.size() == static_cast<std::size_t>(block));
  PACC_EXPECTS(recv.size() == static_cast<std::size_t>(comm.size()) *
                                  static_cast<std::size_t>(block));
}

}  // namespace

sim::Task<> allgather_ring(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv, Bytes block) {
  check(comm, send, recv, block);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto blk = static_cast<std::size_t>(block);

  copy_bytes(recv.data() + static_cast<std::size_t>(me) * blk, send.data(),
             blk);
  const int right = (me + 1) % P;
  const int left = (me - 1 + P) % P;
  for (int step = 0; step < P - 1; ++step) {
    const int send_block = (me - step + P) % P;
    const int recv_block = (me - step - 1 + P) % P;
    co_await self.send(comm.global_rank(right), tag,
                       std::span<const std::byte>(recv).subspan(
                           static_cast<std::size_t>(send_block) * blk, blk));
    co_await self.recv(comm.global_rank(left), tag,
                       recv.subspan(static_cast<std::size_t>(recv_block) * blk,
                                    blk));
  }
}

sim::Task<> allgather_recursive_doubling(mpi::Rank& self, mpi::Comm& comm,
                                         std::span<const std::byte> send,
                                         std::span<std::byte> recv,
                                         Bytes block) {
  check(comm, send, recv, block);
  const int P = comm.size();
  PACC_EXPECTS_MSG(is_pow2(P), "recursive doubling needs a power-of-two comm");
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto blk = static_cast<std::size_t>(block);

  copy_bytes(recv.data() + static_cast<std::size_t>(me) * blk, send.data(),
             blk);
  // After round k this rank owns the 2^(k+1)-aligned window containing it.
  for (int mask = 1; mask < P; mask <<= 1) {
    const int partner = me ^ mask;
    const int my_base = me & ~(mask - 1);
    const int partner_base = partner & ~(mask - 1);
    co_await self.sendrecv(
        comm.global_rank(partner), tag,
        std::span<const std::byte>(recv).subspan(
            static_cast<std::size_t>(my_base) * blk,
            static_cast<std::size_t>(mask) * blk),
        comm.global_rank(partner), tag,
        recv.subspan(static_cast<std::size_t>(partner_base) * blk,
                     static_cast<std::size_t>(mask) * blk));
  }
}

sim::Task<> allgather_smp(mpi::Rank& self, mpi::Comm& comm,
                          std::span<const std::byte> send,
                          std::span<std::byte> recv, Bytes block,
                          const AllgatherOptions& options) {
  check(comm, send, recv, block);
  PACC_EXPECTS_MSG(comm.uniform_ppn(), "two-level allgather needs uniform ppn");
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int my_node = comm.node_of(me);
  const int c = comm.ranks_per_node();
  const auto blk = static_cast<std::size_t>(block);
  const bool leader = comm.is_leader(me);
  const bool power = options.scheme == PowerScheme::kProposed;

  mpi::Comm& node_comm = comm.node_comm(my_node);
  const int node_root = 0;  // lowest comm rank on the node == leader

  // Stage 1: intra-node gather of c blocks to the leader.
  std::vector<std::byte> node_blocks;
  {
    CollPhase phase(self, "allgather.gather");
    if (leader) node_blocks.resize(static_cast<std::size_t>(c) * blk);
    co_await gather_binomial(self, node_comm, send, node_blocks, block,
                             node_root);
  }

  // Stage 2: leaders exchange node aggregates; non-leaders throttle (§V-B).
  std::vector<std::byte> gathered;
  {
    CollPhase phase(self, "allgather.inter_leader");
    const bool core_level = self.machine().params().core_level_throttling;
    if (power && !leader) {
      const int level =
          (!core_level &&
           self.socket() == comm.socket_of(comm.leader_of(my_node)))
              ? 4
              : hw::ThrottleLevel::kMax;
      co_await throttle_self(self, level);
    }
    if (leader) {
      mpi::Comm& leaders = comm.leader_comm();
      if (power && !core_level) co_await throttle_self(self, 4);
      gathered.resize(recv.size());
      co_await allgather_ring(self, leaders, node_blocks, gathered,
                              static_cast<Bytes>(c) * block);
    }

    // End of the inter-leader operation: node rendezvous, everyone back to
    // T0 before the intra-node fan-out (§V-B).
    if (power) {
      co_await comm.node_barrier(my_node).arrive_and_wait();
      if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
        co_await unthrottle_self(self);
      }
    }
  }

  // Stage 3: leader broadcasts the assembled buffer within the node over
  // shared memory.
  {
    CollPhase phase(self, "allgather.intra_bcast");
    std::span<std::byte> full =
        leader ? std::span<std::byte>(gathered) : recv;
    co_await bcast_intra_node(self, node_comm, full, node_root);
    if (leader) copy_bytes(recv.data(), gathered.data(), recv.size());
  }
}

sim::Task<> allgatherv_ring(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv,
                            std::span<const Bytes> counts) {
  const int P = comm.size();
  PACC_EXPECTS(static_cast<int>(counts.size()) == P);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);

  std::vector<std::size_t> displs(static_cast<std::size_t>(P) + 1, 0);
  for (int i = 0; i < P; ++i) {
    PACC_EXPECTS(counts[static_cast<std::size_t>(i)] >= 0);
    displs[static_cast<std::size_t>(i) + 1] =
        displs[static_cast<std::size_t>(i)] +
        static_cast<std::size_t>(counts[static_cast<std::size_t>(i)]);
  }
  PACC_EXPECTS(recv.size() == displs.back());
  PACC_EXPECTS(send.size() ==
               static_cast<std::size_t>(counts[static_cast<std::size_t>(me)]));

  copy_bytes(recv.data() + displs[static_cast<std::size_t>(me)], send.data(),
             send.size());
  const int right = (me + 1) % P;
  const int left = (me - 1 + P) % P;
  for (int step = 0; step < P - 1; ++step) {
    const auto send_seg = static_cast<std::size_t>((me - step + P) % P);
    const auto recv_seg = static_cast<std::size_t>((me - step - 1 + P) % P);
    co_await self.send(comm.global_rank(right), tag,
                       std::span<const std::byte>(recv).subspan(
                           displs[send_seg],
                           static_cast<std::size_t>(counts[send_seg])));
    co_await self.recv(comm.global_rank(left), tag,
                       recv.subspan(displs[recv_seg],
                                    static_cast<std::size_t>(counts[recv_seg])));
  }
}

sim::Task<> allgather(mpi::Rank& self, mpi::Comm& comm,
                      std::span<const std::byte> send,
                      std::span<std::byte> recv, Bytes block,
                      const AllgatherOptions& options) {
  ProfileScope prof(self, "allgather", static_cast<Bytes>(recv.size()));
  const bool two_level = comm.uniform_ppn() && comm.nodes().size() >= 2 &&
                         comm.ranks_per_node() >= 2;
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        AllgatherOptions opts = options;
        opts.scheme = scheme;
        if (two_level) {
          co_await allgather_smp(self, comm, send, recv, block, opts);
        } else if (is_pow2(comm.size())) {
          co_await allgather_recursive_doubling(self, comm, send, recv,
                                                block);
        } else {
          co_await allgather_ring(self, comm, send, recv, block);
        }
      });
}

}  // namespace pacc::coll

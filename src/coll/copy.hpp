// Shared zero-byte-safe copy for the collective algorithms.
#pragma once

#include <cstddef>
#include <cstring>

namespace pacc::coll {

/// memcpy requires non-null pointers even for n == 0, and an all-zero
/// segment over an empty buffer is exactly a null span — so every self-block
/// and pack/unpack copy in the collectives must go through this guard. The
/// dst == src case is equally off-limits for memcpy; it arises when a
/// measurement harness deliberately aliases rank buffers (the simulation is
/// payload-content-blind), and the copy is then a no-op by definition.
inline void copy_bytes(std::byte* dst, const std::byte* src, std::size_t n) {
  if (n > 0 && dst != src) std::memcpy(dst, src, n);
}

}  // namespace pacc::coll

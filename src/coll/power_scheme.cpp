#include "coll/power_scheme.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

std::string to_string(PowerScheme s) {
  switch (s) {
    case PowerScheme::kNone:
      return "no-power";
    case PowerScheme::kFreqScaling:
      return "freq-scaling";
    case PowerScheme::kProposed:
      return "proposed";
  }
  return "?";
}

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return "sum";
    case ReduceOp::kMax:
      return "max";
    case ReduceOp::kMin:
      return "min";
  }
  return "?";
}

void reduce_bytes(ReduceOp op, std::span<std::byte> accum,
                  std::span<const std::byte> in) {
  PACC_EXPECTS(accum.size() == in.size());
  PACC_EXPECTS_MSG(accum.size() % sizeof(double) == 0,
                   "reduction buffers hold doubles");
  auto* a = reinterpret_cast<double*>(accum.data());
  const auto* b = reinterpret_cast<const double*>(in.data());
  const std::size_t n = accum.size() / sizeof(double);
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) a[i] = std::max(a[i], b[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < n; ++i) a[i] = std::min(a[i], b[i]);
      break;
  }
}

int ceil_pow2(int x) {
  PACC_EXPECTS(x >= 1);
  int p = 1;
  while (p < x) p <<= 1;
  return p;
}

bool is_pow2(int x) { return x >= 1 && (x & (x - 1)) == 0; }

int floor_log2(int x) {
  PACC_EXPECTS(x >= 1);
  int l = 0;
  while ((1 << (l + 1)) <= x) ++l;
  return l;
}

sim::Task<PowerScheme> negotiate_scheme(mpi::Rank& self, mpi::Comm& comm,
                                        PowerScheme requested) {
  if (requested == PowerScheme::kNone) co_return requested;
  fault::FaultInjector* inj = self.runtime().fault_injector();
  if (inj == nullptr) co_return requested;
  const int me = comm.comm_rank_of(self.id());
  if (!inj->scheme_entry_doomed(comm.context_id(), comm.next_call_seq(me)))
    co_return requested;
  // Doomed: the entry transition fails. Every member pays the (wasted)
  // O_dvfs wall-clock here by hand rather than through the machine's
  // transition path — the machine hook draws from per-core counter streams,
  // and consuming a draw on this shared verdict would shift every later
  // per-core outcome depending on comm membership.
  const TimePoint begin = self.engine().now();
  co_await self.engine().delay(self.machine().params().dvfs_overhead);
  if (auto* tr = self.engine().tracer(); tr != nullptr && tr->enabled()) {
    const auto track = tr->core_track(self.core());
    tr->complete_span(
        track, "dvfs", "power", begin,
        {{"mhz", static_cast<std::int64_t>(
             self.machine().params().fmin.hz() / 1e6)},
         {"failed", std::int64_t{1}},
         {"stretched", std::int64_t{0}}});
    tr->instant(track, "scheme_fallback", "fault",
                {{"requested", static_cast<std::int64_t>(requested)},
                 {"comm", std::int64_t{comm.context_id()}},
                 {"call", std::int64_t{comm.next_call_seq(me)}}});
  }
  if (me == 0) ++inj->stats().scheme_fallbacks;
  co_return PowerScheme::kNone;
}

sim::Task<> enter_low_power(mpi::Rank& self, PowerScheme scheme) {
  if (scheme == PowerScheme::kNone) co_return;
  co_await self.dvfs(self.machine().params().fmin);
}

sim::Task<> exit_low_power(mpi::Rank& self, PowerScheme scheme) {
  if (scheme == PowerScheme::kNone) co_return;
  co_await self.dvfs(self.machine().params().fmax);
}

sim::Task<> throttle_self(mpi::Rank& self, int tstate) {
  co_await self.throttle(tstate);
}

sim::Task<> unthrottle_self(mpi::Rank& self) {
  co_await self.throttle(hw::ThrottleLevel::kMin);
}

}  // namespace pacc::coll

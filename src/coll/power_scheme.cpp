#include "coll/power_scheme.hpp"

#include <algorithm>

#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

std::string to_string(PowerScheme s) {
  switch (s) {
    case PowerScheme::kNone:
      return "no-power";
    case PowerScheme::kFreqScaling:
      return "freq-scaling";
    case PowerScheme::kProposed:
      return "proposed";
  }
  return "?";
}

std::string to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return "sum";
    case ReduceOp::kMax:
      return "max";
    case ReduceOp::kMin:
      return "min";
  }
  return "?";
}

void reduce_bytes(ReduceOp op, std::span<std::byte> accum,
                  std::span<const std::byte> in) {
  PACC_EXPECTS(accum.size() == in.size());
  PACC_EXPECTS_MSG(accum.size() % sizeof(double) == 0,
                   "reduction buffers hold doubles");
  auto* a = reinterpret_cast<double*>(accum.data());
  const auto* b = reinterpret_cast<const double*>(in.data());
  const std::size_t n = accum.size() / sizeof(double);
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < n; ++i) a[i] = std::max(a[i], b[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < n; ++i) a[i] = std::min(a[i], b[i]);
      break;
  }
}

int ceil_pow2(int x) {
  PACC_EXPECTS(x >= 1);
  int p = 1;
  while (p < x) p <<= 1;
  return p;
}

bool is_pow2(int x) { return x >= 1 && (x & (x - 1)) == 0; }

int floor_log2(int x) {
  PACC_EXPECTS(x >= 1);
  int l = 0;
  while ((1 << (l + 1)) <= x) ++l;
  return l;
}

sim::Task<> enter_low_power(mpi::Rank& self, PowerScheme scheme) {
  if (scheme == PowerScheme::kNone) co_return;
  co_await self.dvfs(self.machine().params().fmin);
}

sim::Task<> exit_low_power(mpi::Rank& self, PowerScheme scheme) {
  if (scheme == PowerScheme::kNone) co_return;
  co_await self.dvfs(self.machine().params().fmax);
}

sim::Task<> throttle_self(mpi::Rank& self, int tstate) {
  co_await self.throttle(tstate);
}

sim::Task<> unthrottle_self(mpi::Rank& self) {
  co_await self.throttle(hw::ThrottleLevel::kMin);
}

}  // namespace pacc::coll

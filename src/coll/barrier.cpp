#include "coll/barrier.hpp"

#include <array>

#include "coll/plan.hpp"
#include "coll/power_scheme.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

sim::Task<> barrier_dissemination(mpi::Rank& self, mpi::Comm& comm) {
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  if (P == 1) co_return;
  const PlanPtr plan = get_plan(comm, PlanKind::kBarrierDissemination, 0);
  mpi::Rank::ActionScope action(self, plan->action);

  std::array<std::byte, 1> token{std::byte{0x42}};
  std::array<std::byte, 1> sink{};
  const PlanView view(*plan, me, P);
  for (const PairStep& step : plan->pair_steps[view.row()]) {
    co_await self.send(comm.global_rank(view.peer(step.dst)), tag, token);
    co_await self.recv(comm.global_rank(view.peer(step.src)), tag, sink);
  }
}

sim::Task<> barrier(mpi::Rank& self, mpi::Comm& comm,
                    const BarrierOptions& options) {
  ProfileScope prof(self, "barrier", 0);
  co_await run_with_scheme(self, comm, options.scheme,
                           [&](PowerScheme) -> sim::Task<> {
                             co_await barrier_dissemination(self, comm);
                           });
}

}  // namespace pacc::coll

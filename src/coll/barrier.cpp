#include "coll/barrier.hpp"

#include <array>

#include "coll/power_scheme.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

sim::Task<> barrier_dissemination(mpi::Rank& self, mpi::Comm& comm) {
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  if (P == 1) co_return;

  std::array<std::byte, 1> token{std::byte{0x42}};
  std::array<std::byte, 1> sink{};
  for (int dist = 1; dist < P; dist <<= 1) {
    const int dst = (me + dist) % P;
    const int src = (me - dist + P) % P;
    co_await self.send(comm.global_rank(dst), tag, token);
    co_await self.recv(comm.global_rank(src), tag, sink);
  }
}

sim::Task<> barrier(mpi::Rank& self, mpi::Comm& comm,
                    const BarrierOptions& options) {
  ProfileScope prof(self, "barrier", 0);
  const PowerScheme scheme =
      co_await negotiate_scheme(self, comm, options.scheme);
  co_await enter_low_power(self, scheme);
  co_await barrier_dissemination(self, comm);
  co_await exit_low_power(self, scheme);
}

}  // namespace pacc::coll

#include "coll/reduce.hpp"

#include <vector>

#include "coll/copy.hpp"
#include "coll/power_scheme.hpp"
#include "coll/tuner.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

void check(std::span<const std::byte> send) {
  PACC_EXPECTS_MSG(send.size() % sizeof(double) == 0,
                   "reductions operate on double elements");
}

}  // namespace

sim::Task<> reduce_binomial(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv, ReduceOp op, int root) {
  check(send);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const int tag = comm.begin_collective(me);
  const int vr = (me - root + P) % P;

  std::vector<std::byte> accum(send.begin(), send.end());
  std::vector<std::byte> incoming(send.size());

  int mask = 1;
  while (mask < P) {
    if ((vr & mask) == 0) {
      const int child_vr = vr + mask;
      if (child_vr < P) {
        co_await self.recv(comm.global_rank((child_vr + root) % P), tag,
                           incoming);
        reduce_bytes(op, accum, incoming);
      }
    } else {
      const int parent = ((vr - mask) + root) % P;
      co_await self.send(comm.global_rank(parent), tag, accum);
      break;
    }
    mask <<= 1;
  }

  if (me == root) {
    PACC_EXPECTS(recv.size() == send.size());
    copy_bytes(recv.data(), accum.data(), accum.size());
  }
}

sim::Task<> reduce_smp(mpi::Rank& self, mpi::Comm& comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv,
                       const ReduceOptions& options, int root) {
  check(send);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const int my_node = comm.node_of(me);
  const bool leader = comm.is_leader(me);
  const bool power = options.scheme == PowerScheme::kProposed;
  const int root_node = comm.node_of(root);
  const int root_leader = comm.leader_of(root_node);

  // Stage 1: intra-node reduction to the node leader.
  mpi::Comm& node = comm.node_comm(my_node);
  std::vector<std::byte> node_result(leader ? send.size() : 0);
  co_await reduce_binomial(self, node, send, node_result, options.op, 0);

  // Stage 2: inter-leader reduction; non-leaders throttle meanwhile (§V-B).
  if (power && !leader) {
    const int leader_socket = comm.socket_of(comm.leader_of(my_node));
    const bool core_level = self.machine().params().core_level_throttling;
    const int level = (!core_level && self.socket() == leader_socket)
                          ? 4
                          : hw::ThrottleLevel::kMax;
    co_await throttle_self(self, level);
  }
  if (leader) {
    mpi::Comm& leaders = comm.leader_comm();
    const int leader_root = leaders.comm_rank_of(comm.global_rank(root_leader));
    PACC_ASSERT(leader_root >= 0);
    if (power && !self.machine().params().core_level_throttling) {
      co_await throttle_self(self, 4);
    }
    std::vector<std::byte> leader_result(
        me == root_leader ? send.size() : 0);
    co_await reduce_binomial(self, leaders, node_result, leader_result,
                             options.op, leader_root);
    if (power) {
      if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
        co_await unthrottle_self(self);
      }
    }
    if (me == root_leader) {
      node_result = std::move(leader_result);
    }
  }

  // The network phase is over: everyone returns to T0 after the node-local
  // rendezvous (non-leaders cannot observe the leaders' completion earlier).
  if (power) {
    co_await comm.node_barrier(my_node).arrive_and_wait();
    if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
      co_await unthrottle_self(self);
    }
  }

  // Stage 3: fix-up hop from the root's node leader to the root.
  if (root != root_leader) {
    if (me == root_leader) {
      co_await self.send(comm.global_rank(root), tag, node_result);
    } else if (me == root) {
      PACC_EXPECTS(recv.size() == send.size());
      co_await self.recv(comm.global_rank(root_leader), tag, recv);
    }
  } else if (me == root) {
    PACC_EXPECTS(recv.size() == send.size());
    copy_bytes(recv.data(), node_result.data(), node_result.size());
  }
}

sim::Task<> reduce(mpi::Rank& self, mpi::Comm& comm,
                   std::span<const std::byte> send, std::span<std::byte> recv,
                   int root, const ReduceOptions& options) {
  ProfileScope prof(self, "reduce", static_cast<Bytes>(send.size()));
  const bool two_level = comm.nodes().size() >= 2;
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        // Tuned dispatch — see bcast(): a tuner decision for this exact
        // cell overrides the static choices below.
        if (const TunedDispatch tuned =
                tuned_choice(comm, Op::kReduce, scheme,
                             static_cast<Bytes>(send.size()));
            tuned.desc != nullptr) {
          AlgoCall call;
          call.recv = recv;
          call.root = root;
          call.scheme = scheme;
          call.reduce_op = options.op;
          call.seg = tuned.seg;
          // AlgoCall carries one mutable send span because bcast uses it
          // in/out; reduce executors only read it, so shedding the const
          // here cannot write through.
          call.send = std::span<std::byte>(
              const_cast<std::byte*>(send.data()), send.size());
          co_await tuned.desc->exec_inner(self, comm, call);
          co_return;
        }
        ReduceOptions opts = options;
        opts.scheme = scheme;
        if (two_level) {
          co_await reduce_smp(self, comm, send, recv, opts, root);
        } else {
          co_await reduce_binomial(self, comm, send, recv, options.op, root);
        }
      });
}

}  // namespace pacc::coll

// Persistent collective autotuner: the tuned-decision table.
//
// A Tuner maps (op, scheme, bytes, comm structure fingerprint) to the name
// of the algorithm (and segment size) that won an offline race on that
// cell (pacc/tuning.hpp drives the races). The table is injectable exactly
// like ClusterConfig::plan_cache — one shared_ptr handed to every sweep
// cell of a Campaign — and persists as versioned JSON ("pacc-tuned-v1",
// docs/TUNING.md) so a tuning run's winners survive into later sessions.
//
// Dispatch integration: bcast() / reduce() consult tuned_choice() after
// scheme negotiation and run the tuned variant's inner executor instead of
// the static choice. With no tuner attached (the default) the lookup is
// skipped entirely and dispatch is byte-identical to the untuned library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

#include "coll/algo.hpp"
#include "util/units.hpp"

namespace pacc::coll {

/// One tuned cell. The comm's structure_fingerprint() stands in for the
/// whole (cluster shape × membership × placement) tuple, so a table tuned
/// on one config never misfires on another; `bytes` is the dispatched call
/// size (after the harness's round-to-doubles). Root is deliberately not
/// part of the key: tree links are built on virtual ranks, so the relative
/// schedule — and its cost on a symmetric fabric — is root-invariant.
struct TunedKey {
  Op op = Op::kBcast;
  PowerScheme scheme = PowerScheme::kNone;
  Bytes bytes = 0;
  std::uint64_t fingerprint = 0;

  auto operator<=>(const TunedKey&) const = default;
};

/// The winning candidate of one cell's race.
struct TunedDecision {
  std::string algo;  ///< AlgoDesc name (stable across releases)
  Bytes seg = 0;     ///< segment size the winner ran with
};

/// Thread-safe tuned-decision table with JSON persistence. Entries are
/// kept ordered so save() is deterministic: save→load→save is
/// byte-identical regardless of insertion order or racing --jobs.
class Tuner {
 public:
  /// The decision for `key`, or nullopt. Counts hits/misses.
  std::optional<TunedDecision> lookup(const TunedKey& key) const;

  /// Whether a decision exists, without touching the hit/miss counters —
  /// the racing driver's "skip already-tuned cells" probe.
  bool contains(const TunedKey& key) const;

  /// Inserts or replaces the decision for `key`.
  void record(const TunedKey& key, TunedDecision decision);

  std::size_t size() const;
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Order-independent content hash of the whole table. Two tuners with
  /// equal entries hash equal regardless of how the entries got there
  /// (record() order, load() vs races). The campaign journal mixes this
  /// into its canonical cell hash: a tuned table changes dispatch, so
  /// cells run against different tables must never share a cache key.
  std::uint64_t fingerprint() const;

  /// Writes the table as "pacc-tuned-v1" JSON, entries sorted by key.
  void save(std::ostream& out) const;
  bool save_file(const std::string& path) const;

  /// Merges entries from "pacc-tuned-v1" JSON produced by save(). Returns
  /// false (and sets `error` when non-null) on malformed input; entries
  /// parsed before the error are kept.
  bool load(std::istream& in, std::string* error = nullptr);
  bool load_file(const std::string& path, std::string* error = nullptr);

 private:
  mutable std::mutex mu_;
  std::map<TunedKey, TunedDecision> table_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

/// A dispatcher's view of one lookup: the tuned variant to run, or
/// desc == nullptr to fall through to the static choice. Returns a variant
/// only when the runtime has a tuner, the table has a usable decision for
/// this exact (op, scheme, bytes, fingerprint) and the named algorithm has
/// an inner executor (decisions naming a default dispatcher fall through —
/// the static path IS that algorithm).
struct TunedDispatch {
  const AlgoDesc* desc = nullptr;
  Bytes seg = 0;
};

TunedDispatch tuned_choice(mpi::Comm& comm, Op op, PowerScheme scheme,
                           Bytes bytes);

}  // namespace pacc::coll

#include "coll/registry.hpp"

namespace pacc::coll {

std::string to_string(Op op) {
  switch (op) {
    case Op::kAlltoall:
      return "alltoall";
    case Op::kAlltoallv:
      return "alltoallv";
    case Op::kBcast:
      return "bcast";
    case Op::kReduce:
      return "reduce";
    case Op::kAllreduce:
      return "allreduce";
    case Op::kAllgather:
      return "allgather";
    case Op::kGather:
      return "gather";
    case Op::kScatter:
      return "scatter";
    case Op::kScan:
      return "scan";
    case Op::kReduceScatter:
      return "reduce_scatter";
    case Op::kBarrier:
      return "barrier";
  }
  return "?";
}

}  // namespace pacc::coll

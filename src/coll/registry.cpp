// The AlgoDesc table: the one place that knows every runnable collective
// algorithm. Default entries wrap the per-op dispatchers (run_op_once's
// historical switch, now data); tree entries wrap the segmented variants
// with both the full entry point and the scheme-negotiated inner body the
// tuned-dispatch path calls.
#include "coll/registry.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace pacc::coll {

namespace {

// ------------------------------------------------- default exec hooks ---
// One hook per op, replaying exactly the call the measurement harness's
// hand-rolled switch used to make.

sim::Task<> exec_alltoall(mpi::Rank& self, mpi::Comm& comm,
                          const AlgoCall& call) {
  co_await alltoall(self, comm, call.send, call.recv, call.block,
                    {.scheme = call.scheme});
}

sim::Task<> exec_alltoallv(mpi::Rank& self, mpi::Comm& comm,
                           const AlgoCall& call) {
  co_await alltoallv(self, comm, call.send, call.send_counts, call.recv,
                     call.recv_counts, {.scheme = call.scheme});
}

sim::Task<> exec_bcast(mpi::Rank& self, mpi::Comm& comm,
                       const AlgoCall& call) {
  co_await bcast(self, comm, call.send, call.root, {.scheme = call.scheme});
}

sim::Task<> exec_reduce(mpi::Rank& self, mpi::Comm& comm,
                        const AlgoCall& call) {
  co_await reduce(self, comm, call.send, call.recv, call.root,
                  {.scheme = call.scheme, .op = call.reduce_op});
}

sim::Task<> exec_allreduce(mpi::Rank& self, mpi::Comm& comm,
                           const AlgoCall& call) {
  co_await allreduce(self, comm, call.send, call.recv,
                     {.scheme = call.scheme});
}

sim::Task<> exec_allgather(mpi::Rank& self, mpi::Comm& comm,
                           const AlgoCall& call) {
  co_await allgather(self, comm, call.send, call.recv, call.block,
                     {.scheme = call.scheme});
}

sim::Task<> exec_gather(mpi::Rank& self, mpi::Comm& comm,
                        const AlgoCall& call) {
  co_await gather_binomial(self, comm, call.send, call.recv, call.block,
                           call.root);
}

sim::Task<> exec_scatter(mpi::Rank& self, mpi::Comm& comm,
                         const AlgoCall& call) {
  co_await scatter_binomial(self, comm, call.send, call.recv, call.block,
                            call.root);
}

sim::Task<> exec_scan(mpi::Rank& self, mpi::Comm& comm,
                      const AlgoCall& call) {
  co_await scan(self, comm, call.send, call.recv, {.scheme = call.scheme});
}

sim::Task<> exec_reduce_scatter(mpi::Rank& self, mpi::Comm& comm,
                                const AlgoCall& call) {
  co_await reduce_scatter(self, comm, call.send, call.recv, call.block,
                          {.scheme = call.scheme});
}

sim::Task<> exec_barrier(mpi::Rank& self, mpi::Comm& comm,
                         const AlgoCall& call) {
  co_await barrier(self, comm, {.scheme = call.scheme});
}

// ---------------------------------------------------- tree exec hooks ---

template <TreeKind K>
sim::Task<> exec_bcast_tree(mpi::Rank& self, mpi::Comm& comm,
                            const AlgoCall& call) {
  co_await bcast_tree(self, comm, call.send, call.root,
                      {.tree = K, .seg = call.seg, .scheme = call.scheme});
}

template <TreeKind K>
sim::Task<> inner_bcast_tree(mpi::Rank& self, mpi::Comm& comm,
                             const AlgoCall& call) {
  co_await bcast_tree_exec(self, comm, call.send, call.root, K, call.seg,
                           call.scheme);
}

template <TreeKind K>
sim::Task<> exec_reduce_tree(mpi::Rank& self, mpi::Comm& comm,
                             const AlgoCall& call) {
  co_await reduce_tree(self, comm, call.send, call.recv, call.root,
                       {.tree = K,
                        .seg = call.seg,
                        .scheme = call.scheme,
                        .op = call.reduce_op});
}

template <TreeKind K>
sim::Task<> inner_reduce_tree(mpi::Rank& self, mpi::Comm& comm,
                              const AlgoCall& call) {
  co_await reduce_tree_exec(self, comm, call.send, call.recv, call.reduce_op,
                            call.root, K, call.seg, call.scheme);
}

/// Segment-size domain of the tree variants: any multiple of a double in
/// [16 KiB, 4 MiB] (plus 0 = unsegmented). The floor sits above the
/// testbed's 8 KiB eager threshold on purpose: eager sends resume the
/// sender immediately, so sub-eager segments let a high-fanout rank (a
/// 64-rank linear root, say) pour thousands of concurrent flows into the
/// fluid-flow network, whose per-event rate recompute then goes quadratic.
/// At or above 16 KiB every segment takes the rendezvous path and a rank
/// holds one flow at a time. 4 MiB is past every sweep size this repo
/// benches, so the domain never truncates a race.
constexpr Bytes kTreeMinSeg = 16 * 1024;
constexpr Bytes kTreeMaxSeg = 4 * 1024 * 1024;

constexpr AlgoDesc tree_bcast(std::string_view name, TreeKind tree,
                              AlgoExec exec, AlgoExec inner) {
  return AlgoDesc{.name = name,
                  .op = Op::kBcast,
                  .schemes = kSchemesAll,
                  .is_default = false,
                  .segmented = true,
                  .tree = tree,
                  .min_seg = kTreeMinSeg,
                  .max_seg = kTreeMaxSeg,
                  .exec = exec,
                  .exec_inner = inner};
}

constexpr AlgoDesc tree_reduce(std::string_view name, TreeKind tree,
                               AlgoExec exec, AlgoExec inner) {
  AlgoDesc d = tree_bcast(name, tree, exec, inner);
  d.op = Op::kReduce;
  return d;
}

constexpr AlgoDesc default_algo(std::string_view name, Op op,
                                std::uint8_t schemes, AlgoExec exec) {
  return AlgoDesc{.name = name,
                  .op = op,
                  .schemes = schemes,
                  .is_default = true,
                  .segmented = false,
                  .tree = TreeKind::kBinomial,
                  .min_seg = 0,
                  .max_seg = 0,
                  .exec = exec,
                  .exec_inner = nullptr};
}

/// The registry. Defaults first (named after their op, reproducing the
/// historical supported() matrix: everything implements every scheme
/// except the binomial gather/scatter, which are kNone-only), then the
/// tree/segment variants. Order is load-bearing: the autotuner races
/// candidates in table order and breaks latency ties by position.
constexpr AlgoDesc kAlgos[] = {
    default_algo("alltoall", Op::kAlltoall, kSchemesAll, exec_alltoall),
    default_algo("alltoallv", Op::kAlltoallv, kSchemesAll, exec_alltoallv),
    default_algo("bcast", Op::kBcast, kSchemesAll, exec_bcast),
    default_algo("reduce", Op::kReduce, kSchemesAll, exec_reduce),
    default_algo("allreduce", Op::kAllreduce, kSchemesAll, exec_allreduce),
    default_algo("allgather", Op::kAllgather, kSchemesAll, exec_allgather),
    default_algo("gather", Op::kGather, kSchemesNoneOnly, exec_gather),
    default_algo("scatter", Op::kScatter, kSchemesNoneOnly, exec_scatter),
    default_algo("scan", Op::kScan, kSchemesAll, exec_scan),
    default_algo("reduce_scatter", Op::kReduceScatter, kSchemesAll,
                 exec_reduce_scatter),
    default_algo("barrier", Op::kBarrier, kSchemesAll, exec_barrier),
    tree_bcast("bcast_tree_binomial", TreeKind::kBinomial,
               exec_bcast_tree<TreeKind::kBinomial>,
               inner_bcast_tree<TreeKind::kBinomial>),
    tree_bcast("bcast_tree_binary", TreeKind::kBinary,
               exec_bcast_tree<TreeKind::kBinary>,
               inner_bcast_tree<TreeKind::kBinary>),
    tree_bcast("bcast_tree_chain", TreeKind::kChain,
               exec_bcast_tree<TreeKind::kChain>,
               inner_bcast_tree<TreeKind::kChain>),
    tree_bcast("bcast_tree_linear", TreeKind::kLinear,
               exec_bcast_tree<TreeKind::kLinear>,
               inner_bcast_tree<TreeKind::kLinear>),
    tree_reduce("reduce_tree_binomial", TreeKind::kBinomial,
                exec_reduce_tree<TreeKind::kBinomial>,
                inner_reduce_tree<TreeKind::kBinomial>),
    tree_reduce("reduce_tree_binary", TreeKind::kBinary,
                exec_reduce_tree<TreeKind::kBinary>,
                inner_reduce_tree<TreeKind::kBinary>),
    tree_reduce("reduce_tree_chain", TreeKind::kChain,
                exec_reduce_tree<TreeKind::kChain>,
                inner_reduce_tree<TreeKind::kChain>),
    tree_reduce("reduce_tree_linear", TreeKind::kLinear,
                exec_reduce_tree<TreeKind::kLinear>,
                inner_reduce_tree<TreeKind::kLinear>),
};

}  // namespace

std::span<const AlgoDesc> algorithms() { return kAlgos; }

const AlgoDesc* find_algorithm(std::string_view name) {
  for (const AlgoDesc& desc : kAlgos) {
    if (desc.name == name) return &desc;
  }
  return nullptr;
}

const AlgoDesc& default_algorithm(Op op) {
  for (const AlgoDesc& desc : kAlgos) {
    if (desc.op == op && desc.is_default) return desc;
  }
  PACC_EXPECTS_MSG(false, "no default algorithm registered for op");
  return kAlgos[0];  // unreachable
}

std::string algorithm_names(std::optional<Op> op) {
  std::ostringstream out;
  bool first = true;
  for (const AlgoDesc& desc : kAlgos) {
    if (op.has_value() && desc.op != *op) continue;
    if (!first) out << ", ";
    out << desc.name;
    first = false;
  }
  return out.str();
}

std::string to_string(Op op) {
  switch (op) {
    case Op::kAlltoall:
      return "alltoall";
    case Op::kAlltoallv:
      return "alltoallv";
    case Op::kBcast:
      return "bcast";
    case Op::kReduce:
      return "reduce";
    case Op::kAllreduce:
      return "allreduce";
    case Op::kAllgather:
      return "allgather";
    case Op::kGather:
      return "gather";
    case Op::kScatter:
      return "scatter";
    case Op::kScan:
      return "scan";
    case Op::kReduceScatter:
      return "reduce_scatter";
    case Op::kBarrier:
      return "barrier";
  }
  return "?";
}

std::string to_string(TreeKind t) {
  switch (t) {
    case TreeKind::kBinomial:
      return "binomial";
    case TreeKind::kBinary:
      return "binary";
    case TreeKind::kChain:
      return "chain";
    case TreeKind::kLinear:
      return "linear";
  }
  return "?";
}

std::optional<TreeKind> parse_tree(std::string_view name) {
  if (name == "binomial") return TreeKind::kBinomial;
  if (name == "binary") return TreeKind::kBinary;
  if (name == "chain") return TreeKind::kChain;
  if (name == "linear") return TreeKind::kLinear;
  return std::nullopt;
}

bool supported(Op op, PowerScheme scheme) {
  for (const AlgoDesc& desc : kAlgos) {
    if (desc.op == op && algo_supports(desc, scheme)) return true;
  }
  return false;
}

bool governor_supported(mpi::GovernorKind kind, PowerScheme scheme) {
  if (kind == mpi::GovernorKind::kPowerCap) {
    return scheme == PowerScheme::kNone;
  }
  return true;
}

std::optional<Op> parse_op(std::string_view name) {
  for (const Op op : kAllOps) {
    if (name == to_string(op)) return op;
  }
  return std::nullopt;
}

std::optional<PowerScheme> parse_scheme(std::string_view name) {
  if (name == "none" || name == "no-power") return PowerScheme::kNone;
  if (name == "dvfs" || name == "freq-scaling") {
    return PowerScheme::kFreqScaling;
  }
  if (name == "proposed") return PowerScheme::kProposed;
  return std::nullopt;
}

}  // namespace pacc::coll

#include "coll/registry.hpp"

namespace pacc::coll {

std::string to_string(Op op) {
  switch (op) {
    case Op::kAlltoall:
      return "alltoall";
    case Op::kAlltoallv:
      return "alltoallv";
    case Op::kBcast:
      return "bcast";
    case Op::kReduce:
      return "reduce";
    case Op::kAllreduce:
      return "allreduce";
    case Op::kAllgather:
      return "allgather";
    case Op::kGather:
      return "gather";
    case Op::kScatter:
      return "scatter";
    case Op::kScan:
      return "scan";
    case Op::kReduceScatter:
      return "reduce_scatter";
    case Op::kBarrier:
      return "barrier";
  }
  return "?";
}

bool supported(Op op, PowerScheme scheme) {
  if (scheme == PowerScheme::kNone) return true;
  switch (op) {
    case Op::kGather:
    case Op::kScatter:
      return false;  // binomial-only entry points, no power variant
    default:
      return true;
  }
}

bool governor_supported(mpi::GovernorKind kind, PowerScheme scheme) {
  if (kind == mpi::GovernorKind::kPowerCap) {
    return scheme == PowerScheme::kNone;
  }
  return true;
}

std::optional<Op> parse_op(std::string_view name) {
  for (const Op op : kAllOps) {
    if (name == to_string(op)) return op;
  }
  return std::nullopt;
}

std::optional<PowerScheme> parse_scheme(std::string_view name) {
  if (name == "none" || name == "no-power") return PowerScheme::kNone;
  if (name == "dvfs" || name == "freq-scaling") {
    return PowerScheme::kFreqScaling;
  }
  if (name == "proposed") return PowerScheme::kProposed;
  return std::nullopt;
}

}  // namespace pacc::coll

// Common types for the collective layer.
//
// The enumerations (PowerScheme, ReduceOp, Op, …) live in coll/algo.hpp so
// registry consumers can compile against forward declarations; this header
// re-exports them and adds the helpers that the collective implementations
// themselves need (element-wise reduction, pow2 math) together with the
// mpi::Rank / mpi::Comm definitions every algorithm signature uses.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "coll/algo.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "util/units.hpp"

namespace pacc::coll {

/// Applies `op` element-wise: accum[i] = accum[i] (op) in[i].
/// Buffers are interpreted as arrays of double (size % 8 == 0).
void reduce_bytes(ReduceOp op, std::span<std::byte> accum,
                  std::span<const std::byte> in);

/// Smallest power of two >= x.
int ceil_pow2(int x);

/// True if x is a power of two.
bool is_pow2(int x);

/// floor(log2(x)) for x >= 1.
int floor_log2(int x);

}  // namespace pacc::coll

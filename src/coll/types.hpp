// Common types for the collective layer.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "util/units.hpp"

namespace pacc::coll {

/// Power optimisation applied to a collective call (§V, §VII).
enum class PowerScheme {
  kNone,         ///< default algorithm, all cores at fmax / T0
  kFreqScaling,  ///< per-call DVFS to fmin around the default algorithm
  kProposed,     ///< the paper's DVFS + throttling-scheduled algorithms
};

std::string to_string(PowerScheme s);

/// Reduction operator over double elements.
enum class ReduceOp { kSum, kMax, kMin };

std::string to_string(ReduceOp op);

/// Applies `op` element-wise: accum[i] = accum[i] (op) in[i].
/// Buffers are interpreted as arrays of double (size % 8 == 0).
void reduce_bytes(ReduceOp op, std::span<std::byte> accum,
                  std::span<const std::byte> in);

/// Smallest power of two >= x.
int ceil_pow2(int x);

/// True if x is a power of two.
bool is_pow2(int x);

/// floor(log2(x)) for x >= 1.
int floor_log2(int x);

}  // namespace pacc::coll

// Binomial-tree MPI_Scatter / MPI_Gather over contiguous equal blocks.
//
// Subtree payloads are packed into single messages, as MPICH does; these
// trees are also the building blocks of the scatter-allgather broadcast.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

/// Root holds comm.size() blocks of `block` bytes in `send` (comm-rank
/// order); every rank receives its block into `recv` (block bytes).
/// Non-roots may pass an empty `send`.
sim::Task<> scatter_binomial(mpi::Rank& self, mpi::Comm& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv, Bytes block, int root);

/// Every rank contributes `send` (block bytes); root assembles comm.size()
/// blocks into `recv` (comm-rank order). Non-roots may pass an empty `recv`.
sim::Task<> gather_binomial(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv, Bytes block, int root);

/// MPI_Scatterv: root holds the concatenation of per-rank segments (sizes
/// in `counts`, comm-rank order); rank i receives counts[i] bytes. Linear
/// from the root, as MPICH implements it.
sim::Task<> scatterv_linear(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv,
                            std::span<const Bytes> counts, int root);

/// MPI_Gatherv: rank i contributes counts[i] bytes; root assembles the
/// concatenation. Linear into the root.
sim::Task<> gatherv_linear(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv,
                           std::span<const Bytes> counts, int root);

}  // namespace pacc::coll

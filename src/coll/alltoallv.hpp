// MPI_Alltoallv: pair-wise exchange with per-peer message sizes, plus the
// power-aware variant reusing the §V-A socket schedule (the paper notes the
// Alltoallv results mirror Alltoall).
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct AlltoallvOptions {
  PowerScheme scheme = PowerScheme::kNone;
};

/// send is partitioned into comm.size() segments of send_counts[i] bytes
/// (in comm-rank order); recv likewise with recv_counts. Displacements are
/// the prefix sums of the counts.
sim::Task<> alltoallv_pairwise(mpi::Rank& self, mpi::Comm& comm,
                               std::span<const std::byte> send,
                               std::span<const Bytes> send_counts,
                               std::span<std::byte> recv,
                               std::span<const Bytes> recv_counts);

/// Power-aware Alltoallv over the §V-A schedule.
sim::Task<> alltoallv_power_aware(mpi::Rank& self, mpi::Comm& comm,
                                  std::span<const std::byte> send,
                                  std::span<const Bytes> send_counts,
                                  std::span<std::byte> recv,
                                  std::span<const Bytes> recv_counts);

/// Dispatcher applying the requested power scheme.
sim::Task<> alltoallv(mpi::Rank& self, mpi::Comm& comm,
                      std::span<const std::byte> send,
                      std::span<const Bytes> send_counts,
                      std::span<std::byte> recv,
                      std::span<const Bytes> recv_counts,
                      const AlltoallvOptions& options = {});

}  // namespace pacc::coll

// Segmented / pipelined tree bcast and reduce variants (after Open MPI's
// coll/adapt component).
//
// Each variant is (tree shape × segment size): the payload is cut into
// `seg`-byte segments that pipeline down (bcast) or up (reduce) a binomial,
// binary, chain or linear tree built on virtual ranks vr = (me−root+P)%P.
// A rank forwards segment s as soon as it holds it, so interior links carry
// consecutive segments back-to-back — the pipeline the coll/adapt design
// races against the one-shot algorithms.
//
// Every variant is expressed as a pure plan (coll/plan.hpp): the per-rank
// schedule — including the power-aware twin's throttle transitions and the
// closing node rendezvous, reusing the §V PowerAction program format — is
// built once, cached in the PlanCache, and walked by the shared
// run_power_actions interpreter. Executors only move bytes.
#pragma once

#include "coll/plan.hpp"
#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct TreeOptions {
  TreeKind tree = TreeKind::kBinomial;
  /// Segment size in bytes; 0 (or >= the payload) sends the payload whole.
  /// Reductions additionally require seg % 8 == 0 (double boundaries).
  /// The registry's tuned/forced paths clamp seg to [16 KiB, 4 MiB] — see
  /// coll/registry.cpp — because sub-eager-threshold segments from a
  /// high-fanout rank flood the fluid-flow network with concurrent eager
  /// flows. Direct callers at small scale (tests) may use smaller values.
  Bytes seg = 0;
  PowerScheme scheme = PowerScheme::kNone;
  ReduceOp op = ReduceOp::kSum;  ///< reduce_tree only
};

/// Number of segments a `bytes` payload splits into: 1 when seg is 0 or
/// covers the payload, ceil(bytes/seg) otherwise.
int tree_segment_count(Bytes bytes, Bytes seg);

/// Pure tree-plan construction. `kind` selects bcast or reduce emission
/// (kBcastTreeSeg / kReduceTreeSeg); `power` adds the §V throttle twin.
/// The plan's program length depends on tree_segment_count(bytes, seg).
PlanPtr build_tree_plan(const mpi::Comm& comm, PlanKind kind, TreeKind tree,
                        Bytes bytes, Bytes seg, bool power, int root);

/// Cache-aware fetch mirroring get_plan, with (seg, tree, power) folded
/// into the key so distinct variants never share a plan.
PlanPtr get_tree_plan(mpi::Comm& comm, PlanKind kind, TreeKind tree,
                      Bytes bytes, Bytes seg, bool power, int root);

/// Tree broadcast body with the scheme already negotiated (the registry's
/// exec_inner hook; also the tuned-dispatch target inside bcast()).
sim::Task<> bcast_tree_exec(mpi::Rank& self, mpi::Comm& comm,
                            std::span<std::byte> buf, int root, TreeKind tree,
                            Bytes seg, PowerScheme scheme);

/// Tree reduction body with the scheme already negotiated.
sim::Task<> reduce_tree_exec(mpi::Rank& self, mpi::Comm& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv, ReduceOp op, int root,
                             TreeKind tree, Bytes seg, PowerScheme scheme);

/// Full tree-broadcast entry point: profiling + scheme negotiation + the
/// per-call DVFS bracket around bcast_tree_exec.
sim::Task<> bcast_tree(mpi::Rank& self, mpi::Comm& comm,
                       std::span<std::byte> buf, int root,
                       const TreeOptions& options = {});

/// Full tree-reduce entry point.
sim::Task<> reduce_tree(mpi::Rank& self, mpi::Comm& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, int root,
                        const TreeOptions& options = {});

}  // namespace pacc::coll

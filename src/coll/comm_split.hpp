// MPI_Comm_split: collectively partition a communicator by color, ordering
// each group by (key, rank). Every member of a group receives the SAME
// Comm object (interned in the runtime), so subsequent collectives on the
// split comm share one context id and matched call counters.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

/// MPI's MPI_UNDEFINED: a rank passing this color receives nullptr.
inline constexpr int kUndefinedColor = -1;

/// Collective over `comm`: all members must call with matching order.
/// Returns the caller's new sub-communicator (or nullptr for
/// kUndefinedColor). Implemented as an allgather of (color, key) followed
/// by a deterministic local grouping.
sim::Task<mpi::Comm*> comm_split(mpi::Rank& self, mpi::Comm& comm, int color,
                                 int key);

}  // namespace pacc::coll

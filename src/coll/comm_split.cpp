#include "coll/comm_split.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "coll/allgather.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

sim::Task<mpi::Comm*> comm_split(mpi::Rank& self, mpi::Comm& comm, int color,
                                 int key) {
  PACC_EXPECTS(color >= kUndefinedColor);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);

  // Allgather everyone's (color, key) — the real MPI implementation's
  // approach, using the ring so it works for any P.
  struct Entry {
    int color;
    int key;
  };
  std::vector<std::byte> mine(sizeof(Entry));
  const Entry my_entry{color, key};
  std::memcpy(mine.data(), &my_entry, sizeof(Entry));
  std::vector<std::byte> all(static_cast<std::size_t>(P) * sizeof(Entry));
  co_await allgather_ring(self, comm, mine, all,
                          static_cast<Bytes>(sizeof(Entry)));

  if (color == kUndefinedColor) co_return nullptr;

  // Collect my color group, ordered by (key, original comm rank).
  struct Member {
    int key;
    int comm_rank;
  };
  std::vector<Member> group;
  const auto* entries = reinterpret_cast<const Entry*>(all.data());
  for (int r = 0; r < P; ++r) {
    if (entries[r].color == color) {
      group.push_back(Member{entries[r].key, r});
    }
  }
  std::sort(group.begin(), group.end(), [](const Member& a, const Member& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.comm_rank < b.comm_rank;
  });

  std::vector<int> globals;
  globals.reserve(group.size());
  for (const auto& m : group) {
    globals.push_back(comm.global_rank(m.comm_rank));
  }
  // Every member computes the identical list, so interning yields the same
  // Comm object (and context id) for the whole group.
  co_return &self.runtime().intern_comm(globals);
}

}  // namespace pacc::coll

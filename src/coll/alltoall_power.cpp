#include "coll/alltoall_power.hpp"

#include <optional>

#include "coll/copy.hpp"
#include "coll/plan.hpp"
#include "coll/power_scheme.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

constexpr int kSocketA = 0;
constexpr int kSocketB = 1;

/// Restores the caller's throttle to T0 only if it is currently throttled
/// (its socket may already have been restored by a socket-mate).
sim::Task<> ensure_unthrottled(mpi::Rank& self) {
  if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
    co_await unthrottle_self(self);
  }
}

}  // namespace

int tournament_rounds(int N) {
  PACC_EXPECTS(N >= 2);
  return (N % 2 == 0) ? N - 1 : N;
}

int tournament_peer(int i, int round, int N) {
  PACC_EXPECTS(N >= 2);
  PACC_EXPECTS(i >= 0 && i < N);
  PACC_EXPECTS(round >= 0 && round < tournament_rounds(N));
  // Circle method. For odd N add a ghost player; pairing with the ghost
  // means idling this round.
  const int players = (N % 2 == 0) ? N : N + 1;
  const int m = players - 1;
  int peer;
  if (i == players - 1) {
    peer = round;
  } else if (i == round) {
    peer = players - 1;
  } else {
    peer = (2 * round - i % m + 2 * m) % m;
  }
  return peer >= N ? -1 : peer;
}

bool power_aware_alltoall_applicable(const mpi::Comm& comm) {
  if (!comm.uniform_ppn()) return false;
  if (comm.nodes().size() < 2) return false;
  const auto& shape = comm.runtime().placement().shape;
  if (shape.sockets_per_node != 2) return false;
  // §V-C: the schedule depends on both per-node socket groups being
  // populated (e.g. 8-way bunch mapping). With one socket empty there is
  // nothing to alternate, so the caller falls back to per-call DVFS over
  // the default algorithm — consistent with Table I, where the proposed
  // scheme is indistinguishable from freq-scaling at 32 processes.
  for (const int node : comm.nodes()) {
    if (comm.socket_group(node, kSocketA).empty() ||
        comm.socket_group(node, kSocketB).empty()) {
      return false;
    }
  }
  return true;
}

sim::Task<> run_power_actions(mpi::Rank& self, mpi::Comm& comm,
                              const CollPlan& plan, const ExchangeOps& ops) {
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  auto& barrier = comm.node_barrier(comm.node_of(me));

  // Walk this rank's precomputed program (see build_power_exchange in
  // plan.cpp, which documents the §V schedule the actions encode). On a
  // compressed plan the program belongs to the rank's class representative
  // and only the kSend/kRecv peers need relabelling — every other action
  // is peer-free by construction. The phase span is emplaced/reset so its
  // open/close instants match the historical block-scoped CollPhase
  // objects exactly.
  const PlanView view(plan, me, comm.size());
  std::optional<CollPhase> phase;
  for (const PowerAction& action : plan.actions[view.row()]) {
    switch (action.kind) {
      case PowerAction::kSend:
        co_await ops.send_to(view.peer(action.arg));
        break;
      case PowerAction::kRecv:
        co_await ops.recv_from(view.peer(action.arg));
        break;
      case PowerAction::kBarrier:
        if (mpi::Governor* gov = self.wait_governor()) {
          gov->wait_begin(self, mpi::WaitSite::kBarrier);
          co_await barrier.arrive_and_wait();
          co_await gov->wait_end(self, mpi::WaitSite::kBarrier);
        } else {
          co_await barrier.arrive_and_wait();
        }
        break;
      case PowerAction::kThrottle:
        co_await throttle_self(self, action.arg);
        break;
      case PowerAction::kEnsureUnthrottled:
        co_await ensure_unthrottled(self);
        break;
      case PowerAction::kEnsureThrottledMax:
        if (self.machine().throttle(self.core()) == hw::ThrottleLevel::kMin) {
          co_await throttle_self(self, hw::ThrottleLevel::kMax);
        }
        break;
      case PowerAction::kPhaseBegin:
        phase.emplace(self, kPowerPhaseNames[action.arg]);
        break;
      case PowerAction::kPhaseEnd:
        phase.reset();
        break;
    }
  }
}

sim::Task<> power_aware_exchange_schedule(mpi::Rank& self, mpi::Comm& comm,
                                          const ExchangeOps& ops,
                                          Bytes bytes) {
  PACC_EXPECTS(power_aware_alltoall_applicable(comm));
  const PlanPtr plan = get_plan(comm, PlanKind::kPowerExchange, bytes);
  mpi::Rank::ActionScope action(self, plan->action);
  co_await run_power_actions(self, comm, *plan, ops);
}

sim::Task<> alltoall_power_aware(mpi::Rank& self, mpi::Comm& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv, Bytes block) {
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto blk = static_cast<std::size_t>(block);
  PACC_EXPECTS(send.size() ==
                   static_cast<std::size_t>(comm.size()) * blk &&
               recv.size() == send.size());

  // Own block (guarded: empty spans have null data() when block == 0).
  copy_bytes(recv.data() + static_cast<std::size_t>(me) * blk,
             send.data() + static_cast<std::size_t>(me) * blk, blk);

  ExchangeOps ops;
  ops.send_to = [&self, &comm, send, blk, tag](int peer) -> sim::Task<> {
    co_await self.send(comm.global_rank(peer), tag,
                       send.subspan(static_cast<std::size_t>(peer) * blk, blk));
  };
  ops.recv_from = [&self, &comm, recv, blk, tag](int peer) -> sim::Task<> {
    co_await self.recv(comm.global_rank(peer), tag,
                       recv.subspan(static_cast<std::size_t>(peer) * blk, blk));
  };
  co_await power_aware_exchange_schedule(self, comm, ops,
                                         static_cast<Bytes>(send.size()));
}

}  // namespace pacc::coll

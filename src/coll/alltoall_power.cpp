#include "coll/alltoall_power.hpp"

#include <algorithm>

#include "coll/copy.hpp"
#include "coll/power_scheme.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

constexpr int kSocketA = 0;
constexpr int kSocketB = 1;

/// Restores the caller's throttle to T0 only if it is currently throttled
/// (its socket may already have been restored by a socket-mate).
sim::Task<> ensure_unthrottled(mpi::Rank& self) {
  if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
    co_await unthrottle_self(self);
  }
}

}  // namespace

int tournament_rounds(int N) {
  PACC_EXPECTS(N >= 2);
  return (N % 2 == 0) ? N - 1 : N;
}

int tournament_peer(int i, int round, int N) {
  PACC_EXPECTS(N >= 2);
  PACC_EXPECTS(i >= 0 && i < N);
  PACC_EXPECTS(round >= 0 && round < tournament_rounds(N));
  // Circle method. For odd N add a ghost player; pairing with the ghost
  // means idling this round.
  const int players = (N % 2 == 0) ? N : N + 1;
  const int m = players - 1;
  int peer;
  if (i == players - 1) {
    peer = round;
  } else if (i == round) {
    peer = players - 1;
  } else {
    peer = (2 * round - i % m + 2 * m) % m;
  }
  return peer >= N ? -1 : peer;
}

bool power_aware_alltoall_applicable(const mpi::Comm& comm) {
  if (!comm.uniform_ppn()) return false;
  if (comm.nodes().size() < 2) return false;
  const auto& shape = comm.runtime().placement().shape;
  if (shape.sockets_per_node != 2) return false;
  // §V-C: the schedule depends on both per-node socket groups being
  // populated (e.g. 8-way bunch mapping). With one socket empty there is
  // nothing to alternate, so the caller falls back to per-call DVFS over
  // the default algorithm — consistent with Table I, where the proposed
  // scheme is indistinguishable from freq-scaling at 32 processes.
  for (const int node : comm.nodes()) {
    if (comm.socket_group(node, kSocketA).empty() ||
        comm.socket_group(node, kSocketB).empty()) {
      return false;
    }
  }
  return true;
}

sim::Task<> power_aware_exchange_schedule(mpi::Rank& self, mpi::Comm& comm,
                                          const ExchangeOps& ops) {
  PACC_EXPECTS(power_aware_alltoall_applicable(comm));
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);

  const int my_node = comm.node_of(me);
  const int ni = comm.node_index(my_node);
  const int N = static_cast<int>(comm.nodes().size());
  const int my_socket = comm.socket_of(me);
  auto& barrier = comm.node_barrier(my_node);
  const auto& locals = comm.members_on_node(my_node);
  const int c = static_cast<int>(locals.size());

  auto node_at = [&](int index) {
    return comm.nodes()[static_cast<std::size_t>(index)];
  };

  // Exchanges this rank's blocks with every member of `group`.
  auto exchange_group = [&](const std::vector<int>& group) -> sim::Task<> {
    for (int peer : group) co_await ops.send_to(peer);
    for (int peer : group) co_await ops.recv_from(peer);
  };

  // ---- Phase 1: intra-node exchanges --------------------------------
  {
    CollPhase phase(self, "alltoall_power.phase1");
    const auto it = std::find(locals.begin(), locals.end(), me);
    PACC_ASSERT(it != locals.end());
    const int li = static_cast<int>(it - locals.begin());
    for (int step = 1; step < c; ++step) {
      if (is_pow2(c)) {
        const int peer = locals[static_cast<std::size_t>(li ^ step)];
        co_await ops.send_to(peer);
        co_await ops.recv_from(peer);
      } else {
        const int dst = locals[static_cast<std::size_t>((li + step) % c)];
        const int src = locals[static_cast<std::size_t>((li - step + c) % c)];
        co_await ops.send_to(dst);
        co_await ops.recv_from(src);
      }
    }
    co_await barrier.arrive_and_wait();
  }

  // ---- Phase 2: A↔A inter-node; socket B throttled to T7 ------------
  {
    CollPhase phase(self, "alltoall_power.phase2");
    if (my_socket == kSocketA) {
      for (int off = 1; off < N; ++off) {
        const int to_node = node_at((ni + off) % N);
        const int from_node = node_at((ni - off + N) % N);
        for (int peer : comm.socket_group(to_node, kSocketA)) {
          co_await ops.send_to(peer);
        }
        for (int peer : comm.socket_group(from_node, kSocketA)) {
          co_await ops.recv_from(peer);
        }
      }
    } else {
      co_await throttle_self(self, hw::ThrottleLevel::kMax);
    }
    co_await barrier.arrive_and_wait();
  }

  // ---- Phase 3: roles swap: B↔B inter-node; socket A at T7 ----------
  {
    CollPhase phase(self, "alltoall_power.phase3");
    if (my_socket == kSocketB) {
      co_await ensure_unthrottled(self);
      for (int off = 1; off < N; ++off) {
        const int to_node = node_at((ni + off) % N);
        const int from_node = node_at((ni - off + N) % N);
        for (int peer : comm.socket_group(to_node, kSocketB)) {
          co_await ops.send_to(peer);
        }
        for (int peer : comm.socket_group(from_node, kSocketB)) {
          co_await ops.recv_from(peer);
        }
      }
    } else {
      co_await throttle_self(self, hw::ThrottleLevel::kMax);
    }
    co_await barrier.arrive_and_wait();
  }

  // ---- Phase 4: cross-socket inter-node exchanges -------------------
  {
    CollPhase phase(self, "alltoall_power.phase4");
    const int rounds = tournament_rounds(N);
    for (int round = 0; round < rounds; ++round) {
      const int pi = tournament_peer(ni, round, N);
      if (pi < 0) {
        // Idle this round: stay throttled through both sub-steps.
        if (self.machine().throttle(self.core()) == hw::ThrottleLevel::kMin) {
          co_await throttle_self(self, hw::ThrottleLevel::kMax);
        }
        co_await barrier.arrive_and_wait();
        co_await barrier.arrive_and_wait();
        continue;
      }
      const int lo = std::min(ni, pi);
      const int hi = std::max(ni, pi);
      const int lo_node = node_at(lo);
      const int hi_node = node_at(hi);

      // Sub-step a: A(lo) ↔ B(hi); everyone else throttled.
      const bool in_a = (ni == lo && my_socket == kSocketA) ||
                        (ni == hi && my_socket == kSocketB);
      if (in_a) {
        co_await ensure_unthrottled(self);
        const auto& counterpart = (ni == lo)
                                      ? comm.socket_group(hi_node, kSocketB)
                                      : comm.socket_group(lo_node, kSocketA);
        co_await exchange_group(counterpart);
      } else {
        co_await throttle_self(self, hw::ThrottleLevel::kMax);
      }
      co_await barrier.arrive_and_wait();

      // Sub-step b: B(lo) ↔ A(hi).
      const bool in_b = (ni == lo && my_socket == kSocketB) ||
                        (ni == hi && my_socket == kSocketA);
      if (in_b) {
        co_await ensure_unthrottled(self);
        const auto& counterpart = (ni == lo)
                                      ? comm.socket_group(hi_node, kSocketA)
                                      : comm.socket_group(lo_node, kSocketB);
        co_await exchange_group(counterpart);
      } else {
        co_await throttle_self(self, hw::ThrottleLevel::kMax);
      }
      co_await barrier.arrive_and_wait();
    }
  }

  // Restore T0 before returning to the application.
  co_await ensure_unthrottled(self);
}

sim::Task<> alltoall_power_aware(mpi::Rank& self, mpi::Comm& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv, Bytes block) {
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto blk = static_cast<std::size_t>(block);
  PACC_EXPECTS(send.size() ==
                   static_cast<std::size_t>(comm.size()) * blk &&
               recv.size() == send.size());

  // Own block (guarded: empty spans have null data() when block == 0).
  copy_bytes(recv.data() + static_cast<std::size_t>(me) * blk,
             send.data() + static_cast<std::size_t>(me) * blk, blk);

  ExchangeOps ops;
  ops.send_to = [&self, &comm, send, blk, tag](int peer) -> sim::Task<> {
    co_await self.send(comm.global_rank(peer), tag,
                       send.subspan(static_cast<std::size_t>(peer) * blk, blk));
  };
  ops.recv_from = [&self, &comm, recv, blk, tag](int peer) -> sim::Task<> {
    co_await self.recv(comm.global_rank(peer), tag,
                       recv.subspan(static_cast<std::size_t>(peer) * blk, blk));
  };
  co_await power_aware_exchange_schedule(self, comm, ops);
}

}  // namespace pacc::coll

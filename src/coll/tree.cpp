#include "coll/tree.hpp"

#include <algorithm>
#include <vector>

#include "coll/alltoall_power.hpp"
#include "coll/copy.hpp"
#include "coll/power_scheme.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

/// Parent / children links of `tree` on virtual ranks, translated back to
/// comm ranks. Children are listed in send order (binomial: largest
/// subtree first, so deep subtrees start filling earliest).
void build_tree_links(TreeKind tree, int P, int root, CollPlan& plan) {
  plan.parent.assign(static_cast<std::size_t>(P), -1);
  plan.children.resize(static_cast<std::size_t>(P));
  auto real = [&](int vr) { return (vr + root) % P; };
  for (int me = 0; me < P; ++me) {
    const int vr = (me - root + P) % P;
    auto& parent = plan.parent[static_cast<std::size_t>(me)];
    auto& children = plan.children[static_cast<std::size_t>(me)];
    switch (tree) {
      case TreeKind::kBinomial: {
        int mask = 1;
        while (mask < P) {
          if ((vr & mask) != 0) {
            parent = real(vr - mask);
            break;
          }
          mask <<= 1;
        }
        if (vr == 0) mask = ceil_pow2(P);
        for (mask >>= 1; mask > 0; mask >>= 1) {
          const int child_vr = vr + mask;
          if (child_vr < P) children.push_back(real(child_vr));
        }
        break;
      }
      case TreeKind::kBinary:
        if (vr > 0) parent = real((vr - 1) / 2);
        if (2 * vr + 1 < P) children.push_back(real(2 * vr + 1));
        if (2 * vr + 2 < P) children.push_back(real(2 * vr + 2));
        break;
      case TreeKind::kChain:
        if (vr > 0) parent = real(vr - 1);
        if (vr + 1 < P) children.push_back(real(vr + 1));
        break;
      case TreeKind::kLinear:
        if (vr > 0) {
          parent = root;
        } else {
          for (int child_vr = 1; child_vr < P; ++child_vr) {
            children.push_back(real(child_vr));
          }
        }
        break;
    }
  }
}

/// Per-rank programs for the segmented tree bcast/reduce, in the §V
/// PowerAction format. Non-power programs are pure send/recv sequences.
///
/// The power twin follows the §V-B waiting discipline: a rank throttles to
/// T7 while it has nothing to move (bcast: before its first segment
/// arrives and after its last forward; reduce: after its last upward
/// send), and everyone meets at a closing node rendezvous before restoring
/// T0 — so no rank observes a peer's completion at a stale power state.
/// On socket-granular hardware the transitions act socket-wide exactly as
/// the §V exchange's do; since tree ranks finish at staggered times, a
/// socket's effective level is last-writer-wins — an imperfect but honest
/// rendering of the paper's per-socket knob.
void build_tree_programs(PlanKind kind, int segments, bool power,
                         CollPlan& plan) {
  const int P = static_cast<int>(plan.parent.size());
  plan.actions.resize(static_cast<std::size_t>(P));
  if (P == 1) return;
  for (int me = 0; me < P; ++me) {
    auto& acts = plan.actions[static_cast<std::size_t>(me)];
    auto emit = [&acts](PowerAction::Kind kind_, std::int32_t arg = 0) {
      acts.push_back(PowerAction{kind_, arg});
    };
    const int parent = plan.parent[static_cast<std::size_t>(me)];
    const auto& children = plan.children[static_cast<std::size_t>(me)];

    if (kind == PlanKind::kBcastTreeSeg) {
      if (power && parent >= 0) {
        emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
      }
      for (int s = 0; s < segments; ++s) {
        if (parent >= 0) {
          emit(PowerAction::kRecv, parent);
          if (power && s == 0) emit(PowerAction::kEnsureUnthrottled);
        }
        for (const int child : children) emit(PowerAction::kSend, child);
      }
    } else {
      // Reduce drains children in reverse send order (smallest subtree
      // first), so the deepest subtree's segments arrive while the shallow
      // ones are already being received.
      for (int s = 0; s < segments; ++s) {
        for (auto it = children.rbegin(); it != children.rend(); ++it) {
          emit(PowerAction::kRecv, *it);
        }
        if (parent >= 0) emit(PowerAction::kSend, parent);
      }
    }

    if (power) {
      if (parent >= 0) emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
      emit(PowerAction::kBarrier);
      emit(PowerAction::kEnsureUnthrottled);
    }
  }
}

/// Byte range of segment `index` within a `bytes` payload cut into
/// `segments` pieces of `seg` bytes (the last one possibly short).
std::pair<std::size_t, std::size_t> segment_range(Bytes bytes, Bytes seg,
                                                  int segments, int index) {
  if (segments <= 1) return {0, static_cast<std::size_t>(bytes)};
  const auto offset = static_cast<std::size_t>(seg) *
                      static_cast<std::size_t>(index);
  const auto len = std::min(static_cast<std::size_t>(seg),
                            static_cast<std::size_t>(bytes) - offset);
  return {offset, len};
}

std::uint8_t tree_variant(TreeKind tree, bool power) {
  return static_cast<std::uint8_t>(static_cast<std::uint8_t>(tree) |
                                   (power ? 0x80u : 0u));
}

}  // namespace

int tree_segment_count(Bytes bytes, Bytes seg) {
  if (seg <= 0 || seg >= bytes) return 1;
  return static_cast<int>((bytes + seg - 1) / seg);
}

PlanPtr build_tree_plan(const mpi::Comm& comm, PlanKind kind, TreeKind tree,
                        Bytes bytes, Bytes seg, bool power, int root) {
  PACC_EXPECTS(kind == PlanKind::kBcastTreeSeg ||
               kind == PlanKind::kReduceTreeSeg);
  const int P = comm.size();
  PACC_EXPECTS(root >= 0 && root < P);
  auto plan = std::make_shared<CollPlan>();
  plan->kind = kind;
  plan->action = sym::CollapseAction::kNone;  // rooted: ranks singled out
  build_tree_links(tree, P, root, *plan);
  build_tree_programs(kind, tree_segment_count(bytes, seg), power, *plan);
  return plan;
}

PlanPtr get_tree_plan(mpi::Comm& comm, PlanKind kind, TreeKind tree,
                      Bytes bytes, Bytes seg, bool power, int root) {
  const PlanKey key{.comm_fingerprint = comm.structure_fingerprint(),
                    .kind = kind,
                    .bytes = bytes,
                    .root = root,
                    .seg = seg,
                    .variant = tree_variant(tree, power)};
  PlanCache* cache = comm.runtime().plan_cache().get();
  if (cache != nullptr) {
    if (PlanPtr cached = cache->lookup(key)) return cached;
  }
  PlanPtr plan = build_tree_plan(comm, kind, tree, bytes, seg, power, root);
  if (cache != nullptr) cache->insert(key, plan);
  return plan;
}

sim::Task<> bcast_tree_exec(mpi::Rank& self, mpi::Comm& comm,
                            std::span<std::byte> buf, int root, TreeKind tree,
                            Bytes seg, PowerScheme scheme) {
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const auto bytes = static_cast<Bytes>(buf.size());
  const bool power = scheme == PowerScheme::kProposed;
  const int segments = tree_segment_count(bytes, seg);
  // One tag per segment (consecutive sequence numbers): eager flows of
  // different lengths can finish out of order, so a single tag's FIFO
  // would let a short tail segment overtake the full one before it.
  const int tag = comm.begin_collective(me);
  for (int s = 1; s < segments; ++s) comm.begin_collective(me);
  if (P == 1) co_return;

  const PlanPtr plan =
      get_tree_plan(comm, PlanKind::kBcastTreeSeg, tree, bytes, seg, power,
                    root);

  // The i-th send to (recv from) a peer carries segment i: the program
  // emits each link's traffic in segment order, so per-peer occurrence
  // counters recover the slice without threading it through the plan.
  std::vector<int> sent(static_cast<std::size_t>(P), 0);
  std::vector<int> rcvd(static_cast<std::size_t>(P), 0);
  ExchangeOps ops;
  ops.send_to = [&](int peer) -> sim::Task<> {
    const int s = sent[static_cast<std::size_t>(peer)]++;
    const auto [off, len] = segment_range(bytes, seg, segments, s);
    co_await self.send(comm.global_rank(peer), tag + s,
                       buf.subspan(off, len));
  };
  ops.recv_from = [&](int peer) -> sim::Task<> {
    const int s = rcvd[static_cast<std::size_t>(peer)]++;
    const auto [off, len] = segment_range(bytes, seg, segments, s);
    co_await self.recv(comm.global_rank(peer), tag + s,
                       buf.subspan(off, len));
  };
  co_await run_power_actions(self, comm, *plan, ops);
}

sim::Task<> reduce_tree_exec(mpi::Rank& self, mpi::Comm& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv, ReduceOp op, int root,
                             TreeKind tree, Bytes seg, PowerScheme scheme) {
  PACC_EXPECTS_MSG(send.size() % sizeof(double) == 0,
                   "reductions operate on double elements");
  PACC_EXPECTS_MSG(seg % sizeof(double) == 0,
                   "reduce segments must preserve double boundaries");
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const auto bytes = static_cast<Bytes>(send.size());
  const bool power = scheme == PowerScheme::kProposed;
  const int segments = tree_segment_count(bytes, seg);
  // Per-segment tags — see bcast_tree_exec.
  const int tag = comm.begin_collective(me);
  for (int s = 1; s < segments; ++s) comm.begin_collective(me);

  std::vector<std::byte> accum(send.begin(), send.end());
  if (P == 1) {
    PACC_EXPECTS(recv.size() == send.size());
    copy_bytes(recv.data(), accum.data(), accum.size());
    co_return;
  }
  const PlanPtr plan =
      get_tree_plan(comm, PlanKind::kReduceTreeSeg, tree, bytes, seg, power,
                    root);

  std::vector<std::byte> incoming(
      static_cast<std::size_t>(segments <= 1 ? bytes : seg));
  std::vector<int> sent(static_cast<std::size_t>(P), 0);
  std::vector<int> rcvd(static_cast<std::size_t>(P), 0);
  ExchangeOps ops;
  ops.send_to = [&](int peer) -> sim::Task<> {
    const int s = sent[static_cast<std::size_t>(peer)]++;
    const auto [off, len] = segment_range(bytes, seg, segments, s);
    co_await self.send(comm.global_rank(peer), tag + s,
                       std::span<const std::byte>(accum).subspan(off, len));
  };
  ops.recv_from = [&](int peer) -> sim::Task<> {
    const int s = rcvd[static_cast<std::size_t>(peer)]++;
    const auto [off, len] = segment_range(bytes, seg, segments, s);
    const auto in = std::span<std::byte>(incoming).first(len);
    co_await self.recv(comm.global_rank(peer), tag + s, in);
    reduce_bytes(op, std::span<std::byte>(accum).subspan(off, len), in);
  };
  co_await run_power_actions(self, comm, *plan, ops);

  if (me == root) {
    PACC_EXPECTS(recv.size() == send.size());
    copy_bytes(recv.data(), accum.data(), accum.size());
  }
}

sim::Task<> bcast_tree(mpi::Rank& self, mpi::Comm& comm,
                       std::span<std::byte> buf, int root,
                       const TreeOptions& options) {
  ProfileScope prof(self, "bcast", static_cast<Bytes>(buf.size()));
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        co_await bcast_tree_exec(self, comm, buf, root, options.tree,
                                 options.seg, scheme);
      });
}

sim::Task<> reduce_tree(mpi::Rank& self, mpi::Comm& comm,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv, int root,
                        const TreeOptions& options) {
  ProfileScope prof(self, "reduce", static_cast<Bytes>(send.size()));
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        co_await reduce_tree_exec(self, comm, send, recv, options.op, root,
                                  options.tree, options.seg, scheme);
      });
}

}  // namespace pacc::coll

// Umbrella header for the collective layer: every collective entry point
// plus the algorithm registry.
//
// The registry itself (enum Op, the AlgoDesc table, supported(), parsing)
// lives in coll/algo.hpp, which compiles against forward declarations only
// — include that instead when you enumerate operations or algorithms
// without calling them. This umbrella is for TUs that invoke the
// collectives directly.
#pragma once

#include "coll/algo.hpp"
#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/alltoall.hpp"
#include "coll/alltoall_power.hpp"
#include "coll/alltoallv.hpp"
#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/comm_split.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/reduce.hpp"
#include "coll/reduce_scatter.hpp"
#include "coll/scan.hpp"
#include "coll/topo_aware.hpp"
#include "coll/tree.hpp"
#include "coll/types.hpp"
#include "mpi/governor.hpp"

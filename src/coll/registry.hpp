// Umbrella header + operation registry for the collective layer.
//
// The registry is the single source of truth for what the library can run:
// `kAllOps` enumerates every operation and `supported(op, scheme)` says
// which power schemes apply to it, so benches, paccbench and the Campaign
// sweep engine never hard-code valid op×scheme combinations.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/alltoall.hpp"
#include "coll/alltoall_power.hpp"
#include "coll/alltoallv.hpp"
#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/comm_split.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/reduce.hpp"
#include "coll/reduce_scatter.hpp"
#include "coll/scan.hpp"
#include "coll/topo_aware.hpp"
#include "coll/types.hpp"
#include "mpi/governor.hpp"

namespace pacc::coll {

/// The collective operations this library implements.
enum class Op {
  kAlltoall,
  kAlltoallv,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kGather,
  kScatter,
  kScan,
  kReduceScatter,
  kBarrier,
};

std::string to_string(Op op);

/// Every operation, in declaration order — iterable so sweeps and tests can
/// enumerate the library instead of hard-coding subsets.
inline constexpr Op kAllOps[] = {
    Op::kAlltoall, Op::kAlltoallv,     Op::kBcast,   Op::kReduce,
    Op::kAllreduce, Op::kAllgather,    Op::kGather,  Op::kScatter,
    Op::kScan,      Op::kReduceScatter, Op::kBarrier,
};

/// All power schemes, in the order the paper's figures present them.
inline constexpr PowerScheme kAllSchemes[] = {
    PowerScheme::kNone, PowerScheme::kFreqScaling, PowerScheme::kProposed};

/// Capability matrix: true if `op` implements `scheme`. Every op runs the
/// default algorithm (kNone); the binomial Gather/Scatter have no
/// power-aware variant (their topology-aware §VIII cousins are separate
/// entry points), so they accept only kNone.
bool supported(Op op, PowerScheme scheme);

/// Governor × scheme capability matrix. The reactive and slack governors
/// compose with every scheme (their restores clamp to the scheme's floor);
/// the power-cap governor owns every core's frequency outright, which a §V
/// scheme would fight, so it runs only with kNone.
bool governor_supported(mpi::GovernorKind kind, PowerScheme scheme);

/// The flag names the tools accept ("alltoall", "reduce_scatter", …);
/// returns nullopt for unknown names.
std::optional<Op> parse_op(std::string_view name);

/// "none"/"no-power", "dvfs"/"freq-scaling", "proposed".
std::optional<PowerScheme> parse_scheme(std::string_view name);

}  // namespace pacc::coll

// Umbrella header + operation registry for the collective layer.
#pragma once

#include <string>

#include "coll/allgather.hpp"
#include "coll/allreduce.hpp"
#include "coll/alltoall.hpp"
#include "coll/alltoall_power.hpp"
#include "coll/alltoallv.hpp"
#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/comm_split.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/reduce.hpp"
#include "coll/reduce_scatter.hpp"
#include "coll/scan.hpp"
#include "coll/topo_aware.hpp"
#include "coll/types.hpp"

namespace pacc::coll {

/// The collective operations this library implements.
enum class Op {
  kAlltoall,
  kAlltoallv,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kGather,
  kScatter,
  kScan,
  kReduceScatter,
  kBarrier,
};

std::string to_string(Op op);

/// All power schemes, in the order the paper's figures present them.
inline constexpr PowerScheme kAllSchemes[] = {
    PowerScheme::kNone, PowerScheme::kFreqScaling, PowerScheme::kProposed};

}  // namespace pacc::coll

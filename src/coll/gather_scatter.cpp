#include "coll/gather_scatter.hpp"

#include <algorithm>
#include <vector>

#include "coll/copy.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

/// Number of blocks in the subtree rooted at relative rank vr (whose span
/// is its lowest set bit, clipped to P). For vr == 0 the span is P.
int subtree_blocks(int vr, int mask, int P) {
  return std::min(mask, P - vr);
}

}  // namespace

sim::Task<> scatter_binomial(mpi::Rank& self, mpi::Comm& comm,
                             std::span<const std::byte> send,
                             std::span<std::byte> recv, Bytes block,
                             int root) {
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const auto blk = static_cast<std::size_t>(block);
  PACC_EXPECTS(recv.size() == blk);
  const int tag = comm.begin_collective(me);
  const int vr = (me - root + P) % P;

  // tmp holds this rank's subtree in *relative* block order, starting at vr.
  std::vector<std::byte> tmp;
  int span_mask = 1;

  if (vr == 0) {
    PACC_EXPECTS(send.size() == static_cast<std::size_t>(P) * blk);
    tmp.resize(static_cast<std::size_t>(P) * blk);
    for (int i = 0; i < P; ++i) {
      // Relative block i belongs to actual rank (i + root) % P.
      copy_bytes(tmp.data() + static_cast<std::size_t>(i) * blk,
                 send.data() + static_cast<std::size_t>((i + root) % P) * blk,
                 blk);
    }
    span_mask = ceil_pow2(P);
  } else {
    int mask = 1;
    while (mask < P) {
      if ((vr & mask) != 0) {
        const int parent = ((vr - mask) + root) % P;
        const int count = subtree_blocks(vr, mask, P);
        tmp.resize(static_cast<std::size_t>(count) * blk);
        co_await self.recv(comm.global_rank(parent), tag, tmp);
        span_mask = mask;
        break;
      }
      mask <<= 1;
    }
  }

  // Send phase: hand each child its subtree.
  for (int mask = span_mask >> 1; mask > 0; mask >>= 1) {
    const int child_vr = vr + mask;
    if (child_vr < P) {
      const int count = subtree_blocks(child_vr, mask, P);
      const auto offset = static_cast<std::size_t>(child_vr - vr) * blk;
      co_await self.send(
          comm.global_rank((child_vr + root) % P), tag,
          std::span<const std::byte>(tmp).subspan(
              offset, static_cast<std::size_t>(count) * blk));
    }
  }

  copy_bytes(recv.data(), tmp.data(), blk);
}

sim::Task<> gather_binomial(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv, Bytes block, int root) {
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const auto blk = static_cast<std::size_t>(block);
  PACC_EXPECTS(send.size() == blk);
  const int tag = comm.begin_collective(me);
  const int vr = (me - root + P) % P;

  // tmp accumulates the subtree rooted at vr in relative block order.
  const int max_span = (vr == 0) ? P : subtree_blocks(vr, vr & -vr, P);
  std::vector<std::byte> tmp(static_cast<std::size_t>(max_span) * blk);
  copy_bytes(tmp.data(), send.data(), blk);

  int mask = 1;
  while (mask < P) {
    if ((vr & mask) == 0) {
      const int child_vr = vr + mask;
      if (child_vr < P) {
        const int count = subtree_blocks(child_vr, mask, P);
        const auto offset = static_cast<std::size_t>(child_vr - vr) * blk;
        co_await self.recv(
            comm.global_rank((child_vr + root) % P), tag,
            std::span<std::byte>(tmp).subspan(
                offset, static_cast<std::size_t>(count) * blk));
      }
    } else {
      const int parent = ((vr - mask) + root) % P;
      const int count = subtree_blocks(vr, mask, P);
      co_await self.send(
          comm.global_rank(parent), tag,
          std::span<const std::byte>(tmp).first(
              static_cast<std::size_t>(count) * blk));
      break;
    }
    mask <<= 1;
  }

  if (vr == 0) {
    PACC_EXPECTS(recv.size() == static_cast<std::size_t>(P) * blk);
    for (int i = 0; i < P; ++i) {
      copy_bytes(recv.data() + static_cast<std::size_t>((i + root) % P) * blk,
                 tmp.data() + static_cast<std::size_t>(i) * blk, blk);
    }
  }
}

namespace {

std::vector<std::size_t> prefix(std::span<const Bytes> counts) {
  std::vector<std::size_t> displs(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    PACC_EXPECTS(counts[i] >= 0);
    displs[i + 1] = displs[i] + static_cast<std::size_t>(counts[i]);
  }
  return displs;
}

}  // namespace

sim::Task<> scatterv_linear(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv,
                            std::span<const Bytes> counts, int root) {
  const int P = comm.size();
  PACC_EXPECTS(static_cast<int>(counts.size()) == P);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const int tag = comm.begin_collective(me);
  PACC_EXPECTS(recv.size() ==
               static_cast<std::size_t>(counts[static_cast<std::size_t>(me)]));

  if (me == root) {
    const auto displs = prefix(counts);
    PACC_EXPECTS(send.size() == displs.back());
    for (int peer = 0; peer < P; ++peer) {
      const auto p = static_cast<std::size_t>(peer);
      const auto segment =
          send.subspan(displs[p], static_cast<std::size_t>(counts[p]));
      if (peer == me) {
        copy_bytes(recv.data(), segment.data(), segment.size());
      } else {
        co_await self.send(comm.global_rank(peer), tag, segment);
      }
    }
  } else {
    co_await self.recv(comm.global_rank(root), tag, recv);
  }
}

sim::Task<> gatherv_linear(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv,
                           std::span<const Bytes> counts, int root) {
  const int P = comm.size();
  PACC_EXPECTS(static_cast<int>(counts.size()) == P);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const int tag = comm.begin_collective(me);
  PACC_EXPECTS(send.size() ==
               static_cast<std::size_t>(counts[static_cast<std::size_t>(me)]));

  if (me == root) {
    const auto displs = prefix(counts);
    PACC_EXPECTS(recv.size() == displs.back());
    for (int peer = 0; peer < P; ++peer) {
      const auto p = static_cast<std::size_t>(peer);
      const auto segment =
          recv.subspan(displs[p], static_cast<std::size_t>(counts[p]));
      if (peer == me) {
        copy_bytes(segment.data(), send.data(), send.size());
      } else {
        co_await self.recv(comm.global_rank(peer), tag, segment);
      }
    }
  } else {
    co_await self.send(comm.global_rank(root), tag, send);
  }
}

}  // namespace pacc::coll

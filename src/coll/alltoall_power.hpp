// The paper's power-aware Alltoall (§V-A, Fig 3).
//
// The pair-wise exchange is re-scheduled over the two per-node socket
// groups A and B so that at any moment only one socket's processes per node
// drive the network, halving endpoint contention, while the other socket is
// throttled to T7:
//
//   Phase 1: intra-node exchanges (all local peers).
//   Phase 2: socket-A processes exchange with socket-A processes of every
//            other node; socket B is throttled to T7.
//   Phase 3: roles swap: B↔B inter-node exchanges, socket A at T7.
//   Phase 4: N-1 tournament rounds pairing nodes (i, j), i<j; within a
//            round, first A_i↔B_j run while B_i and A_j are throttled, then
//            B_i↔A_j run while A_i and B_j are throttled.
//
// The schedule is exposed generically (ExchangeOps) so MPI_Alltoallv reuses
// it with per-peer message sizes.
#pragma once

#include <functional>

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

/// Per-peer data movement callbacks supplied by the concrete collective.
struct ExchangeOps {
  /// Sends this rank's block destined to `peer` (a comm rank).
  std::function<sim::Task<>(int peer)> send_to;
  /// Receives `peer`'s block destined to this rank.
  std::function<sim::Task<>(int peer)> recv_from;
};

struct CollPlan;

/// True when the comm satisfies the algorithm's structural requirements:
/// uniform ranks-per-node, at least two nodes and a two-socket topology.
bool power_aware_alltoall_applicable(const mpi::Comm& comm);

/// Interprets this rank's PowerAction program from `plan`, dispatching data
/// movement through `ops`. This is the shared §V interpreter: the
/// power-aware exchange and the power-aware tree collectives all execute
/// through it, so throttle/barrier/phase semantics stay in one place.
sim::Task<> run_power_actions(mpi::Rank& self, mpi::Comm& comm,
                              const CollPlan& plan, const ExchangeOps& ops);

/// Runs the 4-phase power-aware exchange schedule; every peer pair is
/// exchanged exactly once. Caller is responsible for per-call DVFS.
/// `bytes` is the caller's total payload, used only as the plan-cache key
/// (the schedule itself is size-invariant).
sim::Task<> power_aware_exchange_schedule(mpi::Rank& self, mpi::Comm& comm,
                                          const ExchangeOps& ops,
                                          Bytes bytes = 0);

/// Power-aware MPI_Alltoall over contiguous blocks.
sim::Task<> alltoall_power_aware(mpi::Rank& self, mpi::Comm& comm,
                                 std::span<const std::byte> send,
                                 std::span<std::byte> recv, Bytes block);

/// Pairing of node-index `i` in tournament round `round` (0-based) among N
/// nodes; returns -1 when the node idles that round (odd N).
int tournament_peer(int i, int round, int N);

/// Number of tournament rounds needed for N nodes.
int tournament_rounds(int N);

}  // namespace pacc::coll

// MPI_Alltoall algorithms (§IV-A, §V-A).
//
// Default algorithms mirror MVAPICH2: the Bruck (hypercube) algorithm for
// small messages and pair-wise exchange for large ones. The power-aware
// dispatcher adds per-call DVFS (kFreqScaling) or the paper's
// socket-scheduled, throttled pair-wise algorithm (kProposed; see
// alltoall_power.hpp).
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct AlltoallOptions {
  PowerScheme scheme = PowerScheme::kNone;
  /// Block sizes at or below this use the Bruck algorithm.
  Bytes bruck_threshold = 256;
};

/// Pair-wise exchange: P-1 sendrecv steps (XOR pattern when P is a power of
/// two, ring otherwise). send/recv hold P contiguous blocks of `block` bytes.
sim::Task<> alltoall_pairwise(mpi::Rank& self, mpi::Comm& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv, Bytes block);

/// Bruck's algorithm: ceil(log2 P) rounds of aggregated blocks; best for
/// small messages.
sim::Task<> alltoall_bruck(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv, Bytes block);

/// Dispatcher applying the requested power scheme.
sim::Task<> alltoall(mpi::Rank& self, mpi::Comm& comm,
                     std::span<const std::byte> send, std::span<std::byte> recv,
                     Bytes block, const AlltoallOptions& options = {});

}  // namespace pacc::coll

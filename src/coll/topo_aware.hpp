// Topology-aware Scatter / Gather with rack-level power management.
//
// Implements the paper's stated future work (§VIII): extend the power-aware
// designs to the topology-aware algorithms of Kandalla et al. [27] and
// "conserve power on large scale clusters by throttling down all the
// processes in a rack during the inter-rack communication phases".
//
// The algorithms route data hierarchically — root → rack leaders over the
// (oversubscribed) rack aggregation links, rack leader → node leaders
// inside the rack, node leader → local ranks — instead of letting a flat
// binomial tree push large subtree payloads across rack boundaries
// repeatedly. The power-aware scatter keeps only the rack leaders at T0
// while the inter-rack phase runs; everyone else sits throttled at T7 and
// recovers as its data arrives.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct TopoAwareOptions {
  PowerScheme scheme = PowerScheme::kNone;
};

/// Requirements: a rack layer in the cluster shape, at least two racks with
/// members, uniform ranks per node, and rack membership forming contiguous
/// comm-rank ranges (true for the standard node-major placement).
bool topo_aware_applicable(const mpi::Comm& comm);

/// Hierarchical scatter: root holds comm.size() blocks of `block` bytes;
/// every rank receives its block. With PowerScheme::kProposed, all ranks
/// except the rack leaders are throttled to T7 during the inter-rack phase
/// (§VIII). Falls back to the binomial scatter when not applicable.
sim::Task<> scatter_topo_aware(mpi::Rank& self, mpi::Comm& comm,
                               std::span<const std::byte> send,
                               std::span<std::byte> recv, Bytes block,
                               int root, const TopoAwareOptions& options = {});

/// Hierarchical gather (reverse routing). Power schemes apply per-call DVFS
/// only: a gather has no long waiting phase to throttle — leaves finish and
/// leave the collective.
sim::Task<> gather_topo_aware(mpi::Rank& self, mpi::Comm& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv, Bytes block,
                              int root, const TopoAwareOptions& options = {});

}  // namespace pacc::coll

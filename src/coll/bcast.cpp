#include "coll/bcast.hpp"

#include <vector>

#include "coll/allgather.hpp"
#include "coll/copy.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/plan.hpp"
#include "coll/power_scheme.hpp"
#include "coll/tuner.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

sim::Task<> maybe_unthrottle(mpi::Rank& self) {
  if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
    co_await unthrottle_self(self);
  }
}

/// Inter-leader stage of the two-level broadcast.
sim::Task<> inter_leader_bcast(mpi::Rank& self, mpi::Comm& leaders,
                               std::span<std::byte> buf, int leader_root,
                               const BcastOptions& options) {
  if (leaders.size() == 1) co_return;
  if (static_cast<Bytes>(buf.size()) >= options.scatter_allgather_threshold &&
      leaders.size() >= 2) {
    co_await bcast_scatter_allgather(self, leaders, buf, leader_root);
  } else {
    co_await bcast_binomial(self, leaders, buf, leader_root);
  }
}

}  // namespace

sim::Task<> bcast_binomial(mpi::Rank& self, mpi::Comm& comm,
                           std::span<std::byte> buf, int root,
                           bool unthrottle_on_receive) {
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const int tag = comm.begin_collective(me);
  const PlanPtr plan = get_plan(comm, PlanKind::kBcastBinomial,
                                static_cast<Bytes>(buf.size()), root);

  // Receive from the parent (the rank that differs in my lowest set bit).
  // Rooted trees never compress, so the view is a plain rank index here.
  const PlanView view(*plan, me, P);
  const int parent = plan->parent[view.row()];
  if (parent >= 0) {
    co_await self.recv(comm.global_rank(view.peer(parent)), tag, buf);
    if (unthrottle_on_receive) co_await maybe_unthrottle(self);
  } else if (unthrottle_on_receive) {
    co_await maybe_unthrottle(self);
  }

  // Forward to children.
  for (const int child : plan->children[view.row()]) {
    co_await self.send(comm.global_rank(view.peer(child)), tag, buf);
  }
}

sim::Task<> bcast_scatter_allgather(mpi::Rank& self, mpi::Comm& comm,
                                    std::span<std::byte> buf, int root) {
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  if (P == 1) co_return;

  const auto total = buf.size();
  const auto chunk = (total + static_cast<std::size_t>(P) - 1) /
                     static_cast<std::size_t>(P);
  PACC_EXPECTS(chunk > 0);
  const auto padded_size = chunk * static_cast<std::size_t>(P);

  // Scatter equal chunks from a padded copy, then ring-allgather them.
  std::vector<std::byte> padded(padded_size);
  if (me == root) {
    copy_bytes(padded.data(), buf.data(), total);
  }
  std::vector<std::byte> my_chunk(chunk);
  co_await scatter_binomial(
      self, comm,
      me == root ? std::span<const std::byte>(padded)
                 : std::span<const std::byte>{},
      my_chunk, static_cast<Bytes>(chunk), root);
  co_await allgather_ring(self, comm, my_chunk, padded,
                          static_cast<Bytes>(chunk));
  copy_bytes(buf.data(), padded.data(), total);
}

sim::Task<> bcast_intra_node(mpi::Rank& self, mpi::Comm& node_comm,
                             std::span<std::byte> buf, int root) {
  if (node_comm.size() <= 1) co_return;
  PACC_EXPECTS_MSG(node_comm.nodes().size() == 1,
                   "bcast_intra_node needs a single-node communicator");
  if (self.runtime().params().mode == mpi::ProgressMode::kBlocking) {
    co_await bcast_binomial(self, node_comm, buf, root);
    co_return;
  }
  const int me = node_comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = node_comm.begin_collective(me);
  if (me == root) {
    std::vector<int> readers;
    readers.reserve(static_cast<std::size_t>(node_comm.size() - 1));
    for (int r = 0; r < node_comm.size(); ++r) {
      if (r != root) readers.push_back(node_comm.global_rank(r));
    }
    co_await self.shm_publish(tag, buf, readers);
  } else {
    co_await self.shm_read(node_comm.global_rank(root), tag, buf);
  }
}

sim::Task<> bcast_smp(mpi::Rank& self, mpi::Comm& comm,
                      std::span<std::byte> buf, int root,
                      const BcastOptions& options) {
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < comm.size());
  const int tag = comm.begin_collective(me);
  const int root_node = comm.node_of(root);
  const int root_leader = comm.leader_of(root_node);
  const bool power = options.scheme == PowerScheme::kProposed;
  const bool leader = comm.is_leader(me);

  // Fix-up: the root hands its buffer to its node leader if necessary.
  if (root != root_leader) {
    CollPhase phase(self, "bcast.fixup");
    if (me == root) {
      co_await self.send(comm.global_rank(root_leader), tag, buf);
    } else if (me == root_leader) {
      co_await self.recv(comm.global_rank(root), tag, buf);
    }
  }

  {
    CollPhase phase(self, "bcast.inter_leader");
    // Network phase: only leaders move data; everyone else throttles (§V-B).
    if (power) {
      if (leader) {
        // Socket-granular hardware forces the leader's socket to a partial
        // T4; with core-granular throttling the leader stays at T0 (§V-B
        // "future architectures").
        if (!self.machine().params().core_level_throttling) {
          co_await throttle_self(self, 4);
        }
      } else {
        const int leader_socket =
            comm.socket_of(comm.leader_of(comm.node_of(me)));
        const bool core_level =
            self.machine().params().core_level_throttling;
        // With core-granular throttling every non-leader can go to T7; on
        // socket-granular hardware the leader's socket-mates share its T4.
        const int level = (!core_level && self.socket() == leader_socket)
                              ? 4
                              : hw::ThrottleLevel::kMax;
        co_await throttle_self(self, level);
      }
    }

    if (leader) {
      mpi::Comm& leaders = comm.leader_comm();
      const int leader_root =
          leaders.comm_rank_of(comm.global_rank(root_leader));
      PACC_ASSERT(leader_root >= 0);
      co_await inter_leader_bcast(self, leaders, buf, leader_root, options);
    }

    // End of the inter-leader operation: everyone throttles back up (§V-B
    // "throttled down at the start of the inter-leader operation and
    // throttled up at the end of it"), synchronised by a node rendezvous.
    if (power) {
      co_await comm.node_barrier(comm.node_of(me)).arrive_and_wait();
      co_await maybe_unthrottle(self);
    }
  }

  // Intra-node phase over shared memory, at full throttle (fmin).
  {
    CollPhase phase(self, "bcast.intra_node");
    mpi::Comm& node = comm.node_comm(comm.node_of(me));
    co_await bcast_intra_node(self, node, buf, 0);
  }
}

sim::Task<> bcast(mpi::Rank& self, mpi::Comm& comm, std::span<std::byte> buf,
                  int root, const BcastOptions& options) {
  ProfileScope prof(self, "bcast", static_cast<Bytes>(buf.size()));
  const bool two_level = comm.nodes().size() >= 2;
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        // Tuned dispatch: when a tuner is attached and holds a decision
        // for this exact cell, run the winning variant's inner body (the
        // scheme is already negotiated). No tuner, no decision, or a
        // decision naming the default → the static choices below.
        if (const TunedDispatch tuned =
                tuned_choice(comm, Op::kBcast, scheme,
                             static_cast<Bytes>(buf.size()));
            tuned.desc != nullptr) {
          AlgoCall call;
          call.send = buf;
          call.root = root;
          call.scheme = scheme;
          call.seg = tuned.seg;
          co_await tuned.desc->exec_inner(self, comm, call);
          co_return;
        }
        BcastOptions opts = options;
        opts.scheme = scheme;
        if (two_level) {
          co_await bcast_smp(self, comm, buf, root, opts);
        } else if (static_cast<Bytes>(buf.size()) >=
                       options.scatter_allgather_threshold &&
                   comm.size() >= 2) {
          co_await bcast_scatter_allgather(self, comm, buf, root);
        } else {
          co_await bcast_binomial(self, comm, buf, root);
        }
      });
}

}  // namespace pacc::coll

// MPI_Scan (inclusive prefix reduction) over double elements.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct ScanOptions {
  PowerScheme scheme = PowerScheme::kNone;
  ReduceOp op = ReduceOp::kSum;
};

/// Linear-shift recursive doubling: after round k a rank's partial covers
/// the 2^k ranks ending at itself; O(log P) rounds for any P.
sim::Task<> scan_recursive_doubling(mpi::Rank& self, mpi::Comm& comm,
                                    std::span<const std::byte> send,
                                    std::span<std::byte> recv, ReduceOp op);

/// Dispatcher applying the requested power scheme (per-call DVFS; scan has
/// no leader structure to throttle).
sim::Task<> scan(mpi::Rank& self, mpi::Comm& comm,
                 std::span<const std::byte> send, std::span<std::byte> recv,
                 const ScanOptions& options = {});

}  // namespace pacc::coll

// Collective plan cache: pure build / cheap execute for the schedule
// tables the collective algorithms otherwise re-derive on every call.
//
// A plan is the rank-indexed, immutable description of one leaf algorithm's
// communication schedule on one communicator: pairwise (dst, src) step
// tables, Bruck round index sets, binomial parent/children trees, and — for
// the paper's power-aware exchange — the full per-rank program of sends,
// receives, node rendezvous and throttle transitions (§V). Building a plan
// is pure (no simulated time, no events), so executing from a cached plan
// is byte-identical to the historical compute-as-you-go paths.
//
// Plans are memoized in a thread-safe LRU keyed on (communicator
// fingerprint, algorithm, bytes, root). The fingerprint folds in the
// context id, the ordered membership and its node/socket placement, and
// the machine shape, so a cache can safely outlive one Simulation: a
// Campaign injects a single shared cache into every sweep cell, and cells
// with identical cluster configs reuse each other's plans.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "coll/types.hpp"
#include "sym/collapse.hpp"

namespace pacc::coll {

/// Leaf algorithms with cacheable schedules. The dispatch layer picks the
/// algorithm from (op, bytes, scheme, comm shape) exactly as before; the
/// kind names the result of that decision, so one plan never serves two
/// different schedules.
enum class PlanKind : std::uint8_t {
  kAlltoallPairwise,
  kAlltoallBruck,
  kAlltoallvPairwise,
  kPowerExchange,  ///< §V power-aware exchange (alltoall and alltoallv)
  kBcastBinomial,
  kBarrierDissemination,
  kBcastTreeSeg,   ///< segmented tree bcast (coll/tree.hpp)
  kReduceTreeSeg,  ///< segmented tree reduce (coll/tree.hpp)
};

struct PlanKey {
  std::uint64_t comm_fingerprint = 0;
  PlanKind kind = PlanKind::kAlltoallPairwise;
  Bytes bytes = 0;  ///< call size; schedules are size-invariant but the
                    ///< key keeps sizes distinct for exact attribution
  std::int32_t root = 0;
  Bytes seg = 0;             ///< segment size (tree variants; 0 otherwise)
  std::uint8_t variant = 0;  ///< packed TreeKind + power bit (tree variants)

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    std::uint64_t h = k.comm_fingerprint;
    h ^= (static_cast<std::uint64_t>(k.kind) << 56) ^
         (static_cast<std::uint64_t>(k.variant) << 40) ^
         (static_cast<std::uint64_t>(static_cast<std::uint64_t>(k.bytes)) *
          0x9e3779b97f4a7c15ull) ^
         (static_cast<std::uint64_t>(static_cast<std::uint64_t>(k.seg)) *
          0xff51afd7ed558ccdull) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.root)) *
          0xc2b2ae3d27d4eb4full);
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

/// One step of the power-aware exchange interpreter.
struct PowerAction {
  enum Kind : std::uint8_t {
    kSend,               ///< arg = peer comm rank
    kRecv,               ///< arg = peer comm rank
    kBarrier,            ///< node rendezvous on the executing rank's node
    kThrottle,           ///< arg = T-state (unconditional, as scheduled)
    kEnsureUnthrottled,  ///< back to T0 only if currently throttled
    kEnsureThrottledMax, ///< to T7 only if currently at T0 (idle rounds)
    kPhaseBegin,         ///< arg = index into kPowerPhaseNames
    kPhaseEnd,
  };
  Kind kind;
  std::int32_t arg = 0;
};

/// (destination, source) of one pairwise / dissemination step.
struct PairStep {
  std::int32_t dst = 0;
  std::int32_t src = 0;
};

/// Immutable schedule tables for one (comm, kind, root) tuple. Only the
/// section matching the kind is populated; everything is indexed by comm
/// rank where per-rank.
struct CollPlan {
  PlanKind kind = PlanKind::kAlltoallPairwise;
  /// kAlltoallPairwise / kAlltoallvPairwise / kBarrierDissemination.
  std::vector<std::vector<PairStep>> pair_steps;
  /// Power-of-two pairwise alltoall exchanges both directions in one
  /// sendrecv; the non-pow2 schedule (and alltoallv always) splits them.
  bool pairwise_sendrecv = false;
  /// kAlltoallBruck: block indices moved in each round (rank-invariant).
  std::vector<std::vector<std::int32_t>> bruck_rounds;
  /// kBcastBinomial: parent comm rank (-1 at the root) and children in
  /// send order.
  std::vector<std::int32_t> parent;
  std::vector<std::vector<std::int32_t>> children;
  /// kPowerExchange: per-rank interpreter program.
  std::vector<std::vector<PowerAction>> actions;
  /// Group action the schedule commutes with (kXor for the power-of-two
  /// pairwise exchange, kCyclic for distance-based schedules, kNone when
  /// the schedule singles ranks out). Executors stamp this on the running
  /// rank so a collapsed runtime can relabel cross-group traffic.
  sym::CollapseAction action = sym::CollapseAction::kNone;
};

using PlanPtr = std::shared_ptr<const CollPlan>;

/// Phase labels the kPowerExchange interpreter emits (index = PhaseBegin
/// arg); shared with the historical inline spans byte-for-byte.
extern const char* const kPowerPhaseNames[4];

/// Thread-safe LRU of built plans. Lookup and insert are O(1); plans are
/// immutable shared_ptrs, so a plan evicted while a rank still walks it
/// simply outlives its cache entry.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 256);

  /// The cached plan, refreshing its LRU position — or nullptr on a miss.
  PlanPtr lookup(const PlanKey& key);

  /// Inserts (or replaces) the plan, evicting the least recently used
  /// entry beyond capacity. Concurrent builders of the same key may both
  /// insert; the plans are identical so last-write-wins is harmless.
  void insert(const PlanKey& key, PlanPtr plan);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    PlanPtr plan;
    std::list<PlanKey>::iterator pos;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<PlanKey> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Pure plan construction — no cache, no simulated side effects. `root`
/// matters only for kBcastBinomial.
PlanPtr build_plan(const mpi::Comm& comm, PlanKind kind, int root = 0);

/// Cache-aware fetch: looks up the runtime's shared cache (every member of
/// a matched call maps to the same key, so the first rank's build serves
/// the whole communicator and every later iteration or sweep cell),
/// building and inserting on a miss. Falls back to an uncached build when
/// the runtime has no cache attached. Costs zero simulated time.
PlanPtr get_plan(mpi::Comm& comm, PlanKind kind, Bytes bytes, int root = 0);

}  // namespace pacc::coll

// Collective plan cache: pure build / cheap execute for the schedule
// tables the collective algorithms otherwise re-derive on every call.
//
// A plan is the immutable description of one leaf algorithm's communication
// schedule on one communicator: pairwise (dst, src) step tables, Bruck
// round index sets, binomial parent/children trees, and — for the paper's
// power-aware exchange — the full program of sends, receives, node
// rendezvous and throttle transitions (§V). Building a plan is pure (no
// simulated time, no events), so executing from a cached plan is
// byte-identical to the historical compute-as-you-go paths.
//
// Schedules whose per-rank programs are images of each other under the
// group action they commute with (see CollPlan::action) are stored
// *compressed*: one canonical template per symmetry class plus a
// class_of_rank map, and executors relabel template peers through a
// PlanView on the fly. A fully XOR-symmetric schedule — the power-of-two
// pairwise exchange, the dissemination barrier — collapses to a single
// template; the §V exchange collapses to one template per rank of the
// top-level fabric group. At 16384 ranks this takes the proposed-alltoall
// plan from ~1.3 GB of materialized programs to tens of megabytes. The
// historical rank-indexed layout stays available behind
// RuntimeParams::materialized_plans for the equivalence suite.
//
// Plans are memoized in a thread-safe LRU keyed on (communicator
// fingerprint, algorithm, bytes, root). The fingerprint folds in the
// context id, the ordered membership and its node/socket placement, and
// the machine shape, so a cache can safely outlive one Simulation: a
// Campaign injects a single shared cache into every sweep cell, and cells
// with identical cluster configs reuse each other's plans.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "coll/types.hpp"
#include "sym/collapse.hpp"

namespace pacc::coll {

/// Leaf algorithms with cacheable schedules. The dispatch layer picks the
/// algorithm from (op, bytes, scheme, comm shape) exactly as before; the
/// kind names the result of that decision, so one plan never serves two
/// different schedules.
enum class PlanKind : std::uint8_t {
  kAlltoallPairwise,
  kAlltoallBruck,
  kAlltoallvPairwise,
  kPowerExchange,  ///< §V power-aware exchange (alltoall and alltoallv)
  kBcastBinomial,
  kBarrierDissemination,
  kBcastTreeSeg,   ///< segmented tree bcast (coll/tree.hpp)
  kReduceTreeSeg,  ///< segmented tree reduce (coll/tree.hpp)
};

/// PlanKey::variant bit marking a plan built with materialized (per-rank)
/// tables, so the equivalence suite can hold both layouts in one shared
/// cache without collisions. Tree variants pack TreeKind + the power bit
/// into the low bits and 0x80; 0x40 is free.
inline constexpr std::uint8_t kPlanVariantMaterialized = 0x40;

/// Whether a kind's schedule depends on the message size. Size-invariant
/// kinds are cached with bytes = 0 so every message size of a sweep shares
/// one entry instead of duplicating identical tables per size.
constexpr bool plan_kind_size_keyed(PlanKind kind) {
  return kind == PlanKind::kPowerExchange ||
         kind == PlanKind::kBcastTreeSeg || kind == PlanKind::kReduceTreeSeg;
}

struct PlanKey {
  std::uint64_t comm_fingerprint = 0;
  PlanKind kind = PlanKind::kAlltoallPairwise;
  Bytes bytes = 0;  ///< call size for size-keyed kinds (kPowerExchange and
                    ///< the segmented trees); 0 for size-invariant kinds
  std::int32_t root = 0;
  Bytes seg = 0;             ///< segment size (tree variants; 0 otherwise)
  std::uint8_t variant = 0;  ///< packed TreeKind + power bit (tree
                             ///< variants) | kPlanVariantMaterialized

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const {
    std::uint64_t h = k.comm_fingerprint;
    h ^= (static_cast<std::uint64_t>(k.kind) << 56) ^
         (static_cast<std::uint64_t>(k.variant) << 40) ^
         (static_cast<std::uint64_t>(static_cast<std::uint64_t>(k.bytes)) *
          0x9e3779b97f4a7c15ull) ^
         (static_cast<std::uint64_t>(static_cast<std::uint64_t>(k.seg)) *
          0xff51afd7ed558ccdull) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.root)) *
          0xc2b2ae3d27d4eb4full);
    h ^= h >> 29;
    return static_cast<std::size_t>(h);
  }
};

/// One step of the power-aware exchange interpreter.
struct PowerAction {
  enum Kind : std::uint8_t {
    kSend,               ///< arg = peer comm rank
    kRecv,               ///< arg = peer comm rank
    kBarrier,            ///< node rendezvous on the executing rank's node
    kThrottle,           ///< arg = T-state (unconditional, as scheduled)
    kEnsureUnthrottled,  ///< back to T0 only if currently throttled
    kEnsureThrottledMax, ///< to T7 only if currently at T0 (idle rounds)
    kPhaseBegin,         ///< arg = index into kPowerPhaseNames
    kPhaseEnd,
  };
  Kind kind;
  std::int32_t arg = 0;
};

/// (destination, source) of one pairwise / dissemination step.
struct PairStep {
  std::int32_t dst = 0;
  std::int32_t src = 0;
};

/// Immutable schedule tables for one (comm, kind, root) tuple. Only the
/// section matching the kind is populated.
///
/// Tables come in two layouts. *Materialized*: class_of_rank is empty and
/// pair_steps / actions hold one row per comm rank, indexed by rank —
/// the historical representation. *Compressed*: class_of_rank maps every
/// comm rank to a symmetry class, class_rep names the representative rank
/// whose canonical program the class shares, and pair_steps / actions hold
/// one template row per class. A rank executes its class template with
/// every kSend/kRecv peer (and PairStep dst/src) relabelled from the
/// representative's frame into its own — XOR with (me ^ rep) for kXor
/// schedules, +(me − rep) mod P for kCyclic ones. PlanView packages that
/// lookup + relabelling. parent/children (rooted trees) and bruck_rounds
/// (rank-invariant) never compress: trees single ranks out, Bruck already
/// stores no per-rank state.
struct CollPlan {
  PlanKind kind = PlanKind::kAlltoallPairwise;
  /// Compressed layout: class index per comm rank; empty = materialized
  /// (rows below are indexed by rank, no relabelling).
  std::vector<std::int32_t> class_of_rank;
  /// Representative comm rank per class (the rank the template is
  /// canonical for). Same length as the populated per-class table.
  std::vector<std::int32_t> class_rep;
  /// kAlltoallPairwise / kAlltoallvPairwise / kBarrierDissemination.
  std::vector<std::vector<PairStep>> pair_steps;
  /// Power-of-two pairwise alltoall exchanges both directions in one
  /// sendrecv; the non-pow2 schedule (and alltoallv always) splits them.
  bool pairwise_sendrecv = false;
  /// kAlltoallBruck: block indices moved in each round (rank-invariant).
  std::vector<std::vector<std::int32_t>> bruck_rounds;
  /// kBcastBinomial: parent comm rank (-1 at the root) and children in
  /// send order. Always rank-indexed.
  std::vector<std::int32_t> parent;
  std::vector<std::vector<std::int32_t>> children;
  /// kPowerExchange: interpreter program per rank (materialized) or per
  /// class (compressed).
  std::vector<std::vector<PowerAction>> actions;
  /// Group action the schedule commutes with (kXor for the power-of-two
  /// pairwise exchange, kCyclic for distance-based schedules, kNone when
  /// the schedule singles ranks out). Executors stamp this on the running
  /// rank so a collapsed runtime can relabel cross-group traffic; the
  /// compressed layout reuses it as the class relabelling rule.
  sym::CollapseAction action = sym::CollapseAction::kNone;

  /// Estimated resident footprint in bytes (tables + vector headers).
  /// Deterministic for a given build path; used by the PlanCache's
  /// byte-based accounting and the plan_memory bench section.
  std::size_t bytes() const;
};

using PlanPtr = std::shared_ptr<const CollPlan>;

/// Cheap rank-relabelling view: resolves the executing rank's row in a
/// plan's tables and maps template peers into the rank's own frame.
/// Constructing one costs two array reads; peer() is branch-on-enum
/// arithmetic. On a materialized plan it degenerates to row = me,
/// peer = identity, so executors use it unconditionally.
class PlanView {
 public:
  PlanView(const CollPlan& plan, int me, int comm_size)
      : me_(me), size_(comm_size) {
    if (plan.class_of_rank.empty()) {
      row_ = static_cast<std::size_t>(me);
      rep_ = me;
    } else {
      row_ = static_cast<std::size_t>(
          plan.class_of_rank[static_cast<std::size_t>(me)]);
      rep_ = plan.class_rep[row_];
    }
    action_ = rep_ == me ? sym::CollapseAction::kNone : plan.action;
  }

  /// Index of the executing rank's row in pair_steps / actions.
  std::size_t row() const { return row_; }

  /// A template peer rank, relabelled into the executing rank's frame.
  std::int32_t peer(std::int32_t p) const {
    switch (action_) {
      case sym::CollapseAction::kNone:
        return p;
      case sym::CollapseAction::kXor:
        return p ^ (me_ ^ rep_);
      case sym::CollapseAction::kCyclic: {
        const std::int32_t shifted = p + me_ - rep_;
        if (shifted >= size_) return shifted - size_;
        if (shifted < 0) return shifted + size_;
        return shifted;
      }
    }
    return p;
  }

 private:
  int me_;
  int size_;
  int rep_;
  std::size_t row_ = 0;
  sym::CollapseAction action_ = sym::CollapseAction::kNone;
};

/// Phase labels the kPowerExchange interpreter emits (index = PhaseBegin
/// arg); shared with the historical inline spans byte-for-byte.
extern const char* const kPowerPhaseNames[4];

/// Thread-safe LRU of built plans. Lookup and insert are O(1); plans are
/// immutable shared_ptrs, so a plan evicted while a rank still walks it
/// simply outlives its cache entry. Eviction is driven by both an entry
/// count and (optionally) a byte budget over CollPlan::bytes().
class PlanCache {
 public:
  /// capacity_bytes = 0 disables the byte budget (entry cap only).
  explicit PlanCache(std::size_t capacity = 256,
                     std::size_t capacity_bytes = 0);

  /// The cached plan, refreshing its LRU position — or nullptr on a miss.
  PlanPtr lookup(const PlanKey& key);

  /// Inserts (or replaces) the plan, evicting least recently used entries
  /// beyond the entry or byte capacity (always keeping the new entry).
  /// Concurrent builders of the same key may both insert; the plans are
  /// identical so last-write-wins is harmless.
  void insert(const PlanKey& key, PlanPtr plan);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Resident bytes across cached plans / the high-water mark / the budget.
  std::size_t bytes() const;
  std::size_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    PlanPtr plan;
    std::size_t bytes = 0;
    std::list<PlanKey>::iterator pos;
  };

  void evict_over_budget_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  std::list<PlanKey> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, Entry, PlanKeyHash> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> peak_bytes_{0};
};

/// Pure plan construction — no cache, no simulated side effects. `root`
/// matters only for kBcastBinomial. Emits the compressed layout where the
/// schedule's symmetry allows, unless the runtime was configured with
/// materialized_plans.
PlanPtr build_plan(const mpi::Comm& comm, PlanKind kind, int root = 0);

/// build_plan with the historical rank-indexed tables forced, regardless
/// of RuntimeParams::materialized_plans. Equivalence suite / debugging.
PlanPtr build_plan_materialized(const mpi::Comm& comm, PlanKind kind,
                                int root = 0);

/// Cache-aware fetch: looks up the runtime's shared cache (every member of
/// a matched call maps to the same key, so the first rank's build serves
/// the whole communicator and every later iteration or sweep cell),
/// building and inserting on a miss. Size-invariant kinds are keyed with
/// bytes = 0 (see plan_kind_size_keyed). Falls back to an uncached build
/// when the runtime has no cache attached. Costs zero simulated time.
PlanPtr get_plan(mpi::Comm& comm, PlanKind kind, Bytes bytes, int root = 0);

}  // namespace pacc::coll

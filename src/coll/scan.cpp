#include "coll/scan.hpp"

#include <vector>

#include "coll/copy.hpp"
#include "coll/power_scheme.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

sim::Task<> scan_recursive_doubling(mpi::Rank& self, mpi::Comm& comm,
                                    std::span<const std::byte> send,
                                    std::span<std::byte> recv, ReduceOp op) {
  PACC_EXPECTS(send.size() == recv.size());
  PACC_EXPECTS(send.size() % sizeof(double) == 0);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);

  // recv accumulates the inclusive prefix; partial the trailing window
  // [me - 2^k + 1, me] that gets forwarded.
  copy_bytes(recv.data(), send.data(), send.size());
  std::vector<std::byte> partial(send.begin(), send.end());
  std::vector<std::byte> incoming(send.size());

  for (int mask = 1; mask < P; mask <<= 1) {
    const int dst = me + mask;
    const int src = me - mask;
    if (dst < P) {
      co_await self.send(comm.global_rank(dst), tag, partial);
    }
    if (src >= 0) {
      co_await self.recv(comm.global_rank(src), tag, incoming);
      // incoming covers [src - 2^k + 1, src] == [me - 2^{k+1} + 1, me - 2^k].
      reduce_bytes(op, partial, incoming);
      reduce_bytes(op, recv, incoming);
    }
  }
}

sim::Task<> scan(mpi::Rank& self, mpi::Comm& comm,
                 std::span<const std::byte> send, std::span<std::byte> recv,
                 const ScanOptions& options) {
  ProfileScope prof(self, "scan", static_cast<Bytes>(send.size()));
  co_await run_with_scheme(self, comm, options.scheme,
                           [&](PowerScheme) -> sim::Task<> {
                             co_await scan_recursive_doubling(
                                 self, comm, send, recv, options.op);
                           });
}

}  // namespace pacc::coll

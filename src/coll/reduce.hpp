// MPI_Reduce (§IV-B, §V-B): binomial tree, two-level SMP-aware variant, and
// the power-aware variant that throttles non-leader cores during the
// inter-leader phase.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct ReduceOptions {
  PowerScheme scheme = PowerScheme::kNone;
  ReduceOp op = ReduceOp::kSum;
};

/// Binomial-tree reduction of double elements to `root`. `send` holds this
/// rank's contribution; at the root, `recv` (same size) gets the result.
sim::Task<> reduce_binomial(mpi::Rank& self, mpi::Comm& comm,
                            std::span<const std::byte> send,
                            std::span<std::byte> recv, ReduceOp op, int root);

/// Two-level: intra-node reduction to the leader over shared memory, then
/// an inter-leader binomial reduction, then a fix-up hop to the root.
sim::Task<> reduce_smp(mpi::Rank& self, mpi::Comm& comm,
                       std::span<const std::byte> send,
                       std::span<std::byte> recv,
                       const ReduceOptions& options, int root);

/// Dispatcher applying the requested power scheme.
sim::Task<> reduce(mpi::Rank& self, mpi::Comm& comm,
                   std::span<const std::byte> send, std::span<std::byte> recv,
                   int root, const ReduceOptions& options = {});

}  // namespace pacc::coll

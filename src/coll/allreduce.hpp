// MPI_Allreduce: recursive doubling, two-level SMP-aware variant, and the
// power-aware variant (throttled non-leaders during the inter-leader phase).
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct AllreduceOptions {
  PowerScheme scheme = PowerScheme::kNone;
  ReduceOp op = ReduceOp::kSum;
  /// Flat allreduces at or above this size use Rabenseifner's algorithm
  /// (when the comm is a power of two and the buffer splits evenly).
  Bytes rabenseifner_threshold = 64 * 1024;
};

/// Recursive-doubling allreduce of double elements (power-of-two comm).
sim::Task<> allreduce_recursive_doubling(mpi::Rank& self, mpi::Comm& comm,
                                         std::span<const std::byte> send,
                                         std::span<std::byte> recv,
                                         ReduceOp op);

/// Rabenseifner's algorithm: reduce-scatter (recursive halving) followed by
/// an allgather (recursive doubling). Moves 2·M·(P-1)/P bytes per rank
/// instead of recursive doubling's M·log2(P) — the standard choice for
/// large vectors. Requires a power-of-two comm and a buffer that splits
/// into P double-aligned blocks.
sim::Task<> allreduce_rabenseifner(mpi::Rank& self, mpi::Comm& comm,
                                   std::span<const std::byte> send,
                                   std::span<std::byte> recv, ReduceOp op);

/// Two-level: intra-node reduce to the leader, leader allreduce, intra-node
/// broadcast of the result.
sim::Task<> allreduce_smp(mpi::Rank& self, mpi::Comm& comm,
                          std::span<const std::byte> send,
                          std::span<std::byte> recv,
                          const AllreduceOptions& options);

/// Dispatcher applying the requested power scheme.
sim::Task<> allreduce(mpi::Rank& self, mpi::Comm& comm,
                      std::span<const std::byte> send,
                      std::span<std::byte> recv,
                      const AllreduceOptions& options = {});

}  // namespace pacc::coll

// MPI_Bcast algorithms (§II-D, §V-B).
//
// Default path is MVAPICH2's multi-core aware scheme (Fig 1): an
// inter-leader broadcast (binomial for small messages, scatter-allgather
// for medium/large) followed by an intra-node binomial broadcast over
// shared memory. The power-aware variant throttles the non-leader socket to
// T7 and the leader's socket to T4 during the network phase (Fig 4), or —
// under core-granular throttling — every non-leader core to T7.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct BcastOptions {
  PowerScheme scheme = PowerScheme::kNone;
  /// Inter-leader messages >= this use scatter-allgather instead of the
  /// binomial tree.
  Bytes scatter_allgather_threshold = 16 * 1024;
};

/// Binomial-tree broadcast. With `unthrottle_on_receive`, a rank that is
/// currently throttled restores T0 right after its payload arrives and
/// before forwarding — used as the intra-node phase of the power-aware
/// collectives.
sim::Task<> bcast_binomial(mpi::Rank& self, mpi::Comm& comm,
                           std::span<std::byte> buf, int root,
                           bool unthrottle_on_receive = false);

/// Scatter-allgather (van de Geijn) broadcast for medium/large messages.
sim::Task<> bcast_scatter_allgather(mpi::Rank& self, mpi::Comm& comm,
                                    std::span<std::byte> buf, int root);

/// Intra-node broadcast over the shared-memory region: the root writes the
/// payload once and all other local ranks read it concurrently (Fig 1). In
/// blocking mode — which has no shared-memory channel (§II-B) — this falls
/// back to the binomial tree over loopback. `node_comm` must live on one
/// node.
sim::Task<> bcast_intra_node(mpi::Rank& self, mpi::Comm& node_comm,
                             std::span<std::byte> buf, int root);

/// Two-level multi-core aware broadcast (Fig 1).
sim::Task<> bcast_smp(mpi::Rank& self, mpi::Comm& comm,
                      std::span<std::byte> buf, int root,
                      const BcastOptions& options = {});

/// Dispatcher applying the requested power scheme; falls back to flat
/// algorithms when the comm does not span multiple nodes.
sim::Task<> bcast(mpi::Rank& self, mpi::Comm& comm, std::span<std::byte> buf,
                  int root, const BcastOptions& options = {});

}  // namespace pacc::coll

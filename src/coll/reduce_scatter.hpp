// MPI_Reduce_scatter_block: element-wise reduction of P blocks, block i
// delivered to rank i. Also the first half of Rabenseifner's allreduce.
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct ReduceScatterOptions {
  PowerScheme scheme = PowerScheme::kNone;
  ReduceOp op = ReduceOp::kSum;
};

/// Recursive halving: log2(P) rounds, each exchanging and reducing half of
/// the remaining blocks. Requires a power-of-two comm.
sim::Task<> reduce_scatter_halving(mpi::Rank& self, mpi::Comm& comm,
                                   std::span<const std::byte> send,
                                   std::span<std::byte> recv, Bytes block,
                                   ReduceOp op);

/// Dispatcher: recursive halving for power-of-two comms; otherwise a
/// binomial reduce to rank 0 followed by a binomial scatter.
sim::Task<> reduce_scatter(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv, Bytes block,
                           const ReduceScatterOptions& options = {});

}  // namespace pacc::coll

#include "coll/allreduce.hpp"

#include <vector>

#include "coll/allgather.hpp"
#include "coll/bcast.hpp"
#include "coll/copy.hpp"
#include "coll/power_scheme.hpp"
#include "coll/reduce.hpp"
#include "coll/reduce_scatter.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

sim::Task<> allreduce_recursive_doubling(mpi::Rank& self, mpi::Comm& comm,
                                         std::span<const std::byte> send,
                                         std::span<std::byte> recv,
                                         ReduceOp op) {
  PACC_EXPECTS(send.size() == recv.size());
  PACC_EXPECTS(send.size() % sizeof(double) == 0);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);

  copy_bytes(recv.data(), send.data(), send.size());
  if (P == 1) co_return;

  if (is_pow2(P)) {
    std::vector<std::byte> incoming(send.size());
    for (int mask = 1; mask < P; mask <<= 1) {
      const int partner = me ^ mask;
      co_await self.sendrecv(comm.global_rank(partner), tag, recv,
                             comm.global_rank(partner), tag, incoming);
      reduce_bytes(op, recv, incoming);
    }
    co_return;
  }
  // Non-power-of-two: binomial reduce to comm rank 0, then binomial bcast.
  co_await reduce_binomial(self, comm, send, recv, op, 0);
  co_await bcast_binomial(self, comm, recv, 0);
}

sim::Task<> allreduce_rabenseifner(mpi::Rank& self, mpi::Comm& comm,
                                   std::span<const std::byte> send,
                                   std::span<std::byte> recv, ReduceOp op) {
  PACC_EXPECTS(send.size() == recv.size());
  const int P = comm.size();
  PACC_EXPECTS_MSG(is_pow2(P), "Rabenseifner needs a power-of-two comm");
  const auto blk_bytes = send.size() / static_cast<std::size_t>(P);
  PACC_EXPECTS_MSG(send.size() % static_cast<std::size_t>(P) == 0 &&
                       blk_bytes % sizeof(double) == 0,
                   "buffer must split into P double-aligned blocks");
  if (P == 1) {
    copy_bytes(recv.data(), send.data(), send.size());
    co_return;
  }
  const auto block = static_cast<Bytes>(blk_bytes);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);

  std::vector<std::byte> my_block(blk_bytes);
  co_await reduce_scatter_halving(self, comm, send, my_block, block, op);
  co_await allgather_recursive_doubling(self, comm, my_block, recv, block);
}

sim::Task<> allreduce_smp(mpi::Rank& self, mpi::Comm& comm,
                          std::span<const std::byte> send,
                          std::span<std::byte> recv,
                          const AllreduceOptions& options) {
  PACC_EXPECTS(send.size() == recv.size());
  PACC_EXPECTS(send.size() % sizeof(double) == 0);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int my_node = comm.node_of(me);
  const bool leader = comm.is_leader(me);
  const bool power = options.scheme == PowerScheme::kProposed;

  // Stage 1: intra-node reduction to the node leader.
  mpi::Comm& node = comm.node_comm(my_node);
  std::vector<std::byte> node_result(leader ? send.size() : 0);
  co_await reduce_binomial(self, node, send, node_result, options.op, 0);

  // Stage 2: leaders allreduce; everyone else throttles (§V-B).
  if (power && !leader) {
    const int leader_socket = comm.socket_of(comm.leader_of(my_node));
    const bool core_level = self.machine().params().core_level_throttling;
    const int level = (!core_level && self.socket() == leader_socket)
                          ? 4
                          : hw::ThrottleLevel::kMax;
    co_await throttle_self(self, level);
  }
  if (leader) {
    mpi::Comm& leaders = comm.leader_comm();
    if (power && !self.machine().params().core_level_throttling) {
      co_await throttle_self(self, 4);
    }
    co_await allreduce_recursive_doubling(self, leaders, node_result, recv,
                                          options.op);
  }

  // End of the inter-leader operation: node rendezvous, then everyone
  // returns to T0 before the intra-node fan-out (§V-B).
  if (power) {
    co_await comm.node_barrier(my_node).arrive_and_wait();
    if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
      co_await unthrottle_self(self);
    }
  }

  // Stage 3: leader broadcasts the result within the node (shared memory).
  co_await bcast_intra_node(self, node, recv, 0);
}

sim::Task<> allreduce(mpi::Rank& self, mpi::Comm& comm,
                      std::span<const std::byte> send,
                      std::span<std::byte> recv,
                      const AllreduceOptions& options) {
  ProfileScope prof(self, "allreduce", static_cast<Bytes>(send.size()));
  const bool two_level = comm.nodes().size() >= 2 && comm.uniform_ppn() &&
                         comm.ranks_per_node() >= 2;
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        AllreduceOptions opts = options;
        opts.scheme = scheme;
        if (two_level) {
          co_await allreduce_smp(self, comm, send, recv, opts);
          co_return;
        }
        const int P = comm.size();
        const bool rabenseifner_fits =
            is_pow2(P) &&
            static_cast<Bytes>(send.size()) >=
                options.rabenseifner_threshold &&
            send.size() % (static_cast<std::size_t>(P) * sizeof(double)) == 0;
        if (rabenseifner_fits) {
          co_await allreduce_rabenseifner(self, comm, send, recv, options.op);
        } else {
          co_await allreduce_recursive_doubling(self, comm, send, recv,
                                                options.op);
        }
      });
}

}  // namespace pacc::coll

#include "coll/plan.hpp"

#include <algorithm>
#include <utility>

#include "coll/alltoall_power.hpp"
#include "coll/tree.hpp"
#include "hw/power.hpp"
#include "mpi/runtime.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

const char* const kPowerPhaseNames[4] = {
    "alltoall_power.phase1", "alltoall_power.phase2", "alltoall_power.phase3",
    "alltoall_power.phase4"};

namespace {

constexpr int kSocketA = 0;
constexpr int kSocketB = 1;

/// Pairwise step tables; the same (dst, src) sequence drives both the
/// alltoall (combined sendrecv on power-of-two comms) and the alltoallv
/// (always split send + recv) executors.
void build_pairwise(const mpi::Comm& comm, CollPlan& plan) {
  const int P = comm.size();
  plan.pairwise_sendrecv =
      plan.kind == PlanKind::kAlltoallPairwise && is_pow2(P);
  plan.action =
      is_pow2(P) ? sym::CollapseAction::kXor : sym::CollapseAction::kCyclic;
  plan.pair_steps.resize(static_cast<std::size_t>(P));
  for (int me = 0; me < P; ++me) {
    auto& steps = plan.pair_steps[static_cast<std::size_t>(me)];
    steps.reserve(static_cast<std::size_t>(P - 1));
    for (int step = 1; step < P; ++step) {
      PairStep s;
      if (is_pow2(P)) {
        s.dst = s.src = me ^ step;
      } else {
        s.dst = (me + step) % P;
        s.src = (me - step + P) % P;
      }
      steps.push_back(s);
    }
  }
}

void build_bruck(const mpi::Comm& comm, CollPlan& plan) {
  const int P = comm.size();
  plan.action = sym::CollapseAction::kCyclic;
  for (int k = 1; k < P; k <<= 1) {
    std::vector<std::int32_t> indices;
    for (int i = 1; i < P; ++i) {
      if ((i & k) != 0) indices.push_back(i);
    }
    plan.bruck_rounds.push_back(std::move(indices));
  }
}

void build_dissemination(const mpi::Comm& comm, CollPlan& plan) {
  const int P = comm.size();
  plan.action = sym::CollapseAction::kCyclic;
  plan.pair_steps.resize(static_cast<std::size_t>(P));
  for (int me = 0; me < P; ++me) {
    auto& steps = plan.pair_steps[static_cast<std::size_t>(me)];
    for (int dist = 1; dist < P; dist <<= 1) {
      steps.push_back(PairStep{.dst = (me + dist) % P,
                               .src = (me - dist + P) % P});
    }
  }
}

void build_bcast_binomial(const mpi::Comm& comm, int root, CollPlan& plan) {
  const int P = comm.size();
  PACC_EXPECTS(root >= 0 && root < P);
  plan.parent.assign(static_cast<std::size_t>(P), -1);
  plan.children.resize(static_cast<std::size_t>(P));
  for (int me = 0; me < P; ++me) {
    const int vr = (me - root + P) % P;
    int mask = 1;
    while (mask < P) {
      if ((vr & mask) != 0) {
        plan.parent[static_cast<std::size_t>(me)] =
            ((vr - mask) + root) % P;
        break;
      }
      mask <<= 1;
    }
    if (vr == 0) mask = ceil_pow2(P);
    for (mask >>= 1; mask > 0; mask >>= 1) {
      const int child_vr = vr + mask;
      if (child_vr < P) {
        plan.children[static_cast<std::size_t>(me)].push_back(
            (child_vr + root) % P);
      }
    }
  }
}

/// Whether the comm gets the XOR-structured §V schedule instead of the
/// historical circle-method one. On fat-tree shapes with power-of-two node
/// and per-node rank counts, every phase's peer pattern can be expressed
/// through XOR distances, which commute with the XOR translations the
/// rank-symmetry collapse uses — so huge fabric communicators can run the
/// proposed scheme collapsed. The flat-switch testbed keeps the circle
/// tournament byte-identical to the historical schedule.
bool power_exchange_is_xor(const mpi::Comm& comm) {
  const auto& shape = comm.runtime().placement().shape;
  const int N = static_cast<int>(comm.nodes().size());
  return shape.has_fabric() && is_pow2(N) && comm.uniform_ppn() &&
         is_pow2(static_cast<int>(
             comm.members_on_node(comm.nodes().front()).size()));
}

/// The §V power-aware exchange, emitted as a per-rank program instead of
/// executed. Every branch of the historical inline schedule maps to one
/// action, in the same order, so the interpreter's awaits are identical.
///
/// XOR variant (power_exchange_is_xor): phases 2/3 enumerate peer nodes by
/// XOR distance instead of ring offset, and phase 4 replaces the circle
/// tournament with XOR rounds s = 1..N-1 pairing node n with n^s. A round's
/// two sub-steps split socket roles by the lowest set bit of s (bit 0 nodes
/// lend socket A first) — one socket per node on the wire, the paper's §V
/// property. The exception: rounds whose distance is a multiple of the
/// top-level fabric group size pair nodes that are translation images of
/// each other, where no translation-invariant role split exists, so both
/// sockets run in one merged sub-step. On a fat-tree those are (groups−1)
/// of (N−1) rounds — a few percent of the phase.
void build_power_exchange(const mpi::Comm& comm, CollPlan& plan) {
  PACC_EXPECTS(power_aware_alltoall_applicable(comm));
  const int P = comm.size();
  const int N = static_cast<int>(comm.nodes().size());
  const bool xor_sched = power_exchange_is_xor(comm);
  const auto& shape = comm.runtime().placement().shape;
  const int group_nodes =
      shape.has_fabric() ? shape.fabric_nodes_per_group(shape.fabric_levels() - 1)
                         : N;
  plan.action =
      xor_sched ? sym::CollapseAction::kXor : sym::CollapseAction::kNone;
  plan.actions.resize(static_cast<std::size_t>(P));

  auto node_at = [&](int index) {
    return comm.nodes()[static_cast<std::size_t>(index)];
  };

  for (int me = 0; me < P; ++me) {
    auto& acts = plan.actions[static_cast<std::size_t>(me)];
    auto emit = [&acts](PowerAction::Kind kind, std::int32_t arg = 0) {
      acts.push_back(PowerAction{kind, arg});
    };
    const int my_node = comm.node_of(me);
    const int ni = comm.node_index(my_node);
    const int my_socket = comm.socket_of(me);
    const auto& locals = comm.members_on_node(my_node);
    const int c = static_cast<int>(locals.size());

    auto emit_group_exchange = [&](const std::vector<int>& group) {
      for (const int peer : group) emit(PowerAction::kSend, peer);
      for (const int peer : group) emit(PowerAction::kRecv, peer);
    };

    // ---- Phase 1: intra-node exchanges ------------------------------
    emit(PowerAction::kPhaseBegin, 0);
    const auto it = std::find(locals.begin(), locals.end(), me);
    PACC_ASSERT(it != locals.end());
    const int li = static_cast<int>(it - locals.begin());
    for (int step = 1; step < c; ++step) {
      if (is_pow2(c)) {
        const int peer = locals[static_cast<std::size_t>(li ^ step)];
        emit(PowerAction::kSend, peer);
        emit(PowerAction::kRecv, peer);
      } else {
        emit(PowerAction::kSend,
             locals[static_cast<std::size_t>((li + step) % c)]);
        emit(PowerAction::kRecv,
             locals[static_cast<std::size_t>((li - step + c) % c)]);
      }
    }
    emit(PowerAction::kBarrier);
    emit(PowerAction::kPhaseEnd);

    // ---- Phase 2: A↔A inter-node; socket B throttled to T7 ----------
    emit(PowerAction::kPhaseBegin, 1);
    if (my_socket == kSocketA) {
      for (int off = 1; off < N; ++off) {
        const int to_node = node_at(xor_sched ? ni ^ off : (ni + off) % N);
        const int from_node = node_at(xor_sched ? ni ^ off : (ni - off + N) % N);
        for (const int peer : comm.socket_group(to_node, kSocketA)) {
          emit(PowerAction::kSend, peer);
        }
        for (const int peer : comm.socket_group(from_node, kSocketA)) {
          emit(PowerAction::kRecv, peer);
        }
      }
    } else {
      emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
    }
    emit(PowerAction::kBarrier);
    emit(PowerAction::kPhaseEnd);

    // ---- Phase 3: roles swap: B↔B inter-node; socket A at T7 --------
    emit(PowerAction::kPhaseBegin, 2);
    if (my_socket == kSocketB) {
      emit(PowerAction::kEnsureUnthrottled);
      for (int off = 1; off < N; ++off) {
        const int to_node = node_at(xor_sched ? ni ^ off : (ni + off) % N);
        const int from_node = node_at(xor_sched ? ni ^ off : (ni - off + N) % N);
        for (const int peer : comm.socket_group(to_node, kSocketB)) {
          emit(PowerAction::kSend, peer);
        }
        for (const int peer : comm.socket_group(from_node, kSocketB)) {
          emit(PowerAction::kRecv, peer);
        }
      }
    } else {
      emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
    }
    emit(PowerAction::kBarrier);
    emit(PowerAction::kPhaseEnd);

    // ---- Phase 4: cross-socket inter-node tournament ----------------
    emit(PowerAction::kPhaseBegin, 3);
    if (xor_sched) {
      for (int s = 1; s < N; ++s) {
        const int pnode = node_at(ni ^ s);
        if (s % group_nodes == 0) {
          // Translation-symmetric distance: merged sub-step, both sockets.
          emit(PowerAction::kEnsureUnthrottled);
          emit_group_exchange(comm.socket_group(
              pnode, my_socket == kSocketA ? kSocketB : kSocketA));
          emit(PowerAction::kBarrier);
          continue;
        }
        const int bit = s & -s;
        const bool upper = (ni & bit) != 0;
        // Sub-step a: A of bit-0 nodes ↔ B of bit-1 nodes.
        if ((!upper && my_socket == kSocketA) ||
            (upper && my_socket == kSocketB)) {
          emit(PowerAction::kEnsureUnthrottled);
          emit_group_exchange(
              comm.socket_group(pnode, upper ? kSocketA : kSocketB));
        } else {
          emit(PowerAction::kEnsureThrottledMax);
        }
        emit(PowerAction::kBarrier);
        // Sub-step b: roles swap.
        if ((!upper && my_socket == kSocketB) ||
            (upper && my_socket == kSocketA)) {
          emit(PowerAction::kEnsureUnthrottled);
          emit_group_exchange(
              comm.socket_group(pnode, upper ? kSocketB : kSocketA));
        } else {
          emit(PowerAction::kEnsureThrottledMax);
        }
        emit(PowerAction::kBarrier);
      }
      emit(PowerAction::kPhaseEnd);
      emit(PowerAction::kEnsureUnthrottled);
      continue;
    }
    const int rounds = tournament_rounds(N);
    for (int round = 0; round < rounds; ++round) {
      const int pi = tournament_peer(ni, round, N);
      if (pi < 0) {
        // Idle this round: stay throttled through both sub-steps.
        emit(PowerAction::kEnsureThrottledMax);
        emit(PowerAction::kBarrier);
        emit(PowerAction::kBarrier);
        continue;
      }
      const int lo = std::min(ni, pi);
      const int hi = std::max(ni, pi);
      const int lo_node = node_at(lo);
      const int hi_node = node_at(hi);

      // Sub-step a: A(lo) ↔ B(hi); everyone else throttled.
      const bool in_a = (ni == lo && my_socket == kSocketA) ||
                        (ni == hi && my_socket == kSocketB);
      if (in_a) {
        emit(PowerAction::kEnsureUnthrottled);
        emit_group_exchange(ni == lo ? comm.socket_group(hi_node, kSocketB)
                                     : comm.socket_group(lo_node, kSocketA));
      } else {
        emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
      }
      emit(PowerAction::kBarrier);

      // Sub-step b: B(lo) ↔ A(hi).
      const bool in_b = (ni == lo && my_socket == kSocketB) ||
                        (ni == hi && my_socket == kSocketA);
      if (in_b) {
        emit(PowerAction::kEnsureUnthrottled);
        emit_group_exchange(ni == lo ? comm.socket_group(hi_node, kSocketA)
                                     : comm.socket_group(lo_node, kSocketB));
      } else {
        emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
      }
      emit(PowerAction::kBarrier);
    }
    emit(PowerAction::kPhaseEnd);

    // Restore T0 before returning to the application.
    emit(PowerAction::kEnsureUnthrottled);
  }
}

}  // namespace

// ------------------------------------------------------------ PlanCache --

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  PACC_EXPECTS(capacity >= 1);
}

PlanPtr PlanCache::lookup(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  return it->second.plan;
}

void PlanCache::insert(const PlanKey& key, PlanPtr plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(plan), lru_.begin()});
  if (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

// ---------------------------------------------------------- build/fetch --

PlanPtr build_plan(const mpi::Comm& comm, PlanKind kind, int root) {
  auto plan = std::make_shared<CollPlan>();
  plan->kind = kind;
  switch (kind) {
    case PlanKind::kAlltoallPairwise:
    case PlanKind::kAlltoallvPairwise:
      build_pairwise(comm, *plan);
      break;
    case PlanKind::kAlltoallBruck:
      build_bruck(comm, *plan);
      break;
    case PlanKind::kPowerExchange:
      build_power_exchange(comm, *plan);
      break;
    case PlanKind::kBcastBinomial:
      build_bcast_binomial(comm, root, *plan);
      break;
    case PlanKind::kBarrierDissemination:
      build_dissemination(comm, *plan);
      break;
    case PlanKind::kBcastTreeSeg:
    case PlanKind::kReduceTreeSeg:
      // Tree plans carry extra knobs (tree shape, segment size, power
      // twin); this generic entry point builds the unsegmented binomial
      // power-off default. Use build_tree_plan for the full surface.
      return build_tree_plan(comm, kind, TreeKind::kBinomial, /*bytes=*/0,
                             /*seg=*/0, /*power=*/false, root);
  }
  return plan;
}

PlanPtr get_plan(mpi::Comm& comm, PlanKind kind, Bytes bytes, int root) {
  const PlanKey key{.comm_fingerprint = comm.structure_fingerprint(),
                    .kind = kind,
                    .bytes = bytes,
                    .root = root};
  PlanCache* cache = comm.runtime().plan_cache().get();
  if (cache != nullptr) {
    if (PlanPtr cached = cache->lookup(key)) return cached;
  }
  PlanPtr plan = build_plan(comm, kind, root);
  if (cache != nullptr) cache->insert(key, plan);
  return plan;
}

}  // namespace pacc::coll

#include "coll/plan.hpp"

#include <algorithm>
#include <utility>

#include "coll/alltoall_power.hpp"
#include "coll/tree.hpp"
#include "hw/power.hpp"
#include "mpi/runtime.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

const char* const kPowerPhaseNames[4] = {
    "alltoall_power.phase1", "alltoall_power.phase2", "alltoall_power.phase3",
    "alltoall_power.phase4"};

namespace {

constexpr int kSocketA = 0;
constexpr int kSocketB = 1;

/// Pairwise step tables; the same (dst, src) sequence drives both the
/// alltoall (combined sendrecv on power-of-two comms) and the alltoallv
/// (always split send + recv) executors.
///
/// The schedule is a pure function of the rank *difference* (XOR distance
/// on power-of-two comms, cyclic distance otherwise), so the compressed
/// layout stores rank 0's row as the single class template and PlanView
/// shifts it into every other rank's frame.
void build_pairwise(const mpi::Comm& comm, bool materialized,
                    CollPlan& plan) {
  const int P = comm.size();
  plan.pairwise_sendrecv =
      plan.kind == PlanKind::kAlltoallPairwise && is_pow2(P);
  plan.action =
      is_pow2(P) ? sym::CollapseAction::kXor : sym::CollapseAction::kCyclic;
  const int rows = materialized ? P : 1;
  if (!materialized) {
    plan.class_of_rank.assign(static_cast<std::size_t>(P), 0);
    plan.class_rep.assign(1, 0);
  }
  plan.pair_steps.resize(static_cast<std::size_t>(rows));
  for (int me = 0; me < rows; ++me) {
    auto& steps = plan.pair_steps[static_cast<std::size_t>(me)];
    steps.reserve(static_cast<std::size_t>(P - 1));
    for (int step = 1; step < P; ++step) {
      PairStep s;
      if (is_pow2(P)) {
        s.dst = s.src = me ^ step;
      } else {
        s.dst = (me + step) % P;
        s.src = (me - step + P) % P;
      }
      steps.push_back(s);
    }
  }
}

void build_bruck(const mpi::Comm& comm, CollPlan& plan) {
  const int P = comm.size();
  plan.action = sym::CollapseAction::kCyclic;
  for (int k = 1; k < P; k <<= 1) {
    std::vector<std::int32_t> indices;
    for (int i = 1; i < P; ++i) {
      if ((i & k) != 0) indices.push_back(i);
    }
    plan.bruck_rounds.push_back(std::move(indices));
  }
}

void build_dissemination(const mpi::Comm& comm, bool materialized,
                         CollPlan& plan) {
  const int P = comm.size();
  plan.action = sym::CollapseAction::kCyclic;
  const int rows = materialized ? P : 1;
  if (!materialized) {
    plan.class_of_rank.assign(static_cast<std::size_t>(P), 0);
    plan.class_rep.assign(1, 0);
  }
  plan.pair_steps.resize(static_cast<std::size_t>(rows));
  for (int me = 0; me < rows; ++me) {
    auto& steps = plan.pair_steps[static_cast<std::size_t>(me)];
    for (int dist = 1; dist < P; dist <<= 1) {
      steps.push_back(PairStep{.dst = (me + dist) % P,
                               .src = (me - dist + P) % P});
    }
  }
}

void build_bcast_binomial(const mpi::Comm& comm, int root, CollPlan& plan) {
  const int P = comm.size();
  PACC_EXPECTS(root >= 0 && root < P);
  plan.parent.assign(static_cast<std::size_t>(P), -1);
  plan.children.resize(static_cast<std::size_t>(P));
  for (int me = 0; me < P; ++me) {
    const int vr = (me - root + P) % P;
    int mask = 1;
    while (mask < P) {
      if ((vr & mask) != 0) {
        plan.parent[static_cast<std::size_t>(me)] =
            ((vr - mask) + root) % P;
        break;
      }
      mask <<= 1;
    }
    if (vr == 0) mask = ceil_pow2(P);
    for (mask >>= 1; mask > 0; mask >>= 1) {
      const int child_vr = vr + mask;
      if (child_vr < P) {
        plan.children[static_cast<std::size_t>(me)].push_back(
            (child_vr + root) % P);
      }
    }
  }
}

/// Whether the comm gets the XOR-structured §V schedule instead of the
/// historical circle-method one. On fat-tree and dragonfly shapes with
/// power-of-two node and per-node rank counts, every phase's peer pattern
/// can be expressed through XOR distances, which commute with the XOR
/// translations the rank-symmetry collapse uses — so huge fabric
/// communicators can run the proposed scheme collapsed. The flat-switch
/// testbed keeps the circle tournament byte-identical to the historical
/// schedule.
bool power_exchange_is_xor(const mpi::Comm& comm) {
  const auto& shape = comm.runtime().placement().shape;
  const int N = static_cast<int>(comm.nodes().size());
  return (shape.has_fabric() || shape.dragonfly.enabled()) && is_pow2(N) &&
         comm.uniform_ppn() &&
         is_pow2(static_cast<int>(
             comm.members_on_node(comm.nodes().front()).size()));
}

/// Nodes per top-level translation group of the shape: the outermost
/// fat-tree level's group, a dragonfly group, or the whole comm on a flat
/// switch. XOR distances that are multiples of this count pair nodes that
/// are translation images of each other (the merged §V phase-4 rounds).
int top_group_nodes(const hw::ClusterShape& shape, int comm_nodes) {
  if (shape.dragonfly.enabled()) return shape.df_nodes_per_group();
  if (shape.has_fabric()) {
    return shape.fabric_nodes_per_group(shape.fabric_levels() - 1);
  }
  return comm_nodes;
}

/// Whether comm ranks decompose as rank = node_index * ppn + local_index
/// with node-invariant socket placement — the layout under which XOR on
/// ranks is exactly (XOR on node index, XOR on local index), making the
/// XOR §V schedule's per-rank programs literal XOR translates of each
/// other. Holds for the standard block placements at full occupancy; the
/// builder verifies instead of assuming so exotic communicators simply
/// fall back to materialized tables.
bool power_exchange_node_major(const mpi::Comm& comm) {
  const int N = static_cast<int>(comm.nodes().size());
  const int ppn =
      static_cast<int>(comm.members_on_node(comm.nodes().front()).size());
  for (int x = 0; x < N; ++x) {
    const auto& members =
        comm.members_on_node(comm.nodes()[static_cast<std::size_t>(x)]);
    if (static_cast<int>(members.size()) != ppn) return false;
    for (int j = 0; j < ppn; ++j) {
      const int rank = members[static_cast<std::size_t>(j)];
      if (rank != x * ppn + j) return false;
      if (comm.socket_of(rank) != comm.socket_of(j)) return false;
    }
  }
  return true;
}

/// The §V power-aware exchange, emitted as a per-rank program instead of
/// executed. Every branch of the historical inline schedule maps to one
/// action, in the same order, so the interpreter's awaits are identical.
///
/// XOR variant (power_exchange_is_xor): phases 2/3 enumerate peer nodes by
/// XOR distance instead of ring offset, and phase 4 replaces the circle
/// tournament with XOR rounds s = 1..N-1 pairing node n with n^s. A round's
/// two sub-steps split socket roles by the lowest set bit of s (bit 0 nodes
/// lend socket A first) — one socket per node on the wire, the paper's §V
/// property. The exception: rounds whose distance is a multiple of the
/// top-level group size pair nodes that are translation images of each
/// other, where no translation-invariant role split exists, so both
/// sockets run in one merged sub-step. On a fat-tree those are (groups−1)
/// of (N−1) rounds — a few percent of the phase.
///
/// Compression: the XOR program of rank me is the XOR translate (by any
/// multiple of R = group_nodes * ppn) of the program of rank me mod R —
/// the role split reads only node-index bits below the group size and the
/// socket map repeats per node — so one template per rank of the first
/// top-level group suffices. Verified against the actual layout
/// (power_exchange_node_major); anything else materializes per rank.
void build_power_exchange(const mpi::Comm& comm, bool materialized,
                          CollPlan& plan) {
  PACC_EXPECTS(power_aware_alltoall_applicable(comm));
  const int P = comm.size();
  const int N = static_cast<int>(comm.nodes().size());
  const bool xor_sched = power_exchange_is_xor(comm);
  const auto& shape = comm.runtime().placement().shape;
  const int group_nodes = top_group_nodes(shape, N);
  plan.action =
      xor_sched ? sym::CollapseAction::kXor : sym::CollapseAction::kNone;

  auto node_at = [&](int index) {
    return comm.nodes()[static_cast<std::size_t>(index)];
  };

  auto emit_program = [&](int me, std::vector<PowerAction>& acts) {
    auto emit = [&acts](PowerAction::Kind kind, std::int32_t arg = 0) {
      acts.push_back(PowerAction{kind, arg});
    };
    const int my_node = comm.node_of(me);
    const int ni = comm.node_index(my_node);
    const int my_socket = comm.socket_of(me);
    const auto& locals = comm.members_on_node(my_node);
    const int c = static_cast<int>(locals.size());

    auto emit_group_exchange = [&](const std::vector<int>& group) {
      for (const int peer : group) emit(PowerAction::kSend, peer);
      for (const int peer : group) emit(PowerAction::kRecv, peer);
    };

    // ---- Phase 1: intra-node exchanges ------------------------------
    emit(PowerAction::kPhaseBegin, 0);
    const auto it = std::find(locals.begin(), locals.end(), me);
    PACC_ASSERT(it != locals.end());
    const int li = static_cast<int>(it - locals.begin());
    for (int step = 1; step < c; ++step) {
      if (is_pow2(c)) {
        const int peer = locals[static_cast<std::size_t>(li ^ step)];
        emit(PowerAction::kSend, peer);
        emit(PowerAction::kRecv, peer);
      } else {
        emit(PowerAction::kSend,
             locals[static_cast<std::size_t>((li + step) % c)]);
        emit(PowerAction::kRecv,
             locals[static_cast<std::size_t>((li - step + c) % c)]);
      }
    }
    emit(PowerAction::kBarrier);
    emit(PowerAction::kPhaseEnd);

    // ---- Phase 2: A↔A inter-node; socket B throttled to T7 ----------
    emit(PowerAction::kPhaseBegin, 1);
    if (my_socket == kSocketA) {
      for (int off = 1; off < N; ++off) {
        const int to_node = node_at(xor_sched ? ni ^ off : (ni + off) % N);
        const int from_node =
            node_at(xor_sched ? ni ^ off : (ni - off + N) % N);
        for (const int peer : comm.socket_group(to_node, kSocketA)) {
          emit(PowerAction::kSend, peer);
        }
        for (const int peer : comm.socket_group(from_node, kSocketA)) {
          emit(PowerAction::kRecv, peer);
        }
      }
    } else {
      emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
    }
    emit(PowerAction::kBarrier);
    emit(PowerAction::kPhaseEnd);

    // ---- Phase 3: roles swap: B↔B inter-node; socket A at T7 --------
    emit(PowerAction::kPhaseBegin, 2);
    if (my_socket == kSocketB) {
      emit(PowerAction::kEnsureUnthrottled);
      for (int off = 1; off < N; ++off) {
        const int to_node = node_at(xor_sched ? ni ^ off : (ni + off) % N);
        const int from_node =
            node_at(xor_sched ? ni ^ off : (ni - off + N) % N);
        for (const int peer : comm.socket_group(to_node, kSocketB)) {
          emit(PowerAction::kSend, peer);
        }
        for (const int peer : comm.socket_group(from_node, kSocketB)) {
          emit(PowerAction::kRecv, peer);
        }
      }
    } else {
      emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
    }
    emit(PowerAction::kBarrier);
    emit(PowerAction::kPhaseEnd);

    // ---- Phase 4: cross-socket inter-node tournament ----------------
    emit(PowerAction::kPhaseBegin, 3);
    if (xor_sched) {
      for (int s = 1; s < N; ++s) {
        const int pnode = node_at(ni ^ s);
        if (s % group_nodes == 0) {
          // Translation-symmetric distance: merged sub-step, both sockets.
          emit(PowerAction::kEnsureUnthrottled);
          emit_group_exchange(comm.socket_group(
              pnode, my_socket == kSocketA ? kSocketB : kSocketA));
          emit(PowerAction::kBarrier);
          continue;
        }
        const int bit = s & -s;
        const bool upper = (ni & bit) != 0;
        // Sub-step a: A of bit-0 nodes ↔ B of bit-1 nodes.
        if ((!upper && my_socket == kSocketA) ||
            (upper && my_socket == kSocketB)) {
          emit(PowerAction::kEnsureUnthrottled);
          emit_group_exchange(
              comm.socket_group(pnode, upper ? kSocketA : kSocketB));
        } else {
          emit(PowerAction::kEnsureThrottledMax);
        }
        emit(PowerAction::kBarrier);
        // Sub-step b: roles swap.
        if ((!upper && my_socket == kSocketB) ||
            (upper && my_socket == kSocketA)) {
          emit(PowerAction::kEnsureUnthrottled);
          emit_group_exchange(
              comm.socket_group(pnode, upper ? kSocketB : kSocketA));
        } else {
          emit(PowerAction::kEnsureThrottledMax);
        }
        emit(PowerAction::kBarrier);
      }
      emit(PowerAction::kPhaseEnd);
      emit(PowerAction::kEnsureUnthrottled);
      return;
    }
    const int rounds = tournament_rounds(N);
    for (int round = 0; round < rounds; ++round) {
      const int pi = tournament_peer(ni, round, N);
      if (pi < 0) {
        // Idle this round: stay throttled through both sub-steps.
        emit(PowerAction::kEnsureThrottledMax);
        emit(PowerAction::kBarrier);
        emit(PowerAction::kBarrier);
        continue;
      }
      const int lo = std::min(ni, pi);
      const int hi = std::max(ni, pi);
      const int lo_node = node_at(lo);
      const int hi_node = node_at(hi);

      // Sub-step a: A(lo) ↔ B(hi); everyone else throttled.
      const bool in_a = (ni == lo && my_socket == kSocketA) ||
                        (ni == hi && my_socket == kSocketB);
      if (in_a) {
        emit(PowerAction::kEnsureUnthrottled);
        emit_group_exchange(ni == lo ? comm.socket_group(hi_node, kSocketB)
                                     : comm.socket_group(lo_node, kSocketA));
      } else {
        emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
      }
      emit(PowerAction::kBarrier);

      // Sub-step b: B(lo) ↔ A(hi).
      const bool in_b = (ni == lo && my_socket == kSocketB) ||
                        (ni == hi && my_socket == kSocketA);
      if (in_b) {
        emit(PowerAction::kEnsureUnthrottled);
        emit_group_exchange(ni == lo ? comm.socket_group(hi_node, kSocketA)
                                     : comm.socket_group(lo_node, kSocketB));
      } else {
        emit(PowerAction::kThrottle, hw::ThrottleLevel::kMax);
      }
      emit(PowerAction::kBarrier);
    }
    emit(PowerAction::kPhaseEnd);

    // Restore T0 before returning to the application.
    emit(PowerAction::kEnsureUnthrottled);
  };

  const int ppn =
      static_cast<int>(comm.members_on_node(comm.nodes().front()).size());
  const int class_count = group_nodes * ppn;
  const bool compress = !materialized && xor_sched && class_count < P &&
                        is_pow2(class_count) &&
                        power_exchange_node_major(comm);
  if (compress) {
    plan.class_of_rank.resize(static_cast<std::size_t>(P));
    for (int me = 0; me < P; ++me) {
      plan.class_of_rank[static_cast<std::size_t>(me)] =
          me & (class_count - 1);
    }
    plan.class_rep.resize(static_cast<std::size_t>(class_count));
    plan.actions.resize(static_cast<std::size_t>(class_count));
    for (int rep = 0; rep < class_count; ++rep) {
      plan.class_rep[static_cast<std::size_t>(rep)] = rep;
      emit_program(rep, plan.actions[static_cast<std::size_t>(rep)]);
      plan.actions[static_cast<std::size_t>(rep)].shrink_to_fit();
    }
    return;
  }
  plan.actions.resize(static_cast<std::size_t>(P));
  for (int me = 0; me < P; ++me) {
    emit_program(me, plan.actions[static_cast<std::size_t>(me)]);
    plan.actions[static_cast<std::size_t>(me)].shrink_to_fit();
  }
}

PlanPtr build_plan_impl(const mpi::Comm& comm, PlanKind kind, int root,
                        bool materialized) {
  auto plan = std::make_shared<CollPlan>();
  plan->kind = kind;
  switch (kind) {
    case PlanKind::kAlltoallPairwise:
    case PlanKind::kAlltoallvPairwise:
      build_pairwise(comm, materialized, *plan);
      break;
    case PlanKind::kAlltoallBruck:
      build_bruck(comm, *plan);
      break;
    case PlanKind::kPowerExchange:
      build_power_exchange(comm, materialized, *plan);
      break;
    case PlanKind::kBcastBinomial:
      build_bcast_binomial(comm, root, *plan);
      break;
    case PlanKind::kBarrierDissemination:
      build_dissemination(comm, materialized, *plan);
      break;
    case PlanKind::kBcastTreeSeg:
    case PlanKind::kReduceTreeSeg:
      // Tree plans carry extra knobs (tree shape, segment size, power
      // twin); this generic entry point builds the unsegmented binomial
      // power-off default. Trees single ranks out, so their tables are
      // rank-indexed in both layouts. Use build_tree_plan for the full
      // surface.
      return build_tree_plan(comm, kind, TreeKind::kBinomial, /*bytes=*/0,
                             /*seg=*/0, /*power=*/false, root);
  }
  return plan;
}

}  // namespace

// ------------------------------------------------------------- CollPlan --

std::size_t CollPlan::bytes() const {
  std::size_t b = sizeof(CollPlan);
  b += class_of_rank.capacity() * sizeof(std::int32_t);
  b += class_rep.capacity() * sizeof(std::int32_t);
  b += pair_steps.capacity() * sizeof(std::vector<PairStep>);
  for (const auto& v : pair_steps) b += v.capacity() * sizeof(PairStep);
  b += bruck_rounds.capacity() * sizeof(std::vector<std::int32_t>);
  for (const auto& v : bruck_rounds) {
    b += v.capacity() * sizeof(std::int32_t);
  }
  b += parent.capacity() * sizeof(std::int32_t);
  b += children.capacity() * sizeof(std::vector<std::int32_t>);
  for (const auto& v : children) b += v.capacity() * sizeof(std::int32_t);
  b += actions.capacity() * sizeof(std::vector<PowerAction>);
  for (const auto& v : actions) b += v.capacity() * sizeof(PowerAction);
  return b;
}

// ------------------------------------------------------------ PlanCache --

PlanCache::PlanCache(std::size_t capacity, std::size_t capacity_bytes)
    : capacity_(capacity), capacity_bytes_(capacity_bytes) {
  PACC_EXPECTS(capacity >= 1);
}

PlanPtr PlanCache::lookup(const PlanKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  return it->second.plan;
}

void PlanCache::insert(const PlanKey& key, PlanPtr plan) {
  const std::size_t plan_bytes = plan == nullptr ? 0 : plan->bytes();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second.bytes;
    it->second.plan = std::move(plan);
    it->second.bytes = plan_bytes;
    bytes_ += plan_bytes;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    evict_over_budget_locked();
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(plan), plan_bytes, lru_.begin()});
  bytes_ += plan_bytes;
  evict_over_budget_locked();
}

void PlanCache::evict_over_budget_locked() {
  while (map_.size() > 1 &&
         (map_.size() > capacity_ ||
          (capacity_bytes_ != 0 && bytes_ > capacity_bytes_))) {
    const auto victim = map_.find(lru_.back());
    PACC_ASSERT(victim != map_.end());
    bytes_ -= victim->second.bytes;
    map_.erase(victim);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  std::size_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes_ > peak &&
         !peak_bytes_.compare_exchange_weak(peak, bytes_,
                                            std::memory_order_relaxed)) {
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

// ---------------------------------------------------------- build/fetch --

PlanPtr build_plan(const mpi::Comm& comm, PlanKind kind, int root) {
  return build_plan_impl(comm, kind, root,
                         comm.runtime().params().materialized_plans);
}

PlanPtr build_plan_materialized(const mpi::Comm& comm, PlanKind kind,
                                int root) {
  return build_plan_impl(comm, kind, root, /*materialized=*/true);
}

PlanPtr get_plan(mpi::Comm& comm, PlanKind kind, Bytes bytes, int root) {
  const bool materialized = comm.runtime().params().materialized_plans;
  const PlanKey key{
      .comm_fingerprint = comm.structure_fingerprint(),
      .kind = kind,
      .bytes = plan_kind_size_keyed(kind) ? bytes : 0,
      .root = root,
      .variant = materialized ? kPlanVariantMaterialized : std::uint8_t{0}};
  PlanCache* cache = comm.runtime().plan_cache().get();
  if (cache != nullptr) {
    if (PlanPtr cached = cache->lookup(key)) return cached;
  }
  PlanPtr plan = build_plan(comm, kind, root);
  if (cache != nullptr) cache->insert(key, plan);
  return plan;
}

}  // namespace pacc::coll

#include "coll/alltoall.hpp"

#include <vector>

#include "coll/alltoall_power.hpp"
#include "coll/copy.hpp"
#include "coll/power_scheme.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

std::span<const std::byte> block_of(std::span<const std::byte> buf, int index,
                                    Bytes block) {
  return buf.subspan(static_cast<std::size_t>(index) *
                         static_cast<std::size_t>(block),
                     static_cast<std::size_t>(block));
}

std::span<std::byte> block_of(std::span<std::byte> buf, int index,
                              Bytes block) {
  return buf.subspan(static_cast<std::size_t>(index) *
                         static_cast<std::size_t>(block),
                     static_cast<std::size_t>(block));
}

void check_buffers(const mpi::Comm& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, Bytes block) {
  PACC_EXPECTS(block >= 0);
  const auto expected = static_cast<std::size_t>(comm.size()) *
                        static_cast<std::size_t>(block);
  PACC_EXPECTS_MSG(send.size() == expected && recv.size() == expected,
                   "alltoall buffers must hold size() blocks");
}

}  // namespace

sim::Task<> alltoall_pairwise(mpi::Rank& self, mpi::Comm& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv, Bytes block) {
  check_buffers(comm, send, recv, block);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS_MSG(me >= 0, "caller is not a member of this communicator");
  const int tag = comm.begin_collective(me);

  // Own block moves locally.
  copy_bytes(block_of(recv, me, block).data(),
             block_of(send, me, block).data(),
             static_cast<std::size_t>(block));

  for (int step = 1; step < P; ++step) {
    if (is_pow2(P)) {
      const int partner = me ^ step;
      co_await self.sendrecv(comm.global_rank(partner), tag,
                             block_of(send, partner, block),
                             comm.global_rank(partner), tag,
                             block_of(recv, partner, block));
    } else {
      const int dst = (me + step) % P;
      const int src = (me - step + P) % P;
      co_await self.send(comm.global_rank(dst), tag,
                         block_of(send, dst, block));
      co_await self.recv(comm.global_rank(src), tag,
                         block_of(recv, src, block));
    }
  }
}

sim::Task<> alltoall_bruck(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv, Bytes block) {
  check_buffers(comm, send, recv, block);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto blk = static_cast<std::size_t>(block);

  // Step 1 — local rotation: tmp[i] = block destined to rank (me + i) % P.
  std::vector<std::byte> tmp(static_cast<std::size_t>(P) * blk);
  for (int i = 0; i < P; ++i) {
    copy_bytes(tmp.data() + static_cast<std::size_t>(i) * blk,
               block_of(send, (me + i) % P, block).data(), blk);
  }

  // Step 2 — log rounds. A block at index i still has to travel i hops
  // forward; in round k every block whose index has bit k set moves k hops.
  std::vector<std::byte> packed;
  std::vector<std::byte> incoming;
  for (int k = 1; k < P; k <<= 1) {
    std::vector<int> indices;
    for (int i = 1; i < P; ++i) {
      if ((i & k) != 0) indices.push_back(i);
    }
    packed.resize(indices.size() * blk);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      copy_bytes(packed.data() + j * blk,
                 tmp.data() + static_cast<std::size_t>(indices[j]) * blk,
                 blk);
    }
    incoming.resize(packed.size());
    const int dst = (me + k) % P;
    const int src = (me - k + P) % P;
    co_await self.sendrecv(comm.global_rank(dst), tag, packed,
                           comm.global_rank(src), tag, incoming);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      copy_bytes(tmp.data() + static_cast<std::size_t>(indices[j]) * blk,
                 incoming.data() + j * blk, blk);
    }
  }

  // Step 3 — inverse rotation: tmp[i] now holds the block from (me - i).
  for (int i = 0; i < P; ++i) {
    copy_bytes(block_of(recv, (me - i + P) % P, block).data(),
               tmp.data() + static_cast<std::size_t>(i) * blk, blk);
  }
}

sim::Task<> alltoall(mpi::Rank& self, mpi::Comm& comm,
                     std::span<const std::byte> send, std::span<std::byte> recv,
                     Bytes block, const AlltoallOptions& options) {
  ProfileScope prof(self, "alltoall", static_cast<Bytes>(send.size()));
  const bool small = block <= options.bruck_threshold;
  const PowerScheme scheme =
      co_await negotiate_scheme(self, comm, options.scheme);
  switch (scheme) {
    case PowerScheme::kNone:
      if (small) {
        co_await alltoall_bruck(self, comm, send, recv, block);
      } else {
        co_await alltoall_pairwise(self, comm, send, recv, block);
      }
      co_return;
    case PowerScheme::kFreqScaling:
      co_await enter_low_power(self, PowerScheme::kFreqScaling);
      if (small) {
        co_await alltoall_bruck(self, comm, send, recv, block);
      } else {
        co_await alltoall_pairwise(self, comm, send, recv, block);
      }
      co_await exit_low_power(self, PowerScheme::kFreqScaling);
      co_return;
    case PowerScheme::kProposed:
      co_await enter_low_power(self, PowerScheme::kProposed);
      if (small || !power_aware_alltoall_applicable(comm)) {
        // The paper's re-design targets the large-message pair-wise path;
        // small messages get per-call DVFS over the default algorithm.
        if (small) {
          co_await alltoall_bruck(self, comm, send, recv, block);
        } else {
          co_await alltoall_pairwise(self, comm, send, recv, block);
        }
      } else {
        co_await alltoall_power_aware(self, comm, send, recv, block);
      }
      co_await exit_low_power(self, PowerScheme::kProposed);
      co_return;
  }
}

}  // namespace pacc::coll

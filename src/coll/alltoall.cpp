#include "coll/alltoall.hpp"

#include <vector>

#include "coll/alltoall_power.hpp"
#include "coll/copy.hpp"
#include "coll/plan.hpp"
#include "coll/power_scheme.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

std::span<const std::byte> block_of(std::span<const std::byte> buf, int index,
                                    Bytes block) {
  return buf.subspan(static_cast<std::size_t>(index) *
                         static_cast<std::size_t>(block),
                     static_cast<std::size_t>(block));
}

std::span<std::byte> block_of(std::span<std::byte> buf, int index,
                              Bytes block) {
  return buf.subspan(static_cast<std::size_t>(index) *
                         static_cast<std::size_t>(block),
                     static_cast<std::size_t>(block));
}

void check_buffers(const mpi::Comm& comm, std::span<const std::byte> send,
                   std::span<std::byte> recv, Bytes block) {
  PACC_EXPECTS(block >= 0);
  const auto expected = static_cast<std::size_t>(comm.size()) *
                        static_cast<std::size_t>(block);
  PACC_EXPECTS_MSG(send.size() == expected && recv.size() == expected,
                   "alltoall buffers must hold size() blocks");
}

}  // namespace

sim::Task<> alltoall_pairwise(mpi::Rank& self, mpi::Comm& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv, Bytes block) {
  check_buffers(comm, send, recv, block);
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS_MSG(me >= 0, "caller is not a member of this communicator");
  const int tag = comm.begin_collective(me);
  const PlanPtr plan = get_plan(comm, PlanKind::kAlltoallPairwise,
                                static_cast<Bytes>(send.size()));
  mpi::Rank::ActionScope action(self, plan->action);

  // Own block moves locally.
  copy_bytes(block_of(recv, me, block).data(),
             block_of(send, me, block).data(),
             static_cast<std::size_t>(block));

  const PlanView view(*plan, me, comm.size());
  for (const PairStep& step : plan->pair_steps[view.row()]) {
    const int dst = view.peer(step.dst);
    const int src = view.peer(step.src);
    if (plan->pairwise_sendrecv) {
      co_await self.sendrecv(comm.global_rank(dst), tag,
                             block_of(send, dst, block),
                             comm.global_rank(src), tag,
                             block_of(recv, src, block));
    } else {
      co_await self.send(comm.global_rank(dst), tag,
                         block_of(send, dst, block));
      co_await self.recv(comm.global_rank(src), tag,
                         block_of(recv, src, block));
    }
  }
}

sim::Task<> alltoall_bruck(mpi::Rank& self, mpi::Comm& comm,
                           std::span<const std::byte> send,
                           std::span<std::byte> recv, Bytes block) {
  check_buffers(comm, send, recv, block);
  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const int tag = comm.begin_collective(me);
  const auto blk = static_cast<std::size_t>(block);
  const PlanPtr plan = get_plan(comm, PlanKind::kAlltoallBruck,
                                static_cast<Bytes>(send.size()));
  mpi::Rank::ActionScope action(self, plan->action);

  // Step 1 — local rotation: tmp[i] = block destined to rank (me + i) % P.
  std::vector<std::byte> tmp(static_cast<std::size_t>(P) * blk);
  for (int i = 0; i < P; ++i) {
    copy_bytes(tmp.data() + static_cast<std::size_t>(i) * blk,
               block_of(send, (me + i) % P, block).data(), blk);
  }

  // Step 2 — log rounds. A block at index i still has to travel i hops
  // forward; in round k every block whose index has bit k set moves k hops.
  std::vector<std::byte> packed;
  std::vector<std::byte> incoming;
  int k = 1;
  for (const auto& indices : plan->bruck_rounds) {
    packed.resize(indices.size() * blk);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      copy_bytes(packed.data() + j * blk,
                 tmp.data() + static_cast<std::size_t>(indices[j]) * blk,
                 blk);
    }
    incoming.resize(packed.size());
    const int dst = (me + k) % P;
    const int src = (me - k + P) % P;
    co_await self.sendrecv(comm.global_rank(dst), tag, packed,
                           comm.global_rank(src), tag, incoming);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      copy_bytes(tmp.data() + static_cast<std::size_t>(indices[j]) * blk,
                 incoming.data() + j * blk, blk);
    }
    k <<= 1;
  }

  // Step 3 — inverse rotation: tmp[i] now holds the block from (me - i).
  for (int i = 0; i < P; ++i) {
    copy_bytes(block_of(recv, (me - i + P) % P, block).data(),
               tmp.data() + static_cast<std::size_t>(i) * blk, blk);
  }
}

sim::Task<> alltoall(mpi::Rank& self, mpi::Comm& comm,
                     std::span<const std::byte> send, std::span<std::byte> recv,
                     Bytes block, const AlltoallOptions& options) {
  ProfileScope prof(self, "alltoall", static_cast<Bytes>(send.size()));
  const bool small = block <= options.bruck_threshold;
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
        // The paper's re-design targets the large-message pair-wise path;
        // small messages get per-call DVFS over the default algorithm.
        if (scheme == PowerScheme::kProposed && !small &&
            power_aware_alltoall_applicable(comm)) {
          co_await alltoall_power_aware(self, comm, send, recv, block);
        } else if (small) {
          co_await alltoall_bruck(self, comm, send, recv, block);
        } else {
          co_await alltoall_pairwise(self, comm, send, recv, block);
        }
      });
}

}  // namespace pacc::coll

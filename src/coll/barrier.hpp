// MPI_Barrier via the dissemination algorithm (ceil(log2 P) rounds).
#pragma once

#include "coll/types.hpp"
#include "sim/task.hpp"

namespace pacc::coll {

struct BarrierOptions {
  PowerScheme scheme = PowerScheme::kNone;
};

sim::Task<> barrier_dissemination(mpi::Rank& self, mpi::Comm& comm);

/// Dispatcher (per-call DVFS for the power schemes; the tokens are too
/// small for throttled scheduling to pay off).
sim::Task<> barrier(mpi::Rank& self, mpi::Comm& comm,
                    const BarrierOptions& options = {});

}  // namespace pacc::coll

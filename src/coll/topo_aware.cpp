#include "coll/topo_aware.hpp"

#include <vector>

#include "coll/copy.hpp"
#include "coll/gather_scatter.hpp"
#include "coll/power_scheme.hpp"
#include "hw/power.hpp"
#include "util/expect.hpp"

namespace pacc::coll {

namespace {

sim::Task<> maybe_unthrottle(mpi::Rank& self) {
  if (self.machine().throttle(self.core()) != hw::ThrottleLevel::kMin) {
    co_await unthrottle_self(self);
  }
}

int first_of(const std::vector<int>& group) { return group.front(); }

bool contiguous(const std::vector<int>& group) {
  for (std::size_t i = 1; i < group.size(); ++i) {
    if (group[i] != group[i - 1] + 1) return false;
  }
  return true;
}

/// Root-relative routing roles: the root itself acts as the source for its
/// own rack and node, so no fix-up copy of the full buffer is ever needed.
struct Roles {
  mpi::Comm& comm;
  int root;

  int rack_src(int rack) const {
    return rack == comm.rack_of(root) ? root : comm.rack_leader_of(rack);
  }
  int node_src(int node) const {
    return node == comm.node_of(root) ? root : comm.leader_of(node);
  }
};

}  // namespace

bool topo_aware_applicable(const mpi::Comm& comm) {
  const auto& shape = comm.runtime().placement().shape;
  if (!shape.has_racks()) return false;
  if (comm.racks().size() < 2) return false;
  if (!comm.uniform_ppn()) return false;
  for (const int rack : comm.racks()) {
    if (!contiguous(comm.members_on_rack(rack))) return false;
  }
  for (const int node : comm.nodes()) {
    if (!contiguous(comm.members_on_node(node))) return false;
  }
  return true;
}

sim::Task<> scatter_topo_aware(mpi::Rank& self, mpi::Comm& comm,
                               std::span<const std::byte> send,
                               std::span<std::byte> recv, Bytes block,
                               int root, const TopoAwareOptions& options) {
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
  if (!topo_aware_applicable(comm)) {
    co_await scatter_binomial(self, comm, send, recv, block, root);
    co_return;
  }

  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  PACC_EXPECTS(root >= 0 && root < P);
  const auto blk = static_cast<std::size_t>(block);
  PACC_EXPECTS(recv.size() == blk);
  const int tag = comm.begin_collective(me);
  const bool power = scheme == PowerScheme::kProposed;
  const Roles roles{comm, root};

  const int my_rack = comm.rack_of(me);
  const int my_node = comm.node_of(me);
  const bool i_am_rack_src = roles.rack_src(my_rack) == me;
  const bool i_am_node_src = roles.node_src(my_node) == me;

  // §VIII: only the per-rack sources stay at T0 during the inter-rack
  // phase; everyone else parks at T7 until its data arrives.
  if (power && !i_am_rack_src) {
    co_await throttle_self(self, hw::ThrottleLevel::kMax);
  }

  // Phase A (inter-rack): the root ships each other rack its contiguous
  // block range, crossing every rack uplink exactly once.
  std::vector<std::byte> rack_range;
  std::span<const std::byte> rack_data;  // this rack's blocks
  if (me == root) {
    PACC_EXPECTS(send.size() == static_cast<std::size_t>(P) * blk);
    for (const int rack : comm.racks()) {
      if (rack == my_rack) continue;
      const auto& members = comm.members_on_rack(rack);
      co_await self.send(
          comm.global_rank(roles.rack_src(rack)), tag,
          send.subspan(static_cast<std::size_t>(first_of(members)) * blk,
                       members.size() * blk));
    }
    const auto& mine = comm.members_on_rack(my_rack);
    rack_data = send.subspan(
        static_cast<std::size_t>(first_of(mine)) * blk, mine.size() * blk);
  } else if (i_am_rack_src) {
    const auto& mine = comm.members_on_rack(my_rack);
    rack_range.resize(mine.size() * blk);
    co_await self.recv(comm.global_rank(root), tag, rack_range);
    rack_data = rack_range;
  }

  // Phase B (intra-rack): the rack source feeds the other node sources of
  // its rack.
  std::vector<std::byte> node_range;
  std::span<const std::byte> node_data;  // this node's blocks
  if (i_am_rack_src) {
    const auto& mine = comm.members_on_rack(my_rack);
    for (const int node : comm.nodes()) {
      if (comm.runtime().placement().shape.rack_of(node) != my_rack ||
          node == my_node) {
        continue;
      }
      const auto& members = comm.members_on_node(node);
      const auto offset =
          static_cast<std::size_t>(first_of(members) - first_of(mine)) * blk;
      co_await self.send(comm.global_rank(roles.node_src(node)), tag,
                         rack_data.subspan(offset, members.size() * blk));
    }
    const auto& locals = comm.members_on_node(my_node);
    node_data = rack_data.subspan(
        static_cast<std::size_t>(first_of(locals) - first_of(mine)) * blk,
        locals.size() * blk);
  } else if (i_am_node_src) {
    node_range.resize(comm.members_on_node(my_node).size() * blk);
    co_await self.recv(comm.global_rank(roles.rack_src(my_rack)), tag,
                       node_range);
    if (power) co_await maybe_unthrottle(self);
    node_data = node_range;
  }

  // Phase C (intra-node): node sources hand each local rank its block.
  if (i_am_node_src) {
    if (power) co_await maybe_unthrottle(self);
    const auto& locals = comm.members_on_node(my_node);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      const int peer = locals[i];
      if (peer == me) {
        copy_bytes(recv.data(), node_data.data() + i * blk, blk);
      } else {
        co_await self.send(comm.global_rank(peer), tag,
                           node_data.subspan(i * blk, blk));
      }
    }
  } else {
    co_await self.recv(comm.global_rank(roles.node_src(my_node)), tag, recv);
    if (power) co_await maybe_unthrottle(self);
  }
      });
}

sim::Task<> gather_topo_aware(mpi::Rank& self, mpi::Comm& comm,
                              std::span<const std::byte> send,
                              std::span<std::byte> recv, Bytes block,
                              int root, const TopoAwareOptions& options) {
  co_await run_with_scheme(
      self, comm, options.scheme, [&](PowerScheme scheme) -> sim::Task<> {
  if (!topo_aware_applicable(comm)) {
    co_await gather_binomial(self, comm, send, recv, block, root);
    co_return;
  }
  (void)scheme;  // the gather has no throttled phase (§VIII)

  const int P = comm.size();
  const int me = comm.comm_rank_of(self.id());
  PACC_EXPECTS(me >= 0);
  const auto blk = static_cast<std::size_t>(block);
  PACC_EXPECTS(send.size() == blk);
  const int tag = comm.begin_collective(me);
  const Roles roles{comm, root};

  const int my_rack = comm.rack_of(me);
  const int my_node = comm.node_of(me);
  const bool i_am_rack_dst = roles.rack_src(my_rack) == me;
  const bool i_am_node_dst = roles.node_src(my_node) == me;

  // Phase A (intra-node): locals push their block to the node sink.
  std::vector<std::byte> node_range;
  if (i_am_node_dst) {
    const auto& locals = comm.members_on_node(my_node);
    node_range.resize(locals.size() * blk);
    for (std::size_t i = 0; i < locals.size(); ++i) {
      const int peer = locals[i];
      if (peer == me) {
        copy_bytes(node_range.data() + i * blk, send.data(), blk);
      } else {
        co_await self.recv(
            comm.global_rank(peer), tag,
            std::span<std::byte>(node_range).subspan(i * blk, blk));
      }
    }
  } else {
    co_await self.send(comm.global_rank(roles.node_src(my_node)), tag, send);
  }

  // Phase B (intra-rack): node sinks push node ranges to the rack sink.
  std::vector<std::byte> rack_range;
  if (i_am_rack_dst) {
    const auto& mine = comm.members_on_rack(my_rack);
    rack_range.resize(mine.size() * blk);
    {
      const auto& locals = comm.members_on_node(my_node);
      const auto offset =
          static_cast<std::size_t>(first_of(locals) - first_of(mine)) * blk;
      copy_bytes(rack_range.data() + offset, node_range.data(),
                 node_range.size());
    }
    for (const int node : comm.nodes()) {
      if (comm.runtime().placement().shape.rack_of(node) != my_rack ||
          node == my_node) {
        continue;
      }
      const auto& members = comm.members_on_node(node);
      const auto offset =
          static_cast<std::size_t>(first_of(members) - first_of(mine)) * blk;
      co_await self.recv(
          comm.global_rank(roles.node_src(node)), tag,
          std::span<std::byte>(rack_range).subspan(offset,
                                                   members.size() * blk));
    }
  } else if (i_am_node_dst) {
    co_await self.send(comm.global_rank(roles.rack_src(my_rack)), tag,
                       node_range);
  }

  // Phase C (inter-rack): rack sinks push rack ranges to the root, which
  // assembles the final buffer in place.
  if (me == root) {
    PACC_EXPECTS(recv.size() == static_cast<std::size_t>(P) * blk);
    {
      const auto& mine = comm.members_on_rack(my_rack);
      copy_bytes(recv.data() +
                     static_cast<std::size_t>(first_of(mine)) * blk,
                 rack_range.data(), rack_range.size());
    }
    for (const int rack : comm.racks()) {
      if (rack == my_rack) continue;
      const auto& members = comm.members_on_rack(rack);
      co_await self.recv(
          comm.global_rank(roles.rack_src(rack)), tag,
          recv.subspan(static_cast<std::size_t>(first_of(members)) * blk,
                       members.size() * blk));
    }
  } else if (i_am_rack_dst) {
    co_await self.send(comm.global_rank(root), tag, rack_range);
  }
      });
}

}  // namespace pacc::coll

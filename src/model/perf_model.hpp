// Analytical performance models — Section VI-A, equations (1)-(4).
//
// The paper extends Thakur/Rabenseifner/Gropp-style cost models to
// multi-core clusters: per-word inter-node cost tw, a network-contention
// multiplier Cnet, a throttling penalty Cthrottle, and transition overheads
// O_dvfs / O_throttle. Parameters are derived from the simulator's
// configuration so the models can be validated against simulation
// (bench_model_validation).
#pragma once

#include "hw/machine.hpp"
#include "net/network.hpp"
#include "util/units.hpp"

namespace pacc::model {

struct PerfModelParams {
  double tw_inter_sec_per_byte = 0.0;  ///< 1 / link bandwidth
  double tw_intra_sec_per_byte = 0.0;  ///< 1 / per-core shm copy rate
  Duration ts_inter;                   ///< per-message inter-node start-up
  Duration ts_intra;                   ///< per-message intra-node start-up
  Duration o_dvfs;                     ///< O_dvfs
  Duration o_throttle;                 ///< O_throttle
  double contention_penalty = 0.0;     ///< the network model's alpha

  /// The paper's Cnet for c concurrent flows per HCA link: flows share the
  /// link and pay the contention-efficiency loss.
  double cnet(int flows_per_link) const;

  /// The paper's Cthrottle: wire-efficiency multiplier of a leader socket
  /// at T4 and fmin (from the network model's endpoint penalty).
  double cthrottle = 1.15;

  /// Derives model parameters from a simulator configuration.
  static PerfModelParams from(const hw::MachineParams& machine,
                              const net::NetworkParams& network);
};

/// Equation (1): pair-wise Alltoall across N nodes with c ranks each:
/// T = tw_inter · (P - c) · Cnet · M.
Duration alltoall_pairwise_time(const PerfModelParams& p, int nodes,
                                int ranks_per_node, Bytes message);

/// Equation (2): scatter-allgather broadcast over N node leaders:
/// T = M (N-1) tw_inter (1 + 1/N).
Duration bcast_scatter_allgather_time(const PerfModelParams& p, int nodes,
                                      Bytes message);

/// Equation (3): the proposed power-aware Alltoall:
/// T = (3/4) tw_inter N c Cnet M + 2 O_dvfs + N O_throttle,
/// with Cnet evaluated at half the per-link flow count.
Duration alltoall_power_aware_time(const PerfModelParams& p, int nodes,
                                   int ranks_per_node, Bytes message);

/// Equation (4): the proposed power-aware broadcast:
/// T = T_bcast · Cthrottle + 2 O_dvfs + 2 O_throttle.
Duration bcast_power_aware_time(const PerfModelParams& p, int nodes,
                                Bytes message);

}  // namespace pacc::model

#include "model/power_model.hpp"

namespace pacc::model {

PowerModelParams PowerModelParams::from(const hw::MachineParams& machine,
                                        int active_cores) {
  PowerModelParams p;
  const auto& pw = machine.power;
  p.core_busy_fmax = pw.core_power(machine.fmax, machine.fmax, 0,
                                   hw::Activity::kBusy);
  p.core_busy_fmin = pw.core_power(machine.fmin, machine.fmax, 0,
                                   hw::Activity::kBusy);
  p.core_busy_fmin_t4 = pw.core_power(machine.fmin, machine.fmax, 4,
                                      hw::Activity::kBusy);
  p.core_busy_fmin_t7 = pw.core_power(machine.fmin, machine.fmax,
                                      hw::ThrottleLevel::kMax,
                                      hw::Activity::kBusy);
  p.static_power = pw.node_base * machine.shape.nodes +
                   pw.socket_uncore * machine.shape.sockets_total();
  p.active_cores = active_cores;
  return p;
}

namespace {

Joules integrate(const PowerModelParams& p, Watts per_core, Duration t) {
  return (p.static_power + per_core * p.active_cores) * t.sec();
}

}  // namespace

Joules energy_default(const PowerModelParams& p, Duration op_time) {
  return integrate(p, p.core_busy_fmax, op_time);
}

Joules energy_dvfs_only(const PowerModelParams& p, Duration op_time) {
  return integrate(p, p.core_busy_fmin, op_time);
}

Joules energy_alltoall_proposed(const PowerModelParams& p, Duration op_time) {
  const Duration half = op_time / 2.0;
  return integrate(p, p.core_busy_fmin, half) +
         integrate(p, p.core_busy_fmin_t7, op_time - half);
}

Joules energy_bcast_proposed(const PowerModelParams& p, Duration op_time) {
  const Watts per_core =
      0.5 * p.core_busy_fmin_t4 + 0.5 * p.core_busy_fmin_t7;
  return integrate(p, per_core, op_time);
}

}  // namespace pacc::model

// Analytical power/energy models — Section VI-B, equations (5)-(8).
//
// Each equation integrates per-core power over the duration of a collective:
//   (5) default:      all P cores busy at fmax
//   (6) DVFS-only:    all P cores busy at fmin (over the stretched interval)
//   (7) proposed Alltoall: every core spends half the operation at T0/fmin
//       and half fully throttled (c7) at fmin
//   (8) proposed Bcast: half the cores at T4 (c4) and half at T7 (c7), fmin
// System energy adds the static node/uncore draw over the same interval so
// the numbers are directly comparable with the simulator's accounting.
#pragma once

#include "hw/machine.hpp"
#include "util/units.hpp"

namespace pacc::model {

struct PowerModelParams {
  Watts core_busy_fmax = 0.0;   ///< busy core power at fmax, T0
  Watts core_busy_fmin = 0.0;   ///< busy core power at fmin, T0
  Watts core_busy_fmin_t4 = 0.0;
  Watts core_busy_fmin_t7 = 0.0;
  Watts static_power = 0.0;     ///< node base + uncore for the whole system
  int active_cores = 0;         ///< cores participating in the collective

  static PowerModelParams from(const hw::MachineParams& machine,
                               int active_cores);
};

/// Equation (5): energy of the default collective over [t1, t2].
Joules energy_default(const PowerModelParams& p, Duration op_time);

/// Equation (6): energy with per-call DVFS over the stretched [t1, t2'].
Joules energy_dvfs_only(const PowerModelParams& p, Duration op_time);

/// Equation (7): energy of the proposed Alltoall — half the interval at
/// T0/fmin, half at T7/fmin.
Joules energy_alltoall_proposed(const PowerModelParams& p, Duration op_time);

/// Equation (8): energy of the proposed shared-memory collective — half the
/// cores at T4/fmin, half at T7/fmin.
Joules energy_bcast_proposed(const PowerModelParams& p, Duration op_time);

}  // namespace pacc::model

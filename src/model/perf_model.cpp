#include "model/perf_model.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace pacc::model {

double PerfModelParams::cnet(int flows_per_link) const {
  PACC_EXPECTS(flows_per_link >= 1);
  // Sharing a link among n flows plus the per-flow efficiency loss.
  return flows_per_link *
         (1.0 + contention_penalty * (flows_per_link - 1));
}

PerfModelParams PerfModelParams::from(const hw::MachineParams& machine,
                                      const net::NetworkParams& network) {
  PerfModelParams p;
  p.tw_inter_sec_per_byte = 1.0 / network.link_bandwidth;
  p.tw_intra_sec_per_byte = 1.0 / network.shm_per_flow_bandwidth;
  p.ts_inter = network.inter_startup;
  p.ts_intra = network.intra_startup;
  p.o_dvfs = machine.dvfs_overhead;
  p.o_throttle = machine.throttle_overhead;
  p.contention_penalty = network.contention_penalty;

  const double freq_slow = machine.fmax.hz() / machine.fmin.hz();
  const double t4_slow = 1.0 / hw::ThrottleLevel::activity_factor(4);
  p.cthrottle = 1.0 + network.freq_wire_penalty * (freq_slow - 1.0) +
                network.freq_wire_penalty * network.throttle_wire_weight *
                    (t4_slow - 1.0);
  return p;
}

Duration alltoall_pairwise_time(const PerfModelParams& p, int nodes,
                                int ranks_per_node, Bytes message) {
  PACC_EXPECTS(nodes >= 1 && ranks_per_node >= 1 && message >= 0);
  const int P = nodes * ranks_per_node;
  // Each of the P-c inter-node steps moves one M-byte message per rank; the
  // c ranks of a node share the HCA link, so a step lasts Cnet·M·tw with
  // Cnet = c·(1 + alpha·(c-1)).
  const double cnet = p.cnet(ranks_per_node);
  const double secs = p.tw_inter_sec_per_byte * (P - ranks_per_node) * cnet *
                      static_cast<double>(message);
  return Duration::seconds(secs) +
         p.ts_inter * static_cast<double>(P - ranks_per_node);
}

Duration bcast_scatter_allgather_time(const PerfModelParams& p, int nodes,
                                      Bytes message) {
  PACC_EXPECTS(nodes >= 1 && message >= 0);
  const double n = static_cast<double>(nodes);
  const double secs = static_cast<double>(message) * (n - 1.0) *
                      p.tw_inter_sec_per_byte * (1.0 + 1.0 / n);
  return Duration::seconds(secs);
}

Duration alltoall_power_aware_time(const PerfModelParams& p, int nodes,
                                   int ranks_per_node, Bytes message) {
  PACC_EXPECTS(nodes >= 1 && ranks_per_node >= 1 && message >= 0);
  const int P = nodes * ranks_per_node;
  // Only half of a node's ranks drive the network at a time, so the
  // schedule needs twice the steps of eq (1) but each step runs at the
  // halved contention Cnet/… — the paper's "(3/4) tw N c Cnet M" with the
  // contention improvement of §V-A made explicit.
  const int half = std::max(1, ranks_per_node / 2);
  const double cnet_half = p.cnet(half);
  const double secs = p.tw_inter_sec_per_byte * 2.0 *
                      (P - ranks_per_node) * cnet_half *
                      static_cast<double>(message);
  return Duration::seconds(secs) +
         p.ts_inter * static_cast<double>(P - ranks_per_node) +
         p.o_dvfs * 2.0 + p.o_throttle * static_cast<double>(nodes);
}

Duration bcast_power_aware_time(const PerfModelParams& p, int nodes,
                                Bytes message) {
  return bcast_scatter_allgather_time(p, nodes, message) * p.cthrottle +
         p.o_dvfs * 2.0 + p.o_throttle * 2.0;
}

}  // namespace pacc::model

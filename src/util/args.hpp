// Minimal command-line flag parser for the tools/ binaries.
//
// Supports "--flag value", "--flag=value" and boolean "--flag". Unknown
// flags are collected so tools can reject them with a usable message.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace pacc {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if the flag was present (with or without a value).
  bool has(std::string_view name) const;

  /// The flag's value, if one was supplied.
  std::optional<std::string> get(std::string_view name) const;

  std::string get_or(std::string_view name, std::string fallback) const;
  long long int_or(std::string_view name, long long fallback) const;
  double double_or(std::string_view name, double fallback) const;

  /// Size with optional K/M/G suffix (powers of two): "64K" → 65536.
  Bytes bytes_or(std::string_view name, Bytes fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were supplied but never queried via has()/get*.
  std::vector<std::string> unknown() const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::vector<std::string> queried_;
};

/// Parses "64K", "1M", "512", "2G" (case-insensitive suffix, powers of 2).
/// Returns std::nullopt on malformed input.
std::optional<Bytes> parse_bytes(std::string_view text);

/// Parses a duration like "12ms", "3.5s", "250us", "80ns".
std::optional<Duration> parse_duration(std::string_view text);

}  // namespace pacc

// Small statistics helpers used by benches and reports.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace pacc {

/// Online accumulator for min / max / mean / variance (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One sample of total system power, as produced by hw::SamplingMeter.
struct PowerSample {
  TimePoint time;
  Watts watts = 0.0;
};

/// A time series of power samples plus summary helpers.
class PowerSeries {
 public:
  void add(TimePoint t, Watts w) { samples_.push_back({t, w}); }

  const std::vector<PowerSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Mean of the sampled power values (what a clamp-meter readout shows).
  Watts mean_watts() const;
  Watts peak_watts() const;

 private:
  std::vector<PowerSample> samples_;
};

/// Percentile over a copy of the data (p in [0,100]).
double percentile(std::vector<double> values, double p);

}  // namespace pacc

#include "util/rng.hpp"

#include "util/expect.hpp"

namespace pacc {

std::uint64_t Rng::next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PACC_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

}  // namespace pacc

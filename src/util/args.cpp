#include "util/args.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>

namespace pacc {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_.emplace(std::string(arg.substr(0, eq)),
                      std::string(arg.substr(eq + 1)));
      continue;
    }
    // "--flag value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_.emplace(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      values_.emplace(std::string(arg), std::string());
    }
  }
}

bool ArgParser::has(std::string_view name) const {
  queried_.emplace_back(name);
  return values_.contains(std::string(name));
}

std::optional<std::string> ArgParser::get(std::string_view name) const {
  queried_.emplace_back(name);
  const auto it = values_.find(std::string(name));
  if (it == values_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_or(std::string_view name,
                              std::string fallback) const {
  return get(name).value_or(std::move(fallback));
}

long long ArgParser::int_or(std::string_view name, long long fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double ArgParser::double_or(std::string_view name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

Bytes ArgParser::bytes_or(std::string_view name, Bytes fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return parse_bytes(*v).value_or(fallback);
}

std::vector<std::string> ArgParser::unknown() const {
  std::vector<std::string> result;
  for (const auto& [key, value] : values_) {
    if (std::find(queried_.begin(), queried_.end(), key) == queried_.end()) {
      result.push_back("--" + key);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::optional<Bytes> parse_bytes(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin) return std::nullopt;
  std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  double scale = 1.0;
  if (suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "K" || suffix == "k" || suffix == "KiB") {
    scale = 1024.0;
  } else if (suffix == "M" || suffix == "m" || suffix == "MiB") {
    scale = 1024.0 * 1024.0;
  } else if (suffix == "G" || suffix == "g" || suffix == "GiB") {
    scale = 1024.0 * 1024.0 * 1024.0;
  } else {
    return std::nullopt;
  }
  const double bytes = value * scale;
  if (bytes < 0.0) return std::nullopt;
  return static_cast<Bytes>(bytes);
}

std::optional<Duration> parse_duration(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value < 0.0) return std::nullopt;
  std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  if (suffix == "ns") return Duration::nanos(static_cast<std::int64_t>(value));
  if (suffix == "us") return Duration::micros(value);
  if (suffix == "ms") return Duration::millis(value);
  if (suffix == "s") return Duration::seconds(value);
  return std::nullopt;
}

}  // namespace pacc

// Deterministic pseudo-random numbers (SplitMix64) for workload generation.
//
// The standard <random> engines are avoided for cross-platform determinism of
// generated workloads; SplitMix64 output is specified exactly.
#pragma once

#include <cstdint>

namespace pacc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

 private:
  std::uint64_t state_;
};

}  // namespace pacc

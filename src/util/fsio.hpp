// Torn-write-proof file persistence primitives.
//
// Every artifact this library persists (campaign JSON, tuned tables, cell
// journals, result caches) must survive a crash mid-write: a reader either
// sees the previous complete file or the new complete file, never a torn
// prefix. atomic_write_file() implements the classic discipline — write to
// a same-directory temp file, fsync it, rename() over the target, fsync
// the directory — and crc32() provides the record checksums the journal
// uses to detect the one case rename() cannot cover (an append torn by a
// crash). See docs/DURABILITY.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pacc {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`. Deterministic
/// across platforms; used to frame journal records so a torn append is
/// detectable byte-for-byte.
std::uint32_t crc32(std::string_view data);

/// Durably replaces `path` with `contents`: writes `path` + a temp suffix
/// in the same directory, fsyncs the file, renames it over `path`, and
/// fsyncs the directory so the rename itself is on disk. A crash at any
/// point leaves either the old complete file or the new complete file.
/// Returns false (and fills *error when non-null) on any failure; the temp
/// file is cleaned up best-effort.
bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error = nullptr);

}  // namespace pacc

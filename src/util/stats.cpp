#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"

namespace pacc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Watts PowerSeries::mean_watts() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.watts;
  return sum / static_cast<double>(samples_.size());
}

Watts PowerSeries::peak_watts() const {
  Watts peak = 0.0;
  for (const auto& s : samples_) peak = std::max(peak, s.watts);
  return peak;
}

double percentile(std::vector<double> values, double p) {
  PACC_EXPECTS(p >= 0.0 && p <= 100.0);
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace pacc

#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/expect.hpp"

namespace pacc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PACC_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PACC_EXPECTS_MSG(cells.size() == headers_.size(),
                   "row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_bytes(long long bytes) {
  if (bytes >= (1 << 20) && bytes % (1 << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= (1 << 10) && bytes % (1 << 10) == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

}  // namespace pacc

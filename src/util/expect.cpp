#include "util/expect.hpp"

#include <cstdio>
#include <cstdlib>

namespace pacc::detail {

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   std::string_view message) {
  std::fprintf(stderr, "[pacc] %s violated: %s (%s:%d)", kind, expr, file,
               line);
  if (!message.empty()) {
    std::fprintf(stderr, " — %.*s", static_cast<int>(message.size()),
                 message.data());
  }
  std::fputc('\n', stderr);
  std::abort();
}

}  // namespace pacc::detail

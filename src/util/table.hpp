// ASCII table / CSV emitters for the benchmark harness.
//
// Every bench binary prints paper-style rows; Table keeps alignment and also
// supports CSV so results can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pacc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with fixed precision.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count as "4K", "1M", "512" the way OSU benchmarks label axes.
std::string format_bytes(long long bytes);

}  // namespace pacc

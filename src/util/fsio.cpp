#include "util/fsio.hpp"

#include <array>
#include <cerrno>
#include <cstring>

#if defined(_WIN32)
#include <cstdio>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pacc {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
  return false;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

#if defined(_WIN32)

bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error) {
  // No POSIX rename-over semantics: plain rewrite is the best available.
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(error, "cannot open " + path);
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  if (!ok) return fail(error, "short write to " + path);
  return true;
}

#else

bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error) {
  // Same directory as the target so the rename is within one filesystem.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail(error, "cannot create " + tmp);

  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail(error, "write to " + tmp + " failed");
    }
    written += static_cast<std::size_t>(n);
  }
  // The data must be durable BEFORE the rename publishes it, or a crash
  // could leave the new name pointing at unwritten blocks.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail(error, "fsync of " + tmp + " failed");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail(error, "close of " + tmp + " failed");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail(error, "rename " + tmp + " -> " + path + " failed");
  }
  // fsync the directory so the rename itself survives a crash.
  const auto slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best-effort: some filesystems refuse directory fsync
    ::close(dfd);
  }
  return true;
}

#endif

}  // namespace pacc

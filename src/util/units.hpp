// Strong unit types used across the simulator.
//
// All simulated time is held as an integer count of nanoseconds so that the
// discrete-event engine is exactly deterministic; conversions to floating
// seconds happen only at reporting boundaries.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace pacc {

/// A span of simulated time, in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration nanos(std::int64_t v) { return Duration{v}; }
  static constexpr Duration micros(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e3)};
  }
  static constexpr Duration millis(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr Duration seconds(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e9)};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double ms() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  constexpr Duration operator*(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Duration operator/(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) / k)};
  }

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock, in nanoseconds since start.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double us() const { return static_cast<double>(ns_) * 1e-3; }
  constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{ns_ - o.ns_}; }

 private:
  std::int64_t ns_ = 0;
};

/// Clock frequency in hertz.
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(double hz) : hz_(hz) {}

  static constexpr Frequency ghz(double v) { return Frequency{v * 1e9}; }
  static constexpr Frequency mhz(double v) { return Frequency{v * 1e6}; }

  constexpr double hz() const { return hz_; }
  constexpr double ghz() const { return hz_ * 1e-9; }

  constexpr auto operator<=>(const Frequency&) const = default;

 private:
  double hz_ = 0.0;
};

/// Message / buffer size in bytes.
using Bytes = std::int64_t;

inline constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024;
}
inline constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024 * 1024;
}

/// Energy in joules (reporting only, so double is fine).
using Joules = double;
/// Power in watts.
using Watts = double;

}  // namespace pacc

// Lightweight contract checking (Core Guidelines I.6 / I.8 style).
//
// PACC_EXPECTS / PACC_ENSURES abort with a diagnostic on violation; they stay
// enabled in release builds because the simulator's correctness depends on
// its invariants, and the cost is negligible relative to event dispatch.
#pragma once

#include <string_view>

namespace pacc::detail {

[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   std::string_view message);

}  // namespace pacc::detail

#define PACC_EXPECTS(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pacc::detail::contract_failure("Precondition", #cond, __FILE__,    \
                                       __LINE__, {});                       \
  } while (false)

#define PACC_EXPECTS_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pacc::detail::contract_failure("Precondition", #cond, __FILE__,    \
                                       __LINE__, (msg));                    \
  } while (false)

#define PACC_ENSURES(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pacc::detail::contract_failure("Postcondition", #cond, __FILE__,   \
                                       __LINE__, {});                       \
  } while (false)

#define PACC_ASSERT(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pacc::detail::contract_failure("Invariant", #cond, __FILE__,       \
                                       __LINE__, {});                       \
  } while (false)

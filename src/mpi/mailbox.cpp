#include "mpi/mailbox.hpp"

#include <algorithm>

namespace pacc::mpi {

void Mailbox::deliver(Message msg) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    RecvAwaiter* p = *it;
    if (p->src_ == msg.src && p->tag_ == msg.tag) {
      posted_.erase(it);
      if (p->timer_ != 0) engine_.cancel(p->timer_);
      p->msg_ = std::move(msg);
      p->got_ = true;
      const auto h = p->handle_;
      engine_.schedule(Duration::zero(), [h] { h.resume(); });
      return;
    }
  }
  unexpected_.push_back(std::move(msg));
}

std::optional<Message> Mailbox::try_take(int src, int tag) {
  const auto it = std::find_if(
      unexpected_.begin(), unexpected_.end(),
      [&](const Message& m) { return m.src == src && m.tag == tag; });
  if (it == unexpected_.end()) return std::nullopt;
  Message msg = std::move(*it);
  unexpected_.erase(it);
  return msg;
}

void Mailbox::RecvAwaiter::await_suspend(std::coroutine_handle<> h) {
  handle_ = h;
  box_.posted_.push_back(this);
  if (timeout_.ns() > 0) {
    timer_ = box_.engine_.schedule(timeout_,
                                   [this] { box_.on_timeout(this); });
  }
}

void Mailbox::on_timeout(RecvAwaiter* awaiter) {
  const auto it = std::find(posted_.begin(), posted_.end(), awaiter);
  PACC_ASSERT(it != posted_.end());  // deliver() cancels the timer first
  posted_.erase(it);
  awaiter->got_ = false;
  const auto h = awaiter->handle_;
  engine_.schedule(Duration::zero(), [h] { h.resume(); });
}

}  // namespace pacc::mpi

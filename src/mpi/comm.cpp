#include "mpi/comm.hpp"

#include <algorithm>
#include <bit>

#include "mpi/message.hpp"
#include "mpi/runtime.hpp"
#include "util/expect.hpp"

namespace pacc::mpi {

Comm::Comm(Runtime& rt, int context_id, std::vector<int> global_ranks)
    : rt_(rt), context_id_(context_id), members_(std::move(global_ranks)) {
  PACC_EXPECTS_MSG(!members_.empty(), "communicator cannot be empty");
  PACC_EXPECTS_MSG(context_id >= 0 && context_id < kMaxContexts,
                   "too many communicators");
  inverse_.reserve(members_.size());
  const auto& placement = rt_.placement();
  const int sockets = placement.shape.sockets_per_node;

  for (int cr = 0; cr < size(); ++cr) {
    const int g = members_[static_cast<std::size_t>(cr)];
    PACC_EXPECTS(g >= 0 && g < rt_.size());
    PACC_EXPECTS_MSG(!inverse_.contains(g), "duplicate rank in communicator");
    inverse_.emplace(g, cr);
    const int node = placement.node_of(g);
    const int socket = placement.socket_of(g);
    by_node_[node].push_back(cr);
    by_socket_[node * sockets + socket].push_back(cr);
    by_rack_[placement.shape.rack_of(node)].push_back(cr);
  }
  racks_.reserve(by_rack_.size());
  for (const auto& [rack, ranks] : by_rack_) racks_.push_back(rack);
  std::sort(racks_.begin(), racks_.end());
  nodes_.reserve(by_node_.size());
  for (const auto& [node, ranks] : by_node_) nodes_.push_back(node);
  std::sort(nodes_.begin(), nodes_.end());
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    node_index_.emplace(nodes_[static_cast<std::size_t>(i)], i);
  }
  const std::size_t first_count =
      by_node_.at(nodes_.front()).size();
  for (const auto& [node, ranks] : by_node_) {
    if (ranks.size() != first_count) uniform_ppn_ = false;
  }
  call_count_.assign(static_cast<std::size_t>(size()), 0);
}

int Comm::global_rank(int comm_rank) const {
  PACC_EXPECTS(comm_rank >= 0 && comm_rank < size());
  return members_[static_cast<std::size_t>(comm_rank)];
}

int Comm::comm_rank_of(int global_rank) const {
  const auto it = inverse_.find(global_rank);
  return it == inverse_.end() ? -1 : it->second;
}

int Comm::node_of(int comm_rank) const {
  return rt_.placement().node_of(global_rank(comm_rank));
}

int Comm::socket_of(int comm_rank) const {
  return rt_.placement().socket_of(global_rank(comm_rank));
}

int Comm::node_index(int node) const {
  const auto it = node_index_.find(node);
  PACC_EXPECTS_MSG(it != node_index_.end(), "node hosts no members");
  return it->second;
}

const std::vector<int>& Comm::members_on_node(int node) const {
  const auto it = by_node_.find(node);
  PACC_EXPECTS_MSG(it != by_node_.end(), "node hosts no members");
  return it->second;
}

const std::vector<int>& Comm::socket_group(int node, int socket) const {
  static const std::vector<int> kEmpty;
  const int sockets = rt_.placement().shape.sockets_per_node;
  PACC_EXPECTS(socket >= 0 && socket < sockets);
  const auto it = by_socket_.find(node * sockets + socket);
  return it == by_socket_.end() ? kEmpty : it->second;
}

int Comm::leader_of(int node) const { return members_on_node(node).front(); }

bool Comm::is_leader(int comm_rank) const {
  return leader_of(node_of(comm_rank)) == comm_rank;
}

int Comm::rack_of(int comm_rank) const {
  return rt_.placement().shape.rack_of(node_of(comm_rank));
}

const std::vector<int>& Comm::members_on_rack(int rack) const {
  const auto it = by_rack_.find(rack);
  PACC_EXPECTS_MSG(it != by_rack_.end(), "rack hosts no members");
  return it->second;
}

int Comm::rack_leader_of(int rack) const {
  return members_on_rack(rack).front();
}

bool Comm::is_rack_leader(int comm_rank) const {
  return rack_leader_of(rack_of(comm_rank)) == comm_rank;
}

Comm& Comm::rack_leader_comm() {
  if (rack_leader_comm_ == nullptr) {
    std::vector<int> leaders;
    leaders.reserve(racks_.size());
    for (const int rack : racks_) {
      leaders.push_back(global_rank(rack_leader_of(rack)));
    }
    rack_leader_comm_ = &rt_.create_comm(std::move(leaders));
  }
  return *rack_leader_comm_;
}

int Comm::ranks_per_node() const {
  PACC_EXPECTS_MSG(uniform_ppn_, "non-uniform ranks per node");
  return static_cast<int>(members_on_node(nodes_.front()).size());
}

Comm& Comm::leader_comm() {
  if (leader_comm_ == nullptr) {
    std::vector<int> leaders;
    leaders.reserve(nodes_.size());
    for (int node : nodes_) {
      leaders.push_back(global_rank(leader_of(node)));
    }
    leader_comm_ = &rt_.create_comm(std::move(leaders));
  }
  return *leader_comm_;
}

Comm& Comm::node_comm(int node) {
  if (auto it = node_comms_.find(node); it != node_comms_.end()) {
    return *it->second;
  }
  std::vector<int> globals;
  for (int cr : members_on_node(node)) globals.push_back(global_rank(cr));
  Comm& created = rt_.create_comm(std::move(globals));
  node_comms_.emplace(node, &created);
  return created;
}

sim::Barrier& Comm::node_barrier(int node) {
  if (auto it = barriers_.find(node); it != barriers_.end()) {
    return *it->second;
  }
  auto barrier = std::make_unique<sim::Barrier>(
      rt_.engine(), members_on_node(node).size());
  auto [it, inserted] = barriers_.emplace(node, std::move(barrier));
  PACC_ASSERT(inserted);
  return *it->second;
}

std::uint64_t Comm::structure_fingerprint() const {
  if (fingerprint_ != 0) return fingerprint_;
  // FNV-1a over the schedule-relevant structure. Membership order matters
  // (comm ranks are positional), so the fold is order-sensitive.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  const auto& placement = rt_.placement();
  mix(static_cast<std::uint64_t>(context_id_));
  mix(static_cast<std::uint64_t>(placement.shape.nodes));
  mix(static_cast<std::uint64_t>(placement.shape.sockets_per_node));
  mix(static_cast<std::uint64_t>(placement.shape.cores_per_socket));
  mix(static_cast<std::uint64_t>(placement.shape.nodes_per_rack));
  // Fabric shape and oversubscription: two fabrics sharing a rank count
  // must never alias — plan-cache entries and symmetry-collapse classes
  // are both keyed off this fingerprint.
  mix(static_cast<std::uint64_t>(placement.shape.fabric.size()));
  for (const hw::FabricLevelSpec& level : placement.shape.fabric) {
    mix(static_cast<std::uint64_t>(level.group_size));
    mix(std::bit_cast<std::uint64_t>(level.oversubscription));
    mix(std::bit_cast<std::uint64_t>(level.bandwidth));
  }
  // Dragonfly structure and routing mode; mixed only when enabled (behind
  // a marker) so every pre-dragonfly fingerprint — and the plan-cache /
  // tuned-table baselines keyed on them — is unchanged.
  if (placement.shape.has_dragonfly()) {
    const hw::DragonflySpec& df = placement.shape.dragonfly;
    mix(0xd7a60f1eull);  // dragonfly marker
    mix(static_cast<std::uint64_t>(df.routers_per_group));
    mix(static_cast<std::uint64_t>(df.nodes_per_router));
    mix(static_cast<std::uint64_t>(df.adaptive ? 1 : 0));
    mix(std::bit_cast<std::uint64_t>(df.local_bandwidth));
    mix(std::bit_cast<std::uint64_t>(df.global_bandwidth));
  }
  mix(static_cast<std::uint64_t>(members_.size()));
  for (const int g : members_) {
    mix(static_cast<std::uint64_t>(g));
    mix(static_cast<std::uint64_t>(placement.node_of(g)));
    mix(static_cast<std::uint64_t>(placement.socket_of(g)));
  }
  if (h == 0) h = 1;  // 0 is the "not computed" sentinel
  fingerprint_ = h;
  return h;
}

int Comm::begin_collective(int comm_rank) {
  PACC_EXPECTS(comm_rank >= 0 && comm_rank < size());
  const int seq = call_count_[static_cast<std::size_t>(comm_rank)]++;
  PACC_EXPECTS_MSG(seq < kMaxCollectiveCalls,
                   "collective call sequence exhausted on this comm");
  return collective_tag(context_id_, seq);
}

}  // namespace pacc::mpi

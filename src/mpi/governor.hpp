// Pluggable runtime power governors.
//
// A Governor watches the MPI library's own waits — polling-mode receives,
// rendezvous sends held on the wire, waitall latches, the §V node barriers
// and the reliable path's ack waits — and manages the waiting core's power
// state. Three policies are provided:
//
//   kReactive  — the prior-work "black-box" DVFS governor the paper's §III
//                contrasts with (refs [5][6][9]): downclock to fmin once a
//                receive outlasts a threshold, restore on arrival. Engages
//                only at mailbox receives and pays 2·O_dvfs per long wait.
//                Byte-identical to the historical hardwired implementation.
//   kSlack     — COUNTDOWN-style timer hysteresis (arXiv:1806.07258): a
//                deferred timer (~500 µs) arms at EVERY wait site and only
//                pays O_dvfs when the wait provably outlasts it, so short
//                waits cost exactly nothing. The downclock itself happens in
//                a detached task, hiding its O_dvfs inside the wait; only
//                the restore stalls the rank.
//   kPowerCap  — Medhat-style cluster power capping (arXiv:1410.6824): each
//                node gets a RAPL-like watt budget; the governor solves for
//                the highest uniform core frequency that fits and, with
//                `redistribute`, re-allocates headroom from waiting cores
//                toward the still-busy (critical-path) cores at every wait
//                boundary — speeding up capped runs. Frequency moves are
//                PCU-driven (instantaneous set_frequency, no O_dvfs stall),
//                modelling the hardware power controller rather than an
//                OS-driven P-state request.
//
// Governors require the polling progress mode: a blocking-mode wait already
// sleeps at idle power, which in the §VI-B model is frequency-independent,
// so there is nothing for DVFS to save — the Runtime refuses the
// combination instead of running silently at full power.
//
// Scheme interplay: a governed wait must never "restore" a core above the
// state a §V scheme chose for it. Rank::dvfs reports every scheme-driven
// frequency change through note_scheme_dvfs; restores clamp to that floor
// (counted in GovernorStats::scheme_clamps).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hw/topology.hpp"
#include "mpi/message.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace pacc::mpi {

class Rank;
class Runtime;

enum class GovernorKind : std::uint8_t {
  kReactive,  ///< §III black-box: threshold receive, downclock, restore
  kSlack,     ///< COUNTDOWN timer hysteresis at every wait site
  kPowerCap,  ///< per-node watt budget with optional redistribution
};

std::string to_string(GovernorKind kind);

/// "reactive", "slack", "powercap"; nullopt for unknown names.
std::optional<GovernorKind> parse_governor_kind(std::string_view name);

/// Runtime power-governor configuration; `enabled == false` (the default)
/// builds no governor at all and leaves every wait site untouched.
struct GovernorParams {
  bool enabled = false;
  GovernorKind kind = GovernorKind::kReactive;
  /// kReactive: receives longer than this trigger a downclock to fmin.
  Duration wait_threshold = Duration::micros(50.0);
  /// kSlack: the deferred timer — only waits outlasting it pay any O_dvfs.
  Duration slack_threshold = Duration::micros(500.0);
  /// kPowerCap: the per-node budget in watts (must be > 0 for that kind).
  Watts node_power_cap = 0.0;
  /// kPowerCap: shift waiting cores' headroom to busy cores (true) or hold
  /// every core at the static uniform-cap frequency (false — the baseline
  /// the redistribution benches compare against).
  bool redistribute = true;
};

/// Which kind of wait a wait_begin/wait_end bracket covers (trace labels
/// and per-site accounting; the policies themselves treat sites uniformly).
enum class WaitSite : std::uint8_t {
  kRecv,        ///< polling-mode mailbox receive
  kRendezvous,  ///< sender held until the payload lands
  kAck,         ///< reliable-path sender held on the delivery latch
  kWaitall,     ///< MPI_Waitall over outstanding requests
  kBarrier,     ///< node-local rendezvous of the §V exchange schedule
};

/// Transition/outcome counters, split by direction so a run that faults or
/// terminates while a core is parked still reconciles: every armed wait
/// ends as a short wait, a park failure, or a downclock; every downclock
/// ends as a restore, a restore failure, or a scheme clamp.
struct GovernorStats {
  std::uint64_t armed_waits = 0;       ///< waits that started governance
  std::uint64_t short_waits = 0;       ///< ended before the threshold fired
  std::uint64_t downclocks = 0;        ///< applied down transitions
  std::uint64_t restores = 0;          ///< applied up transitions
  std::uint64_t park_failures = 0;     ///< down transition rejected (fault)
  std::uint64_t restore_failures = 0;  ///< up transition rejected (fault)
  std::uint64_t scheme_clamps = 0;     ///< restore held at a scheme's floor
  std::uint64_t cap_updates = 0;       ///< power-cap re-allocations applied
};

/// Policy interface. One instance per Runtime, consulted from every wait
/// site; per-core state is the implementation's own.
class Governor {
 public:
  explicit Governor(Runtime& rt);
  virtual ~Governor() = default;
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  virtual GovernorKind kind() const = 0;

  /// Polling-mode mailbox receive under governance. The default brackets
  /// the plain receive with wait_begin/wait_end; kReactive overrides it
  /// with the historical threshold-receive event sequence.
  virtual sim::Task<Message> recv_governed(Rank& self, int src, int tag);

  /// Brackets a non-mailbox wait (rendezvous transfer, ack latch, waitall,
  /// node barrier). wait_begin is synchronous (arming must not cost
  /// simulated time); wait_end may stall the rank to restore its P-state.
  /// Brackets nest: concurrent waits of one rank (waitall over irecvs) are
  /// governed once, by the outermost bracket.
  virtual void wait_begin(Rank& self, WaitSite site);
  virtual sim::Task<> wait_end(Rank& self, WaitSite site);

  /// A §V scheme (or any caller of Rank::dvfs) changed this core's
  /// frequency; restores never exceed the most recent such target.
  virtual void note_scheme_dvfs(const hw::CoreId& core, Frequency target);

  const GovernorStats& stats() const { return stats_; }

 protected:
  /// min(prior, the scheme's most recent target for `core`); counts a
  /// scheme_clamp when the floor bites.
  Frequency restore_target(const hw::CoreId& core, Frequency prior);

  /// Rank 0 + tracer: opens/closes the "governor-park" energy bucket so a
  /// parked interval's joules land in a named phase (docs/OBSERVABILITY.md)
  /// — and a run cut short mid-park still flushes into it. Every policy
  /// also drops "gov-park"/"gov-restore" trace instants on the core track,
  /// so unmatched downclocks reconcile in the trace.
  void mark_park(Rank& self, bool* phase_open);
  void mark_restore(Rank& self, bool* phase_open);

  Runtime& rt_;
  GovernorStats stats_;

 private:
  std::vector<Frequency> scheme_target_;  ///< per linear core
};

/// Builds the configured policy; params.enabled must be true. Aborts (with
/// a message) on a kPowerCap request without a positive node_power_cap —
/// the friendly validation lives in measure_collective / Campaign.
std::unique_ptr<Governor> make_governor(const GovernorParams& params,
                                        Runtime& rt);

}  // namespace pacc::mpi

#include "mpi/runtime.hpp"

#include <cmath>
#include <cstring>
#include <utility>

#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace pacc::mpi {

std::string to_string(ProgressMode m) {
  switch (m) {
    case ProgressMode::kPolling:
      return "polling";
    case ProgressMode::kBlocking:
      return "blocking";
  }
  return "?";
}

// ---------------------------------------------------------------- Rank ----

Rank::Rank(Runtime& rt, int id, hw::CoreId core)
    : rt_(rt), id_(id), core_(core), mailbox_(rt.engine()) {}

hw::Machine& Rank::machine() { return rt_.machine(); }
sim::Engine& Rank::engine() { return rt_.engine(); }

sim::Task<> Rank::send(int dst, int tag, std::span<const std::byte> data) {
  PACC_EXPECTS(dst >= 0 && dst < rt_.size());
  Runtime& rt = rt_;
  // The span guard outlives the eager early co_return: the coroutine frame
  // is destroyed right there, which is exactly when the sender resumes.
  auto* tracer = engine().tracer();
  obs::PhaseSpan send_span(
      tracer, tracer != nullptr ? tracer->core_track(core_) : obs::TrackId{},
      "send", "net",
      {{"dst", dst}, {"tag", tag}, {"bytes", static_cast<Bytes>(data.size())}});
  const auto& np = rt.network().params();

  // Symmetry collapse: a destination beyond the representatives lives in a
  // merged fabric group g. By equivariance the send r → dst is the
  // g-translate of σ_g⁻¹(r) → σ_g⁻¹(dst), whose receiver IS a
  // representative — so simulate that image: deliver to σ_g⁻¹(dst),
  // labelled from σ_g⁻¹(r), with the flow forced over the top of the
  // fabric exactly like the original. Startup costs still follow the
  // LOGICAL geometry (cross-group is always inter-node).
  int deliver_dst = dst;
  int src_label = id_;
  bool via_top = false;
  if (const int physical = rt.physical_size(); dst >= physical) {
    const int group = dst / physical;
    deliver_dst = dst - group * physical;
    switch (collapse_action_) {
      case sym::CollapseAction::kXor:
        // group·physical only has bits above the representative range, so
        // the translate is the same subtraction as the cyclic case.
        src_label = id_ ^ (group * physical);
        break;
      case sym::CollapseAction::kCyclic:
        src_label = id_ - group * physical;
        if (src_label < 0) src_label += rt.size();
        break;
      case sym::CollapseAction::kNone:
        PACC_EXPECTS_MSG(false,
                         "cross-group send outside an equivariant plan");
    }
    via_top = true;
  }

  const int dst_node = rt.placement().node_of(dst);
  const int wire_dst_node = rt.placement().node_of(deliver_dst);
  const bool intra = dst_node == node();
  // Blocking mode cannot use the shared-memory channel (§II-B): intra-node
  // traffic is pushed through the HCA loopback path.
  const bool loopback =
      intra && rt.params().mode == ProgressMode::kBlocking;
  const Duration startup =
      (intra && !loopback) ? np.intra_startup : np.inter_startup;

  co_await engine().delay(startup * machine().cpu_slowdown(core_));

  if (rt.message_trace_enabled()) {
    rt.trace_.push_back(MessageTraceEntry{engine().now(), id_, dst, tag,
                                          static_cast<Bytes>(data.size()),
                                          intra});
  }

  // Endpoints running below fmax / throttled leave gaps on the wire. The
  // receiving endpoint is the physical representative (whose DVFS/throttle
  // state equals the logical destination's, by symmetry).
  const hw::CoreId dst_core = rt.placement().core_of(deliver_dst);
  const double wire_mult = np.wire_multiplier(
      machine().freq_slowdown(core_), machine().throttle_slowdown(core_),
      machine().freq_slowdown(dst_core),
      machine().throttle_slowdown(dst_core));

  Message msg =
      make_message(src_label, tag, data, rt.params().synthetic_payloads);
  const Bytes bytes = static_cast<Bytes>(data.size());

  // Message faults force the reliable path for everything that crosses HCA
  // links (inter-node traffic and the blocking-mode loopback); the
  // shared-memory channel cannot drop and keeps the fast path.
  fault::FaultInjector* inj = rt.fault_injector();
  if (inj != nullptr && inj->message_faults() && (!intra || loopback)) {
    if (bytes <= np.eager_threshold) {
      // Eager: the sender resumes now; the detached reliability task (the
      // HCA's reliability engine — the CPU start-up was already charged
      // above) owns the message until it lands or is abandoned.
      rt.spawn_detached(rt.transmit_reliably(id_, dst, std::move(msg),
                                             loopback, wire_mult, nullptr));
      co_return;
    }
    // Rendezvous: the sender is held until delivery (or abandonment), with
    // the usual blocking-mode idle/interrupt behaviour.
    auto done = std::make_shared<sim::Latch>(rt.engine());
    rt.spawn_detached(rt.transmit_reliably(id_, dst, std::move(msg), loopback,
                                           wire_mult, done));
    if (rt.params().mode == ProgressMode::kBlocking) {
      machine().set_activity(core_, hw::Activity::kIdle);
      co_await done->wait();
      machine().set_activity(core_, hw::Activity::kBusy);
      co_await engine().delay(np.interrupt_latency + np.reschedule_latency);
    } else if (Governor* gov = rt.governor()) {
      gov->wait_begin(*this, WaitSite::kAck);
      co_await done->wait();
      co_await gov->wait_end(*this, WaitSite::kAck);
    } else {
      co_await done->wait();
    }
    co_return;
  }

  if (bytes <= np.eager_threshold) {
    // Eager: the sender resumes immediately; the flow's completion hook
    // delivers the payload. Small messages dominate many collectives, so
    // this path deliberately avoids a detached coroutine frame per send.
    // The in-flight payload still holds run_active() open until delivery,
    // exactly as the old detached-task implementation did.
    Runtime* rtp = &rt;
    rt.engine().retain_active();
    rt.network().start_flow(
        node(), wire_dst_node, bytes, loopback, wire_mult,
        [rtp, deliver_dst, m = std::move(msg)]() mutable {
          rtp->deliver_to(deliver_dst, std::move(m));
          rtp->engine().release_active();
        },
        via_top);
    co_return;
  }
  // Rendezvous: the sender is held until the payload lands. In blocking
  // mode the core yields the CPU during the transfer and pays the
  // interrupt + reschedule path on completion (§II-B); in polling mode it
  // spins at full power.
  if (rt.params().mode == ProgressMode::kBlocking) {
    machine().set_activity(core_, hw::Activity::kIdle);
    co_await rt.network().transfer(node(), wire_dst_node, bytes, loopback,
                                   wire_mult, via_top);
    machine().set_activity(core_, hw::Activity::kBusy);
    co_await engine().delay(np.interrupt_latency + np.reschedule_latency);
  } else if (Governor* gov = rt.governor()) {
    // The sender is merely spinning on the wire here: its DVFS state was
    // already folded into wire_mult at flow start, so parking the core
    // mid-transfer does not slow its own payload. Deliver BEFORE the
    // restoring wait_end — only the sender pays the restore stall, never
    // the receiver.
    gov->wait_begin(*this, WaitSite::kRendezvous);
    co_await rt.network().transfer(node(), wire_dst_node, bytes, loopback,
                                   wire_mult, via_top);
    rt.deliver_to(deliver_dst, std::move(msg));
    co_await gov->wait_end(*this, WaitSite::kRendezvous);
    co_return;
  } else {
    co_await rt.network().transfer(node(), wire_dst_node, bytes, loopback,
                                   wire_mult, via_top);
  }
  rt.deliver_to(deliver_dst, std::move(msg));
}

sim::Task<Message> Rank::await_message(int src, int tag) {
  if (rt_.params().mode == ProgressMode::kPolling) {
    if (Governor* gov = rt_.governor()) {
      co_return co_await gov->recv_governed(*this, src, tag);
    }
    // The core keeps spinning (Busy) — this is exactly the power cost the
    // paper's algorithms attack.
    auto msg = co_await mailbox_.recv(src, tag);
    PACC_ASSERT(msg.has_value());
    co_return std::move(*msg);
  }
  // Blocking mode: spin briefly, then sleep until the HCA interrupt.
  auto msg = co_await mailbox_.recv_for(src, tag, rt_.params().blocking_spin);
  if (!msg) {
    machine().set_activity(core_, hw::Activity::kIdle);
    msg = co_await mailbox_.recv(src, tag);
    PACC_ASSERT(msg.has_value());
    machine().set_activity(core_, hw::Activity::kBusy);
    const auto& np = rt_.network().params();
    co_await engine().delay(np.interrupt_latency + np.reschedule_latency);
  }
  co_return std::move(*msg);
}

sim::Task<> Rank::recv(int src, int tag, std::span<std::byte> out) {
  PACC_EXPECTS(src >= 0 && src < rt_.size());
  auto* tracer = engine().tracer();
  obs::PhaseSpan recv_span(
      tracer, tracer != nullptr ? tracer->core_track(core_) : obs::TrackId{},
      "recv", "net",
      {{"src", src}, {"tag", tag}, {"bytes", static_cast<Bytes>(out.size())}});
  Message msg = co_await await_message(src, tag);
  PACC_EXPECTS_MSG(msg.size() == out.size(),
                   "received payload size does not match the posted buffer");
  // A synthetic-payload message carries only its size; the posted buffer
  // keeps whatever it held.
  if (!msg.payload.empty()) {
    std::memcpy(out.data(), msg.payload.data(), out.size());
  }
  // Receive-side CPU cost (message unpacking / matching).
  const auto& np = rt_.network().params();
  const int src_node = rt_.placement().node_of(src);
  const bool shm = src_node == node() &&
                   rt_.params().mode == ProgressMode::kPolling;
  const Duration startup = shm ? np.intra_startup : np.inter_startup;
  co_await engine().delay(startup * machine().cpu_slowdown(core_));
}

sim::Task<> Rank::sendrecv(int dst, int send_tag,
                           std::span<const std::byte> data, int src,
                           int recv_tag, std::span<std::byte> out) {
  co_await send(dst, send_tag, data);
  co_await recv(src, recv_tag, out);
}

namespace {

sim::Task<> isend_body(Rank& self, int dst, int tag,
                       std::vector<std::byte> payload,
                       std::shared_ptr<sim::Latch> latch) {
  co_await self.send(dst, tag, payload);
  latch->fire();
}

sim::Task<> irecv_body(Rank& self, int src, int tag, std::span<std::byte> out,
                       std::shared_ptr<sim::Latch> latch) {
  co_await self.recv(src, tag, out);
  latch->fire();
}

sim::Task<> isend_span_body(Rank& self, int dst, int tag,
                            std::span<const std::byte> data,
                            std::shared_ptr<sim::Latch> latch) {
  co_await self.send(dst, tag, data);
  latch->fire();
}

}  // namespace

Rank::Request Rank::isend(int dst, int tag, std::span<const std::byte> data) {
  auto latch = std::make_shared<sim::Latch>(engine());
  if (rt_.params().synthetic_payloads) {
    // send() reads only the span's extent in this mode, so the defensive
    // copy of the contents buys nothing.
    rt_.spawn_detached(isend_span_body(*this, dst, tag, data, latch));
  } else {
    rt_.spawn_detached(isend_body(
        *this, dst, tag, std::vector<std::byte>(data.begin(), data.end()),
        latch));
  }
  return Request(std::move(latch));
}

Rank::Request Rank::irecv(int src, int tag, std::span<std::byte> out) {
  auto latch = std::make_shared<sim::Latch>(engine());
  rt_.spawn_detached(irecv_body(*this, src, tag, out, latch));
  return Request(std::move(latch));
}

sim::Task<> Rank::waitall(std::span<Request> requests) {
  // One outer bracket, not one per request: the irecv bodies' own governed
  // receives nest inside it and the rank is restored once, at the end.
  Governor* gov = rt_.governor();
  if (gov != nullptr) gov->wait_begin(*this, WaitSite::kWaitall);
  for (auto& request : requests) {
    co_await request.wait();
  }
  if (gov != nullptr) co_await gov->wait_end(*this, WaitSite::kWaitall);
}

sim::Task<> Rank::shm_publish(int tag, std::span<const std::byte> data,
                              std::span<const int> readers) {
  PACC_EXPECTS_MSG(rt_.params().mode == ProgressMode::kPolling,
                   "blocking mode has no shared-memory channel (§II-B)");
  const auto& np = rt_.network().params();
  co_await engine().delay(np.intra_startup * machine().cpu_slowdown(core_));
  // One pass of the payload into the shared region.
  const double mult = np.wire_multiplier(
      machine().freq_slowdown(core_), machine().throttle_slowdown(core_), 1.0,
      1.0);
  co_await rt_.network().transfer(node(), node(), static_cast<Bytes>(data.size()),
                                  /*force_loopback=*/false, mult);
  // Readers copy the region themselves (shm_read); handing them the payload
  // costs nothing extra here.
  for (const int reader : readers) {
    PACC_EXPECTS_MSG(rt_.placement().node_of(reader) == node(),
                     "shm readers must share the writer's node");
    rt_.deliver_to(reader,
                   make_message(id_, tag, data, rt_.params().synthetic_payloads));
  }
}

sim::Task<> Rank::shm_read(int writer, int tag, std::span<std::byte> out) {
  Message msg = co_await await_message(writer, tag);
  PACC_EXPECTS(msg.size() == out.size());
  const auto& np = rt_.network().params();
  co_await engine().delay(np.intra_startup * machine().cpu_slowdown(core_));
  // Copy out of the shared region, concurrently with the other readers.
  const double mult = np.wire_multiplier(
      machine().freq_slowdown(core_), machine().throttle_slowdown(core_), 1.0,
      1.0);
  co_await rt_.network().transfer(node(), node(), static_cast<Bytes>(out.size()),
                                  /*force_loopback=*/false, mult);
  if (!msg.payload.empty()) {
    std::memcpy(out.data(), msg.payload.data(), out.size());
  }
}

sim::Task<> Rank::compute(Duration work_at_fmax) {
  PACC_EXPECTS(work_at_fmax.ns() >= 0);
  co_await engine().delay(work_at_fmax * machine().cpu_slowdown(core_));
}

sim::Task<> Rank::dvfs(Frequency f) {
  const bool applied = co_await machine().dvfs_transition(core_, f);
  // Scheme-driven frequency choices floor any governed restore (a governed
  // wait inside a §V collective must not undo enter_low_power).
  if (applied && rt_.governor_ != nullptr) {
    rt_.governor_->note_scheme_dvfs(core_, f);
  }
}

sim::Task<> Rank::throttle(int tstate) {
  co_await machine().throttle_transition(core_, tstate);
}

// ------------------------------------------------------------- Runtime ----

Runtime::Runtime(sim::Engine& engine, hw::Machine& machine,
                 net::FlowNetwork& network, hw::RankPlacement placement,
                 RuntimeParams params)
    : engine_(engine),
      machine_(machine),
      network_(network),
      placement_(std::move(placement)),
      params_(params) {
  PACC_EXPECTS(placement_.ranks() >= 1);
  PACC_EXPECTS(params_.collapse_multiplicity >= 1);
  PACC_EXPECTS_MSG(placement_.ranks() % params_.collapse_multiplicity == 0,
                   "collapse multiplicity must divide the rank count");
  // Cores without a pinned rank sit idle (C-state) instead of polling.
  const auto& shape = machine_.shape();
  for (int c = 0; c < shape.total_cores(); ++c) {
    machine_.set_activity(hw::core_from_linear(shape, c),
                          hw::Activity::kIdle);
  }
  // Only the representatives are instantiated; on a 1:1 runtime that is
  // every rank. The machine (quotient when collapsed) must hold them all.
  const int physical = placement_.ranks() / params_.collapse_multiplicity;
  PACC_EXPECTS_MSG(placement_.node_of(physical - 1) < shape.nodes,
                   "representative ranks must fit the machine's nodes");
  ranks_.reserve(static_cast<std::size_t>(physical));
  for (int r = 0; r < physical; ++r) {
    const auto core = placement_.core_of(r);
    machine_.set_activity(core, hw::Activity::kBusy);
    ranks_.push_back(std::make_unique<Rank>(*this, r, core));
  }
  if (params_.governor.enabled) {
    // Blocking-mode waits sleep at idle power, which the §VI-B model makes
    // frequency-independent — a governor would run silently with nothing to
    // save, so refuse the combination instead (ISSUE 7 satellite).
    PACC_EXPECTS_MSG(params_.mode == ProgressMode::kPolling,
                     "power governors require the polling progress mode: "
                     "blocking waits already sleep at idle power");
    governor_ = make_governor(params_.governor, *this);
  }
}

Rank& Runtime::rank(int global_rank) {
  PACC_EXPECTS(global_rank >= 0 && global_rank < physical_size());
  return *ranks_[static_cast<std::size_t>(global_rank)];
}

Comm& Runtime::world() {
  if (world_ == nullptr) {
    std::vector<int> all(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) all[static_cast<std::size_t>(r)] = r;
    world_ = &create_comm(std::move(all));
  }
  return *world_;
}

Comm& Runtime::create_comm(std::vector<int> global_ranks) {
  const int context_id = static_cast<int>(comms_.size());
  comms_.push_back(
      std::make_unique<Comm>(*this, context_id, std::move(global_ranks)));
  return *comms_.back();
}

Comm& Runtime::intern_comm(const std::vector<int>& global_ranks) {
  std::string key;
  key.reserve(global_ranks.size() * 4);
  for (const int g : global_ranks) {
    key += std::to_string(g);
    key += ',';
  }
  if (const auto it = interned_comms_.find(key);
      it != interned_comms_.end()) {
    return *it->second;
  }
  Comm& created = create_comm(global_ranks);
  interned_comms_.emplace(std::move(key), &created);
  return created;
}

void Runtime::deliver_to(int dst, Message msg) {
  ++deliveries_;
  rank(dst).mailbox().deliver(std::move(msg));
}

void Runtime::report_unreachable(int src, int dst, int attempts) {
  if (!unreachable_) {
    unreachable_ = true;
    unreachable_detail_ = "rank " + std::to_string(dst) +
                          " unreachable from rank " + std::to_string(src) +
                          " after " + std::to_string(attempts) + " attempts";
  }
  if (auto* tr = engine_.tracer()) {
    tr->instant(tr->core_track(placement_.core_of(src)), "unreachable",
                "fault", {{"src", src}, {"dst", dst}});
  }
  engine_.request_stop();
}

sim::Task<> Runtime::transmit_reliably(int src, int dst, Message msg,
                                       bool loopback, double wire_mult,
                                       std::shared_ptr<sim::Latch> done) {
  fault::FaultInjector& inj = *injector_;
  const fault::FaultSpec& spec = inj.spec();
  const int src_node = placement_.node_of(src);
  const int dst_node = placement_.node_of(dst);
  const Bytes bytes = static_cast<Bytes>(msg.size());
  auto* tracer = engine_.tracer();
  int track_tid = -1;

  for (int attempt = 0;; ++attempt) {
    const auto draw = inj.next_message_draw(src, dst);
    // A dropped message still occupies the wire for its full transfer time
    // — the HCA only learns of the loss by ack timeout. A transfer across
    // a link that is (or goes) down fails outright.
    const bool wire_ok = co_await network_.transfer(src_node, dst_node, bytes,
                                                    loopback, wire_mult);
    if (wire_ok && !draw.drop) {
      if (draw.extra_delay.ns() > 0) {
        co_await engine_.delay(draw.extra_delay);
      }
      deliver_to(dst, std::move(msg));
      if (done != nullptr) done->fire();
      co_return;
    }
    if (attempt >= spec.retry_budget) {
      ++inj.stats().messages_abandoned;
      report_unreachable(src, dst, attempt + 1);
      // Release a rendezvousing sender anyway: the run is stopping, and a
      // sender stuck on the latch would read as an extra failure.
      if (done != nullptr) done->fire();
      co_return;
    }
    // IB-RC-style recovery: wait out the ack timeout with exponential
    // backoff, then retransmit. Each reliable transmission gets its own
    // trace track — concurrent retries would otherwise interleave spans on
    // one track and break the per-track stack discipline.
    ++inj.stats().retransmits;
    const TimePoint backoff_begin = engine_.now();
    co_await engine_.delay(spec.ack_timeout *
                           std::pow(spec.backoff_factor, attempt));
    if (tracer != nullptr) {
      if (track_tid < 0) track_tid = inj.next_transmission_track();
      tracer->complete_span(
          obs::TrackId{fault::FaultInjector::kRetryTrackPid, track_tid},
          "retransmit", "fault", backoff_begin,
          {{"src", src}, {"dst", dst}, {"attempt", attempt + 1}});
    }
  }
}

void Runtime::launch(std::function<sim::Task<>(Rank&)> body) {
  bodies_.push_back(std::move(body));
  const auto& stable = bodies_.back();
  for (auto& r : ranks_) {
    engine_.spawn(stable(*r));
  }
}

}  // namespace pacc::mpi

// Communicators with the node/socket structure the paper's algorithms need.
//
// A Comm is an ordered group of global ranks. It precomputes the two-level
// structure MVAPICH2's multi-core aware collectives use (Fig 1): which comm
// ranks share a node, the per-node leader (lowest comm rank on the node),
// and — for the power-aware Alltoall — the per-socket process groups A and B
// (§V-A). Sub-communicators (per-node "shared-memory" comms and the
// node-leader comm) are created lazily and cached.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hw/topology.hpp"
#include "sim/sync.hpp"

namespace pacc::mpi {

class Runtime;

class Comm {
 public:
  /// Built by Runtime::create_comm / Runtime::world. `context_id` isolates
  /// this comm's collective tags from every other comm's.
  Comm(Runtime& rt, int context_id, std::vector<int> global_ranks);

  int context_id() const { return context_id_; }
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  Runtime& runtime() { return rt_; }
  const Runtime& runtime() const { return rt_; }

  int size() const { return static_cast<int>(members_.size()); }
  int global_rank(int comm_rank) const;
  /// Comm rank of a global rank, or -1 if it is not a member.
  int comm_rank_of(int global_rank) const;

  // --- node / socket structure ---
  int node_of(int comm_rank) const;
  int socket_of(int comm_rank) const;
  /// Distinct nodes that host members, ascending.
  const std::vector<int>& nodes() const { return nodes_; }
  /// Position of `node` within nodes().
  int node_index(int node) const;
  /// Comm ranks on `node`, ascending.
  const std::vector<int>& members_on_node(int node) const;
  /// Comm ranks on (node, socket), ascending — process group "A" or "B".
  const std::vector<int>& socket_group(int node, int socket) const;
  /// Lowest comm rank on `node` (the node-leader in Fig 1).
  int leader_of(int node) const;
  bool is_leader(int comm_rank) const;

  // --- rack structure (topology-aware extension, §VIII) ---
  /// Distinct racks hosting members, ascending (single entry when the
  /// cluster has no rack layer).
  const std::vector<int>& racks() const { return racks_; }
  int rack_of(int comm_rank) const;
  /// Comm ranks in `rack`, ascending.
  const std::vector<int>& members_on_rack(int rack) const;
  /// Lowest comm rank in `rack`.
  int rack_leader_of(int rack) const;
  bool is_rack_leader(int comm_rank) const;
  /// Communicator of all rack leaders, ordered by rack.
  Comm& rack_leader_comm();
  /// True when every node hosts the same number of members.
  bool uniform_ppn() const { return uniform_ppn_; }
  int ranks_per_node() const;

  // --- sub-communicators (lazily created, cached, owned by Runtime) ---
  /// Communicator of all node leaders, ordered by node.
  Comm& leader_comm();
  /// Communicator of this comm's members on one node.
  Comm& node_comm(int node);

  // --- synchronisation / tagging ---
  /// Cyclic barrier across the members on `node`.
  sim::Barrier& node_barrier(int node);

  /// Returns the tag for this member's next collective call on this comm.
  /// All members make matched calls, so matched calls get equal tags.
  int begin_collective(int comm_rank);

  /// Sequence number the member's NEXT begin_collective will use. Matched
  /// calls see the same value on every member — the fault layer keys its
  /// collective-consistent degradation draw on (context_id, this).
  int next_call_seq(int comm_rank) const {
    return call_count_[static_cast<std::size_t>(comm_rank)];
  }

  /// Hash of everything a communication schedule can depend on: context
  /// id, ordered membership, each member's node and socket, and the
  /// machine shape. Equal configurations in different Runtimes produce
  /// equal fingerprints — the collective plan cache keys on this so one
  /// cache can serve every cell of a sweep. Computed once, lazily.
  std::uint64_t structure_fingerprint() const;

 private:
  Runtime& rt_;
  int context_id_;
  std::vector<int> members_;                   ///< global ranks by comm rank
  std::unordered_map<int, int> inverse_;       ///< global rank -> comm rank
  std::vector<int> nodes_;
  std::unordered_map<int, int> node_index_;
  std::unordered_map<int, std::vector<int>> by_node_;
  // key: node * sockets_per_node + socket
  std::unordered_map<int, std::vector<int>> by_socket_;
  std::vector<int> racks_;
  std::unordered_map<int, std::vector<int>> by_rack_;
  Comm* rack_leader_comm_ = nullptr;
  std::unordered_map<int, std::unique_ptr<sim::Barrier>> barriers_;
  std::vector<int> call_count_;                ///< per comm rank
  bool uniform_ppn_ = true;
  Comm* leader_comm_ = nullptr;
  std::unordered_map<int, Comm*> node_comms_;
  mutable std::uint64_t fingerprint_ = 0;  ///< 0 = not yet computed
};

}  // namespace pacc::mpi

// Per-rank message queue with MPI-style (source, tag) matching.
//
// Matching is FIFO per (source, tag), which preserves MPI's non-overtaking
// guarantee. A receive posted before the message arrives is completed
// directly by deliver(); an optional timeout supports the blocking
// progression mode's spin-then-sleep behaviour.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <vector>

#include "mpi/message.hpp"
#include "sim/engine.hpp"
#include "util/expect.hpp"

namespace pacc::mpi {

class Mailbox {
 public:
  explicit Mailbox(sim::Engine& engine) : engine_(engine) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Hands a message to this rank: completes a matching posted receive, or
  /// queues it as unexpected.
  void deliver(Message msg);

  /// Non-blocking take of the oldest matching unexpected message.
  std::optional<Message> try_take(int src, int tag);

  std::size_t unexpected_count() const { return unexpected_.size(); }
  std::size_t posted_count() const { return posted_.size(); }

  /// Awaitable receive. With timeout == Duration::zero() it waits forever
  /// and await_resume() always yields a message; with a positive timeout it
  /// yields std::nullopt if nothing matched in time.
  class RecvAwaiter {
   public:
    RecvAwaiter(Mailbox& box, int src, int tag, Duration timeout)
        : box_(box), src_(src), tag_(tag), timeout_(timeout) {}

    bool await_ready() {
      if (auto m = box_.try_take(src_, tag_)) {
        msg_ = std::move(*m);
        got_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h);
    std::optional<Message> await_resume() {
      if (!got_) return std::nullopt;
      return std::move(msg_);
    }

   private:
    friend class Mailbox;
    Mailbox& box_;
    int src_;
    int tag_;
    Duration timeout_;
    Message msg_;
    bool got_ = false;
    std::coroutine_handle<> handle_;
    sim::EventId timer_ = 0;
  };

  /// Waits (without timeout) for a message matching (src, tag).
  RecvAwaiter recv(int src, int tag) {
    return RecvAwaiter{*this, src, tag, Duration::zero()};
  }

  /// Waits up to `timeout`; yields std::nullopt on expiry.
  RecvAwaiter recv_for(int src, int tag, Duration timeout) {
    PACC_EXPECTS(timeout.ns() > 0);
    return RecvAwaiter{*this, src, tag, timeout};
  }

 private:
  void on_timeout(RecvAwaiter* awaiter);

  sim::Engine& engine_;
  std::deque<Message> unexpected_;
  std::vector<RecvAwaiter*> posted_;
};

}  // namespace pacc::mpi

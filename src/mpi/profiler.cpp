#include "mpi/profiler.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/expect.hpp"

namespace pacc::mpi {

void Profiler::record(std::string_view op, Bytes bytes, Duration elapsed) {
  PACC_EXPECTS(bytes >= 0 && elapsed.ns() >= 0);
  auto it = stats_.find(op);
  if (it == stats_.end()) {
    it = stats_.emplace(std::string(op), OpStats{}).first;
  }
  OpStats& s = it->second;
  ++s.calls;
  s.bytes += static_cast<std::uint64_t>(bytes);
  s.total_time += elapsed;
  s.max_time = std::max(s.max_time, elapsed);
}

void Profiler::record(std::string_view op, Bytes bytes, Duration elapsed,
                      const hw::CoreId& core) {
  record(op, bytes, elapsed);
  if (trace_ != nullptr && trace_->enabled()) {
    const TimePoint begin{trace_->engine().now().ns() - elapsed.ns()};
    trace_->complete_span(trace_->core_track(core), op, "coll", begin,
                          {{"bytes", bytes}});
  }
}

Duration Profiler::total_time() const {
  Duration total;
  for (const auto& [name, s] : stats_) total += s.total_time;
  return total;
}

}  // namespace pacc::mpi

#include "mpi/governor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "mpi/runtime.hpp"
#include "obs/trace.hpp"
#include "sim/sync.hpp"
#include "util/expect.hpp"

namespace pacc::mpi {

std::string to_string(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kReactive:
      return "reactive";
    case GovernorKind::kSlack:
      return "slack";
    case GovernorKind::kPowerCap:
      return "powercap";
  }
  return "?";
}

std::optional<GovernorKind> parse_governor_kind(std::string_view name) {
  if (name == "reactive") return GovernorKind::kReactive;
  if (name == "slack") return GovernorKind::kSlack;
  if (name == "powercap" || name == "power-cap") return GovernorKind::kPowerCap;
  return std::nullopt;
}

// ------------------------------------------------------------ Governor ----

Governor::Governor(Runtime& rt) : rt_(rt) {
  // No scheme has spoken yet: the floor starts at fmax (no clamp).
  scheme_target_.assign(
      static_cast<std::size_t>(rt.machine().shape().total_cores()),
      rt.machine().params().fmax);
}

void Governor::note_scheme_dvfs(const hw::CoreId& core, Frequency target) {
  scheme_target_[static_cast<std::size_t>(
      hw::linear_core(rt_.machine().shape(), core))] = target;
}

Frequency Governor::restore_target(const hw::CoreId& core, Frequency prior) {
  const Frequency floor = scheme_target_[static_cast<std::size_t>(
      hw::linear_core(rt_.machine().shape(), core))];
  if (floor < prior) {
    ++stats_.scheme_clamps;
    return floor;
  }
  return prior;
}

void Governor::mark_park(Rank& self, bool* phase_open) {
  auto* tr = rt_.engine().tracer();
  if (tr == nullptr || !tr->enabled()) return;
  tr->instant(tr->core_track(self.core()), "gov-park", "power",
              {{"downclocks", static_cast<std::int64_t>(stats_.downclocks)}});
  if (self.id() == 0) {
    tr->phase_begin("governor-park");
    *phase_open = true;
  }
}

void Governor::mark_restore(Rank& self, bool* phase_open) {
  auto* tr = rt_.engine().tracer();
  if (tr == nullptr || !tr->enabled()) return;
  tr->instant(tr->core_track(self.core()), "gov-restore", "power",
              {{"restores", static_cast<std::int64_t>(stats_.restores)}});
  if (*phase_open) {
    tr->phase_end();
    *phase_open = false;
  }
}

sim::Task<Message> Governor::recv_governed(Rank& self, int src, int tag) {
  wait_begin(self, WaitSite::kRecv);
  auto msg = co_await self.mailbox().recv(src, tag);
  PACC_ASSERT(msg.has_value());
  co_await wait_end(self, WaitSite::kRecv);
  co_return std::move(*msg);
}

void Governor::wait_begin(Rank&, WaitSite) {}

sim::Task<> Governor::wait_end(Rank&, WaitSite) { co_return; }

// ---------------------------------------------------- ReactiveGovernor ----

namespace {

/// §III prior work: the MPI library watches its own receives and downclocks
/// the core once a wait exceeds the threshold, restoring on arrival. Pays
/// 2·O_dvfs per long wait, never touches T-states, and engages only at
/// mailbox receives (the other wait sites are no-ops) — the event sequence
/// is byte-identical to the historical hardwired implementation.
class ReactiveGovernor final : public Governor {
 public:
  ReactiveGovernor(Runtime& rt, GovernorParams params)
      : Governor(rt), params_(params) {}

  GovernorKind kind() const override { return GovernorKind::kReactive; }

  sim::Task<Message> recv_governed(Rank& self, int src, int tag) override {
    auto quick =
        co_await self.mailbox().recv_for(src, tag, params_.wait_threshold);
    if (quick) {
      ++stats_.short_waits;
      co_return std::move(*quick);
    }
    ++stats_.armed_waits;
    const Frequency prior = self.machine().frequency(self.core());
    const Frequency fmin = self.machine().params().fmin;
    bool phase_open = false;
    if (prior > fmin) {
      if (co_await self.machine().dvfs_transition(self.core(), fmin)) {
        ++stats_.downclocks;
        mark_park(self, &phase_open);
      } else {
        ++stats_.park_failures;
      }
    }
    auto msg = co_await self.mailbox().recv(src, tag);
    PACC_ASSERT(msg.has_value());
    if (prior > fmin) {
      // The historical governor attempted the restore whenever it had
      // attempted the downclock; keep that event sequence and classify the
      // outcome instead of assuming a completed pair.
      const Frequency target = restore_target(self.core(), prior);
      if (co_await self.machine().dvfs_transition(self.core(), target)) {
        ++stats_.restores;
      } else {
        ++stats_.restore_failures;
      }
      mark_restore(self, &phase_open);
    }
    co_return std::move(*msg);
  }

 private:
  GovernorParams params_;
};

// ------------------------------------------------------- SlackGovernor ----

/// COUNTDOWN-style timer hysteresis, engaged at every wait site. Arming a
/// wait schedules a cancellable deadline event; a wait that ends first
/// cancels it at zero simulated cost. When the deadline fires, a detached
/// task performs the downclock — its O_dvfs hides inside the wait — and the
/// wait's end restores the prior frequency (clamped to any scheme floor),
/// paying the only rank-visible O_dvfs. Concurrent waits of one rank
/// (waitall over irecvs) nest via a depth counter: the first bracket arms,
/// the last one restores.
class SlackGovernor final : public Governor {
 public:
  SlackGovernor(Runtime& rt, GovernorParams params)
      : Governor(rt), params_(params),
        waits_(static_cast<std::size_t>(rt.physical_size())) {}

  GovernorKind kind() const override { return GovernorKind::kSlack; }

  void wait_begin(Rank& self, WaitSite) override {
    RankWait& w = wait_of(self);
    if (++w.depth > 1) return;  // an outer bracket already governs
    const Frequency prior = self.machine().frequency(self.core());
    if (!(prior > self.machine().params().fmin)) return;  // nothing to save
    w.prior = prior;
    ++stats_.armed_waits;
    Rank* rank = &self;
    w.timer = rt_.engine().schedule(params_.slack_threshold,
                                    [this, rank] { deadline(*rank); });
  }

  sim::Task<> wait_end(Rank& self, WaitSite) override {
    RankWait& w = wait_of(self);
    PACC_ASSERT(w.depth > 0);
    if (--w.depth > 0) co_return;  // inner bracket of a nested wait
    if (w.timer != 0) {
      // Short wait: the deadline never fired — cancel it, zero cost.
      rt_.engine().cancel(w.timer);
      w.timer = 0;
      ++stats_.short_waits;
      co_return;
    }
    if (w.parking == nullptr) co_return;  // never armed (core was at fmin)
    // The downclock may still be inside its O_dvfs window (the message
    // arrived mid-transition); wait it out before deciding the restore.
    const auto parking = w.parking;
    if (!parking->fired()) co_await parking->wait();
    w.parking = nullptr;
    const bool applied = w.park_applied;
    w.park_applied = false;
    if (!applied) co_return;  // park was rejected: nothing to restore
    const Frequency target = restore_target(self.core(), w.prior);
    if (target == self.machine().frequency(self.core())) {
      // A scheme parked the core while we held it: restoring to the same
      // frequency would only waste O_dvfs. restore_target counted the
      // clamp; the scheme's own exit raises the core later.
      mark_restore(self, &w.phase_open);
      co_return;
    }
    if (co_await self.machine().dvfs_transition(self.core(), target)) {
      ++stats_.restores;
    } else {
      ++stats_.restore_failures;
    }
    mark_restore(self, &w.phase_open);
  }

 private:
  struct RankWait {
    int depth = 0;
    sim::EventId timer = 0;  ///< armed deadline; 0 when fired or cancelled
    std::shared_ptr<sim::Latch> parking;  ///< down transition in flight/done
    bool park_applied = false;
    bool phase_open = false;
    Frequency prior;
  };

  RankWait& wait_of(Rank& self) {
    return waits_[static_cast<std::size_t>(self.id())];
  }

  void deadline(Rank& self) {
    RankWait& w = wait_of(self);
    w.timer = 0;
    auto done = std::make_shared<sim::Latch>(rt_.engine());
    w.parking = done;
    rt_.spawn_detached(park(self, std::move(done)));
  }

  sim::Task<> park(Rank& self, std::shared_ptr<sim::Latch> done) {
    RankWait& w = wait_of(self);
    const bool applied = co_await self.machine().dvfs_transition(
        self.core(), self.machine().params().fmin);
    w.park_applied = applied;
    if (applied) {
      ++stats_.downclocks;
      mark_park(self, &w.phase_open);
    } else {
      ++stats_.park_failures;
    }
    done->fire();
  }

  GovernorParams params_;
  std::vector<RankWait> waits_;
};

// ---------------------------------------------------- PowerCapGovernor ----

/// Medhat-style per-node power capping. Each node's watt budget is split
/// between its rank cores by solving the §VI-B model for the highest
/// frequency that fits; with `redistribute`, every wait boundary drops the
/// waiting cores to fmin and hands their freed dynamic headroom to the
/// still-busy cores (clamped to fmax). Frequency moves are PCU-driven
/// (instantaneous, no O_dvfs stall), modelling the hardware power
/// controller. Requires PowerScheme::kNone — the cap owns the frequency
/// plane (coll::governor_supported enforces this for measured runs).
class PowerCapGovernor final : public Governor {
 public:
  PowerCapGovernor(Runtime& rt, GovernorParams params)
      : Governor(rt), params_(params),
        waiting_(static_cast<std::size_t>(rt.physical_size()), 0) {
    PACC_EXPECTS_MSG(params_.node_power_cap > 0.0,
                     "powercap governor requires node_power_cap > 0");
    const auto& shape = rt.machine().shape();
    node_ranks_.resize(static_cast<std::size_t>(shape.nodes));
    for (int r = 0; r < rt.physical_size(); ++r) {
      const int node = rt.placement().node_of(r);
      node_ranks_[static_cast<std::size_t>(node)].push_back(r);
      rt.machine().set_node_power_cap(node, params_.node_power_cap);
    }
    for (int n = 0; n < shape.nodes; ++n) reallocate(n);
  }

  GovernorKind kind() const override { return GovernorKind::kPowerCap; }

  void wait_begin(Rank& self, WaitSite) override {
    int& nested = waiting_[static_cast<std::size_t>(self.id())];
    if (++nested > 1 || !params_.redistribute) return;
    reallocate(self.node());
  }

  sim::Task<> wait_end(Rank& self, WaitSite) override {
    int& nested = waiting_[static_cast<std::size_t>(self.id())];
    PACC_ASSERT(nested > 0);
    if (--nested > 0 || !params_.redistribute) co_return;
    reallocate(self.node());
    co_return;
  }

 private:
  /// Re-solves one node's allocation: waiting cores at fmin, busy cores at
  /// the highest uniform frequency the remaining dynamic budget affords.
  /// Without redistribution every core gets the all-busy solution, fixed at
  /// construction. Deterministic: runs synchronously inside the engine.
  void reallocate(int node) {
    hw::Machine& m = rt_.machine();
    const auto& ranks = node_ranks_[static_cast<std::size_t>(node)];
    if (ranks.empty()) return;
    int busy = 0;
    for (const int r : ranks) {
      if (waiting_[static_cast<std::size_t>(r)] == 0) ++busy;
    }
    Watts dynamic_budget = m.node_dynamic_budget(node);
    if (params_.redistribute && busy < static_cast<int>(ranks.size())) {
      const int parked = static_cast<int>(ranks.size()) - busy;
      dynamic_budget -= m.core_dynamic_power(m.params().fmin) * parked;
    }
    const Frequency f_busy = m.frequency_for_dynamic_budget(
        dynamic_budget, std::max(busy, 1));
    bool changed = false;
    for (const int r : ranks) {
      const bool parked = params_.redistribute &&
                          waiting_[static_cast<std::size_t>(r)] > 0;
      const Frequency target = parked ? m.params().fmin : f_busy;
      const hw::CoreId core = rt_.placement().core_of(r);
      const Frequency current = m.frequency(core);
      if (target == current) continue;
      if (target < current) ++stats_.downclocks; else ++stats_.restores;
      m.set_frequency(core, target);
      changed = true;
    }
    if (changed) ++stats_.cap_updates;
  }

  GovernorParams params_;
  std::vector<int> waiting_;  ///< nested-wait depth per rank
  std::vector<std::vector<int>> node_ranks_;
};

}  // namespace

std::unique_ptr<Governor> make_governor(const GovernorParams& params,
                                        Runtime& rt) {
  PACC_EXPECTS(params.enabled);
  switch (params.kind) {
    case GovernorKind::kReactive:
      return std::make_unique<ReactiveGovernor>(rt, params);
    case GovernorKind::kSlack:
      return std::make_unique<SlackGovernor>(rt, params);
    case GovernorKind::kPowerCap:
      return std::make_unique<PowerCapGovernor>(rt, params);
  }
  PACC_EXPECTS_MSG(false, "unknown governor kind");
  return nullptr;
}

}  // namespace pacc::mpi

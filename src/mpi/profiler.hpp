// Lightweight per-operation profiler (mpiP-style).
//
// The paper's methodology starts from a profile: "we have profiled the
// applications to learn about how much time processes spend in various
// collective operations" (§VII-A). The collective dispatchers report every
// call here; reports aggregate per operation across ranks.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "util/units.hpp"

namespace pacc::mpi {

struct OpStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;   ///< caller-reported payload volume
  Duration total_time;       ///< summed across ranks (rank-seconds)
  Duration max_time;         ///< slowest single call

  double mean_us() const {
    return calls == 0 ? 0.0
                      : total_time.us() / static_cast<double>(calls);
  }
};

class Profiler {
 public:
  void record(std::string_view op, Bytes bytes, Duration elapsed);

  const std::map<std::string, OpStats, std::less<>>& stats() const {
    return stats_;
  }
  bool empty() const { return stats_.empty(); }

  /// Total rank-time across all recorded operations.
  Duration total_time() const;

  void clear() { stats_.clear(); }

 private:
  std::map<std::string, OpStats, std::less<>> stats_;
};

}  // namespace pacc::mpi

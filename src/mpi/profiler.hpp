// Lightweight per-operation profiler (mpiP-style).
//
// The paper's methodology starts from a profile: "we have profiled the
// applications to learn about how much time processes spend in various
// collective operations" (§VII-A). The collective dispatchers report every
// call here; reports aggregate per operation across ranks.
//
// Lookups are heterogeneous over a transparent-hash map, so the hot
// record() path never materialises a std::string — the only allocation is
// the one-time insert of each distinct operation name. When a TraceRecorder
// sink is attached, record() also emits the matching trace span from the
// same measurement, so op stats and trace spans cannot disagree.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "hw/topology.hpp"
#include "util/units.hpp"

namespace pacc::obs {
class TraceRecorder;
}  // namespace pacc::obs

namespace pacc::mpi {

struct OpStats {
  std::uint64_t calls = 0;
  std::uint64_t bytes = 0;   ///< caller-reported payload volume
  Duration total_time;       ///< summed across ranks (rank-seconds)
  Duration max_time;         ///< slowest single call

  double mean_us() const {
    return calls == 0 ? 0.0
                      : total_time.us() / static_cast<double>(calls);
  }
};

class Profiler {
 public:
  /// Records one completed operation ending now.
  void record(std::string_view op, Bytes bytes, Duration elapsed);

  /// Same, but also emits a "coll" trace span on `core`'s track when a
  /// recorder is attached — derived from the identical (elapsed, now)
  /// measurement that feeds the stats.
  void record(std::string_view op, Bytes bytes, Duration elapsed,
              const hw::CoreId& core);

  /// Attaches the trace sink (nullptr detaches).
  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using StatsMap =
      std::unordered_map<std::string, OpStats, StringHash, std::equal_to<>>;

  const StatsMap& stats() const { return stats_; }
  bool empty() const { return stats_.empty(); }

  /// Total rank-time across all recorded operations.
  Duration total_time() const;

  void clear() { stats_.clear(); }

 private:
  StatsMap stats_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace pacc::mpi

// Message representation for the simulated MPI runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pacc::mpi {

/// Tags below this value are available to user point-to-point traffic.
/// Collective calls allocate tags at and above it, encoding the
/// communicator's context id so that concurrent collectives on different
/// communicators (e.g. a node comm and the world) can never cross-match:
///   tag = base | (context_id << kContextShift) | per-comm call sequence.
inline constexpr int kCollectiveTagBase = 1 << 30;
inline constexpr int kContextShift = 20;
inline constexpr int kMaxCollectiveCalls = 1 << kContextShift;
inline constexpr int kMaxContexts = 1 << (30 - kContextShift);

/// Builds the collective tag for call `seq` on communicator `context_id`.
constexpr int collective_tag(int context_id, int seq) {
  return kCollectiveTagBase | (context_id << kContextShift) | seq;
}

struct Message {
  int src = -1;  ///< global rank of the sender
  int tag = 0;
  std::vector<std::byte> payload;
  /// Logical payload size when the contents are elided (synthetic-payload
  /// runtimes leave `payload` empty; every timing and matching decision is
  /// driven by the size alone). Ignored whenever `payload` is non-empty.
  std::size_t bytes = 0;

  std::size_t size() const { return payload.empty() ? bytes : payload.size(); }
};

/// Copies a span into a fresh payload vector.
inline std::vector<std::byte> to_payload(std::span<const std::byte> data) {
  return {data.begin(), data.end()};
}

/// Builds a message for the wire. With `synthetic` set the contents are not
/// copied — only the size travels — which is sound exactly when no receiver
/// reads the delivered bytes (see RuntimeParams::synthetic_payloads).
inline Message make_message(int src, int tag, std::span<const std::byte> data,
                            bool synthetic) {
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.bytes = data.size();
  if (!synthetic) msg.payload.assign(data.begin(), data.end());
  return msg;
}

}  // namespace pacc::mpi

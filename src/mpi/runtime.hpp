// Simulated MPI runtime: ranks as coroutines over the machine + network.
//
// Each rank is pinned to a core (hw::RankPlacement) and owns a mailbox.
// Point-to-point transfers charge the sender's and receiver's CPU start-up
// costs — stretched by the core's current DVFS/throttle slowdown — and move
// payload bytes through the fluid network. Two progression modes match the
// paper's §II-B:
//   - polling:  a waiting core stays Busy (full power) until the message is
//               matched;
//   - blocking: the core spins briefly, then sleeps (Idle power); arrival
//               costs an HCA interrupt plus an OS reschedule, and intra-node
//               traffic falls back to network loopback instead of shared
//               memory.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/machine.hpp"
#include "hw/topology.hpp"
#include "mpi/comm.hpp"
#include "mpi/governor.hpp"
#include "mpi/mailbox.hpp"
#include "mpi/profiler.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/watchdog.hpp"
#include "sym/collapse.hpp"
#include "util/expect.hpp"

namespace pacc::fault {
class FaultInjector;
}  // namespace pacc::fault

namespace pacc::coll {
class PlanCache;
class Tuner;
}  // namespace pacc::coll

namespace pacc::mpi {

enum class ProgressMode { kPolling, kBlocking };

std::string to_string(ProgressMode m);

/// One point-to-point message, as recorded by the optional trace.
struct MessageTraceEntry {
  TimePoint time;  ///< injection time at the sender
  int src = 0;
  int dst = 0;
  int tag = 0;
  Bytes bytes = 0;
  bool intra_node = false;
};

struct RuntimeParams {
  ProgressMode mode = ProgressMode::kPolling;
  /// Blocking mode: how long a receiver spins before yielding the CPU.
  Duration blocking_spin = Duration::micros(20.0);
  /// Runtime power governor (mpi/governor.hpp). Requires polling mode:
  /// blocking waits already sleep at frequency-independent idle power, so
  /// the Runtime constructor refuses enabled + kBlocking outright.
  GovernorParams governor;
  /// Ship message sizes without their contents: sends skip the payload
  /// copy and receives leave the posted buffer untouched. Every simulated
  /// quantity (timing, energy, traces, fault draws) depends only on sizes,
  /// so measurement harnesses that never read received bytes get identical
  /// results minus GiBs of memcpy traffic. Leave off for programs that do
  /// read what they receive.
  bool synthetic_payloads = false;
  /// Rank-symmetry collapse (see src/sym/collapse.hpp). The placement
  /// still describes the FULL logical cluster, but only the first
  /// `ranks / collapse_multiplicity` ranks — the representatives, which
  /// occupy the machine's (quotient) nodes — are instantiated. A send to a
  /// logical rank beyond the representatives is relabelled through the
  /// executing plan's group action and lands on the representative of the
  /// destination's class, over the fabric links the original would have
  /// loaded. 1 = the normal 1:1 runtime.
  int collapse_multiplicity = 1;
  /// Build collective plans with the historical rank-indexed tables
  /// instead of class-compressed schedule templates (coll/plan.hpp). The
  /// two layouts execute byte-identically; the materialized one exists for
  /// the equivalence suite and costs O(ranks) memory per plan.
  bool materialized_plans = false;
  /// Quiescence-watchdog thresholds (sim/watchdog.hpp). The Runtime does
  /// not build the watchdog itself — the Simulation does, for faulted runs
  /// only — but the thresholds travel with the runtime parameters so every
  /// embedder configures them the same way.
  sim::Watchdog::Params watchdog;
};

class Runtime;

/// Execution context of one simulated MPI process.
class Rank {
 public:
  Rank(Runtime& rt, int id, hw::CoreId core);
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const { return id_; }
  const hw::CoreId& core() const { return core_; }
  int node() const { return core_.node; }
  int socket() const { return core_.socket; }

  Runtime& runtime() { return rt_; }
  Mailbox& mailbox() { return mailbox_; }
  hw::Machine& machine();
  sim::Engine& engine();

  // --- point-to-point (dst/src are global ranks) ---

  /// Sends `data` to `dst`. Small messages are eager (the sender resumes
  /// after injection); large ones hold the sender until delivery.
  sim::Task<> send(int dst, int tag, std::span<const std::byte> data);

  /// Receives a message from `src` with `tag` into `out`; the payload size
  /// must equal out.size() (collectives always know sizes).
  sim::Task<> recv(int src, int tag, std::span<std::byte> out);

  /// send() then recv() — the usual exchange step of pair-wise algorithms.
  sim::Task<> sendrecv(int dst, int send_tag, std::span<const std::byte> data,
                       int src, int recv_tag, std::span<std::byte> out);

  // --- non-blocking point-to-point ---
  //
  // MPI_Isend/Irecv-style: the operation proceeds in the background while
  // the rank keeps working; completion is awaited through the Request.
  // isend copies `data` up front (no buffer-stability requirement); the
  // irecv target buffer MUST stay alive and untouched until the request
  // completes, as in MPI.

  /// Completion handle for a non-blocking operation.
  class Request {
   public:
    Request() = default;

    bool valid() const { return latch_ != nullptr; }
    bool done() const { return valid() && latch_->fired(); }

    /// Awaitable completion (MPI_Wait).
    auto wait() {
      PACC_EXPECTS_MSG(latch_ != nullptr, "waiting on an empty Request");
      return latch_->wait();
    }

   private:
    friend class Rank;
    explicit Request(std::shared_ptr<sim::Latch> latch)
        : latch_(std::move(latch)) {}
    std::shared_ptr<sim::Latch> latch_;
  };

  /// Starts a send in the background (the payload is copied immediately).
  Request isend(int dst, int tag, std::span<const std::byte> data);

  /// Starts a receive in the background; `out` must outlive completion.
  Request irecv(int src, int tag, std::span<std::byte> out);

  /// Awaits every request (MPI_Waitall).
  sim::Task<> waitall(std::span<Request> requests);

  // --- shared-memory one-to-many handoff (polling mode only) ---
  //
  // Models MVAPICH2's intra-node broadcast over an explicitly created
  // shared-memory region (Fig 1): the writer copies its buffer in ONCE;
  // every reader then copies it out concurrently. This is much cheaper
  // than a tree of point-to-point sends, which would push the payload
  // through the memory system once per tree level.

  /// Writes `data` into the node's shared region and signals `readers`
  /// (global ranks on this node).
  sim::Task<> shm_publish(int tag, std::span<const std::byte> data,
                          std::span<const int> readers);

  /// Waits for `writer`'s publish with `tag`, then copies the payload out
  /// of the shared region into `out` (concurrent with other readers).
  sim::Task<> shm_read(int writer, int tag, std::span<std::byte> out);

  // --- local work & power control ---

  /// Burns `work_at_fmax` of CPU time, stretched by the core's current
  /// DVFS/throttle slowdown.
  sim::Task<> compute(Duration work_at_fmax);

  /// Scales this core's frequency, paying O_dvfs.
  sim::Task<> dvfs(Frequency f);

  /// Throttles at the machine's granularity (own socket on Nehalem, own
  /// core under core_level_throttling), paying O_throttle.
  sim::Task<> throttle(int tstate);

  // --- symmetry collapse ---

  /// Group action of the collective plan currently executing on this rank
  /// (kNone outside any plan walk). A collapsed runtime consults it to
  /// relabel cross-group sends; see RuntimeParams::collapse_multiplicity.
  sym::CollapseAction collapse_action() const { return collapse_action_; }

  /// RAII: stamps a plan's group action on the rank for the duration of
  /// the executor's walk. Nests safely (restores the previous action).
  class ActionScope {
   public:
    ActionScope(Rank& rank, sym::CollapseAction action)
        : rank_(rank), prev_(rank.collapse_action_) {
      rank.collapse_action_ = action;
    }
    ~ActionScope() { rank_.collapse_action_ = prev_; }
    ActionScope(const ActionScope&) = delete;
    ActionScope& operator=(const ActionScope&) = delete;

   private:
    Rank& rank_;
    sym::CollapseAction prev_;
  };

  /// The runtime's governor, for bracketing non-mailbox waits (rendezvous
  /// transfers, node barriers); null when no governor is configured.
  Governor* wait_governor();

 private:
  friend class Runtime;

  /// Waits for a matching message honouring the progression mode.
  sim::Task<Message> await_message(int src, int tag);

  Runtime& rt_;
  int id_;
  hw::CoreId core_;
  Mailbox mailbox_;
  sym::CollapseAction collapse_action_ = sym::CollapseAction::kNone;
};

class Runtime {
 public:
  Runtime(sim::Engine& engine, hw::Machine& machine, net::FlowNetwork& network,
          hw::RankPlacement placement, RuntimeParams params = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Logical cluster size: what world() spans and what send()/recv()
  /// destinations are bounded by. Equals physical_size() except on a
  /// collapsed runtime.
  int size() const { return static_cast<int>(placement_.ranks()); }
  /// Ranks actually instantiated (the representatives when collapsed).
  int physical_size() const { return static_cast<int>(ranks_.size()); }
  bool collapsed() const { return params_.collapse_multiplicity > 1; }
  int collapse_multiplicity() const { return params_.collapse_multiplicity; }
  /// A physical rank; global_rank must be below physical_size().
  Rank& rank(int global_rank);
  const hw::RankPlacement& placement() const { return placement_; }
  const RuntimeParams& params() const { return params_; }

  sim::Engine& engine() { return engine_; }
  hw::Machine& machine() { return machine_; }
  net::FlowNetwork& network() { return network_; }

  /// The communicator containing every rank.
  Comm& world();

  /// Creates (and owns) a communicator over the given global ranks.
  Comm& create_comm(std::vector<int> global_ranks);

  /// Returns the communicator for exactly these global ranks, creating it
  /// on first request. Lets every member of a collective split obtain the
  /// same Comm object (and hence the same context id / call counters).
  Comm& intern_comm(const std::vector<int>& global_ranks);

  /// Spawns `body(rank)` for every rank as a top-level task. The callable
  /// is stored in the runtime for the rest of its life: coroutine frames
  /// created from a lambda keep referencing the lambda object itself, so it
  /// must outlive every suspension point.
  void launch(std::function<sim::Task<>(Rank&)> body);

  /// Spawns an auxiliary task (e.g. an eager-send completion).
  void spawn_detached(sim::Task<> task) { engine_.spawn(std::move(task)); }

  /// Drains the event queue; reports deadlock via RunResult.
  sim::RunResult run() { return engine_.run(); }

  /// The configured governor, or null when GovernorParams::enabled is off.
  Governor* governor() { return governor_.get(); }

  /// The governor's counters (all zero when no governor is configured).
  GovernorStats governor_stats() const {
    return governor_ != nullptr ? governor_->stats() : GovernorStats{};
  }

  /// Completed downclock/upclock pairs: applied restores. Kept for the
  /// pre-refactor callers; the full split lives in governor_stats().
  std::uint64_t governor_transitions() const {
    return governor_ != nullptr ? governor_->stats().restores : 0;
  }

  /// Per-operation call/byte/time accounting, fed by the collective layer.
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

  /// Memoized collective schedules (may be shared across Runtimes — a
  /// Campaign hands every sweep cell the same cache). Null means the
  /// collective layer rebuilds its plan on every call.
  void set_plan_cache(std::shared_ptr<coll::PlanCache> cache) {
    plan_cache_ = std::move(cache);
  }
  const std::shared_ptr<coll::PlanCache>& plan_cache() const {
    return plan_cache_;
  }

  /// Tuned-decision table consulted by the collective dispatchers before
  /// their static choices (may be shared across Runtimes, like the plan
  /// cache). Null — the default — means dispatch is purely static and
  /// byte-identical to the untuned library.
  void set_tuner(std::shared_ptr<coll::Tuner> tuner) {
    tuner_ = std::move(tuner);
  }
  const std::shared_ptr<coll::Tuner>& tuner() const { return tuner_; }

  // --- fault injection / recovery ---

  /// Attaches the run's fault injector (owned by the caller; may be null).
  /// With message faults enabled, every inter-node or loopback send takes
  /// the reliable path: IB-RC-style retransmit with per-message ack
  /// timeout, exponential backoff and a bounded retry budget. Faults pin
  /// events to named entities, so a collapsed runtime refuses an injector.
  void set_fault_injector(fault::FaultInjector* injector) {
    PACC_EXPECTS_MSG(injector == nullptr || !collapsed(),
                     "fault injection breaks rank symmetry — run 1:1");
    injector_ = injector;
  }
  fault::FaultInjector* fault_injector() { return injector_; }

  /// Whether some message exhausted its retry budget; the run was stopped.
  bool unreachable() const { return unreachable_; }
  const std::string& unreachable_detail() const { return unreachable_detail_; }

  /// Messages handed to a mailbox so far — one term of the quiescence
  /// watchdog's progress probe.
  std::uint64_t deliveries() const { return deliveries_; }

  /// Starts recording every point-to-point message (off by default: a full
  /// Alltoall sweep generates hundreds of thousands of entries).
  void enable_message_trace() { trace_enabled_ = true; }
  void disable_message_trace() { trace_enabled_ = false; }
  bool message_trace_enabled() const { return trace_enabled_; }
  const std::vector<MessageTraceEntry>& message_trace() const {
    return trace_;
  }

 private:
  /// Detached reliability engine for one message: transmit, retransmit on
  /// loss with exponential backoff, deliver (after any injected delivery
  /// delay), fire `done` if the sender rendezvouses. Declares the
  /// destination unreachable — and stops the engine — when the retry
  /// budget runs out.
  sim::Task<> transmit_reliably(int src, int dst, Message msg, bool loopback,
                                double wire_mult,
                                std::shared_ptr<sim::Latch> done);

  void deliver_to(int dst, Message msg);
  void report_unreachable(int src, int dst, int attempts);

  sim::Engine& engine_;
  hw::Machine& machine_;
  net::FlowNetwork& network_;
  hw::RankPlacement placement_;
  RuntimeParams params_;
  fault::FaultInjector* injector_ = nullptr;
  bool unreachable_ = false;
  std::string unreachable_detail_;
  std::uint64_t deliveries_ = 0;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<std::unique_ptr<Comm>> comms_;
  std::unordered_map<std::string, Comm*> interned_comms_;
  std::deque<std::function<sim::Task<>(Rank&)>> bodies_;  ///< stable storage: frames reference the lambdas
  std::unique_ptr<Governor> governor_;
  Profiler profiler_;
  std::shared_ptr<coll::PlanCache> plan_cache_;
  std::shared_ptr<coll::Tuner> tuner_;
  bool trace_enabled_ = false;
  std::vector<MessageTraceEntry> trace_;
  Comm* world_ = nullptr;

  friend class Rank;
};

inline Governor* Rank::wait_governor() { return rt_.governor(); }

}  // namespace pacc::mpi

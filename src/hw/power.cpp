#include "hw/power.hpp"

#include <cmath>

namespace pacc::hw {

Watts PowerParams::core_power(Frequency f, Frequency fmax, int tstate,
                              Activity activity) const {
  PACC_EXPECTS(f.hz() > 0.0 && fmax.hz() > 0.0);
  PACC_EXPECTS(f.hz() <= fmax.hz());
  if (activity == Activity::kIdle) return core_idle;
  const double ratio = f.hz() / fmax.hz();
  const double scale = std::pow(ratio, freq_exponent);
  return core_idle +
         ThrottleLevel::activity_factor(tstate) * core_dynamic_fmax * scale;
}

}  // namespace pacc::hw

#include "hw/machine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace pacc::hw {

Machine::Machine(sim::Engine& engine, MachineParams params)
    : engine_(engine), params_(std::move(params)) {
  PACC_EXPECTS(params_.shape.valid());
  PACC_EXPECTS(params_.fmin.hz() > 0.0 &&
               params_.fmin.hz() <= params_.fmax.hz());

  node_slowdown_.assign(static_cast<std::size_t>(params_.shape.nodes), 1.0);
  node_power_cap_.assign(static_cast<std::size_t>(params_.shape.nodes), 0.0);
  cores_.resize(static_cast<std::size_t>(params_.shape.total_cores()));
  static_power_ =
      params_.power.node_base * params_.shape.nodes +
      params_.power.socket_uncore * params_.shape.sockets_total();
  system_power_ = static_power_;
  for (auto& cs : cores_) {
    cs.freq = params_.fmax;
    refresh_power(cs);
  }
  created_ = engine_.now();
  last_flush_ = created_;
}

Machine::CoreState& Machine::state(const CoreId& core) {
  return cores_[static_cast<std::size_t>(linear_core(params_.shape, core))];
}

const Machine::CoreState& Machine::state(const CoreId& core) const {
  return cores_[static_cast<std::size_t>(linear_core(params_.shape, core))];
}

void Machine::flush() {
  const TimePoint now = engine_.now();
  const Duration dt = now - last_flush_;
  if (dt.ns() <= 0) return;
  const double secs = dt.sec();
  energy_ += system_power_ * secs;
  for (auto& cs : cores_) {
    cs.stats.energy += cs.power * secs;
    if (cs.activity == Activity::kBusy) {
      cs.stats.busy_time += dt;
    } else {
      cs.stats.idle_time += dt;
    }
    if (cs.tstate > ThrottleLevel::kMin) cs.stats.throttled_time += dt;
  }
  last_flush_ = now;
}

void Machine::refresh_power(CoreState& cs) {
  system_power_ -= cs.power;
  cs.power = params_.power.core_power(cs.freq, params_.fmax, cs.tstate,
                                      cs.activity);
  system_power_ += cs.power;
}

void Machine::set_frequency(const CoreId& core, Frequency f) {
  PACC_EXPECTS(f >= params_.fmin && f <= params_.fmax);
  flush();
  auto& cs = state(core);
  cs.freq = f;
  refresh_power(cs);
  if (auto* tr = engine_.tracer()) {
    tr->counter(tr->core_track(core), "freq_mhz", f.hz() / 1e6);
  }
}

void Machine::set_activity(const CoreId& core, Activity a) {
  flush();
  auto& cs = state(core);
  cs.activity = a;
  refresh_power(cs);
}

void Machine::set_core_throttle(const CoreId& core, int tstate) {
  PACC_EXPECTS(tstate >= ThrottleLevel::kMin && tstate <= ThrottleLevel::kMax);
  flush();
  auto& cs = state(core);
  cs.tstate = tstate;
  refresh_power(cs);
  if (auto* tr = engine_.tracer()) {
    tr->counter(tr->core_track(core), "tstate", tstate);
  }
}

void Machine::set_socket_throttle(int node, int socket, int tstate) {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  PACC_EXPECTS(socket >= 0 && socket < params_.shape.sockets_per_node);
  PACC_EXPECTS(tstate >= ThrottleLevel::kMin && tstate <= ThrottleLevel::kMax);
  flush();
  for (int c = 0; c < params_.shape.cores_per_socket; ++c) {
    auto& cs = state(CoreId{node, socket, c});
    cs.tstate = tstate;
    refresh_power(cs);
  }
  if (auto* tr = engine_.tracer()) {
    tr->counter(tr->core_track(CoreId{node, socket, 0}), "tstate", tstate);
  }
}

sim::Task<bool> Machine::dvfs_transition(CoreId core, Frequency target) {
  const TimePoint begin = engine_.now();
  TransitionOutcome outcome;
  if (fault_hook_) outcome = fault_hook_(core, TransitionKind::kDvfs);
  // The old P-state's power is charged across the window; the frequency
  // changes only once the PLL has relocked (and only if it relocked at all).
  co_await engine_.delay(params_.dvfs_overhead * outcome.latency_scale);
  if (outcome.apply) set_frequency(core, target);
  if (auto* tr = engine_.tracer()) {
    if (outcome.apply && outcome.latency_scale == 1.0) {
      tr->complete_span(
          tr->core_track(core), "dvfs", "power", begin,
          {{"mhz", static_cast<std::int64_t>(target.hz() / 1e6)}});
    } else {
      tr->complete_span(
          tr->core_track(core), "dvfs", "power", begin,
          {{"mhz", static_cast<std::int64_t>(target.hz() / 1e6)},
           {"failed", outcome.apply ? 0 : 1},
           {"stretched", outcome.latency_scale == 1.0 ? 0 : 1}});
    }
  }
  co_return outcome.apply;
}

sim::Task<bool> Machine::throttle_transition(CoreId issuer, int tstate) {
  const TimePoint begin = engine_.now();
  TransitionOutcome outcome;
  if (fault_hook_) outcome = fault_hook_(issuer, TransitionKind::kThrottle);
  co_await engine_.delay(params_.throttle_overhead * outcome.latency_scale);
  if (outcome.apply) {
    if (params_.core_level_throttling) {
      set_core_throttle(issuer, tstate);
    } else {
      set_socket_throttle(issuer.node, issuer.socket, tstate);
    }
  }
  if (auto* tr = engine_.tracer()) {
    if (outcome.apply && outcome.latency_scale == 1.0) {
      tr->complete_span(tr->core_track(issuer), "throttle", "power", begin,
                        {{"tstate", tstate},
                         {"socket_wide",
                          params_.core_level_throttling ? 0 : 1}});
    } else {
      tr->complete_span(tr->core_track(issuer), "throttle", "power", begin,
                        {{"tstate", tstate},
                         {"failed", outcome.apply ? 0 : 1},
                         {"stretched", outcome.latency_scale == 1.0 ? 0 : 1}});
    }
  }
  co_return outcome.apply;
}

void Machine::set_node_slowdown(int node, double factor) {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  PACC_EXPECTS(factor >= 1.0);
  node_slowdown_[static_cast<std::size_t>(node)] = factor;
}

double Machine::node_slowdown(int node) const {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  return node_slowdown_[static_cast<std::size_t>(node)];
}

void Machine::set_node_power_cap(int node, Watts cap) {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  PACC_EXPECTS(cap >= 0.0);
  node_power_cap_[static_cast<std::size_t>(node)] = cap;
}

Watts Machine::node_power_cap(int node) const {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  return node_power_cap_[static_cast<std::size_t>(node)];
}

Watts Machine::node_dynamic_budget(int node) const {
  const Watts static_draw =
      params_.power.node_base +
      params_.power.socket_uncore * params_.shape.sockets_per_node +
      params_.power.core_idle * params_.shape.cores_per_node();
  return node_power_cap(node) - static_draw;
}

Watts Machine::core_dynamic_power(Frequency f) const {
  return params_.power.core_dynamic_fmax *
         std::pow(f.hz() / params_.fmax.hz(), params_.power.freq_exponent);
}

Frequency Machine::frequency_for_dynamic_budget(Watts dynamic_budget,
                                                int cores) const {
  PACC_EXPECTS(cores >= 1);
  const double per_core = dynamic_budget / cores;
  if (per_core <= 0.0) return params_.fmin;
  const double ratio =
      std::min(1.0, per_core / params_.power.core_dynamic_fmax);
  const Frequency f{params_.fmax.hz() *
                    std::pow(ratio, 1.0 / params_.power.freq_exponent)};
  return std::clamp(f, params_.fmin, params_.fmax);
}

Frequency Machine::frequency(const CoreId& core) const {
  return state(core).freq;
}

int Machine::throttle(const CoreId& core) const { return state(core).tstate; }

Activity Machine::activity(const CoreId& core) const {
  return state(core).activity;
}

double Machine::cpu_slowdown(const CoreId& core) const {
  return freq_slowdown(core) * throttle_slowdown(core) *
         node_slowdown_[static_cast<std::size_t>(core.node)];
}

double Machine::freq_slowdown(const CoreId& core) const {
  return params_.fmax.hz() / state(core).freq.hz();
}

double Machine::throttle_slowdown(const CoreId& core) const {
  return 1.0 / ThrottleLevel::activity_factor(state(core).tstate);
}

Watts Machine::node_power(int node) const {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  Watts total = params_.power.node_base +
                params_.power.socket_uncore * params_.shape.sockets_per_node;
  const int base = node * params_.shape.cores_per_node();
  for (int c = 0; c < params_.shape.cores_per_node(); ++c) {
    total += cores_[static_cast<std::size_t>(base + c)].power;
  }
  return total;
}

Joules Machine::total_energy() {
  flush();
  return energy_;
}

Joules Machine::node_energy(int node) {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  flush();
  const Watts static_share =
      params_.power.node_base +
      params_.power.socket_uncore * params_.shape.sockets_per_node;
  Joules total = static_share * (engine_.now() - created_).sec();
  const int base = node * params_.shape.cores_per_node();
  for (int c = 0; c < params_.shape.cores_per_node(); ++c) {
    total += cores_[static_cast<std::size_t>(base + c)].stats.energy;
  }
  return total;
}

Joules Machine::socket_energy(int node, int socket) {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  PACC_EXPECTS(socket >= 0 && socket < params_.shape.sockets_per_node);
  flush();
  Joules total = params_.power.socket_uncore * (engine_.now() - created_).sec();
  for (int c = 0; c < params_.shape.cores_per_socket; ++c) {
    total += state(CoreId{node, socket, c}).stats.energy;
  }
  return total;
}

CoreStats Machine::core_stats(const CoreId& core) {
  flush();
  return state(core).stats;
}

}  // namespace pacc::hw

#include "hw/machine.hpp"

namespace pacc::hw {

Machine::Machine(sim::Engine& engine, MachineParams params)
    : engine_(engine), params_(std::move(params)) {
  PACC_EXPECTS(params_.shape.valid());
  PACC_EXPECTS(params_.fmin.hz() > 0.0 &&
               params_.fmin.hz() <= params_.fmax.hz());

  cores_.resize(static_cast<std::size_t>(params_.shape.total_cores()));
  static_power_ =
      params_.power.node_base * params_.shape.nodes +
      params_.power.socket_uncore * params_.shape.sockets_total();
  system_power_ = static_power_;
  for (auto& cs : cores_) {
    cs.freq = params_.fmax;
    refresh_power(cs);
  }
  last_flush_ = engine_.now();
}

Machine::CoreState& Machine::state(const CoreId& core) {
  return cores_[static_cast<std::size_t>(linear_core(params_.shape, core))];
}

const Machine::CoreState& Machine::state(const CoreId& core) const {
  return cores_[static_cast<std::size_t>(linear_core(params_.shape, core))];
}

void Machine::flush() {
  const TimePoint now = engine_.now();
  const Duration dt = now - last_flush_;
  if (dt.ns() <= 0) return;
  const double secs = dt.sec();
  energy_ += system_power_ * secs;
  for (auto& cs : cores_) {
    cs.stats.energy += cs.power * secs;
    if (cs.activity == Activity::kBusy) {
      cs.stats.busy_time += dt;
    } else {
      cs.stats.idle_time += dt;
    }
    if (cs.tstate > ThrottleLevel::kMin) cs.stats.throttled_time += dt;
  }
  last_flush_ = now;
}

void Machine::refresh_power(CoreState& cs) {
  system_power_ -= cs.power;
  cs.power = params_.power.core_power(cs.freq, params_.fmax, cs.tstate,
                                      cs.activity);
  system_power_ += cs.power;
}

void Machine::set_frequency(const CoreId& core, Frequency f) {
  PACC_EXPECTS(f >= params_.fmin && f <= params_.fmax);
  flush();
  auto& cs = state(core);
  cs.freq = f;
  refresh_power(cs);
}

void Machine::set_activity(const CoreId& core, Activity a) {
  flush();
  auto& cs = state(core);
  cs.activity = a;
  refresh_power(cs);
}

void Machine::set_core_throttle(const CoreId& core, int tstate) {
  PACC_EXPECTS(tstate >= ThrottleLevel::kMin && tstate <= ThrottleLevel::kMax);
  flush();
  auto& cs = state(core);
  cs.tstate = tstate;
  refresh_power(cs);
}

void Machine::set_socket_throttle(int node, int socket, int tstate) {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  PACC_EXPECTS(socket >= 0 && socket < params_.shape.sockets_per_node);
  PACC_EXPECTS(tstate >= ThrottleLevel::kMin && tstate <= ThrottleLevel::kMax);
  flush();
  for (int c = 0; c < params_.shape.cores_per_socket; ++c) {
    auto& cs = state(CoreId{node, socket, c});
    cs.tstate = tstate;
    refresh_power(cs);
  }
}

sim::Task<> Machine::dvfs_transition(CoreId core, Frequency target) {
  set_frequency(core, target);
  co_await engine_.delay(params_.dvfs_overhead);
}

sim::Task<> Machine::throttle_transition(CoreId issuer, int tstate) {
  if (params_.core_level_throttling) {
    set_core_throttle(issuer, tstate);
  } else {
    set_socket_throttle(issuer.node, issuer.socket, tstate);
  }
  co_await engine_.delay(params_.throttle_overhead);
}

Frequency Machine::frequency(const CoreId& core) const {
  return state(core).freq;
}

int Machine::throttle(const CoreId& core) const { return state(core).tstate; }

Activity Machine::activity(const CoreId& core) const {
  return state(core).activity;
}

double Machine::cpu_slowdown(const CoreId& core) const {
  return freq_slowdown(core) * throttle_slowdown(core);
}

double Machine::freq_slowdown(const CoreId& core) const {
  return params_.fmax.hz() / state(core).freq.hz();
}

double Machine::throttle_slowdown(const CoreId& core) const {
  return 1.0 / ThrottleLevel::activity_factor(state(core).tstate);
}

Watts Machine::node_power(int node) const {
  PACC_EXPECTS(node >= 0 && node < params_.shape.nodes);
  Watts total = params_.power.node_base +
                params_.power.socket_uncore * params_.shape.sockets_per_node;
  const int base = node * params_.shape.cores_per_node();
  for (int c = 0; c < params_.shape.cores_per_node(); ++c) {
    total += cores_[static_cast<std::size_t>(base + c)].power;
  }
  return total;
}

Joules Machine::total_energy() {
  flush();
  return energy_;
}

CoreStats Machine::core_stats(const CoreId& core) {
  flush();
  return state(core).stats;
}

}  // namespace pacc::hw

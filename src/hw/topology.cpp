#include "hw/topology.hpp"

namespace pacc::hw {

int ClusterShape::fabric_nodes_per_group(int level) const {
  PACC_EXPECTS(level >= 0 && level < fabric_levels());
  int per_group = 1;
  for (int l = 0; l <= level; ++l) {
    per_group *= fabric[static_cast<std::size_t>(l)].group_size;
  }
  return per_group;
}

double ClusterShape::fabric_link_bandwidth(int level,
                                           double node_link_bandwidth) const {
  const auto& spec = fabric[static_cast<std::size_t>(level)];
  if (spec.bandwidth > 0.0) return spec.bandwidth;
  // Full bisection at this level would carry every child node's HCA
  // bandwidth; the oversubscription ratio thins that out.
  return node_link_bandwidth * fabric_nodes_per_group(level) /
         spec.oversubscription;
}

double ClusterShape::df_local_bandwidth(double node_link_bandwidth) const {
  if (dragonfly.local_bandwidth > 0.0) return dragonfly.local_bandwidth;
  // A router's local links carry its hosted nodes' aggregate HCA bandwidth
  // into the group's all-to-all mesh.
  return node_link_bandwidth * dragonfly.nodes_per_router;
}

double ClusterShape::df_global_bandwidth(double node_link_bandwidth) const {
  if (dragonfly.global_bandwidth > 0.0) return dragonfly.global_bandwidth;
  // The group's global link carries the whole group's aggregate.
  return node_link_bandwidth * df_nodes_per_group();
}

bool ClusterShape::valid() const {
  if (!(nodes >= 1 && sockets_per_node >= 1 && cores_per_socket >= 1 &&
        nodes_per_rack >= 0)) {
    return false;
  }
  if (dragonfly.enabled()) {
    // Dragonfly replaces both the fat-tree fabric and the rack layer.
    if (!fabric.empty() || nodes_per_rack != 0) return false;
    if (dragonfly.routers_per_group < 1 || dragonfly.nodes_per_router < 1 ||
        dragonfly.local_bandwidth < 0.0 || dragonfly.global_bandwidth < 0.0) {
      return false;
    }
    const int per_group = df_nodes_per_group();
    if (per_group > nodes || nodes % per_group != 0) return false;
    return true;
  }
  if (fabric.empty()) return true;
  if (nodes_per_rack != 0) return false;  // fabric replaces the rack layer
  int per_group = 1;
  for (const FabricLevelSpec& level : fabric) {
    if (level.group_size < 2 || level.oversubscription < 1.0 ||
        level.bandwidth < 0.0) {
      return false;
    }
    per_group *= level.group_size;
    if (per_group > nodes || nodes % per_group != 0) return false;
  }
  return true;
}

int linear_core(const ClusterShape& shape, const CoreId& id) {
  PACC_EXPECTS(id.node >= 0 && id.node < shape.nodes);
  PACC_EXPECTS(id.socket >= 0 && id.socket < shape.sockets_per_node);
  PACC_EXPECTS(id.core_in_socket >= 0 &&
               id.core_in_socket < shape.cores_per_socket);
  return id.node * shape.cores_per_node() +
         id.socket * shape.cores_per_socket + id.core_in_socket;
}

CoreId core_from_linear(const ClusterShape& shape, int linear) {
  PACC_EXPECTS(linear >= 0 && linear < shape.total_cores());
  CoreId id;
  id.node = linear / shape.cores_per_node();
  const int within = linear % shape.cores_per_node();
  id.socket = within / shape.cores_per_socket;
  id.core_in_socket = within % shape.cores_per_socket;
  return id;
}

int os_core_number(const ClusterShape& shape, const CoreId& id) {
  // Fig 5: socket A owns even OS core ids, socket B odd ones.
  return id.core_in_socket * shape.sockets_per_node + id.socket;
}

std::string to_string(AffinityPolicy p) {
  switch (p) {
    case AffinityPolicy::kBunch:
      return "bunch";
    case AffinityPolicy::kScatter:
      return "scatter";
  }
  return "?";
}

RankPlacement place_ranks(const ClusterShape& shape, int ranks,
                          int ranks_per_node, AffinityPolicy policy) {
  PACC_EXPECTS(shape.valid());
  PACC_EXPECTS(ranks >= 1 && ranks_per_node >= 1);
  PACC_EXPECTS_MSG(ranks % ranks_per_node == 0,
                   "ranks must be a multiple of ranks_per_node");
  PACC_EXPECTS_MSG(ranks / ranks_per_node <= shape.nodes,
                   "not enough nodes for this placement");
  PACC_EXPECTS_MSG(ranks_per_node <= shape.cores_per_node(),
                   "not enough cores per node");

  RankPlacement placement;
  placement.shape = shape;
  placement.ranks_per_node = ranks_per_node;
  placement.policy = policy;
  placement.rank_to_core.reserve(static_cast<std::size_t>(ranks));

  for (int rank = 0; rank < ranks; ++rank) {
    const int node = rank / ranks_per_node;
    const int local = rank % ranks_per_node;
    CoreId id;
    id.node = node;
    switch (policy) {
      case AffinityPolicy::kBunch: {
        // Fill socket A first (local ranks 0..cores_per_socket-1), then B.
        id.socket = local / shape.cores_per_socket;
        id.core_in_socket = local % shape.cores_per_socket;
        break;
      }
      case AffinityPolicy::kScatter: {
        id.socket = local % shape.sockets_per_node;
        id.core_in_socket = local / shape.sockets_per_node;
        break;
      }
    }
    PACC_ASSERT(id.socket < shape.sockets_per_node);
    PACC_ASSERT(id.core_in_socket < shape.cores_per_socket);
    placement.rank_to_core.push_back(id);
  }
  return placement;
}

}  // namespace pacc::hw

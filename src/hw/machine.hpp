// Mutable hardware state for a whole cluster, with exact energy accounting.
//
// Machine holds each core's (frequency, T-state, activity). Power is a
// piecewise-constant function of that state (hw::PowerParams), so energy is
// integrated exactly: every state change first flushes `power · Δt` into the
// per-core and system accumulators. DVFS and throttle transitions are
// exposed as awaitable tasks that charge the paper's O_dvfs / O_throttle
// latencies to the issuing core.
#pragma once

#include <functional>
#include <vector>

#include "hw/power.hpp"
#include "hw/topology.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace pacc::hw {

struct MachineParams {
  ClusterShape shape;
  Frequency fmin = Frequency::ghz(1.6);
  Frequency fmax = Frequency::ghz(2.4);
  PowerParams power;
  Duration dvfs_overhead = Duration::micros(12.0);      ///< O_dvfs (10–15 µs)
  Duration throttle_overhead = Duration::micros(10.0);  ///< O_throttle

  /// Paper §V-B "future architectures": allow per-core T-states instead of
  /// the Nehalem's socket-granular throttling.
  bool core_level_throttling = false;
};

/// Which architectural transition a fault hook is consulted about.
enum class TransitionKind { kDvfs, kThrottle };

/// Verdict of a transition fault hook. `apply == false` models a rejected
/// request (PLL / PCU error): the P/T state is left unchanged but the
/// architectural latency is still paid. `latency_scale` stretches that
/// latency (relock taking longer than nominal).
struct TransitionOutcome {
  bool apply = true;
  double latency_scale = 1.0;
};

/// Consulted before every dvfs/throttle transition when installed; null
/// (the default) means every transition succeeds at nominal cost.
using TransitionFaultHook =
    std::function<TransitionOutcome(const CoreId&, TransitionKind)>;

/// Lifetime statistics for one core.
struct CoreStats {
  Duration busy_time;       ///< computing or polling
  Duration idle_time;       ///< sleeping in blocking waits
  Duration throttled_time;  ///< time spent at T-state > T0
  Joules energy = 0.0;
};

class Machine {
 public:
  Machine(sim::Engine& engine, MachineParams params);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineParams& params() const { return params_; }
  const ClusterShape& shape() const { return params_.shape; }
  sim::Engine& engine() { return engine_; }

  // --- instantaneous state changes (energy is flushed first) ---
  void set_frequency(const CoreId& core, Frequency f);
  void set_activity(const CoreId& core, Activity a);
  void set_core_throttle(const CoreId& core, int tstate);
  void set_socket_throttle(int node, int socket, int tstate);

  // --- transitions that charge the architectural overhead to the caller ---
  //
  // The new P/T state takes effect at the END of the latency window (the
  // PLL relocks only then), so the old state's power is charged during the
  // transition — the energy integral reflects the in-transition interval.
  // Both return whether the state was applied: an installed fault hook may
  // reject the request or stretch its latency.

  /// Changes the core's P-state, stalling the caller for O_dvfs.
  sim::Task<bool> dvfs_transition(CoreId core, Frequency target);

  /// Throttles at the architecture's granularity: the issuing core's whole
  /// socket on Nehalem-style machines, just the core when
  /// core_level_throttling is enabled. Stalls the caller for O_throttle.
  sim::Task<bool> throttle_transition(CoreId issuer, int tstate);

  /// Installs (or clears, with null) the fault hook consulted before every
  /// transition.
  void set_transition_fault_hook(TransitionFaultHook hook) {
    fault_hook_ = std::move(hook);
  }

  // --- straggler model ---

  /// Multiplies cpu_slowdown for every core of `node` (compute and message
  /// start-up costs stretch; the P/T state and its power are untouched).
  void set_node_slowdown(int node, double factor);
  double node_slowdown(int node) const;

  // --- per-node power caps (RAPL-like budget bookkeeping) ---
  //
  // The machine only records the budget; the mpi::PowerCapGovernor enforces
  // it by allocating core frequencies through the helpers below, which
  // invert the §VI-B power model.

  /// Sets a node's watt budget (0, the default, means uncapped).
  void set_node_power_cap(int node, Watts cap);
  Watts node_power_cap(int node) const;

  /// The cap's dynamic headroom: the budget minus the node's static draw
  /// (node base + uncore + every core's idle power). Negative for an
  /// infeasible cap — frequency_for_dynamic_budget then clamps to fmin.
  Watts node_dynamic_budget(int node) const;

  /// Dynamic power of one busy, unthrottled core at frequency f:
  /// P_dyn,max · (f/fmax)^k.
  Watts core_dynamic_power(Frequency f) const;

  /// Inverts the model: the highest frequency in [fmin, fmax] at which
  /// `cores` busy T0 cores spend at most `dynamic_budget` watts in total.
  Frequency frequency_for_dynamic_budget(Watts dynamic_budget,
                                         int cores) const;

  // --- queries ---
  Frequency frequency(const CoreId& core) const;
  int throttle(const CoreId& core) const;
  Activity activity(const CoreId& core) const;

  /// Multiplier on CPU work (message start-up costs, local compute) caused
  /// by running below fmax and/or throttled: (fmax/f) · (1/c_t).
  double cpu_slowdown(const CoreId& core) const;

  /// The DVFS component of cpu_slowdown: fmax / f.
  double freq_slowdown(const CoreId& core) const;

  /// The throttling component of cpu_slowdown: 1 / c_t.
  double throttle_slowdown(const CoreId& core) const;

  Watts system_power() const { return system_power_; }
  Watts node_power(int node) const;

  /// Total system energy consumed up to the current simulated time.
  Joules total_energy();

  /// Energy of one node up to now: its cores' integrals plus the node's
  /// static share (node base + uncore) × elapsed time.
  Joules node_energy(int node);

  /// Energy of one socket up to now: its cores' integrals plus the socket's
  /// uncore × elapsed time. The node-base power is not divisible between
  /// sockets and is excluded (so node_energy ≠ Σ socket_energy in general).
  Joules socket_energy(int node, int socket);

  /// Per-core statistics up to the current simulated time.
  CoreStats core_stats(const CoreId& core);

 private:
  struct CoreState {
    Frequency freq;
    int tstate = ThrottleLevel::kMin;
    Activity activity = Activity::kBusy;
    Watts power = 0.0;  ///< cached instantaneous power
    CoreStats stats;
  };

  CoreState& state(const CoreId& core);
  const CoreState& state(const CoreId& core) const;

  /// Integrates energy/time stats from last_flush_ to now for all cores.
  void flush();

  /// Recomputes one core's cached power and the system total.
  void refresh_power(CoreState& cs);

  sim::Engine& engine_;
  MachineParams params_;
  TransitionFaultHook fault_hook_;
  std::vector<double> node_slowdown_;  ///< straggler factor per node
  std::vector<Watts> node_power_cap_;  ///< RAPL-like budget; 0 = uncapped
  std::vector<CoreState> cores_;
  Watts static_power_ = 0.0;  ///< node base + uncore, never varies
  Watts system_power_ = 0.0;
  Joules energy_ = 0.0;
  TimePoint created_;  ///< for apportioning static power in node/socket energy
  TimePoint last_flush_;
};

}  // namespace pacc::hw

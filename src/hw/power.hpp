// Per-core power model: P-states (DVFS), T-states (throttling), activity.
//
// Formalises Section VI-B of the paper. A core's instantaneous power is a
// function of its frequency f, throttle level T_j and whether it is busy
// (computing *or* polling — both peg the pipeline) or idle (sleeping in
// blocking-mode waits):
//
//   P(f, T_j, busy) = P_idle + c_j · P_dyn,max · (f / f_max)^k
//   P(f, T_j, idle) = P_idle
//
// where c_j is the paper's activity factor (T0 = 100 % … T7 = 12 %) and
// k ≈ 3 models voltage tracking frequency under DVFS. System power adds
// per-socket uncore and per-node base draw, which is what a clamp meter on
// the node's supply line sees.
#pragma once

#include "util/expect.hpp"
#include "util/units.hpp"

namespace pacc::hw {

/// Intel-style throttling levels T0..T7.
struct ThrottleLevel {
  static constexpr int kMin = 0;  ///< T0: CPU 100 % active
  static constexpr int kMax = 7;  ///< T7: CPU 12 % active

  /// Fraction of cycles the core executes at level Tj (paper: T7 ≈ 12 %).
  static double activity_factor(int level) {
    PACC_EXPECTS(level >= kMin && level <= kMax);
    return 1.0 - static_cast<double>(level) / 8.0;
  }
};

/// What a core is doing, for power purposes.
enum class Activity {
  kBusy,  ///< executing or busy-polling: full dynamic power at (f, Tj)
  kIdle,  ///< halted in a blocking wait: idle power only
};

/// Calibrated electrical constants for one cluster.
struct PowerParams {
  Watts node_base = 120.0;        ///< chipset, DRAM, fans, PSU loss per node
  Watts socket_uncore = 20.0;     ///< shared cache / IMC per socket
  Watts core_idle = 4.0;          ///< halted core
  Watts core_dynamic_fmax = 12.0; ///< extra power of a busy core at fmax, T0
  double freq_exponent = 3.0;     ///< P_dyn ∝ (f/fmax)^k

  /// Instantaneous power of one core.
  Watts core_power(Frequency f, Frequency fmax, int tstate,
                   Activity activity) const;
};

}  // namespace pacc::hw

#include "hw/meter.hpp"

namespace pacc::hw {

SamplingMeter::SamplingMeter(Machine& machine, Duration interval,
                             bool per_node)
    : machine_(machine), interval_(interval), per_node_(per_node) {
  PACC_EXPECTS(interval.ns() > 0);
  if (per_node_) {
    node_series_.resize(static_cast<std::size_t>(machine.shape().nodes));
  }
}

SamplingMeter::~SamplingMeter() { stop(); }

void SamplingMeter::sample() {
  const TimePoint now = machine_.engine().now();
  series_.add(now, machine_.system_power());
  if (per_node_) {
    for (int n = 0; n < machine_.shape().nodes; ++n) {
      node_series_[static_cast<std::size_t>(n)].add(now,
                                                    machine_.node_power(n));
    }
  }
  last_sample_ = now;
}

void SamplingMeter::start() {
  PACC_EXPECTS_MSG(!running_, "meter already running");
  running_ = true;
  start_energy_ = machine_.total_energy();
  sample();  // boundary sample at t = start
  arm();
}

void SamplingMeter::stop() {
  if (!running_) return;
  running_ = false;
  window_energy_ = machine_.total_energy() - start_energy_;
  // Close the final partial interval, unless a sample already landed at
  // this exact instant (e.g. stop immediately after start).
  if (machine_.engine().now() > last_sample_) sample();
  machine_.engine().cancel(pending_);
}

Joules SamplingMeter::window_energy() {
  if (running_) return machine_.total_energy() - start_energy_;
  return window_energy_;
}

void SamplingMeter::arm() {
  pending_ = machine_.engine().schedule(interval_, [this] {
    if (!running_) return;
    sample();
    arm();
  });
}

}  // namespace pacc::hw

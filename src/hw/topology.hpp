// Cluster topology: nodes × sockets × cores, plus rank→core affinity.
//
// Mirrors the paper's testbed (Fig 5): Intel "Nehalem" nodes with two
// sockets of four cores; OS core ids 0 2 4 6 live on socket A and 1 3 5 7 on
// socket B. MVAPICH2's default "bunch" mapping binds local ranks 0..3 to
// socket A and 4..7 to socket B; "scatter" alternates sockets (Section V-C
// discusses why the power-aware algorithms depend on this mapping).
#pragma once

#include <string>
#include <vector>

#include "util/expect.hpp"

namespace pacc::hw {

struct ClusterShape {
  int nodes = 8;
  int sockets_per_node = 2;
  int cores_per_socket = 4;

  /// Rack structure for the topology-aware extension (§VIII of the paper):
  /// 0 means "no rack layer" (every node in one rack, no aggregation
  /// switches). Nodes are grouped consecutively.
  int nodes_per_rack = 0;

  int cores_per_node() const { return sockets_per_node * cores_per_socket; }
  int total_cores() const { return nodes * cores_per_node(); }
  int sockets_total() const { return nodes * sockets_per_node; }

  bool has_racks() const { return nodes_per_rack > 0; }
  int racks() const {
    return has_racks() ? (nodes + nodes_per_rack - 1) / nodes_per_rack : 1;
  }
  int rack_of(int node) const {
    return has_racks() ? node / nodes_per_rack : 0;
  }

  bool valid() const {
    return nodes >= 1 && sockets_per_node >= 1 && cores_per_socket >= 1 &&
           nodes_per_rack >= 0;
  }
};

/// Physical location of one core.
struct CoreId {
  int node = 0;
  int socket = 0;         ///< socket index within the node (0 = "A", 1 = "B")
  int core_in_socket = 0;

  friend bool operator==(const CoreId&, const CoreId&) = default;
};

/// Flat index of a core in [0, shape.total_cores()).
int linear_core(const ClusterShape& shape, const CoreId& id);

/// Inverse of linear_core.
CoreId core_from_linear(const ClusterShape& shape, int linear);

/// OS-visible core number inside a node, matching Fig 5 (socket A gets the
/// even numbers, socket B the odd ones).
int os_core_number(const ClusterShape& shape, const CoreId& id);

/// How MPI ranks are pinned to cores inside each node.
enum class AffinityPolicy {
  kBunch,    ///< MVAPICH2 default: fill socket A, then socket B
  kScatter,  ///< round-robin across sockets
};

std::string to_string(AffinityPolicy p);

/// Placement of `ranks` MPI processes onto the cluster. Ranks are
/// block-distributed across nodes (ranks 0..ppn-1 on node 0, etc.), then
/// pinned within the node according to the affinity policy.
struct RankPlacement {
  ClusterShape shape;
  int ranks_per_node = 0;
  AffinityPolicy policy = AffinityPolicy::kBunch;
  std::vector<CoreId> rank_to_core;  ///< indexed by global rank

  int ranks() const { return static_cast<int>(rank_to_core.size()); }
  const CoreId& core_of(int rank) const {
    PACC_EXPECTS(rank >= 0 && rank < ranks());
    return rank_to_core[static_cast<std::size_t>(rank)];
  }
  int node_of(int rank) const { return core_of(rank).node; }
  int socket_of(int rank) const { return core_of(rank).socket; }
};

/// Builds a placement of `ranks` processes with `ranks_per_node` per node.
/// Requires ranks % ranks_per_node == 0 and enough nodes/cores.
RankPlacement place_ranks(const ClusterShape& shape, int ranks,
                          int ranks_per_node, AffinityPolicy policy);

}  // namespace pacc::hw

// Cluster topology: nodes × sockets × cores, plus rank→core affinity.
//
// Mirrors the paper's testbed (Fig 5): Intel "Nehalem" nodes with two
// sockets of four cores; OS core ids 0 2 4 6 live on socket A and 1 3 5 7 on
// socket B. MVAPICH2's default "bunch" mapping binds local ranks 0..3 to
// socket A and 4..7 to socket B; "scatter" alternates sockets (Section V-C
// discusses why the power-aware algorithms depend on this mapping).
#pragma once

#include <string>
#include <vector>

#include "util/expect.hpp"

namespace pacc::hw {

/// One level of a fat-tree fabric, described bottom-up. Level 0 groups
/// `group_size` *nodes* behind a shared pair of aggregation up/downlinks;
/// level 1 groups `group_size` level-0 groups, and so on. The top level's
/// groups hang off a non-blocking core crossbar (so the trivial
/// single-level case with one group is today's flat switch).
///
/// The aggregation links of a level-ℓ group carry the traffic of
/// `children(ℓ)` child units; at `oversubscription` 1.0 the uplink is
/// provisioned with the full sum of the child bandwidths, at 2.0 with half
/// of it, and so on. `bandwidth` (bytes/sec), when non-zero, overrides the
/// derived value outright.
struct FabricLevelSpec {
  int group_size = 2;            ///< child units per group at this level
  double oversubscription = 1.0; ///< >= 1.0; 1.0 = non-blocking
  double bandwidth = 0.0;        ///< explicit per-direction link bw, 0 = derive

  friend bool operator==(const FabricLevelSpec&,
                         const FabricLevelSpec&) = default;
};

/// Dragonfly interconnect: groups of routers wired all-to-all locally,
/// with every group holding one global link to the (logically all-to-all)
/// inter-group optical plane. Each router hosts `nodes_per_router` nodes;
/// a group spans `routers_per_group` routers; the group count is derived
/// as nodes / (routers_per_group * nodes_per_router).
///
/// Routing is `minimal` by default — node HCA, source router, source
/// group's global link, destination group's global link, destination
/// router, destination HCA — or `adaptive`, which detours cross-group
/// traffic through a deterministic Valiant intermediate group to spread
/// load over the global plane. Adaptive paths depend on absolute group
/// ids, so they break group-translation symmetry and refuse the
/// rank-symmetry collapse (sym::decide reports why).
struct DragonflySpec {
  int routers_per_group = 0;  ///< routers per group; 0 disables dragonfly
  int nodes_per_router = 1;
  bool adaptive = false;      ///< Valiant-style non-minimal routing
  /// Per-direction link bandwidth overrides (bytes/sec); 0 derives from
  /// the node HCA bandwidth: local router links carry their router's
  /// aggregate, global links the whole group's.
  double local_bandwidth = 0.0;
  double global_bandwidth = 0.0;

  bool enabled() const { return routers_per_group > 0; }

  friend bool operator==(const DragonflySpec&,
                         const DragonflySpec&) = default;
};

struct ClusterShape {
  int nodes = 8;
  int sockets_per_node = 2;
  int cores_per_socket = 4;

  /// Rack structure for the topology-aware extension (§VIII of the paper):
  /// 0 means "no rack layer" (every node in one rack, no aggregation
  /// switches). Nodes are grouped consecutively.
  int nodes_per_rack = 0;

  /// Multi-level fat-tree fabric, bottom-up (see FabricLevelSpec). Empty
  /// means the legacy shape: one non-blocking switch, plus the optional
  /// `nodes_per_rack` aggregation layer above it. Non-empty replaces the
  /// rack layer entirely (`nodes_per_rack` must then be 0); nodes are
  /// grouped consecutively at every level, and the product of the level
  /// group sizes must divide `nodes` evenly.
  std::vector<FabricLevelSpec> fabric;

  /// Dragonfly interconnect (see DragonflySpec). Mutually exclusive with
  /// both the fat-tree `fabric` and the rack layer; nodes are assigned to
  /// routers (and routers to groups) consecutively, and
  /// routers_per_group * nodes_per_router must divide `nodes` evenly.
  DragonflySpec dragonfly;

  int cores_per_node() const { return sockets_per_node * cores_per_socket; }
  int total_cores() const { return nodes * cores_per_node(); }
  int sockets_total() const { return nodes * sockets_per_node; }

  bool has_racks() const { return nodes_per_rack > 0; }
  int racks() const {
    return has_racks() ? (nodes + nodes_per_rack - 1) / nodes_per_rack : 1;
  }
  int rack_of(int node) const {
    return has_racks() ? node / nodes_per_rack : 0;
  }

  bool has_fabric() const { return !fabric.empty(); }
  int fabric_levels() const { return static_cast<int>(fabric.size()); }
  /// Nodes per group at fabric level ℓ (cumulative product of group sizes).
  int fabric_nodes_per_group(int level) const;
  /// Number of level-ℓ groups.
  int fabric_groups(int level) const {
    return nodes / fabric_nodes_per_group(level);
  }
  /// Which level-ℓ group `node` belongs to.
  int fabric_group_of(int node, int level) const {
    return node / fabric_nodes_per_group(level);
  }
  /// Derived (or explicit) per-direction aggregation-link bandwidth of one
  /// level-ℓ group, given the per-node HCA link bandwidth.
  double fabric_link_bandwidth(int level, double node_link_bandwidth) const;

  bool has_dragonfly() const { return dragonfly.enabled(); }
  int df_nodes_per_group() const {
    return dragonfly.routers_per_group * dragonfly.nodes_per_router;
  }
  int df_groups() const { return nodes / df_nodes_per_group(); }
  int df_routers_total() const {
    return df_groups() * dragonfly.routers_per_group;
  }
  /// Global router index of `node` (routers numbered group-major).
  int df_router_of(int node) const {
    return node / dragonfly.nodes_per_router;
  }
  int df_group_of(int node) const { return node / df_nodes_per_group(); }
  /// Derived (or explicit) per-direction bandwidth of one router's local
  /// links / one group's global link, given the node HCA bandwidth.
  double df_local_bandwidth(double node_link_bandwidth) const;
  double df_global_bandwidth(double node_link_bandwidth) const;

  bool valid() const;
};

/// Physical location of one core.
struct CoreId {
  int node = 0;
  int socket = 0;         ///< socket index within the node (0 = "A", 1 = "B")
  int core_in_socket = 0;

  friend bool operator==(const CoreId&, const CoreId&) = default;
};

/// Flat index of a core in [0, shape.total_cores()).
int linear_core(const ClusterShape& shape, const CoreId& id);

/// Inverse of linear_core.
CoreId core_from_linear(const ClusterShape& shape, int linear);

/// OS-visible core number inside a node, matching Fig 5 (socket A gets the
/// even numbers, socket B the odd ones).
int os_core_number(const ClusterShape& shape, const CoreId& id);

/// How MPI ranks are pinned to cores inside each node.
enum class AffinityPolicy {
  kBunch,    ///< MVAPICH2 default: fill socket A, then socket B
  kScatter,  ///< round-robin across sockets
};

std::string to_string(AffinityPolicy p);

/// Placement of `ranks` MPI processes onto the cluster. Ranks are
/// block-distributed across nodes (ranks 0..ppn-1 on node 0, etc.), then
/// pinned within the node according to the affinity policy.
struct RankPlacement {
  ClusterShape shape;
  int ranks_per_node = 0;
  AffinityPolicy policy = AffinityPolicy::kBunch;
  std::vector<CoreId> rank_to_core;  ///< indexed by global rank

  int ranks() const { return static_cast<int>(rank_to_core.size()); }
  const CoreId& core_of(int rank) const {
    PACC_EXPECTS(rank >= 0 && rank < ranks());
    return rank_to_core[static_cast<std::size_t>(rank)];
  }
  int node_of(int rank) const { return core_of(rank).node; }
  int socket_of(int rank) const { return core_of(rank).socket; }
};

/// Builds a placement of `ranks` processes with `ranks_per_node` per node.
/// Requires ranks % ranks_per_node == 0 and enough nodes/cores.
RankPlacement place_ranks(const ClusterShape& shape, int ranks,
                          int ranks_per_node, AffinityPolicy policy);

}  // namespace pacc::hw

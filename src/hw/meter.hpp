// Simulated clamp power meter.
//
// Models the paper's MASTECH MS2205: it samples total system power at a
// fixed interval (0.5 s in the paper) and records a time series. Implemented
// as a self-rescheduling event rather than a task so that stopping it cannot
// leave a "stuck" coroutine behind.
#pragma once

#include <vector>

#include "hw/machine.hpp"
#include "util/stats.hpp"

namespace pacc::hw {

class SamplingMeter {
 public:
  /// With `per_node`, each sample also records every node's individual
  /// draw (one clamp per supply line, as a multi-channel meter would).
  SamplingMeter(Machine& machine, Duration interval = Duration::millis(500.0),
                bool per_node = false);
  ~SamplingMeter();
  SamplingMeter(const SamplingMeter&) = delete;
  SamplingMeter& operator=(const SamplingMeter&) = delete;

  /// Starts sampling; the first sample is taken one interval from now.
  void start();

  /// Stops sampling and cancels the pending sample event.
  void stop();

  bool running() const { return running_; }
  const PowerSeries& series() const { return series_; }
  /// Per-node series (empty unless constructed with per_node).
  const std::vector<PowerSeries>& node_series() const { return node_series_; }
  Duration interval() const { return interval_; }

 private:
  void arm();

  Machine& machine_;
  Duration interval_;
  PowerSeries series_;
  std::vector<PowerSeries> node_series_;
  bool per_node_ = false;
  bool running_ = false;
  sim::EventId pending_ = 0;
};

}  // namespace pacc::hw

// Simulated clamp power meter.
//
// Models the paper's MASTECH MS2205: it samples total system power at a
// fixed interval (0.5 s in the paper) and records a time series. Implemented
// as a self-rescheduling event rather than a task so that stopping it cannot
// leave a "stuck" coroutine behind.
//
// Both window boundaries are sampled: start() records a sample at the start
// instant and stop() records the final partial interval, so short runs are
// no longer biased low. The meter is a *view* for plotting — exact energy
// comes from Machine's event-driven integral, which window_energy() exposes
// for the sampled window.
#pragma once

#include <vector>

#include "hw/machine.hpp"
#include "util/stats.hpp"

namespace pacc::hw {

class SamplingMeter {
 public:
  /// With `per_node`, each sample also records every node's individual
  /// draw (one clamp per supply line, as a multi-channel meter would).
  SamplingMeter(Machine& machine, Duration interval = Duration::millis(500.0),
                bool per_node = false);
  ~SamplingMeter();
  SamplingMeter(const SamplingMeter&) = delete;
  SamplingMeter& operator=(const SamplingMeter&) = delete;

  /// Starts sampling. Records a boundary sample at the start instant; the
  /// next samples follow one interval apart.
  void start();

  /// Stops sampling: records the final partial interval (unless a sample
  /// already landed at this instant) and cancels the pending sample event.
  void stop();

  bool running() const { return running_; }
  const PowerSeries& series() const { return series_; }
  /// Per-node series (empty unless constructed with per_node).
  const std::vector<PowerSeries>& node_series() const { return node_series_; }
  Duration interval() const { return interval_; }

  /// Exact energy of the metered window so far — Machine's event-driven
  /// integral sliced at start()/now (or start()/stop() once stopped). This
  /// is the source of truth the sampled series only approximates.
  Joules window_energy();

 private:
  void arm();
  void sample();

  Machine& machine_;
  Duration interval_;
  PowerSeries series_;
  std::vector<PowerSeries> node_series_;
  bool per_node_ = false;
  bool running_ = false;
  sim::EventId pending_ = 0;
  TimePoint last_sample_;
  Joules start_energy_ = 0.0;
  Joules window_energy_ = 0.0;  ///< frozen at stop()
};

}  // namespace pacc::hw

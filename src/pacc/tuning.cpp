#include "pacc/tuning.hpp"

#include <limits>
#include <memory>
#include <utility>

#include "coll/plan.hpp"
#include "pacc/campaign.hpp"
#include "util/expect.hpp"

namespace pacc {

namespace {

/// The standard segment-size ladder. Coarse on purpose: the race pays one
/// full simulation per rung, and the pipelining benefit moves slowly in
/// seg, so three rungs bracket the useful range the way Open MPI's adapt
/// component ships a handful of discrete seg counts. Every rung clears
/// the registry's 16 KiB domain floor (see coll/registry.cpp), keeping
/// segment traffic on the rendezvous path.
constexpr Bytes kSegLadder[] = {16 * 1024, 64 * 1024, 256 * 1024};

}  // namespace

std::vector<TuneCandidateResult> tune_candidates(coll::Op op,
                                                 coll::PowerScheme scheme,
                                                 Bytes message) {
  std::vector<TuneCandidateResult> candidates;
  for (const coll::AlgoDesc& desc : coll::algorithms()) {
    if (desc.op != op || !coll::algo_supports(desc, scheme)) continue;
    candidates.push_back(
        TuneCandidateResult{.algo = std::string(desc.name), .seg = 0});
    if (!desc.segmented) continue;
    for (const Bytes seg : kSegLadder) {
      if (seg < desc.min_seg || seg > desc.max_seg) continue;
      if (seg >= round_to_doubles(message)) continue;  // nothing to pipeline
      candidates.push_back(
          TuneCandidateResult{.algo = std::string(desc.name), .seg = seg});
    }
  }
  return candidates;
}

TuneReport tune_collective(coll::Tuner& tuner, const TuneRequest& req,
                           int jobs) {
  PACC_EXPECTS(req.iterations >= 1 && req.warmup >= 0);

  // The comm fingerprint the dispatch-time lookups will present. bcast /
  // reduce dispatch always runs 1:1 (rooted collectives never collapse),
  // so probe an uncollapsed build of the cluster.
  ClusterConfig probe_config = req.cluster;
  probe_config.collapse_multiplicity = 1;
  const std::uint64_t fingerprint =
      Simulation(probe_config).runtime().world().structure_fingerprint();

  // Candidate runs share one plan cache: every candidate of a size runs on
  // an identically-shaped cluster, so the schedules are reusable. Results
  // are unaffected (plans are pure); only wall time is.
  ClusterConfig race_config = req.cluster;
  race_config.tuner = nullptr;  // forced algos must race, not consult
  if (!race_config.plan_cache) {
    race_config.plan_cache = std::make_shared<coll::PlanCache>();
  }

  TuneReport report;
  struct Item {
    std::size_t cell;
    std::size_t candidate;
  };
  std::vector<Item> items;
  for (const Bytes message : req.sizes) {
    TuneCellResult cell;
    cell.message = message;
    cell.tuned_bytes = round_to_doubles(message);
    const coll::TunedKey key{.op = req.op,
                             .scheme = req.scheme,
                             .bytes = cell.tuned_bytes,
                             .fingerprint = fingerprint};
    if (tuner.contains(key)) {
      cell.skipped = true;
      if (const auto existing = tuner.lookup(key)) cell.decision = *existing;
      ++report.skipped_cells;
      report.cells.push_back(std::move(cell));
      continue;
    }
    cell.candidates = tune_candidates(req.op, req.scheme, message);
    for (auto& candidate : cell.candidates) {
      candidate.status = RunStatus::error("candidate run did not complete");
    }
    const std::size_t cell_index = report.cells.size();
    for (std::size_t c = 0; c < cell.candidates.size(); ++c) {
      items.push_back(Item{cell_index, c});
    }
    report.cells.push_back(std::move(cell));
  }

  const std::vector<RunStatus> statuses = Campaign::for_each(
      items.size(), jobs, [&](std::size_t i) {
        TuneCellResult& cell = report.cells[items[i].cell];
        TuneCandidateResult& candidate =
            cell.candidates[items[i].candidate];
        CollectiveBenchSpec spec;
        spec.op = req.op;
        spec.message = cell.message;
        spec.scheme = req.scheme;
        spec.iterations = req.iterations;
        spec.warmup = req.warmup;
        spec.root = req.root;
        spec.algo = candidate.algo;
        spec.seg = candidate.seg;
        const CollectiveReport r = measure_collective(race_config, spec);
        candidate.status = r.status;
        candidate.latency = r.latency;
      });
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    // for_each converts an escaped exception into a kError status; fold it
    // into the candidate so the report never claims a silent success.
    if (!statuses[i].ok()) {
      report.cells[items[i].cell].candidates[items[i].candidate].status =
          statuses[i];
    }
  }

  // Winners: fastest ok candidate, first-in-table-order on exact ties —
  // a deterministic rule over deterministic simulations, so the table is
  // byte-identical at any `jobs`.
  for (TuneCellResult& cell : report.cells) {
    if (cell.skipped) continue;
    report.raced_cells += static_cast<int>(cell.candidates.size());
    const TuneCandidateResult* winner = nullptr;
    for (const TuneCandidateResult& candidate : cell.candidates) {
      if (!candidate.status.ok()) continue;
      if (winner == nullptr || candidate.latency < winner->latency) {
        winner = &candidate;
      }
    }
    if (winner == nullptr) continue;  // every candidate failed: no decision
    cell.decision =
        coll::TunedDecision{.algo = winner->algo, .seg = winner->seg};
    tuner.record(coll::TunedKey{.op = req.op,
                                .scheme = req.scheme,
                                .bytes = cell.tuned_bytes,
                                .fingerprint = fingerprint},
                 cell.decision);
  }
  return report;
}

}  // namespace pacc

// Structured run outcomes for the pacc:: facade.
//
// Every simulated run — Simulation::run, measure_collective,
// apps::run_workload, and each Campaign cell — reports a RunStatus instead
// of a bare bool, so callers (and the sweep engine's JSON artifacts) can
// tell a deadlocked program from one that hit the simulated-time safety
// bound or failed validation. See docs/CAMPAIGN.md for migration notes.
#pragma once

#include <string>
#include <utility>

namespace pacc {

/// How a simulated run ended.
enum class RunOutcome {
  kOk,           ///< every rank ran to completion
  kDeadlock,     ///< no pending event can ever resume the stuck ranks
                 ///< (or the quiescence watchdog saw zero progress)
  kTimeout,      ///< the simulated clock hit the max_sim_time safety bound
                 ///< (or a Campaign cell_timeout) while ranks were still live
  kError,        ///< validation failure or an exception escaped the run
  kFaulted,      ///< completed correctly, but fault injection disturbed the
                 ///< run (retransmits, flaps, transition failures, …)
  kUnreachable,  ///< a message exhausted its retry budget; the destination
                 ///< was declared unreachable and the run stopped
};

inline std::string to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kDeadlock:
      return "deadlock";
    case RunOutcome::kTimeout:
      return "timeout";
    case RunOutcome::kError:
      return "error";
    case RunOutcome::kFaulted:
      return "faulted";
    case RunOutcome::kUnreachable:
      return "unreachable";
  }
  return "?";
}

/// Machine-readable cause plus a human-readable detail message (stuck task
/// counts, an exception's what(), the offending op×scheme combination, …).
struct RunStatus {
  RunOutcome outcome = RunOutcome::kOk;
  std::string message;

  bool ok() const { return outcome == RunOutcome::kOk; }
  explicit operator bool() const { return ok(); }

  /// The run produced correct results — clean, or disturbed-but-recovered.
  /// Faulted runs validated their buffers; their numbers are real (if
  /// slower/hotter than a healthy run), so sweeps keep the cell.
  bool usable() const {
    return outcome == RunOutcome::kOk || outcome == RunOutcome::kFaulted;
  }

  static RunStatus error(std::string msg) {
    return {RunOutcome::kError, std::move(msg)};
  }

  /// "ok", or "timeout: 3 task(s) stuck" — for logs and table footers.
  std::string describe() const {
    std::string s = to_string(outcome);
    if (!message.empty()) s += ": " + message;
    return s;
  }
};

}  // namespace pacc

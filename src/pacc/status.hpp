// Structured run outcomes for the pacc:: facade.
//
// Every simulated run — Simulation::run, measure_collective,
// apps::run_workload, and each Campaign cell — reports a RunStatus instead
// of a bare bool, so callers (and the sweep engine's JSON artifacts) can
// tell a deadlocked program from one that hit the simulated-time safety
// bound or failed validation. See docs/CAMPAIGN.md for migration notes.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace pacc {

/// How a simulated run ended.
enum class RunOutcome {
  kOk,           ///< every rank ran to completion
  kDeadlock,     ///< no pending event can ever resume the stuck ranks
                 ///< (or the quiescence watchdog saw zero progress)
  kTimeout,      ///< the simulated clock hit the max_sim_time safety bound
                 ///< (or a Campaign cell_timeout) while ranks were still live
  kError,        ///< validation failure or an exception escaped the run
  kFaulted,      ///< completed correctly, but fault injection disturbed the
                 ///< run (retransmits, flaps, transition failures, …)
  kUnreachable,  ///< a message exhausted its retry budget; the destination
                 ///< was declared unreachable and the run stopped
  kCrashed,      ///< the cell's isolated worker process died (abort, OOM
                 ///< kill, sanitizer trap, …) and its retry budget ran out;
                 ///< the message records the exit code / signal. Only
                 ///< produced with CampaignOptions::isolate_cells — see
                 ///< docs/DURABILITY.md
};

inline std::string to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kOk:
      return "ok";
    case RunOutcome::kDeadlock:
      return "deadlock";
    case RunOutcome::kTimeout:
      return "timeout";
    case RunOutcome::kError:
      return "error";
    case RunOutcome::kFaulted:
      return "faulted";
    case RunOutcome::kUnreachable:
      return "unreachable";
    case RunOutcome::kCrashed:
      return "crashed";
  }
  return "?";
}

/// Inverse of to_string(RunOutcome) — journal replay and artifact loaders
/// turn persisted status strings back into outcomes with it.
inline std::optional<RunOutcome> parse_run_outcome(std::string_view name) {
  if (name == "ok") return RunOutcome::kOk;
  if (name == "deadlock") return RunOutcome::kDeadlock;
  if (name == "timeout") return RunOutcome::kTimeout;
  if (name == "error") return RunOutcome::kError;
  if (name == "faulted") return RunOutcome::kFaulted;
  if (name == "unreachable") return RunOutcome::kUnreachable;
  if (name == "crashed") return RunOutcome::kCrashed;
  return std::nullopt;
}

/// Machine-readable cause plus a human-readable detail message (stuck task
/// counts, an exception's what(), the offending op×scheme combination, …).
struct RunStatus {
  RunOutcome outcome = RunOutcome::kOk;
  std::string message;

  bool ok() const { return outcome == RunOutcome::kOk; }
  explicit operator bool() const { return ok(); }

  /// The run produced correct results — clean, or disturbed-but-recovered.
  /// Faulted runs validated their buffers; their numbers are real (if
  /// slower/hotter than a healthy run), so sweeps keep the cell. Crashed
  /// cells are NOT usable: the worker died before reporting, so there are
  /// no numbers — only the classification.
  bool usable() const {
    return outcome == RunOutcome::kOk || outcome == RunOutcome::kFaulted;
  }

  static RunStatus error(std::string msg) {
    return {RunOutcome::kError, std::move(msg)};
  }

  /// "ok", or "timeout: 3 task(s) stuck" — for logs and table footers.
  std::string describe() const {
    std::string s = to_string(outcome);
    if (!message.empty()) s += ": " + message;
    return s;
  }
};

}  // namespace pacc

#include "pacc/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "coll/plan.hpp"
#include "coll/tuner.hpp"
#include "pacc/journal.hpp"
#include "util/expect.hpp"
#include "util/table.hpp"

#if !defined(_WIN32)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace pacc {

namespace {

int resolve_jobs(int requested, std::size_t work) {
  int jobs = requested;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  const auto cap = static_cast<int>(std::max<std::size_t>(1, work));
  return std::clamp(jobs, 1, cap);
}

/// Work-stealing index scheduler. Indices are dealt round-robin into
/// per-worker deques; a worker pops its own share front-to-back and, once
/// empty, steals from the *back* of the next non-empty victim (classic
/// owner-front / thief-back discipline, which keeps neighbouring cells —
/// typically similar sizes — on their original worker). Plain mutexes per
/// deque: a cell is an entire simulation, so scheduling cost is noise; the
/// locks only have to be contention-correct.
class StealQueues {
 public:
  StealQueues(std::size_t count, int workers) : queues_(workers) {
    for (std::size_t i = 0; i < count; ++i) {
      queues_[i % static_cast<std::size_t>(workers)].items.push_back(i);
    }
  }

  /// Next index for `worker`; nullopt once every deque is empty.
  std::optional<std::size_t> next(int worker) {
    const int n = static_cast<int>(queues_.size());
    for (int k = 0; k < n; ++k) {
      Deque& q = queues_[static_cast<std::size_t>((worker + k) % n)];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.items.empty()) continue;
      std::size_t index;
      if (k == 0) {
        index = q.items.front();
        q.items.pop_front();
      } else {
        index = q.items.back();
        q.items.pop_back();
      }
      return index;
    }
    return std::nullopt;
  }

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::size_t> items;
  };
  std::vector<Deque> queues_;
};

/// Runs body(i) for every i in [0, count) on `jobs` workers. jobs == 1
/// stays on the calling thread (no pool, debugger-friendly).
void run_pool(std::size_t count, int jobs,
              const std::function<void(std::size_t)>& body) {
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  StealQueues queues(count, jobs);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&queues, &body, w] {
      while (const auto index = queues.next(w)) body(*index);
    });
  }
  for (std::thread& t : workers) t.join();
}

/// Guards the PACC_EXPECTS contracts measure_collective would abort on, so
/// a malformed cell degrades to a status instead of killing the sweep.
RunStatus validate(const SweepCell& cell) {
  if (cell.cluster.nodes < 1 || cell.cluster.ranks < 1 ||
      cell.cluster.ranks_per_node < 1) {
    return RunStatus::error("invalid cluster shape");
  }
  if (cell.bench.iterations < 1 || cell.bench.warmup < 0) {
    return RunStatus::error("invalid iterations/warmup");
  }
  if (cell.bench.message < 0) {
    return RunStatus::error("negative message size");
  }
  if (cell.cluster.faults.active() &&
      (cell.cluster.watchdog.interval <= Duration::zero() ||
       cell.cluster.watchdog.stall_ticks < 1)) {
    // The Watchdog constructor enforces these as hard contracts; degrade
    // to a status instead of letting one bad cell abort the sweep.
    return RunStatus::error("invalid watchdog thresholds");
  }
  if (!cell.cluster.fabric.empty() || cell.cluster.dragonfly.enabled()) {
    hw::ClusterShape shape;
    shape.nodes = cell.cluster.nodes;
    shape.nodes_per_rack = cell.cluster.nodes_per_rack;
    shape.fabric = cell.cluster.fabric;
    shape.dragonfly = cell.cluster.dragonfly;
    if (!shape.valid()) {
      return RunStatus::error("invalid fabric description");
    }
  }
  return {};
}

/// The journal's view of a finished cell: exactly the fields
/// write_campaign_json consumes, so a replay reproduces the artifact bytes.
CellRecord record_from(std::uint64_t key, const RunStatus& status,
                       const CollectiveReport& report) {
  CellRecord rec;
  rec.key = key;
  rec.status = status;
  rec.latency = report.latency;
  rec.energy_per_op = report.energy_per_op;
  rec.mean_power = report.mean_power;
  rec.collapse_multiplicity = report.collapse.multiplicity;
  rec.collapse_classes = report.collapse.classes;
  rec.faults = report.faults;
  rec.governor = report.governor;
  return rec;
}

void apply_record(const CellRecord& rec, CellResult& result) {
  result.status = rec.status;
  result.report.status = rec.status;
  result.report.latency = rec.latency;
  result.report.energy_per_op = rec.energy_per_op;
  result.report.mean_power = rec.mean_power;
  result.report.collapse.multiplicity = rec.collapse_multiplicity;
  result.report.collapse.classes = rec.collapse_classes;
  result.report.faults = rec.faults;
  result.report.governor = rec.governor;
}

/// Runs one cell with try/catch degradation to kError — the shared body of
/// the inline path and the forked child.
CellRecord execute_cell(const ClusterConfig& cluster,
                        const CollectiveBenchSpec& bench, std::uint64_t key,
                        CollectiveReport* report_out) {
  try {
    CollectiveReport report = measure_collective(cluster, bench);
    if (report_out != nullptr) *report_out = report;
    return record_from(key, report.status, report);
  } catch (const std::exception& e) {
    CellRecord rec;
    rec.key = key;
    rec.status = RunStatus::error(e.what());
    return rec;
  } catch (...) {
    CellRecord rec;
    rec.key = key;
    rec.status = RunStatus::error("unknown exception");
    return rec;
  }
}

#if !defined(_WIN32)

/// Forks a worker subprocess for one cell. The child runs the cell and
/// ships the finished CellRecord back over a pipe as one journal-format
/// line; the parent classifies any death (non-zero exit, signal, torn
/// record) and retries with doubling real-time backoff before settling on
/// kCrashed. Returns the record to store at the cell's slot.
CellRecord run_isolated(const ClusterConfig& cluster,
                        const CollectiveBenchSpec& bench, std::uint64_t key,
                        std::size_t index, const CampaignOptions& options) {
  const int attempts = 1 + std::max(0, options.crash_retries);
  int backoff_ms = std::max(1, options.crash_backoff_ms);
  std::string death;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    int fds[2];
    if (::pipe(fds) != 0) {
      CellRecord rec;
      rec.key = key;
      rec.status = RunStatus::error("pipe() failed for isolated cell");
      return rec;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      CellRecord rec;
      rec.key = key;
      rec.status = RunStatus::error("fork() failed for isolated cell");
      return rec;
    }
    if (pid == 0) {
      // Child: run the cell, ship the record, _exit without running any
      // parent-side destructors. The crash seam runs HERE so a deliberate
      // abort exercises exactly the production death path.
      ::close(fds[0]);
      if (options.before_cell) options.before_cell(index);
      const CellRecord rec = execute_cell(cluster, bench, key, nullptr);
      const std::string line = encode_cell_record(rec) + "\n";
      std::size_t written = 0;
      while (written < line.size()) {
        const ssize_t n =
            ::write(fds[1], line.data() + written, line.size() - written);
        if (n < 0) {
          if (errno == EINTR) continue;
          ::_exit(3);
        }
        written += static_cast<std::size_t>(n);
      }
      ::_exit(0);
    }
    // Parent: drain the pipe, reap, classify.
    ::close(fds[1]);
    std::string wire;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fds[0], buf, sizeof buf)) > 0 ||
           (n < 0 && errno == EINTR)) {
      if (n > 0) wire.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fds[0]);
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
      if (!wire.empty() && wire.back() == '\n') wire.pop_back();
      CellRecord rec;
      std::string decode_error;
      if (decode_cell_record(wire, &rec, &decode_error)) {
        rec.key = key;  // the child does not know about hash-less cells
        return rec;
      }
      death = "worker result corrupt (" + decode_error + ")";
    } else if (WIFSIGNALED(wstatus)) {
      death = "worker killed by signal " + std::to_string(WTERMSIG(wstatus));
    } else {
      death = "worker exited with code " +
              std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1);
    }
  }
  CellRecord rec;
  rec.key = key;
  rec.status = {RunOutcome::kCrashed,
                death + " after " + std::to_string(attempts) + " attempt(s)"};
  return rec;
}

#endif  // !_WIN32

void json_escape(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

SweepSpec& SweepSpec::add(const ClusterConfig& cluster,
                          const CollectiveBenchSpec& bench,
                          std::string label) {
  cells.push_back(SweepCell{std::move(label), cluster, bench});
  return *this;
}

SweepSpec SweepSpec::grid(const std::vector<ClusterConfig>& clusters,
                          const std::vector<CollectiveBenchSpec>& benches) {
  SweepSpec spec;
  spec.cells.reserve(clusters.size() * benches.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const CollectiveBenchSpec& bench : benches) {
      spec.add(clusters[c], bench,
               std::to_string(c) + "/" + coll::to_string(bench.op) + "/" +
                   coll::to_string(bench.scheme) + "/" +
                   format_bytes(bench.message));
    }
  }
  return spec;
}

Campaign::Campaign(SweepSpec spec, CampaignOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

std::vector<CellResult> Campaign::run() {
  const std::size_t total = spec_.cells.size();
  std::vector<CellResult> results(total);
  std::mutex progress_mu;
  std::size_t finished = 0;

  // One plan cache for the whole sweep: cells with equal cluster configs
  // (the common case — a sweep varies op/scheme/size over one cluster)
  // build each collective schedule once instead of once per cell. Cells
  // that arrived with their own cache keep it.
  const auto shared_plans = std::make_shared<coll::PlanCache>();

  const auto run_cell = [&](std::size_t i) {
    const SweepCell& cell = spec_.cells[i];
    CellResult& result = results[i];
    result.index = i;
    result.label = cell.label;
    if (cancelled()) {
      result.status = RunStatus::error("cancelled");
    } else if (RunStatus invalid = validate(cell); !invalid.ok()) {
      result.status = std::move(invalid);
    } else {
      ClusterConfig cluster = cell.cluster;
      if (!cluster.plan_cache) cluster.plan_cache = shared_plans;
      if (options_.cell_timeout) {
        cluster.max_sim_time = *options_.cell_timeout;
      }
      if (cluster.faults.active()) {
        // Seed from the CELL INDEX, never the worker: which thread runs a
        // cell depends on --jobs and steal timing, and the artifacts must
        // be identical for any --jobs value.
        cluster.faults.seed = fault::derive_cell_seed(cluster.faults.seed, i);
      }
      // Canonical key of the EFFECTIVE cell — hashed after the timeout
      // override and seed derivation above, so a journal written under one
      // --cell-timeout can never satisfy a sweep run under another.
      const std::optional<std::uint64_t> key =
          (options_.journal || options_.result_cache)
              ? canonical_cell_hash(cluster, cell.bench)
              : std::nullopt;

      bool replayed = false;
      if (key && options_.resume && options_.journal) {
        if (const auto rec = options_.journal->lookup(*key)) {
          apply_record(*rec, result);
          result.source = CellSource::kJournal;
          replayed = true;
        }
      }
      if (!replayed && key && options_.result_cache) {
        if (const auto rec = options_.result_cache->lookup(*key)) {
          apply_record(*rec, result);
          result.source = CellSource::kCache;
          // The journal must still cover cache-served cells, or a crash
          // after this point would re-run them against a cache that may
          // have been pruned meanwhile.
          if (options_.journal) options_.journal->append(*rec);
          replayed = true;
        }
      }
      if (!replayed) {
        CellRecord rec;
        if (options_.isolate_cells) {
#if defined(_WIN32)
          rec.status =
              RunStatus::error("process isolation unsupported on this platform");
#else
          // Fork safety at jobs > 1: another worker thread may hold the
          // shared plan cache's or tuner's mutex at fork time, and the
          // child's copy of that mutex would stay locked forever. Hand the
          // child a private plan cache (plans are pure — only speed is
          // lost) and a content-equal tuner snapshot with a fresh mutex
          // (same entries, same fingerprint, same dispatch).
          cluster.plan_cache = std::make_shared<coll::PlanCache>();
          if (cluster.tuner) {
            auto snapshot = std::make_shared<coll::Tuner>();
            std::ostringstream serialized;
            cluster.tuner->save(serialized);
            std::istringstream replay(serialized.str());
            snapshot->load(replay);
            cluster.tuner = snapshot;
          }
          rec = run_isolated(cluster, cell.bench, key.value_or(0), i, options_);
#endif
          apply_record(rec, result);
        } else {
          if (options_.before_cell) options_.before_cell(i);
          rec = execute_cell(cluster, cell.bench, key.value_or(0),
                             &result.report);
          result.status = rec.status;
        }
        // Journal the completed cell before the sweep moves on. Crashed
        // cells are deliberately NOT persisted: a resume gives a transient
        // OOM another chance, and a deterministic abort reclassifies
        // identically anyway.
        if (key && rec.status.outcome != RunOutcome::kCrashed) {
          if (options_.journal) options_.journal->append(rec);
          if (options_.result_cache) options_.result_cache->append(rec);
        }
      }
    }
    if (options_.on_progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      ++finished;
      const CampaignProgress progress{finished, total, &result};
      options_.on_progress(progress);
    }
  };

  run_pool(total, resolve_jobs(options_.jobs, total), run_cell);
  return results;
}

std::vector<RunStatus> Campaign::for_each(
    std::size_t count, int jobs, const std::function<void(std::size_t)>& fn) {
  std::vector<RunStatus> statuses(count);
  run_pool(count, resolve_jobs(jobs, count), [&](std::size_t i) {
    try {
      fn(i);
    } catch (const std::exception& e) {
      statuses[i] = RunStatus::error(e.what());
    } catch (...) {
      statuses[i] = RunStatus::error("unknown exception");
    }
  });
  return statuses;
}

void write_campaign_json(std::ostream& out, const SweepSpec& spec,
                         const std::vector<CellResult>& results) {
  PACC_EXPECTS(spec.cells.size() == results.size());
  out << "{\n  \"schema\": \"pacc-campaign-v1\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepCell& cell = spec.cells[i];
    const CellResult& r = results[i];
    std::string label, message;
    json_escape(label, r.label);
    json_escape(message, r.status.message);
    // Fault-stat fields are emitted unconditionally (zeros on a fault-free
    // cell) so the schema — and a zero-rate run's artifact bytes — never
    // depend on whether fault injection was compiled in or armed.
    const fault::FaultStats& f = r.report.faults;
    // Governor fields follow the same rule: "none" / zeros on an
    // ungoverned cell, so the schema never depends on the configuration.
    const mpi::GovernorStats& g = r.report.governor;
    const std::string governor_name =
        cell.cluster.governor.enabled
            ? mpi::to_string(cell.cluster.governor.kind)
            : "none";
    char buf[1152];
    std::snprintf(
        buf, sizeof buf,
        "    {\"index\": %zu, \"label\": \"%s\", \"op\": \"%s\", "
        "\"scheme\": \"%s\", \"ranks\": %d, \"ppn\": %d, \"nodes\": %d, "
        "\"message\": %lld, \"iterations\": %d, \"warmup\": %d, "
        "\"status\": \"%s\", \"status_message\": \"%s\", "
        "\"latency_us\": %.3f, \"energy_per_op_j\": %.6f, "
        "\"mean_power_w\": %.3f, "
        "\"collapse_multiplicity\": %d, \"collapse_classes\": %d, "
        "\"fault_drops\": %llu, \"fault_delays\": %llu, "
        "\"fault_retransmits\": %llu, \"fault_abandoned\": %llu, "
        "\"fault_link_flaps\": %llu, \"fault_flows_preempted\": %llu, "
        "\"fault_transition_failures\": %llu, "
        "\"fault_transition_stretches\": %llu, "
        "\"fault_scheme_fallbacks\": %llu, "
        "\"governor\": \"%s\", \"gov_armed_waits\": %llu, "
        "\"gov_short_waits\": %llu, \"gov_downclocks\": %llu, "
        "\"gov_restores\": %llu, \"gov_park_failures\": %llu, "
        "\"gov_restore_failures\": %llu, \"gov_scheme_clamps\": %llu, "
        "\"gov_cap_updates\": %llu}%s\n",
        i, label.c_str(), coll::to_string(cell.bench.op).c_str(),
        coll::to_string(cell.bench.scheme).c_str(), cell.cluster.ranks,
        cell.cluster.ranks_per_node, cell.cluster.nodes,
        static_cast<long long>(cell.bench.message), cell.bench.iterations,
        cell.bench.warmup, to_string(r.status.outcome).c_str(),
        message.c_str(), r.report.latency.us(), r.report.energy_per_op,
        r.report.mean_power, r.report.collapse.multiplicity,
        r.report.collapse.classes, static_cast<unsigned long long>(f.drops),
        static_cast<unsigned long long>(f.delays),
        static_cast<unsigned long long>(f.retransmits),
        static_cast<unsigned long long>(f.messages_abandoned),
        static_cast<unsigned long long>(f.link_flaps),
        static_cast<unsigned long long>(f.flows_preempted),
        static_cast<unsigned long long>(f.transition_failures),
        static_cast<unsigned long long>(f.transition_stretches),
        static_cast<unsigned long long>(f.scheme_fallbacks),
        governor_name.c_str(),
        static_cast<unsigned long long>(g.armed_waits),
        static_cast<unsigned long long>(g.short_waits),
        static_cast<unsigned long long>(g.downclocks),
        static_cast<unsigned long long>(g.restores),
        static_cast<unsigned long long>(g.park_failures),
        static_cast<unsigned long long>(g.restore_failures),
        static_cast<unsigned long long>(g.scheme_clamps),
        static_cast<unsigned long long>(g.cap_updates),
        i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

namespace {

// Line-oriented field extraction, mirroring the tuned-table loader: the
// artifact is emitted one cell object per line, so a per-line scan is a
// complete parser for everything this library writes.

std::optional<std::string> field_string(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = line.find('"', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  std::string value;
  for (auto at = pos + 1; at < line.size(); ++at) {
    const char c = line[at];
    if (c == '"') return value;
    if (c == '\\' && at + 1 < line.size()) {
      ++at;
      switch (line[at]) {
        case 'n':
          value += '\n';
          break;
        case 'u':
          // \u00XX — the only form json_escape emits.
          if (at + 4 < line.size()) {
            value += static_cast<char>(
                std::strtol(line.substr(at + 1, 4).c_str(), nullptr, 16));
            at += 4;
          }
          break;
        default:
          value += line[at];
      }
      continue;
    }
    value += c;
  }
  return std::nullopt;  // unterminated string
}

std::optional<double> field_double(const std::string& line,
                                   const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  const char* begin = line.c_str() + pos;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  return value;
}

std::string trimmed_line(const std::string& line) {
  std::string t = line;
  t.erase(0, t.find_first_not_of(" \t\r"));
  const auto last = t.find_last_not_of(" \t\r");
  t.erase(last == std::string::npos ? 0 : last + 1);
  return t;
}

}  // namespace

std::optional<LoadedCampaign> load_campaign_json(std::istream& in,
                                                 std::string* error) {
  const auto reject = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
  };
  LoadedCampaign loaded;
  std::string line;
  bool schema_seen = false;
  bool array_closed = false;
  bool object_closed = false;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string at_line = " at line " + std::to_string(line_no);
    const std::string t = trimmed_line(line);
    if (!schema_seen) {
      if (const auto schema = field_string(line, "schema")) {
        if (*schema != "pacc-campaign-v1") {
          reject("unsupported campaign schema: " + *schema);
          return std::nullopt;
        }
        schema_seen = true;
      } else if (t != "{" && !t.empty()) {
        reject("expected pacc-campaign-v1 schema header, got" + at_line + ": " +
               line);
        return std::nullopt;
      }
      continue;
    }
    if (object_closed) {
      if (t.empty()) continue;
      reject("trailing content after campaign artifact footer" + at_line);
      return std::nullopt;
    }
    if (t == "]") {
      array_closed = true;
      continue;
    }
    if (t == "}") {
      if (!array_closed) {
        reject("campaign artifact closes before its cell array" + at_line);
        return std::nullopt;
      }
      object_closed = true;
      continue;
    }
    if (line.find("\"index\":") != std::string::npos) {
      if (array_closed) {
        reject("cell entry after the closing bracket" + at_line);
        return std::nullopt;
      }
      const auto index = field_double(line, "index");
      const auto label = field_string(line, "label");
      const auto status_name = field_string(line, "status");
      const auto message = field_string(line, "status_message");
      const auto latency = field_double(line, "latency_us");
      const auto energy = field_double(line, "energy_per_op_j");
      const auto power = field_double(line, "mean_power_w");
      if (!index || !label || !status_name || !message || !latency ||
          !energy || !power) {
        reject("malformed campaign cell" + at_line + ": " + line);
        return std::nullopt;
      }
      const auto outcome = parse_run_outcome(*status_name);
      if (!outcome) {
        reject("unknown cell status \"" + *status_name + "\"" + at_line);
        return std::nullopt;
      }
      if (static_cast<std::size_t>(*index) != loaded.cells.size()) {
        reject("cell index " + std::to_string(static_cast<long long>(*index)) +
               " out of order (expected " +
               std::to_string(loaded.cells.size()) + ")" + at_line);
        return std::nullopt;
      }
      LoadedCampaignCell cell;
      cell.index = static_cast<std::size_t>(*index);
      cell.label = *label;
      cell.status = {*outcome, *message};
      cell.latency_us = *latency;
      cell.energy_per_op_j = *energy;
      cell.mean_power_w = *power;
      loaded.cells.push_back(std::move(cell));
      continue;
    }
    if (t == "\"cells\": [" || t.empty()) continue;
    reject("unrecognized content in campaign artifact" + at_line + ": " +
           line);
    return std::nullopt;
  }
  if (!schema_seen) {
    reject("missing pacc-campaign-v1 schema header");
    return std::nullopt;
  }
  if (!object_closed) {
    reject("truncated campaign artifact: missing footer");
    return std::nullopt;
  }
  return loaded;
}

}  // namespace pacc

#include "pacc/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "coll/plan.hpp"
#include "util/expect.hpp"
#include "util/table.hpp"

namespace pacc {

namespace {

int resolve_jobs(int requested, std::size_t work) {
  int jobs = requested;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }
  const auto cap = static_cast<int>(std::max<std::size_t>(1, work));
  return std::clamp(jobs, 1, cap);
}

/// Work-stealing index scheduler. Indices are dealt round-robin into
/// per-worker deques; a worker pops its own share front-to-back and, once
/// empty, steals from the *back* of the next non-empty victim (classic
/// owner-front / thief-back discipline, which keeps neighbouring cells —
/// typically similar sizes — on their original worker). Plain mutexes per
/// deque: a cell is an entire simulation, so scheduling cost is noise; the
/// locks only have to be contention-correct.
class StealQueues {
 public:
  StealQueues(std::size_t count, int workers) : queues_(workers) {
    for (std::size_t i = 0; i < count; ++i) {
      queues_[i % static_cast<std::size_t>(workers)].items.push_back(i);
    }
  }

  /// Next index for `worker`; nullopt once every deque is empty.
  std::optional<std::size_t> next(int worker) {
    const int n = static_cast<int>(queues_.size());
    for (int k = 0; k < n; ++k) {
      Deque& q = queues_[static_cast<std::size_t>((worker + k) % n)];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.items.empty()) continue;
      std::size_t index;
      if (k == 0) {
        index = q.items.front();
        q.items.pop_front();
      } else {
        index = q.items.back();
        q.items.pop_back();
      }
      return index;
    }
    return std::nullopt;
  }

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::size_t> items;
  };
  std::vector<Deque> queues_;
};

/// Runs body(i) for every i in [0, count) on `jobs` workers. jobs == 1
/// stays on the calling thread (no pool, debugger-friendly).
void run_pool(std::size_t count, int jobs,
              const std::function<void(std::size_t)>& body) {
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  StealQueues queues(count, jobs);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&queues, &body, w] {
      while (const auto index = queues.next(w)) body(*index);
    });
  }
  for (std::thread& t : workers) t.join();
}

/// Guards the PACC_EXPECTS contracts measure_collective would abort on, so
/// a malformed cell degrades to a status instead of killing the sweep.
RunStatus validate(const SweepCell& cell) {
  if (cell.cluster.nodes < 1 || cell.cluster.ranks < 1 ||
      cell.cluster.ranks_per_node < 1) {
    return RunStatus::error("invalid cluster shape");
  }
  if (cell.bench.iterations < 1 || cell.bench.warmup < 0) {
    return RunStatus::error("invalid iterations/warmup");
  }
  if (cell.bench.message < 0) {
    return RunStatus::error("negative message size");
  }
  if (!cell.cluster.fabric.empty()) {
    hw::ClusterShape shape;
    shape.nodes = cell.cluster.nodes;
    shape.nodes_per_rack = cell.cluster.nodes_per_rack;
    shape.fabric = cell.cluster.fabric;
    if (!shape.valid()) {
      return RunStatus::error("invalid fabric description");
    }
  }
  return {};
}

void json_escape(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

SweepSpec& SweepSpec::add(const ClusterConfig& cluster,
                          const CollectiveBenchSpec& bench,
                          std::string label) {
  cells.push_back(SweepCell{std::move(label), cluster, bench});
  return *this;
}

SweepSpec SweepSpec::grid(const std::vector<ClusterConfig>& clusters,
                          const std::vector<CollectiveBenchSpec>& benches) {
  SweepSpec spec;
  spec.cells.reserve(clusters.size() * benches.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const CollectiveBenchSpec& bench : benches) {
      spec.add(clusters[c], bench,
               std::to_string(c) + "/" + coll::to_string(bench.op) + "/" +
                   coll::to_string(bench.scheme) + "/" +
                   format_bytes(bench.message));
    }
  }
  return spec;
}

Campaign::Campaign(SweepSpec spec, CampaignOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

std::vector<CellResult> Campaign::run() {
  const std::size_t total = spec_.cells.size();
  std::vector<CellResult> results(total);
  std::mutex progress_mu;
  std::size_t finished = 0;

  // One plan cache for the whole sweep: cells with equal cluster configs
  // (the common case — a sweep varies op/scheme/size over one cluster)
  // build each collective schedule once instead of once per cell. Cells
  // that arrived with their own cache keep it.
  const auto shared_plans = std::make_shared<coll::PlanCache>();

  const auto run_cell = [&](std::size_t i) {
    const SweepCell& cell = spec_.cells[i];
    CellResult& result = results[i];
    result.index = i;
    result.label = cell.label;
    if (cancelled()) {
      result.status = RunStatus::error("cancelled");
    } else if (RunStatus invalid = validate(cell); !invalid.ok()) {
      result.status = std::move(invalid);
    } else {
      ClusterConfig cluster = cell.cluster;
      if (!cluster.plan_cache) cluster.plan_cache = shared_plans;
      if (options_.cell_timeout) {
        cluster.max_sim_time = *options_.cell_timeout;
      }
      if (cluster.faults.active()) {
        // Seed from the CELL INDEX, never the worker: which thread runs a
        // cell depends on --jobs and steal timing, and the artifacts must
        // be identical for any --jobs value.
        cluster.faults.seed = fault::derive_cell_seed(cluster.faults.seed, i);
      }
      try {
        result.report = measure_collective(cluster, cell.bench);
        result.status = result.report.status;
      } catch (const std::exception& e) {
        result.status = RunStatus::error(e.what());
      } catch (...) {
        result.status = RunStatus::error("unknown exception");
      }
    }
    if (options_.on_progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      ++finished;
      const CampaignProgress progress{finished, total, &result};
      options_.on_progress(progress);
    }
  };

  run_pool(total, resolve_jobs(options_.jobs, total), run_cell);
  return results;
}

std::vector<RunStatus> Campaign::for_each(
    std::size_t count, int jobs, const std::function<void(std::size_t)>& fn) {
  std::vector<RunStatus> statuses(count);
  run_pool(count, resolve_jobs(jobs, count), [&](std::size_t i) {
    try {
      fn(i);
    } catch (const std::exception& e) {
      statuses[i] = RunStatus::error(e.what());
    } catch (...) {
      statuses[i] = RunStatus::error("unknown exception");
    }
  });
  return statuses;
}

void write_campaign_json(std::ostream& out, const SweepSpec& spec,
                         const std::vector<CellResult>& results) {
  PACC_EXPECTS(spec.cells.size() == results.size());
  out << "{\n  \"schema\": \"pacc-campaign-v1\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepCell& cell = spec.cells[i];
    const CellResult& r = results[i];
    std::string label, message;
    json_escape(label, r.label);
    json_escape(message, r.status.message);
    // Fault-stat fields are emitted unconditionally (zeros on a fault-free
    // cell) so the schema — and a zero-rate run's artifact bytes — never
    // depend on whether fault injection was compiled in or armed.
    const fault::FaultStats& f = r.report.faults;
    // Governor fields follow the same rule: "none" / zeros on an
    // ungoverned cell, so the schema never depends on the configuration.
    const mpi::GovernorStats& g = r.report.governor;
    const std::string governor_name =
        cell.cluster.governor.enabled
            ? mpi::to_string(cell.cluster.governor.kind)
            : "none";
    char buf[1152];
    std::snprintf(
        buf, sizeof buf,
        "    {\"index\": %zu, \"label\": \"%s\", \"op\": \"%s\", "
        "\"scheme\": \"%s\", \"ranks\": %d, \"ppn\": %d, \"nodes\": %d, "
        "\"message\": %lld, \"iterations\": %d, \"warmup\": %d, "
        "\"status\": \"%s\", \"status_message\": \"%s\", "
        "\"latency_us\": %.3f, \"energy_per_op_j\": %.6f, "
        "\"mean_power_w\": %.3f, "
        "\"collapse_multiplicity\": %d, \"collapse_classes\": %d, "
        "\"fault_drops\": %llu, \"fault_delays\": %llu, "
        "\"fault_retransmits\": %llu, \"fault_abandoned\": %llu, "
        "\"fault_link_flaps\": %llu, \"fault_flows_preempted\": %llu, "
        "\"fault_transition_failures\": %llu, "
        "\"fault_transition_stretches\": %llu, "
        "\"fault_scheme_fallbacks\": %llu, "
        "\"governor\": \"%s\", \"gov_armed_waits\": %llu, "
        "\"gov_short_waits\": %llu, \"gov_downclocks\": %llu, "
        "\"gov_restores\": %llu, \"gov_park_failures\": %llu, "
        "\"gov_restore_failures\": %llu, \"gov_scheme_clamps\": %llu, "
        "\"gov_cap_updates\": %llu}%s\n",
        i, label.c_str(), coll::to_string(cell.bench.op).c_str(),
        coll::to_string(cell.bench.scheme).c_str(), cell.cluster.ranks,
        cell.cluster.ranks_per_node, cell.cluster.nodes,
        static_cast<long long>(cell.bench.message), cell.bench.iterations,
        cell.bench.warmup, to_string(r.status.outcome).c_str(),
        message.c_str(), r.report.latency.us(), r.report.energy_per_op,
        r.report.mean_power, r.report.collapse.multiplicity,
        r.report.collapse.classes, static_cast<unsigned long long>(f.drops),
        static_cast<unsigned long long>(f.delays),
        static_cast<unsigned long long>(f.retransmits),
        static_cast<unsigned long long>(f.messages_abandoned),
        static_cast<unsigned long long>(f.link_flaps),
        static_cast<unsigned long long>(f.flows_preempted),
        static_cast<unsigned long long>(f.transition_failures),
        static_cast<unsigned long long>(f.transition_stretches),
        static_cast<unsigned long long>(f.scheme_fallbacks),
        governor_name.c_str(),
        static_cast<unsigned long long>(g.armed_waits),
        static_cast<unsigned long long>(g.short_waits),
        static_cast<unsigned long long>(g.downclocks),
        static_cast<unsigned long long>(g.restores),
        static_cast<unsigned long long>(g.park_failures),
        static_cast<unsigned long long>(g.restore_failures),
        static_cast<unsigned long long>(g.scheme_clamps),
        static_cast<unsigned long long>(g.cap_updates),
        i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace pacc

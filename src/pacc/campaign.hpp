// Multi-threaded sweep engine for the pacc:: facade.
//
// Every figure in the paper is a matrix of *independent* simulated runs —
// message sizes × power schemes × cluster shapes. A Campaign fans such a
// matrix (a declarative SweepSpec) out across a work-stealing worker pool:
// each cell builds its own single-threaded Simulation, so cells parallelise
// without sharing anything, and results are aggregated in cell order —
// byte-for-byte identical whether run on 1 or N threads.
//
//   pacc::SweepSpec sweep = pacc::SweepSpec::grid(clusters, specs);
//   auto results = pacc::Campaign(sweep, {.jobs = 8}).run();
//   pacc::write_campaign_json(file, sweep, results);   // "pacc-campaign-v1"
//
// Failure isolation: a deadlocked, timed-out or invalid cell yields a
// structured RunStatus at its slot; the sweep always completes. See
// docs/CAMPAIGN.md for the execution and determinism model.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "pacc/simulation.hpp"
#include "pacc/status.hpp"

namespace pacc {

/// One cell of a sweep: a cluster to stand up and a measurement to run on
/// it. `label` is free-form and lands in results and JSON artifacts.
struct SweepCell {
  std::string label;
  ClusterConfig cluster;
  CollectiveBenchSpec bench;
};

/// Declarative run matrix. Build cell-by-cell with add() or as a cartesian
/// grid; cell order defines result and artifact order.
struct SweepSpec {
  std::vector<SweepCell> cells;

  SweepSpec& add(const ClusterConfig& cluster, const CollectiveBenchSpec& bench,
                 std::string label = "");

  /// Cartesian product, cluster-major: for each cluster, every bench spec.
  /// Labels are "<cluster index>/<op>/<scheme>/<message>" unless the caller
  /// relabels afterwards.
  static SweepSpec grid(const std::vector<ClusterConfig>& clusters,
                        const std::vector<CollectiveBenchSpec>& benches);

  std::size_t size() const { return cells.size(); }
};

/// Outcome of one cell, stored at the cell's index regardless of which
/// worker ran it or when it finished.
struct CellResult {
  std::size_t index = 0;
  std::string label;
  RunStatus status;
  /// Measurement payload; meaningful only when status.ok().
  CollectiveReport report;
};

/// Argument of CampaignOptions::on_progress.
struct CampaignProgress {
  std::size_t finished = 0;        ///< cells done so far (including failed)
  std::size_t total = 0;
  const CellResult* last = nullptr;  ///< the cell that just finished
};

struct CampaignOptions {
  /// Worker threads; <= 0 means one per hardware thread. The aggregated
  /// results are byte-identical for every value.
  int jobs = 1;
  /// Overrides each cell's ClusterConfig::max_sim_time, so a deadlocked or
  /// runaway cell yields kTimeout quickly instead of simulating the
  /// default hour-long safety bound.
  std::optional<Duration> cell_timeout;
  /// Called after every finished cell, serialized under an internal lock
  /// (safe to print or cancel() from). Completion order, not cell order.
  std::function<void(const CampaignProgress&)> on_progress;
};

class Campaign {
 public:
  explicit Campaign(SweepSpec spec, CampaignOptions options = {});

  /// Runs every cell to a result (blocking). Cell failures never throw and
  /// never abort the sweep — they come back as RunStatus entries.
  std::vector<CellResult> run();

  /// Thread-safe: cells already running finish normally; cells not yet
  /// started complete immediately as kError/"cancelled".
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  const SweepSpec& spec() const { return spec_; }
  const CampaignOptions& options() const { return options_; }

  /// Fans `count` arbitrary independent thunks over the same work-stealing
  /// pool (for sweeps that are not measure_collective cells — workload
  /// runs, custom simulation bodies). Exceptions thrown by `fn(i)` become
  /// kError statuses at index i; everything else is kOk.
  static std::vector<RunStatus> for_each(
      std::size_t count, int jobs, const std::function<void(std::size_t)>& fn);

 private:
  SweepSpec spec_;
  CampaignOptions options_;
  std::atomic<bool> cancelled_{false};
};

/// Writes results as a machine-readable artifact in the BENCH_micro.json
/// style: {"schema": "pacc-campaign-v1", "cells": [...]} with one entry
/// per cell in index order and fixed-precision number formatting, so the
/// bytes do not depend on CampaignOptions::jobs.
void write_campaign_json(std::ostream& out, const SweepSpec& spec,
                         const std::vector<CellResult>& results);

}  // namespace pacc

// Multi-threaded sweep engine for the pacc:: facade.
//
// Every figure in the paper is a matrix of *independent* simulated runs —
// message sizes × power schemes × cluster shapes. A Campaign fans such a
// matrix (a declarative SweepSpec) out across a work-stealing worker pool:
// each cell builds its own single-threaded Simulation, so cells parallelise
// without sharing anything, and results are aggregated in cell order —
// byte-for-byte identical whether run on 1 or N threads.
//
//   pacc::SweepSpec sweep = pacc::SweepSpec::grid(clusters, specs);
//   auto results = pacc::Campaign(sweep, {.jobs = 8}).run();
//   pacc::write_campaign_json(file, sweep, results);   // "pacc-campaign-v1"
//
// Failure isolation: a deadlocked, timed-out or invalid cell yields a
// structured RunStatus at its slot; the sweep always completes. See
// docs/CAMPAIGN.md for the execution and determinism model.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pacc/simulation.hpp"
#include "pacc/status.hpp"

namespace pacc {

class CellJournal;  // pacc/journal.hpp

/// One cell of a sweep: a cluster to stand up and a measurement to run on
/// it. `label` is free-form and lands in results and JSON artifacts.
struct SweepCell {
  std::string label;
  ClusterConfig cluster;
  CollectiveBenchSpec bench;
};

/// Declarative run matrix. Build cell-by-cell with add() or as a cartesian
/// grid; cell order defines result and artifact order.
struct SweepSpec {
  std::vector<SweepCell> cells;

  SweepSpec& add(const ClusterConfig& cluster, const CollectiveBenchSpec& bench,
                 std::string label = "");

  /// Cartesian product, cluster-major: for each cluster, every bench spec.
  /// Labels are "<cluster index>/<op>/<scheme>/<message>" unless the caller
  /// relabels afterwards.
  static SweepSpec grid(const std::vector<ClusterConfig>& clusters,
                        const std::vector<CollectiveBenchSpec>& benches);

  std::size_t size() const { return cells.size(); }
};

/// Where a cell's numbers came from. Deliberately NOT part of the JSON
/// artifact: a replayed cell must be byte-identical to a fresh run.
enum class CellSource {
  kRun,      ///< executed by this Campaign (inline or isolated worker)
  kJournal,  ///< replayed from CampaignOptions::journal under resume
  kCache,    ///< served by CampaignOptions::result_cache
};

/// Outcome of one cell, stored at the cell's index regardless of which
/// worker ran it or when it finished.
struct CellResult {
  std::size_t index = 0;
  std::string label;
  RunStatus status;
  /// Measurement payload; meaningful only when status.ok().
  CollectiveReport report;
  /// Provenance (fresh run / journal replay / cache hit).
  CellSource source = CellSource::kRun;
};

/// Argument of CampaignOptions::on_progress.
struct CampaignProgress {
  std::size_t finished = 0;        ///< cells done so far (including failed)
  std::size_t total = 0;
  const CellResult* last = nullptr;  ///< the cell that just finished
};

struct CampaignOptions {
  /// Worker threads; <= 0 means one per hardware thread. The aggregated
  /// results are byte-identical for every value.
  int jobs = 1;
  /// Overrides each cell's ClusterConfig::max_sim_time, so a deadlocked or
  /// runaway cell yields kTimeout quickly instead of simulating the
  /// default hour-long safety bound.
  std::optional<Duration> cell_timeout;
  /// Called after every finished cell, serialized under an internal lock
  /// (safe to print or cancel() from). Completion order, not cell order.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Write-ahead cell journal (pacc/journal.hpp): every executed cell is
  /// durably appended before the sweep moves on, keyed by its canonical
  /// config hash. With `resume` also set, cells whose key the journal
  /// already holds are replayed instead of re-run — a SIGKILLed sweep
  /// restarted any number of times converges on the byte-identical
  /// artifact of an uninterrupted run, at any `jobs`. See
  /// docs/DURABILITY.md.
  std::shared_ptr<CellJournal> journal;
  /// Skip cells already present in `journal` (their results are replayed
  /// from it). Without a journal this flag has no effect.
  bool resume = false;
  /// Cross-campaign content-addressed result cache — the same file format
  /// as the journal, but long-lived and shared across sweeps: any cell
  /// whose canonical hash is present is served from the cache, and fresh
  /// results are appended for future campaigns. Distinct from `journal`
  /// (which is per-sweep and consulted only under `resume`).
  std::shared_ptr<CellJournal> result_cache;
  /// Execute each cell in a forked worker subprocess, so an abort, OOM
  /// kill or sanitizer trap inside one simulation is confined to that
  /// cell: the death is classified as RunStatus kCrashed (message = exit
  /// code / signal) after `crash_retries` bounded retries, and every other
  /// cell completes normally. POSIX only; elsewhere cells degrade to
  /// kError("process isolation unsupported"). Costs one fork + pipe per
  /// cell.
  bool isolate_cells = false;
  /// Extra attempts after a crashed worker before the cell is classified
  /// kCrashed (transient OOM kills deserve a second chance; deterministic
  /// aborts fail all attempts and classify identically every run).
  int crash_retries = 1;
  /// Real-time backoff before the first crash retry; doubles per retry.
  int crash_backoff_ms = 50;
  /// Test seam: runs at the start of every executed cell — inside the
  /// forked child when `isolate_cells` is set — with the cell index.
  /// Deliberately crashing here is how the crash-isolation paths are
  /// exercised (tests, paccbench --crash-cell, CI).
  std::function<void(std::size_t)> before_cell;
};

class Campaign {
 public:
  explicit Campaign(SweepSpec spec, CampaignOptions options = {});

  /// Runs every cell to a result (blocking). Cell failures never throw and
  /// never abort the sweep — they come back as RunStatus entries.
  std::vector<CellResult> run();

  /// Thread-safe: cells already running finish normally; cells not yet
  /// started complete immediately as kError/"cancelled".
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  const SweepSpec& spec() const { return spec_; }
  const CampaignOptions& options() const { return options_; }

  /// Fans `count` arbitrary independent thunks over the same work-stealing
  /// pool (for sweeps that are not measure_collective cells — workload
  /// runs, custom simulation bodies). Exceptions thrown by `fn(i)` become
  /// kError statuses at index i; everything else is kOk.
  static std::vector<RunStatus> for_each(
      std::size_t count, int jobs, const std::function<void(std::size_t)>& fn);

 private:
  SweepSpec spec_;
  CampaignOptions options_;
  std::atomic<bool> cancelled_{false};
};

/// Writes results as a machine-readable artifact in the BENCH_micro.json
/// style: {"schema": "pacc-campaign-v1", "cells": [...]} with one entry
/// per cell in index order and fixed-precision number formatting, so the
/// bytes do not depend on CampaignOptions::jobs.
void write_campaign_json(std::ostream& out, const SweepSpec& spec,
                         const std::vector<CellResult>& results);

/// One parsed artifact cell — the subset of fields a consumer needs to
/// audit an artifact (plots re-read the raw JSON themselves).
struct LoadedCampaignCell {
  std::size_t index = 0;
  std::string label;
  RunStatus status;
  double latency_us = 0.0;
  double energy_per_op_j = 0.0;
  double mean_power_w = 0.0;
};

struct LoadedCampaign {
  std::vector<LoadedCampaignCell> cells;
};

/// Strict loader for "pacc-campaign-v1" artifacts (the exact format
/// write_campaign_json emits). Rejects — with a descriptive error —
/// anything a crash or corruption could produce: a missing or foreign
/// schema header, a malformed or out-of-order cell line, a truncated file
/// (missing footer), or trailing garbage. paccbench exposes it as
/// --verify-artifact.
std::optional<LoadedCampaign> load_campaign_json(std::istream& in,
                                                 std::string* error = nullptr);

}  // namespace pacc

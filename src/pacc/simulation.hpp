// High-level facade: build a simulated cluster, run MPI-style programs on
// it, and read back latency / power / energy reports.
//
// Quickstart:
//
//   pacc::ClusterConfig cfg;                      // the paper's testbed
//   cfg.ranks = 64; cfg.ranks_per_node = 8;
//   pacc::Simulation sim(cfg);
//   auto report = sim.run([&](pacc::mpi::Rank& r) {
//     return body(r, sim.runtime().world());      // any Task<> coroutine
//   });
//   report.elapsed, report.energy, report.power.samples() …
//
// For OSU-style collective measurements use measure_collective(), which
// handles warmup, timing barriers and per-iteration averaging.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "coll/algo.hpp"
#include "fault/fault.hpp"
#include "hw/machine.hpp"
#include "hw/meter.hpp"
#include "mpi/runtime.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "pacc/presets.hpp"
#include "pacc/status.hpp"
#include "sim/engine.hpp"
#include "sim/watchdog.hpp"
#include "util/stats.hpp"

namespace pacc {

/// Observability knobs, grouped so ClusterConfig stays a flat description
/// of the cluster itself. Designated-initializer friendly:
///   cfg.obs = {.trace = true};
struct ObsOptions {
  /// Attach an obs::TraceRecorder: Chrome-trace spans for collective
  /// phases / power transitions / sends+recvs, plus exact per-phase energy
  /// attribution. Off by default — the hooks then cost one pointer test.
  bool trace = false;
  /// Record per-node meter channels in addition to the system series.
  bool per_node_meter = false;
  /// Clamp-meter sampling period (the paper's MASTECH MS2205 samples at
  /// 0.5 s; shorten for finer power series on sub-second runs).
  Duration meter_interval = Duration::millis(500.0);
};

/// Everything needed to stand up a simulated cluster.
struct ClusterConfig {
  int nodes = 8;
  int ranks = 64;
  int ranks_per_node = 8;
  /// Rack layer for the topology-aware extension (§VIII); 0 disables it.
  int nodes_per_rack = 0;
  /// Multi-level fat-tree fabric, bottom-up (see hw::FabricLevelSpec).
  /// Empty keeps the legacy flat switch (+ optional rack layer); non-empty
  /// requires nodes_per_rack == 0 and the cumulative group sizes to divide
  /// `nodes`.
  std::vector<hw::FabricLevelSpec> fabric;
  /// Dragonfly interconnect (see hw::DragonflySpec); disabled by default.
  /// Mutually exclusive with `fabric` and the rack layer. Minimal routing
  /// collapses like a fat tree (one group survives as the quotient);
  /// adaptive routing de-collapses with a descriptive reason.
  hw::DragonflySpec dragonfly;
  /// Rank-symmetry collapse (see src/sym/collapse.hpp): 0 lets
  /// measure_collective collapse eligible runs automatically, 1 forces the
  /// full 1:1 simulation, >1 demands exactly that multiplicity (and errors
  /// if the fabric's top level does not provide it). Only
  /// measure_collective honors this; Simulation::run is always 1:1.
  int collapse_multiplicity = 0;
  hw::AffinityPolicy affinity = hw::AffinityPolicy::kBunch;
  mpi::ProgressMode progress = mpi::ProgressMode::kPolling;
  bool core_level_throttling = false;  ///< §V-B "future architectures"
  /// Runtime power governor (mpi/governor.hpp): reactive black-box, slack
  /// (COUNTDOWN-style), or per-node power cap; off by default. Requires
  /// polling progress — measure_collective / Campaign report an error for
  /// governor + blocking mode (and for kPowerCap with a §V scheme or a
  /// non-positive budget).
  mpi::GovernorParams governor;
  /// Ship message sizes without contents (see
  /// mpi::RuntimeParams::synthetic_payloads). measure_collective turns this
  /// on for its own runs — the harness never reads received bytes — which
  /// removes the per-message copy traffic that dominated wall time at MiB
  /// block sizes. Leave off for programs that read what they receive.
  bool synthetic_payloads = false;
  /// Build collective plans as historical rank-indexed tables instead of
  /// class-compressed templates (see coll/plan.hpp and
  /// mpi::RuntimeParams::materialized_plans). Byte-identical results;
  /// exists for the equivalence suite and costs O(ranks) memory per plan.
  bool materialized_plans = false;
  /// Tracing / metering options (see ObsOptions above).
  ObsOptions obs;
  /// Fault injection (drops, flaps, stragglers, transition failures) plus
  /// the recovery knobs — all-zero rates (the default) disable the whole
  /// subsystem and leave the run byte-identical to a fault-free build.
  /// See docs/FAULTS.md.
  fault::FaultSpec faults;
  /// Collective plan cache to attach to the run's Runtime. Null (the
  /// default) gives the Simulation a private cache; a Campaign injects one
  /// shared cache so sweep cells with equal cluster configs reuse each
  /// other's schedules (plans are keyed on a structural fingerprint, so
  /// sharing is always safe).
  std::shared_ptr<coll::PlanCache> plan_cache;
  /// Tuned-decision table (coll/tuner.hpp) to attach to the run's Runtime.
  /// Null (the default) keeps dispatch purely static and byte-identical to
  /// the untuned library. Like the plan cache, a single Tuner is safely
  /// shared across Campaign cells — decisions are keyed on the comm's
  /// structural fingerprint.
  std::shared_ptr<coll::Tuner> tuner;
  /// Quiescence-watchdog thresholds (sim/watchdog.hpp) — only consulted
  /// when `faults` is active, since a fault-free run's deadlock detection
  /// is the engine's drained-queue signal. The defaults (50 ms interval ×
  /// 4 stalls) comfortably exceed the reliable path's maximum backoff;
  /// shorten them to cut time wasted in deadlocked faulted sweeps, or
  /// stretch them for fault specs with extreme ack timeouts. Plumbed
  /// through mpi::RuntimeParams::watchdog; paccbench exposes it as
  /// --watchdog MS:COUNT.
  sim::Watchdog::Params watchdog;
  /// Safety bound on simulated time: a deadlocked program is reported as
  /// incomplete instead of letting the meter tick forever.
  Duration max_sim_time = Duration::seconds(3600.0);
  std::optional<hw::MachineParams> machine;   ///< default: paper_machine(nodes)
  std::optional<net::NetworkParams> network;  ///< default: paper_network()
};

/// Outcome of one simulated program run.
struct RunReport {
  /// Structured outcome: kOk, or kDeadlock / kTimeout with a detail
  /// message naming the stuck tasks. Replaces the old `completed` bool.
  RunStatus status;
  Duration elapsed;
  Joules energy = 0.0;
  Watts mean_power = 0.0;
  PowerSeries power;        ///< clamp-meter samples (0.5 s)
  /// Per-node meter channels (only with ObsOptions::per_node_meter).
  std::vector<PowerSeries> node_power;
  /// Exact per-phase energy buckets (only with ObsOptions::trace); the
  /// joules sum to `energy` exactly — see docs/OBSERVABILITY.md.
  std::vector<obs::PhaseEnergy> energy_phases;
  /// Injected-fault / recovery counters (all zero on a fault-free run).
  fault::FaultStats faults;
  /// Governor transition counters (all zero without a governor).
  mpi::GovernorStats governor;

  [[deprecated("use status.ok() / status.outcome")]] bool completed() const {
    return status.ok();
  }
};

/// How a measurement's rank-symmetry collapse went (see
/// src/sym/collapse.hpp). Default-constructed = ran 1:1 with no reason
/// recorded (ops that never consult the gate).
struct CollapseStats {
  int multiplicity = 1;       ///< logical ranks per simulated rank
  int classes = 0;            ///< representative ranks simulated (0 = 1:1)
  int logical_ranks = 0;      ///< what the report describes
  int simulated_ranks = 0;    ///< what actually ran
  std::string reason;         ///< why the run stayed 1:1 ("" when collapsed)
  /// Node classes whose symmetry the fault spec broke (straggler blame).
  std::vector<int> broken_classes;
  /// Flows the simulation actually started; each stands for `multiplicity`
  /// logical flows, so logical_flows() is the full cluster's count.
  std::uint64_t representative_flows = 0;

  bool active() const { return multiplicity > 1; }
  std::uint64_t logical_flows() const {
    return representative_flows * static_cast<std::uint64_t>(multiplicity);
  }
};

/// Outcome of an OSU-style collective measurement.
struct CollectiveReport {
  /// Structured outcome (kError also covers unsupported op×scheme
  /// combinations — see coll::supported()).
  RunStatus status;
  Duration latency;         ///< average per-operation latency
  Joules energy_per_op = 0.0;
  Watts mean_power = 0.0;   ///< mean sampled power during the timed loop
  PowerSeries power;
  /// Exact per-phase energy buckets over the whole run, incl. warmup
  /// (only with ObsOptions::trace).
  std::vector<obs::PhaseEnergy> energy_phases;
  /// Chrome-trace JSON of the run (only with ObsOptions::trace);
  /// serialised before the Simulation is torn down.
  std::string trace_json;
  /// Injected-fault / recovery counters (all zero on a fault-free run).
  fault::FaultStats faults;
  /// Governor transition counters (all zero without a governor).
  mpi::GovernorStats governor;
  /// Rank-symmetry collapse outcome; energy_per_op / mean_power / power
  /// are already scaled back up to the logical cluster when it is active.
  CollapseStats collapse;

  [[deprecated("use status.ok() / status.outcome")]] bool completed() const {
    return status.ok();
  }
};

/// Parameters of an OSU-style collective measurement.
struct CollectiveBenchSpec {
  coll::Op op = coll::Op::kAlltoall;
  Bytes message = 1 << 20;  ///< block size (alltoall) or buffer size (bcast…)
  coll::PowerScheme scheme = coll::PowerScheme::kNone;
  int iterations = 10;
  int warmup = 2;
  int root = 0;             ///< rooted collectives
  /// Force a specific registered algorithm (coll::algorithms() names, e.g.
  /// "bcast_tree_binary") instead of the op's default dispatcher. Must
  /// match `op`; unknown names report kError listing the registry. A
  /// forced algorithm never consults the tuner — that is what the racing
  /// driver relies on.
  std::string algo;
  /// Segment size for segmented algorithms (only with a non-empty `algo`
  /// whose descriptor is segmented; 0 = unsegmented).
  Bytes seg = 0;
};

/// One simulated cluster plus its runtime; single-run, single-threaded.
class Simulation {
 public:
  explicit Simulation(const ClusterConfig& config);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  const ClusterConfig& config() const { return config_; }
  sim::Engine& engine() { return *engine_; }
  hw::Machine& machine() { return *machine_; }
  net::FlowNetwork& network() { return *network_; }
  mpi::Runtime& runtime() { return *runtime_; }
  hw::SamplingMeter& meter() { return *meter_; }
  /// Null unless ObsOptions::trace was set.
  obs::TraceRecorder* tracer() { return tracer_.get(); }
  /// Null unless ClusterConfig::faults is active.
  fault::FaultInjector* injector() { return injector_.get(); }

  /// Spawns `body` on every rank, runs to completion with the power meter
  /// sampling, and reports elapsed time / energy / power.
  RunReport run(const std::function<sim::Task<>(mpi::Rank&)>& body);

 private:
  ClusterConfig config_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<net::FlowNetwork> network_;
  std::unique_ptr<mpi::Runtime> runtime_;
  std::unique_ptr<hw::SamplingMeter> meter_;
  std::unique_ptr<obs::TraceRecorder> tracer_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<sim::Watchdog> watchdog_;
};

/// Rounds up to a whole number of doubles — the size actually dispatched
/// for a CollectiveBenchSpec::message (reductions operate on doubles).
/// Exposed because tuned-decision keys (coll/tuner.hpp) must be recorded
/// at this rounded size to match the dispatch-time lookup.
Bytes round_to_doubles(Bytes n);

/// Builds a cluster, runs `spec.warmup + spec.iterations` matched calls of
/// the collective on the world communicator, and reports the averaged
/// latency and the power during the timed region.
CollectiveReport measure_collective(const ClusterConfig& config,
                                    const CollectiveBenchSpec& spec);

}  // namespace pacc

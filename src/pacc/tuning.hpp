// Offline racing driver for the collective autotuner (coll/tuner.hpp).
//
// tune_collective() races every registered candidate for (op, scheme) ×
// its segment-size ladder over a list of message sizes on one cluster
// config, and records each size's fastest candidate into the Tuner. Sizes
// the table already covers are skipped — re-running a tuning campaign
// against a persisted table races nothing and leaves the table
// byte-identical. Races fan out over Campaign::for_each, and the winner
// rule (min latency, candidate order breaking exact ties) depends only on
// the deterministic simulations, so the resulting table is identical at
// any --jobs. See docs/TUNING.md.
#pragma once

#include <string>
#include <vector>

#include "coll/algo.hpp"
#include "coll/tuner.hpp"
#include "pacc/simulation.hpp"

namespace pacc {

/// One tuning request: race candidates for `op` × `scheme` on `cluster`
/// at each message size.
struct TuneRequest {
  ClusterConfig cluster;
  coll::Op op = coll::Op::kBcast;
  coll::PowerScheme scheme = coll::PowerScheme::kNone;
  std::vector<Bytes> sizes;
  int iterations = 3;
  int warmup = 1;
  int root = 0;
};

/// One raced candidate's outcome.
struct TuneCandidateResult {
  std::string algo;
  Bytes seg = 0;
  RunStatus status;
  Duration latency;  ///< meaningful only when status.ok()
};

/// One message size's race.
struct TuneCellResult {
  Bytes message = 0;        ///< requested size (pre-rounding)
  Bytes tuned_bytes = 0;    ///< the TunedKey's rounded byte count
  bool skipped = false;     ///< table already had a decision
  coll::TunedDecision decision;  ///< the winner (or the existing decision)
  std::vector<TuneCandidateResult> candidates;  ///< empty when skipped
};

struct TuneReport {
  int raced_cells = 0;    ///< candidate runs actually simulated
  int skipped_cells = 0;  ///< sizes already covered by the table
  std::vector<TuneCellResult> cells;
};

/// The candidate list a race enumerates for (op, scheme): registered
/// algorithms of the op implementing the scheme, each at seg = 0 plus —
/// for segmented descriptors — the standard ladder {8K, 32K, 128K}
/// clipped to the descriptor's domain and to seg < message.
std::vector<TuneCandidateResult> tune_candidates(coll::Op op,
                                                 coll::PowerScheme scheme,
                                                 Bytes message);

/// Races all candidates for every size in `req` (skipping already-tuned
/// sizes) and records the winners into `tuner`.
TuneReport tune_collective(coll::Tuner& tuner, const TuneRequest& req,
                           int jobs = 1);

}  // namespace pacc

#include "pacc/journal.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "coll/tuner.hpp"
#include "util/fsio.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pacc {

namespace {

// ---------------------------------------------------------------------
// Canonical cell hash: FNV-1a over explicitly enumerated fields. Doubles
// are mixed as IEEE-754 bit patterns, never as formatted text, so the key
// is exact; strings are length-prefixed so adjacent fields cannot alias.
// A schema salt makes format revisions invalidate old journals instead of
// silently mis-replaying them.
// ---------------------------------------------------------------------

struct Hasher {
  std::uint64_t state = 14695981039346656037ull;  // FNV offset basis

  void mix_byte(unsigned char b) {
    state ^= b;
    state *= 1099511628211ull;  // FNV prime
  }
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(bool v) { mix_byte(v ? 1 : 0); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
  }
};

// ---------------------------------------------------------------------
// Record text framing. The status message is the only free-form field;
// percent-escape anything that could break the space-separated line.
// ---------------------------------------------------------------------

std::string escape_message(std::string_view text) {
  if (text.empty()) return "-";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == '%' || u >= 0x7F) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", u);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

bool unescape_message(std::string_view text, std::string* out) {
  if (text == "-") {
    out->clear();
    return true;
  }
  out->clear();
  out->reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      *out += text[i];
      continue;
    }
    if (i + 2 >= text.size()) return false;
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(text[i + 1]);
    const int lo = hex(text[i + 2]);
    if (hi < 0 || lo < 0) return false;
    *out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return true;
}

bool fail(std::string* error, std::string what) {
  if (error != nullptr) *error = std::move(what);
  return false;
}

/// Splits `line` on single spaces. Journal payloads never contain empty
/// fields, so consecutive spaces are a parse error surfaced by the token
/// count check at the call site.
std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const auto space = line.find(' ', start);
    if (space == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return fields;
}

bool parse_u64(std::string_view text, std::uint64_t* out, int base = 10) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    if (digit >= base) return false;
    value = value * static_cast<std::uint64_t>(base) +
            static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

bool parse_i64(std::string_view text, std::int64_t* out) {
  bool negative = false;
  if (!text.empty() && text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  std::uint64_t magnitude = 0;
  if (!parse_u64(text, &magnitude)) return false;
  *out = negative ? -static_cast<std::int64_t>(magnitude)
                  : static_cast<std::int64_t>(magnitude);
  return true;
}

}  // namespace

std::optional<std::uint64_t> canonical_cell_hash(
    const ClusterConfig& effective, const CollectiveBenchSpec& bench) {
  // Unjournalable cells: traced runs carry payloads (trace JSON, energy
  // phases) the record format does not persist, and explicit machine /
  // network overrides cannot be canonically enumerated here. They re-run
  // on resume instead — determinism keeps the artifact identical.
  if (effective.obs.trace || effective.machine.has_value() ||
      effective.network.has_value()) {
    return std::nullopt;
  }

  Hasher h;
  h.mix(std::string_view("pacc-cell-v1"));

  const ClusterConfig& c = effective;
  h.mix(c.nodes);
  h.mix(c.ranks);
  h.mix(c.ranks_per_node);
  h.mix(c.nodes_per_rack);
  h.mix(static_cast<std::uint64_t>(c.fabric.size()));
  for (const hw::FabricLevelSpec& level : c.fabric) {
    h.mix(level.group_size);
    h.mix(level.oversubscription);
    h.mix(level.bandwidth);
  }
  if (c.dragonfly.enabled()) {
    // Marker-guarded so pre-dragonfly journals keep their keys; any
    // dragonfly field change re-keys the cell.
    h.mix(std::uint64_t{0xd7a60f1e});
    h.mix(c.dragonfly.routers_per_group);
    h.mix(c.dragonfly.nodes_per_router);
    h.mix(c.dragonfly.adaptive);
    h.mix(c.dragonfly.local_bandwidth);
    h.mix(c.dragonfly.global_bandwidth);
  }
  // c.materialized_plans is deliberately NOT mixed: the compressed and
  // materialized plan layouts are byte-identical by construction, so a
  // journaled cell is valid for either setting.
  h.mix(c.collapse_multiplicity);
  h.mix(static_cast<int>(c.affinity));
  h.mix(static_cast<int>(c.progress));
  h.mix(c.core_level_throttling);
  h.mix(c.governor.enabled);
  h.mix(static_cast<int>(c.governor.kind));
  h.mix(c.governor.wait_threshold.ns());
  h.mix(c.governor.slack_threshold.ns());
  h.mix(c.governor.node_power_cap);
  h.mix(c.governor.redistribute);
  h.mix(c.synthetic_payloads);
  h.mix(c.obs.per_node_meter);
  h.mix(c.obs.meter_interval.ns());

  const fault::FaultSpec& f = c.faults;
  h.mix(f.seed);
  h.mix(f.drop_rate);
  h.mix(f.delay_rate);
  h.mix(f.delay_max.ns());
  h.mix(f.flap_rate_hz);
  h.mix(f.down_mean.ns());
  h.mix(f.degrade_factor);
  h.mix(f.stragglers);
  h.mix(f.straggler_slowdown);
  h.mix(f.transition_fail_rate);
  h.mix(f.transition_stretch_rate);
  h.mix(f.transition_stretch_max);
  h.mix(f.ack_timeout.ns());
  h.mix(f.backoff_factor);
  h.mix(f.retry_budget);

  h.mix(c.watchdog.interval.ns());
  h.mix(c.watchdog.stall_ticks);
  h.mix(c.max_sim_time.ns());
  // A tuned table changes dispatch and therefore results: key on its
  // CONTENT, not its identity, so equal tables collide (cache hits) and
  // different tables never do.
  h.mix(c.tuner ? c.tuner->fingerprint() : std::uint64_t{0});

  h.mix(static_cast<int>(bench.op));
  h.mix(static_cast<std::uint64_t>(bench.message));
  h.mix(static_cast<int>(bench.scheme));
  h.mix(bench.iterations);
  h.mix(bench.warmup);
  h.mix(bench.root);
  h.mix(std::string_view(bench.algo));
  h.mix(static_cast<std::uint64_t>(bench.seg));

  return h.state;
}

std::string encode_cell_record(const CellRecord& rec) {
  const fault::FaultStats& f = rec.faults;
  const mpi::GovernorStats& g = rec.governor;
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "%016" PRIx64 " %s %" PRId64 " %016" PRIx64 " %016" PRIx64
      " %d %d"
      " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
      " %" PRIu64 " %" PRIu64 " %" PRIu64
      " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
      " %" PRIu64 " %" PRIu64,
      rec.key, to_string(rec.status.outcome).c_str(), rec.latency.ns(),
      std::bit_cast<std::uint64_t>(rec.energy_per_op),
      std::bit_cast<std::uint64_t>(rec.mean_power), rec.collapse_multiplicity,
      rec.collapse_classes, f.drops, f.delays, f.retransmits,
      f.messages_abandoned, f.link_flaps, f.flows_preempted,
      f.transition_failures, f.transition_stretches, f.scheme_fallbacks,
      g.armed_waits, g.short_waits, g.downclocks, g.restores, g.park_failures,
      g.restore_failures, g.scheme_clamps, g.cap_updates);
  std::string payload = buf;
  payload += ' ';
  payload += escape_message(rec.status.message);

  char crc[16];
  std::snprintf(crc, sizeof crc, "R %08x ", crc32(payload));
  return crc + payload;
}

bool decode_cell_record(std::string_view line, CellRecord* out,
                        std::string* error) {
  if (line.size() < 12 || line.substr(0, 2) != "R ") {
    return fail(error, "not a journal record line");
  }
  std::uint64_t stored_crc = 0;
  if (line[10] != ' ' || !parse_u64(line.substr(2, 8), &stored_crc, 16)) {
    return fail(error, "malformed record CRC field");
  }
  const std::string_view payload = line.substr(11);
  if (crc32(payload) != static_cast<std::uint32_t>(stored_crc)) {
    return fail(error, "record CRC mismatch");
  }

  const auto fields = split_fields(payload);
  // key, outcome, latency, energy, power, 2 collapse, 9 fault, 8 governor,
  // message — 25 fields exactly.
  if (fields.size() != 25) {
    return fail(error, "journal record has " + std::to_string(fields.size()) +
                           " fields, expected 25");
  }

  CellRecord rec;
  std::size_t at = 0;
  if (!parse_u64(fields[at++], &rec.key, 16)) {
    return fail(error, "bad record key");
  }
  const auto outcome = parse_run_outcome(fields[at++]);
  if (!outcome) return fail(error, "unknown record status");
  rec.status.outcome = *outcome;
  std::int64_t latency_ns = 0;
  if (!parse_i64(fields[at++], &latency_ns)) {
    return fail(error, "bad record latency");
  }
  rec.latency = Duration::nanos(latency_ns);
  std::uint64_t bits = 0;
  if (!parse_u64(fields[at++], &bits, 16)) {
    return fail(error, "bad record energy");
  }
  rec.energy_per_op = std::bit_cast<double>(bits);
  if (!parse_u64(fields[at++], &bits, 16)) {
    return fail(error, "bad record power");
  }
  rec.mean_power = std::bit_cast<double>(bits);
  std::int64_t value = 0;
  if (!parse_i64(fields[at++], &value)) {
    return fail(error, "bad collapse multiplicity");
  }
  rec.collapse_multiplicity = static_cast<int>(value);
  if (!parse_i64(fields[at++], &value)) {
    return fail(error, "bad collapse classes");
  }
  rec.collapse_classes = static_cast<int>(value);

  std::uint64_t* const fault_fields[] = {
      &rec.faults.drops,           &rec.faults.delays,
      &rec.faults.retransmits,     &rec.faults.messages_abandoned,
      &rec.faults.link_flaps,      &rec.faults.flows_preempted,
      &rec.faults.transition_failures, &rec.faults.transition_stretches,
      &rec.faults.scheme_fallbacks};
  for (std::uint64_t* field : fault_fields) {
    if (!parse_u64(fields[at++], field)) {
      return fail(error, "bad fault counter");
    }
  }
  std::uint64_t* const gov_fields[] = {
      &rec.governor.armed_waits,   &rec.governor.short_waits,
      &rec.governor.downclocks,    &rec.governor.restores,
      &rec.governor.park_failures, &rec.governor.restore_failures,
      &rec.governor.scheme_clamps, &rec.governor.cap_updates};
  for (std::uint64_t* field : gov_fields) {
    if (!parse_u64(fields[at++], field)) {
      return fail(error, "bad governor counter");
    }
  }
  if (!unescape_message(fields[at], &rec.status.message)) {
    return fail(error, "bad record message escape");
  }
  *out = std::move(rec);
  return true;
}

// ---------------------------------------------------------------------
// CellJournal
// ---------------------------------------------------------------------

#if defined(_WIN32)

std::unique_ptr<CellJournal> CellJournal::open(const std::string&,
                                               std::string* error) {
  if (error != nullptr) *error = "cell journal requires POSIX I/O";
  return nullptr;
}
CellJournal::~CellJournal() = default;
std::optional<CellRecord> CellJournal::lookup(std::uint64_t) const {
  return std::nullopt;
}
bool CellJournal::append(const CellRecord&) { return false; }
std::size_t CellJournal::size() const { return 0; }

#else

std::unique_ptr<CellJournal> CellJournal::open(const std::string& path,
                                               std::string* error) {
  auto journal = std::unique_ptr<CellJournal>(new CellJournal());
  journal->path_ = path;

  std::string contents;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      char buf[1 << 16];
      ssize_t n;
      while ((n = ::read(fd, buf, sizeof buf)) > 0) {
        contents.append(buf, static_cast<std::size_t>(n));
      }
      ::close(fd);
      if (n < 0) {
        fail(error, "cannot read journal " + path);
        return nullptr;
      }
    }
  }

  std::size_t valid_bytes = 0;
  if (!contents.empty()) {
    // Header line first.
    const auto header_end = contents.find('\n');
    const std::string_view header =
        std::string_view(contents).substr(0, header_end);
    if (header_end == std::string::npos) {
      // No newline at all. A crash mid-header-write leaves a PREFIX of the
      // schema line; anything else is a foreign file we must not wipe.
      if (header != kSchema.substr(0, header.size())) {
        fail(error, "journal " + path + ": not a " + std::string(kSchema) +
                        " file");
        return nullptr;
      }
      valid_bytes = 0;
    } else if (header != kSchema) {
      fail(error, "journal " + path + ": unsupported schema header \"" +
                      std::string(header) + "\"");
      return nullptr;
    } else {
      valid_bytes = header_end + 1;
      std::size_t at = valid_bytes;
      while (at < contents.size()) {
        const auto line_end = contents.find('\n', at);
        const bool complete = line_end != std::string::npos;
        const std::string_view line =
            std::string_view(contents)
                .substr(at, complete ? line_end - at : std::string::npos);
        CellRecord rec;
        std::string record_error;
        if (complete && decode_cell_record(line, &rec, &record_error)) {
          journal->records_[rec.key] = rec;
          valid_bytes = line_end + 1;
          at = line_end + 1;
          continue;
        }
        // Invalid record. Only the FINAL line can be a torn append (a
        // crash between write(2) and fdatasync can persist any subset of
        // the tail's blocks, newline included); a bad record with records
        // after it is corruption, not a crash, and must be rejected.
        const bool is_tail = !complete || line_end + 1 >= contents.size();
        if (!is_tail) {
          fail(error, "journal " + path + ": corrupt record (" +
                          record_error + ") followed by further records — "
                          "refusing to replay");
          return nullptr;
        }
        break;  // torn tail: replay stops here, file is truncated below
      }
    }
    if (valid_bytes < contents.size()) {
      if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
        fail(error, "cannot truncate torn journal tail in " + path);
        return nullptr;
      }
    }
  }
  journal->replayed_ = journal->records_.size();

  journal->fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (journal->fd_ < 0) {
    fail(error, "cannot open journal " + path + " for append");
    return nullptr;
  }
  if (contents.empty() || valid_bytes == 0) {
    const std::string header = std::string(kSchema) + "\n";
    if (::write(journal->fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      fail(error, "cannot write journal header to " + path);
      return nullptr;
    }
  }
  return journal;
}

CellJournal::~CellJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<CellRecord> CellJournal::lookup(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool CellJournal::append(const CellRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.find(rec.key) != records_.end()) return true;  // content hash
  const std::string line = encode_cell_record(rec) + "\n";
  // One write(2) per record: a crash can tear the tail of THIS line but
  // never interleave two records, which is what replay's torn-tail
  // truncation relies on.
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
#if defined(__APPLE__)
  if (::fsync(fd_) != 0) return false;
#else
  if (::fdatasync(fd_) != 0) return false;
#endif
  records_[rec.key] = rec;
  return true;
}

std::size_t CellJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

#endif  // _WIN32

}  // namespace pacc

#include "pacc/simulation.hpp"

#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "coll/plan.hpp"
#include "coll/registry.hpp"
#include "coll/tuner.hpp"
#include "sym/collapse.hpp"
#include "util/expect.hpp"

namespace pacc {

Simulation::Simulation(const ClusterConfig& config) : config_(config) {
  PACC_EXPECTS(config.nodes >= 1 && config.ranks >= 1);

  hw::MachineParams machine_params =
      config.machine.value_or(presets::paper_machine(config.nodes));
  machine_params.shape.nodes = config.nodes;
  if (config.nodes_per_rack > 0) {
    machine_params.shape.nodes_per_rack = config.nodes_per_rack;
  }
  machine_params.shape.fabric = config.fabric;
  machine_params.shape.dragonfly = config.dragonfly;
  machine_params.core_level_throttling = config.core_level_throttling;
  const net::NetworkParams network_params =
      config.network.value_or(presets::paper_network());

  // Rank-symmetry collapse (src/sym/collapse.hpp): the machine and network
  // model only the first top-level fabric group — the quotient — while the
  // placement below keeps the full logical cluster, so communicators and
  // schedules still see every rank. The quotient keeps the same fabric
  // vector: its top level simply has one group, and per-level link
  // bandwidths derive identically.
  const hw::ClusterShape full_shape = machine_params.shape;
  const int multiplicity =
      config.collapse_multiplicity > 1 ? config.collapse_multiplicity : 1;
  if (multiplicity > 1) {
    // The slack governor is a deterministic, translation-equivariant
    // per-core policy, so it collapses; the reactive and power-cap
    // governors keep asymmetric per-core / per-node state and must run 1:1
    // (sym::decide enforces the same split).
    const bool symmetric_governor =
        !config.governor.enabled ||
        config.governor.kind == mpi::GovernorKind::kSlack;
    PACC_EXPECTS_MSG(!config.obs.trace && symmetric_governor &&
                         !config.faults.active(),
                     "collapse requires a symmetric, unobserved run "
                     "(no trace, no asymmetric governor, no faults)");
    PACC_EXPECTS_MSG(config.nodes % multiplicity == 0 &&
                         config.ranks % multiplicity == 0,
                     "collapse multiplicity must divide nodes and ranks");
    PACC_EXPECTS_MSG(config.ranks == config.nodes * config.ranks_per_node,
                     "collapse requires full uniform occupancy");
    PACC_EXPECTS_MSG(!config.dragonfly.adaptive,
                     "adaptive dragonfly routing picks absolute intermediate "
                     "groups and cannot be quotiented — use minimal routing");
    machine_params.shape.nodes = config.nodes / multiplicity;
  }
  PACC_EXPECTS_MSG(machine_params.shape.valid(), "invalid cluster shape");

  engine_ = std::make_unique<sim::Engine>();
  machine_ = std::make_unique<hw::Machine>(*engine_, machine_params);
  network_ = std::make_unique<net::FlowNetwork>(
      *engine_, machine_params.shape, network_params);

  auto placement = hw::place_ranks(full_shape, config.ranks,
                                   config.ranks_per_node, config.affinity);
  mpi::RuntimeParams rt_params;
  rt_params.mode = config.progress;
  rt_params.governor = config.governor;
  rt_params.synthetic_payloads = config.synthetic_payloads;
  rt_params.collapse_multiplicity = multiplicity;
  rt_params.materialized_plans = config.materialized_plans;
  rt_params.watchdog = config.watchdog;
  runtime_ = std::make_unique<mpi::Runtime>(*engine_, *machine_, *network_,
                                            std::move(placement), rt_params);
  // Private cache unless the caller injected a shared one (Campaign does,
  // so equal-shaped sweep cells reuse each other's schedules).
  runtime_->set_plan_cache(config.plan_cache
                               ? config.plan_cache
                               : std::make_shared<coll::PlanCache>());
  // Tuned-decision table: attached verbatim (null = static dispatch).
  runtime_->set_tuner(config.tuner);
  meter_ = std::make_unique<hw::SamplingMeter>(
      *machine_, config.obs.meter_interval, config.obs.per_node_meter);

  if (config.obs.trace) {
    // Attach the recorder only after construction so the setup noise
    // (initial activity states) stays out of the trace.
    tracer_ = std::make_unique<obs::TraceRecorder>(*engine_);
    tracer_->attach_machine(*machine_);
    engine_->set_tracer(tracer_.get());
    runtime_->profiler().set_trace(tracer_.get());
    const auto& placement = runtime_->placement();
    for (int r = 0; r < placement.ranks(); ++r) {
      tracer_->set_track_name(tracer_->core_track(placement.core_of(r)),
                              "rank " + std::to_string(r));
    }
  }

  if (config.faults.active()) {
    // After the tracer: arm() names the fabric-outage tracks when a
    // recorder is attached. An inactive spec creates nothing at all, so
    // the fault-free hot path stays exactly as before.
    injector_ = std::make_unique<fault::FaultInjector>(config.faults, *engine_,
                                                       *machine_, *network_);
    injector_->arm();
    runtime_->set_fault_injector(injector_.get());
    // The probe must move only on real progress: injector timer events
    // (link flaps) keep firing during a true deadlock.
    watchdog_ = std::make_unique<sim::Watchdog>(
        *engine_, rt_params.watchdog, [this] {
          return injector_->attempt_count() + runtime_->deliveries() +
                 network_->bytes_delivered();
        });
  }
}

Simulation::~Simulation() {
  // Suspended task frames (left over from a cut-short or deadlocked run)
  // hold references to ranks and communicators owned by runtime_, which is
  // destroyed before engine_. Destroy the frames first, while everything
  // they reference is still alive.
  engine_->drop_tasks();
}

RunReport Simulation::run(
    const std::function<sim::Task<>(mpi::Rank&)>& body) {
  meter_->start();
  if (watchdog_ != nullptr) watchdog_->start();
  const TimePoint start = engine_->now();
  runtime_->launch(body);
  // run_active: the meter's self-rescheduling sampling would keep a plain
  // run() alive forever; the deadline catches deadlocked programs.
  const sim::RunResult result =
      engine_->run_active_until(start + config_.max_sim_time);
  meter_->stop();
  // Cancel the fault machinery's self-rescheduling events (flap timers,
  // watchdog samples) BEFORE reading pending_events(): a pending flap
  // would make a drained deadlock look like a timeout.
  if (watchdog_ != nullptr) watchdog_->stop();
  if (injector_ != nullptr) injector_->stop();

  RunReport report;
  if (runtime_->unreachable()) {
    report.status.outcome = RunOutcome::kUnreachable;
    report.status.message = runtime_->unreachable_detail();
  } else if (!result.all_tasks_finished) {
    if (watchdog_ != nullptr && watchdog_->fired()) {
      report.status.outcome = RunOutcome::kDeadlock;
      report.status.message =
          std::to_string(result.stuck_tasks) +
          " task(s) stuck, no progress for " +
          std::to_string(watchdog_->stall_window().ns() / 1000000) +
          " ms (quiescence watchdog)";
    } else {
      // The meter's pending sample is cancelled by stop(), so any event
      // left in the queue belongs to a rank (or the machine acting on its
      // behalf) that was still making progress when the deadline cut the
      // run short. An empty queue means nothing can ever resume the stuck
      // tasks.
      const bool cut_short = engine_->pending_events() > 0;
      report.status.outcome =
          cut_short ? RunOutcome::kTimeout : RunOutcome::kDeadlock;
      report.status.message =
          std::to_string(result.stuck_tasks) + " task(s) stuck" +
          (cut_short ? " at max_sim_time" : ", event queue drained");
    }
  } else if (injector_ != nullptr && injector_->stats().disturbed()) {
    report.status.outcome = RunOutcome::kFaulted;
    report.status.message = injector_->stats().summary();
  }
  if (injector_ != nullptr) report.faults = injector_->stats();
  report.governor = runtime_->governor_stats();
  report.elapsed = result.end_time - start;
  report.energy = machine_->total_energy();
  report.power = meter_->series();
  report.node_power = meter_->node_series();
  if (tracer_ != nullptr) report.energy_phases = tracer_->energy_breakdown();
  if (report.elapsed.ns() > 0) {
    report.mean_power = report.energy / report.elapsed.sec();
  }
  return report;
}

Bytes round_to_doubles(Bytes n) {
  return (n + 7) / 8 * 8;
}

namespace {

struct TimedWindow {
  TimePoint t0;
  TimePoint t1;
  Joules e0 = 0.0;
  Joules e1 = 0.0;
};

/// Per-rank working buffers for one collective benchmark.
struct Buffers {
  std::vector<std::byte> send;
  std::vector<std::byte> recv;
  std::vector<Bytes> send_counts;
  std::vector<Bytes> recv_counts;
  /// kAlltoall / kAlltoallv: one uninitialized arena backing both views.
  /// At 4096 ranks × 1 MiB blocks each buffer spans 4 GiB of address
  /// space; the pure data-movement executors never do arithmetic on the
  /// contents, so leaving the pages untouched until a rank copies into
  /// its own slices keeps resident memory bounded by the actual working
  /// set. Ops that compute on their buffers keep the zeroed vectors.
  std::unique_ptr<std::byte[]> arena;
  std::span<std::byte> send_view;
  std::span<std::byte> recv_view;
};

Buffers make_buffers(const CollectiveBenchSpec& spec, int ranks) {
  Buffers b;
  const auto P = static_cast<std::size_t>(ranks);
  const Bytes msg = round_to_doubles(spec.message);
  const auto m = static_cast<std::size_t>(msg);
  switch (spec.op) {
    case coll::Op::kAlltoall:
    case coll::Op::kAlltoallv:
      if (spec.op == coll::Op::kAlltoallv) {
        b.send_counts.assign(P, msg);
        b.recv_counts.assign(P, msg);
      }
      b.arena.reset(new std::byte[2 * P * m]);
      b.send_view = std::span<std::byte>(b.arena.get(), P * m);
      b.recv_view = std::span<std::byte>(b.arena.get() + P * m, P * m);
      return b;
    case coll::Op::kBcast:
      b.send.resize(m);
      break;
    case coll::Op::kReduce:
    case coll::Op::kAllreduce:
      b.send.resize(m);
      b.recv.resize(m);
      break;
    case coll::Op::kAllgather:
      b.send.resize(m);
      b.recv.resize(P * m);
      break;
    case coll::Op::kGather:
      b.send.resize(m);
      b.recv.resize(P * m);
      break;
    case coll::Op::kScatter:
      b.send.resize(P * m);
      b.recv.resize(m);
      break;
    case coll::Op::kScan:
      b.send.resize(m);
      b.recv.resize(m);
      break;
    case coll::Op::kReduceScatter:
      b.send.resize(P * m);
      b.recv.resize(m);
      break;
    case coll::Op::kBarrier:
      break;
  }
  b.send_view = b.send;
  b.recv_view = b.recv;
  return b;
}

/// One matched call of `desc` (the op's default dispatcher, or a forced
/// registry variant) — the registry-driven replacement of the historical
/// per-op switch.
sim::Task<> run_op_once(mpi::Rank& self, mpi::Comm& comm,
                        const CollectiveBenchSpec& spec, Buffers& b,
                        const coll::AlgoDesc& desc) {
  coll::AlgoCall call;
  call.send = b.send_view;
  call.recv = b.recv_view;
  call.send_counts = b.send_counts;
  call.recv_counts = b.recv_counts;
  call.block = round_to_doubles(spec.message);
  call.root = spec.root;
  call.scheme = spec.scheme;
  call.seg = spec.seg;
  co_await desc.exec(self, comm, call);
}

}  // namespace

CollectiveReport measure_collective(const ClusterConfig& config,
                                    const CollectiveBenchSpec& spec) {
  PACC_EXPECTS(spec.iterations >= 1 && spec.warmup >= 0);
  if (!coll::supported(spec.op, spec.scheme)) {
    CollectiveReport report;
    report.status = RunStatus::error("unsupported combination " +
                                     coll::to_string(spec.op) + " × " +
                                     coll::to_string(spec.scheme));
    return report;
  }
  // Resolve the algorithm up front: either the op's default dispatcher or
  // the forced registry entry, validated against the spec.
  const coll::AlgoDesc* algo = &coll::default_algorithm(spec.op);
  if (!spec.algo.empty()) {
    algo = coll::find_algorithm(spec.algo);
    CollectiveReport report;
    if (algo == nullptr) {
      report.status = RunStatus::error(
          "unknown algorithm '" + spec.algo +
          "' (registered: " + coll::algorithm_names() + ")");
      return report;
    }
    if (algo->op != spec.op) {
      report.status = RunStatus::error(
          "algorithm '" + spec.algo + "' implements " +
          coll::to_string(algo->op) + ", not " + coll::to_string(spec.op) +
          " (candidates: " + coll::algorithm_names(spec.op) + ")");
      return report;
    }
    if (!coll::algo_supports(*algo, spec.scheme)) {
      report.status = RunStatus::error(
          "algorithm '" + spec.algo + "' does not implement scheme " +
          coll::to_string(spec.scheme));
      return report;
    }
  }
  if (spec.seg > 0) {
    CollectiveReport report;
    if (spec.algo.empty() || !algo->segmented) {
      report.status = RunStatus::error(
          "segment size requires a segmented algorithm (registered: " +
          coll::algorithm_names(spec.op) + ")");
      return report;
    }
    if (spec.seg % sizeof(double) != 0 || spec.seg < algo->min_seg ||
        spec.seg > algo->max_seg) {
      report.status = RunStatus::error(
          "segment size " + std::to_string(spec.seg) + " outside '" +
          spec.algo + "' domain [" + std::to_string(algo->min_seg) + ", " +
          std::to_string(algo->max_seg) + "], multiples of 8");
      return report;
    }
  }
  if (config.governor.enabled) {
    // Friendly counterparts of the Runtime/make_governor contract checks,
    // raised before any Simulation is built so sweeps degrade to an error
    // cell instead of aborting.
    CollectiveReport report;
    if (config.progress == mpi::ProgressMode::kBlocking) {
      report.status = RunStatus::error(
          "governor requires polling progress: blocking waits sleep at "
          "idle power, which is frequency-independent");
      return report;
    }
    if (!coll::governor_supported(config.governor.kind, spec.scheme)) {
      report.status = RunStatus::error(
          "governor " + mpi::to_string(config.governor.kind) +
          " does not compose with scheme " + coll::to_string(spec.scheme));
      return report;
    }
    if (config.governor.kind == mpi::GovernorKind::kPowerCap &&
        config.governor.node_power_cap <= 0.0) {
      report.status =
          RunStatus::error("power-cap governor needs node_power_cap > 0");
      return report;
    }
  }
  // The harness never reads received bytes, so the runtime can ship sizes
  // without contents (synthetic payloads) — every simulated quantity
  // depends only on sizes, and the per-message copy traffic (GiBs per cell
  // at MiB block sizes) dominated wall time.
  ClusterConfig harness_config = config;
  harness_config.synthetic_payloads = true;
  // A forced algorithm must actually run: detach the tuner so the default
  // dispatchers cannot redirect to a tuned variant mid-race. The racing
  // driver (pacc/tuning.hpp) counts on this when it times the "default"
  // candidate of a cell that already has a tuned decision.
  if (!spec.algo.empty()) harness_config.tuner = nullptr;
  // Rank-symmetry collapse: when the whole measurement commutes with the
  // fabric's top-level group symmetry, simulate one representative group
  // and scale the energy integrals back up (timing needs no scaling — the
  // representative's window IS the full system's, bit for bit).
  const sym::CollapseDecision collapse = sym::decide(config, spec);
  harness_config.collapse_multiplicity = collapse.multiplicity;
  Simulation sim(harness_config);
  auto window = std::make_shared<TimedWindow>();

  // One arena shared by every simulated rank, for the same reason: the
  // simulator is payload-content-blind, so the measurement loop gains
  // nothing from 64 private copies of up to P·message bytes each. Aliased
  // self-copies the sharing introduces are guarded in coll::copy_bytes.
  Buffers buffers = make_buffers(spec, config.ranks);

  auto body = [&sim, &spec, window, &buffers,
               algo](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();

    for (int i = 0; i < spec.warmup; ++i) {
      co_await run_op_once(self, world, spec, buffers, *algo);
    }
    co_await coll::barrier(self, world);
    if (self.id() == 0) {
      window->t0 = self.engine().now();
      window->e0 = self.machine().total_energy();
    }
    for (int i = 0; i < spec.iterations; ++i) {
      co_await run_op_once(self, world, spec, buffers, *algo);
    }
    co_await coll::barrier(self, world);
    if (self.id() == 0) {
      window->t1 = self.engine().now();
      window->e1 = self.machine().total_energy();
    }
  };

  const RunReport run = sim.run(body);

  CollectiveReport report;
  report.status = run.status;
  report.faults = run.faults;
  report.governor = run.governor;
  report.collapse.multiplicity = collapse.multiplicity;
  report.collapse.classes = collapse.classes;
  report.collapse.logical_ranks = config.ranks;
  report.collapse.simulated_ranks = config.ranks / collapse.multiplicity;
  report.collapse.reason = collapse.reason;
  report.collapse.broken_classes = collapse.broken_classes;
  report.collapse.representative_flows = sim.network().flows_started();
  // Latency is the representative group's window verbatim; energy and
  // power integrate over the quotient machine and scale by the class size.
  const double scale = static_cast<double>(collapse.multiplicity);
  const Duration window_time = window->t1 - window->t0;
  report.latency = window_time / static_cast<double>(spec.iterations);
  report.energy_per_op =
      (window->e1 - window->e0) / static_cast<double>(spec.iterations) * scale;
  if (window_time.ns() > 0) {
    report.mean_power =
        (window->e1 - window->e0) / window_time.sec() * scale;
  }
  for (const auto& sample : run.power.samples()) {
    if (sample.time >= window->t0 && sample.time <= window->t1) {
      report.power.add(sample.time, sample.watts * scale);
    }
  }
  if (obs::TraceRecorder* tracer = sim.tracer()) {
    report.energy_phases = run.energy_phases;
    std::ostringstream json;
    tracer->write_json(json);
    report.trace_json = std::move(json).str();
  }
  return report;
}

}  // namespace pacc

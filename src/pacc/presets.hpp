// Calibrated presets reproducing the paper's testbed (§VII-A):
// eight Intel "Nehalem" nodes (2 sockets × 4 cores, 1.6–2.4 GHz, T0–T7),
// InfiniBand QDR HCAs and a non-blocking switch. Power constants are
// calibrated so the three schemes land near the paper's clamp-meter
// readings: default ≈ 2.3 KW, DVFS-only ≈ 1.8 KW, proposed ≈ 1.6 KW.
#pragma once

#include "hw/machine.hpp"
#include "net/network.hpp"

namespace pacc::presets {

/// The paper's 8-node Nehalem cluster (parameterisable node count).
hw::MachineParams paper_machine(int nodes = 8);

/// InfiniBand QDR fabric parameters.
net::NetworkParams paper_network();

}  // namespace pacc::presets

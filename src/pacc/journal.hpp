// Write-ahead cell journal: crash-safe persistence for Campaign sweeps.
//
// A CellJournal is an append-only, CRC-framed record file with one record
// per *completed* sweep cell, keyed by the cell's canonical config hash —
// a whole-cell analogue of PlanCache's structure fingerprint that covers
// everything influencing the cell's numbers (cluster shape, fabric,
// governor, faults with the derived per-cell seed, bench spec, tuned-table
// contents, watchdog thresholds, …). Records round-trip every field the
// "pacc-campaign-v1" artifact consumes with bit-exact doubles, so a sweep
// SIGKILLed at any point and resumed N times produces byte-identical
// artifacts to an uninterrupted run, at any --jobs.
//
// The same file format doubles as the cross-campaign content-addressed
// result cache (CampaignOptions::result_cache): because keys are content
// hashes, overlapping sweeps from repeated invocations hit the cache
// instead of the simulator — the first piece of the memoizing sweep
// daemon the ROADMAP aims at.
//
// Durability discipline (docs/DURABILITY.md): append() writes one framed
// line with a single write(2) on an O_APPEND descriptor and fdatasyncs it
// before the cell is considered journaled. Replay truncates a torn tail (a
// crash mid-append) but rejects corruption anywhere else — a bit flip in
// the middle of the file is NOT a crash artifact and must surface loudly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "fault/fault.hpp"
#include "mpi/governor.hpp"
#include "pacc/simulation.hpp"
#include "pacc/status.hpp"

namespace pacc {

/// One journaled cell outcome — exactly the per-cell payload
/// write_campaign_json consumes, so replaying a record reproduces the
/// artifact bytes a fresh run of the cell would have produced.
struct CellRecord {
  std::uint64_t key = 0;  ///< canonical_cell_hash of the effective cell
  RunStatus status;
  Duration latency;            ///< integer nanoseconds: exact round trip
  double energy_per_op = 0.0;  ///< serialized as IEEE-754 bit patterns
  double mean_power = 0.0;
  int collapse_multiplicity = 1;
  int collapse_classes = 0;
  fault::FaultStats faults;
  mpi::GovernorStats governor;
};

/// Canonical content hash of one effective sweep cell (after Campaign has
/// applied cell_timeout and derived the per-cell fault seed). Mixes every
/// config and bench field that can influence the cell's reported numbers,
/// including the attached tuner's table fingerprint; the plan cache is
/// deliberately excluded (plans are pure — caching cannot change results).
/// Returns nullopt for cells whose results the journal cannot faithfully
/// replay or whose config it cannot canonically enumerate: traced cells
/// (trace JSON / energy phases are not journaled) and cells with explicit
/// machine/network parameter overrides. Such cells simply re-run on
/// resume — the simulator is deterministic, so artifacts stay identical.
std::optional<std::uint64_t> canonical_cell_hash(
    const ClusterConfig& effective, const CollectiveBenchSpec& bench);

/// Serializes `rec` as one journal line: "R <crc32:8hex> <payload>"
/// without the trailing newline. The CRC covers the payload exactly.
std::string encode_cell_record(const CellRecord& rec);

/// Parses a line produced by encode_cell_record (CRC verified). Returns
/// false and fills *error on any mismatch.
bool decode_cell_record(std::string_view line, CellRecord* out,
                        std::string* error = nullptr);

/// Append-only journal / result cache. Thread-safe: Campaign workers
/// append concurrently. Keyed lookups serve both resume (skip journaled
/// cells of this sweep) and cross-campaign memoization.
class CellJournal {
 public:
  /// Opens `path` for append, creating it (with a schema header) when
  /// absent and replaying existing records when present. A torn tail —
  /// the incomplete final record a crash mid-append leaves — is truncated
  /// away; a corrupt or foreign file is rejected with a descriptive
  /// error and nullptr.
  static std::unique_ptr<CellJournal> open(const std::string& path,
                                           std::string* error = nullptr);

  ~CellJournal();
  CellJournal(const CellJournal&) = delete;
  CellJournal& operator=(const CellJournal&) = delete;

  /// The record for `key`, or nullopt.
  std::optional<CellRecord> lookup(std::uint64_t key) const;

  /// Durably appends `rec` (single write + fdatasync) and indexes it.
  /// Keys are content hashes of deterministic runs, so a key already
  /// present is skipped — appending the same cell twice cannot bloat the
  /// file or change a replay. Returns false on I/O failure.
  bool append(const CellRecord& rec);

  /// Records currently indexed (replayed + appended).
  std::size_t size() const;

  /// Records that were replayed from disk at open().
  std::size_t replayed() const { return replayed_; }

  const std::string& path() const { return path_; }

  /// The journal file's schema header line.
  static constexpr std::string_view kSchema = "pacc-journal-v1";

 private:
  CellJournal() = default;

  mutable std::mutex mu_;
  std::map<std::uint64_t, CellRecord> records_;
  std::string path_;
  std::size_t replayed_ = 0;
  int fd_ = -1;
};

}  // namespace pacc

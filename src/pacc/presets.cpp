#include "pacc/presets.hpp"

#include "util/expect.hpp"

namespace pacc::presets {

hw::MachineParams paper_machine(int nodes) {
  PACC_EXPECTS(nodes >= 1);
  hw::MachineParams m;
  m.shape = hw::ClusterShape{nodes, /*sockets_per_node=*/2,
                             /*cores_per_socket=*/4};
  m.fmin = Frequency::ghz(1.6);
  m.fmax = Frequency::ghz(2.4);
  m.dvfs_overhead = Duration::micros(12.0);      // "within 10-15 usecs"
  m.throttle_overhead = Duration::micros(10.0);
  // Calibration (see DESIGN.md §8): with 8 nodes fully polling at fmax the
  // system draws 8·(120 + 2·20 + 8·(4+12)) = 2.304 KW; at fmin ≈ 1.79 KW;
  // with half the cores at T7 ≈ 1.66 KW.
  m.power.node_base = 120.0;
  m.power.socket_uncore = 20.0;
  m.power.core_idle = 4.0;
  m.power.core_dynamic_fmax = 12.0;
  m.power.freq_exponent = 3.0;
  return m;
}

net::NetworkParams paper_network() {
  net::NetworkParams n;
  n.link_bandwidth = 3.2e9;   // QDR after coding/protocol overhead
  n.shm_bandwidth = 16.0e9;
  n.shm_per_flow_bandwidth = 5.0e9;
  n.inter_startup = Duration::micros(2.0);
  n.intra_startup = Duration::micros(0.4);
  n.interrupt_latency = Duration::micros(4.0);
  n.reschedule_latency = Duration::micros(6.0);
  n.eager_threshold = 8 * 1024;
  n.contention_penalty = 0.04;
  n.freq_wire_penalty = 0.2;
  n.throttle_wire_weight = 0.1;
  return n;
}

}  // namespace pacc::presets

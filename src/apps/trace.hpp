// Text format for application workload profiles.
//
// Lets users describe their own application's per-iteration phase structure
// (the same profile-driven methodology the paper uses for CPMD/NAS, §VII-A)
// without recompiling:
//
//   # lines starting with '#' are comments
//   name        my_app
//   iterations  10          # iterations actually simulated
//   extrapolate 4.0         # real iterations per simulated one
//   seed        42
//   phase compute 12ms imbalance 0.05
//   phase alltoall 128K repeat 4
//   phase allreduce 8K
//   phase alltoallv 64K imbalance 0.2
//   phase bcast 1M
//   phase allgather 32K
//   phase reduce 64K
//
// Sizes accept K/M/G suffixes (powers of two); durations accept ns/us/ms/s.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "apps/workload.hpp"

namespace pacc::apps {

struct ParseResult {
  WorkloadSpec spec;
  std::string error;  ///< empty on success; includes the offending line

  bool ok() const { return error.empty(); }
};

/// Parses a workload description from text.
ParseResult parse_workload(std::string_view text);

/// Parses a workload description from a file; errors mention the path.
ParseResult load_workload(const std::string& path);

}  // namespace pacc::apps

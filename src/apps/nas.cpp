#include "apps/nas.hpp"

#include "util/expect.hpp"

namespace pacc::apps {

WorkloadSpec nas_ft(int ranks) {
  PACC_EXPECTS(ranks >= 2);
  // Calibrated against Table II: ≈7 s at 32 ranks with an Alltoall share of
  // roughly 40 % (FT is transpose-dominated). 20 real iterations; 5 are
  // simulated and extrapolated ×4.
  const double scale = static_cast<double>(ranks) / 32.0;
  const Duration compute = Duration::millis(225.0) / scale;
  const auto block =
      static_cast<Bytes>(128.0 * 1024.0 / (scale * scale));

  WorkloadSpec spec;
  spec.name = "FT";
  spec.simulated_iterations = 5;
  spec.extrapolation = 4.0;
  spec.seed = 0xF7000000 ^ static_cast<std::uint64_t>(ranks);
  spec.phases = {
      // evolve() + local 2-D FFT planes.
      Phase{.kind = Phase::Kind::kCompute,
            .compute = compute,
            .imbalance = 0.02},
      // Global transpose of the 3-D array.
      Phase{.kind = Phase::Kind::kAlltoall, .bytes = block, .repeat = 29},
      // Checksum reduction.
      Phase{.kind = Phase::Kind::kAllreduce, .bytes = 16},
  };
  return spec;
}

WorkloadSpec nas_is(int ranks) {
  PACC_EXPECTS(ranks >= 2);
  // Calibrated against Table II: ≈1.5-1.9 s at 32 ranks, roughly half of it
  // in the key exchange. 10 iterations, all simulated.
  const double scale = static_cast<double>(ranks) / 32.0;
  const Duration compute = Duration::millis(110.0) / scale;
  const auto block = static_cast<Bytes>(64.0 * 1024.0 / scale);

  WorkloadSpec spec;
  spec.name = "IS";
  spec.simulated_iterations = 10;
  spec.extrapolation = 1.0;
  spec.seed = 0x15000000 ^ static_cast<std::uint64_t>(ranks);
  spec.phases = {
      // Local key ranking.
      Phase{.kind = Phase::Kind::kCompute,
            .compute = compute,
            .imbalance = 0.05},
      // Bucket-size histogram.
      Phase{.kind = Phase::Kind::kAllreduce, .bytes = 8 * 1024},
      // Key redistribution: uneven per-peer segments.
      Phase{.kind = Phase::Kind::kAlltoallv,
            .bytes = block,
            .repeat = 8,
            .imbalance = 0.2},
  };
  return spec;
}

}  // namespace pacc::apps

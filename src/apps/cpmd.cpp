#include "apps/cpmd.hpp"

#include "util/expect.hpp"

namespace pacc::apps {

namespace {

struct CpmdCalibration {
  /// Per-SCF-iteration compute at the 32-rank scale (whole iteration's
  /// local FFT + density work per rank).
  Duration compute_32;
  /// Transposes (alltoall calls) per SCF iteration.
  int transposes = 5;
  /// Per-pair transpose block at the 32-rank scale.
  Bytes block_32 = 128 * 1024;
  /// Real SCF iterations represented by one simulated one.
  double extrapolation = 10.0;
  int simulated_iterations = 12;
};

CpmdCalibration calibration_for(std::string_view dataset) {
  // Calibrated against Table I / Fig 9: at ~1.9-2.3 KW system power the
  // paper's energies imply ≈12 s, ≈14 s and ≈115 s of 32-rank runtime with
  // a 25-30 % Alltoall share.
  if (dataset == "wat-32-inp-1") {
    return {.compute_32 = Duration::millis(77.0),
            .transposes = 5,
            .block_32 = 128 * 1024,
            .extrapolation = 10.0,
            .simulated_iterations = 12};
  }
  if (dataset == "wat-32-inp-2") {
    return {.compute_32 = Duration::millis(88.0),
            .transposes = 6,
            .block_32 = 128 * 1024,
            .extrapolation = 10.0,
            .simulated_iterations = 12};
  }
  if (dataset == "ta-inp-md") {
    return {.compute_32 = Duration::millis(74.0),
            .transposes = 6,
            .block_32 = 128 * 1024,
            .extrapolation = 90.0,
            .simulated_iterations = 12};
  }
  PACC_EXPECTS_MSG(false, "unknown CPMD dataset");
  return {};
}

}  // namespace

WorkloadSpec cpmd_workload(std::string_view dataset, int ranks) {
  PACC_EXPECTS(ranks >= 2);
  const CpmdCalibration cal = calibration_for(dataset);

  // Strong scaling from the 32-rank reference point.
  const double scale = static_cast<double>(ranks) / 32.0;
  const Duration compute = cal.compute_32 / scale;
  const auto block =
      static_cast<Bytes>(static_cast<double>(cal.block_32) / (scale * scale));

  WorkloadSpec spec;
  spec.name = std::string(dataset);
  spec.simulated_iterations = cal.simulated_iterations;
  spec.extrapolation = cal.extrapolation;
  spec.seed = 0xC93D0000 ^ static_cast<std::uint64_t>(ranks);
  spec.phases = {
      // Local plane-wave FFTs and density construction.
      Phase{.kind = Phase::Kind::kCompute,
            .compute = compute,
            .imbalance = 0.03},
      // 3-D FFT transposes: the dominant communication.
      Phase{.kind = Phase::Kind::kAlltoall,
            .bytes = block,
            .repeat = cal.transposes},
      // Energy/overlap reductions at the end of the SCF step.
      Phase{.kind = Phase::Kind::kAllreduce, .bytes = 4 * 1024},
  };
  return spec;
}

}  // namespace pacc::apps

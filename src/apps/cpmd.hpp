// CPMD-like workload profiles (§VII-F).
//
// CPMD is a plane-wave DFT code whose communication is dominated by the
// MPI_Alltoall of the 3-D FFT transposes. The paper evaluates three inputs
// in strong scaling (same problem, 32 and 64 processes): wat-32-inp-1,
// wat-32-inp-2 and the much longer ta-inp-md. These profiles reproduce the
// published shape: halving of compute time from 32→64 ranks, a roughly
// constant Alltoall time (pair-wise cost ∝ P · M with M ∝ 1/P²), and the
// runtime ratios between the datasets. Transposes use capped per-pair
// blocks with `repeat` calls; a fraction of SCF iterations is simulated and
// extrapolated (the paper likewise estimates application energy from
// profiles, §VII-A).
#pragma once

#include <string_view>
#include <vector>

#include "apps/workload.hpp"

namespace pacc::apps {

/// Dataset names as the paper spells them.
inline constexpr std::string_view kCpmdDatasets[] = {
    "wat-32-inp-1", "wat-32-inp-2", "ta-inp-md"};

/// Builds the CPMD profile for a dataset at the given scale (strong
/// scaling: per-rank compute shrinks with ranks, transpose blocks with
/// ranks²). Throws on an unknown dataset name.
WorkloadSpec cpmd_workload(std::string_view dataset, int ranks);

}  // namespace pacc::apps

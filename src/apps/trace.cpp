#include "apps/trace.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/args.hpp"

namespace pacc::apps {

namespace {

std::string line_error(int line_no, const std::string& line,
                       const std::string& what) {
  std::ostringstream os;
  os << "line " << line_no << ": " << what << " — \"" << line << "\"";
  return os.str();
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token.front() == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

/// Parses the optional "key value" pairs after a phase size.
bool parse_phase_options(const std::vector<std::string>& tokens,
                         std::size_t start, Phase& phase,
                         std::string& error) {
  for (std::size_t i = start; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) {
      error = "option '" + tokens[i] + "' needs a value";
      return false;
    }
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "repeat") {
      phase.repeat = std::stoi(value);
      if (phase.repeat < 1) {
        error = "repeat must be >= 1";
        return false;
      }
    } else if (key == "imbalance") {
      phase.imbalance = std::stod(value);
      if (phase.imbalance < 0.0 || phase.imbalance > 1.0) {
        error = "imbalance must be in [0, 1]";
        return false;
      }
    } else {
      error = "unknown phase option '" + key + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

ParseResult parse_workload(std::string_view text) {
  ParseResult result;
  WorkloadSpec& spec = result.spec;
  spec.name = "unnamed";

  std::istringstream stream{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens.front();

    if (keyword == "name") {
      if (tokens.size() != 2) {
        result.error = line_error(line_no, line, "name takes one value");
        return result;
      }
      spec.name = tokens[1];
    } else if (keyword == "iterations") {
      if (tokens.size() != 2 || (spec.simulated_iterations =
                                     std::atoi(tokens[1].c_str())) < 1) {
        result.error =
            line_error(line_no, line, "iterations takes a positive integer");
        return result;
      }
    } else if (keyword == "extrapolate") {
      if (tokens.size() != 2 ||
          (spec.extrapolation = std::atof(tokens[1].c_str())) < 1.0) {
        result.error =
            line_error(line_no, line, "extrapolate takes a number >= 1");
        return result;
      }
    } else if (keyword == "seed") {
      if (tokens.size() != 2) {
        result.error = line_error(line_no, line, "seed takes one value");
        return result;
      }
      spec.seed = std::strtoull(tokens[1].c_str(), nullptr, 10);
    } else if (keyword == "phase") {
      if (tokens.size() < 3) {
        result.error = line_error(line_no, line,
                                  "phase needs a kind and a size/duration");
        return result;
      }
      Phase phase;
      const std::string& kind = tokens[1];
      std::string opt_error;
      if (kind == "compute") {
        const auto d = parse_duration(tokens[2]);
        if (!d) {
          result.error =
              line_error(line_no, line, "bad duration '" + tokens[2] + "'");
          return result;
        }
        phase.kind = Phase::Kind::kCompute;
        phase.compute = *d;
      } else {
        const auto bytes = parse_bytes(tokens[2]);
        if (!bytes) {
          result.error =
              line_error(line_no, line, "bad size '" + tokens[2] + "'");
          return result;
        }
        phase.bytes = *bytes;
        if (kind == "alltoall") {
          phase.kind = Phase::Kind::kAlltoall;
        } else if (kind == "alltoallv") {
          phase.kind = Phase::Kind::kAlltoallv;
        } else if (kind == "bcast") {
          phase.kind = Phase::Kind::kBcast;
        } else if (kind == "reduce") {
          phase.kind = Phase::Kind::kReduce;
        } else if (kind == "allreduce") {
          phase.kind = Phase::Kind::kAllreduce;
        } else if (kind == "allgather") {
          phase.kind = Phase::Kind::kAllgather;
        } else {
          result.error =
              line_error(line_no, line, "unknown phase kind '" + kind + "'");
          return result;
        }
      }
      if (!parse_phase_options(tokens, 3, phase, opt_error)) {
        result.error = line_error(line_no, line, opt_error);
        return result;
      }
      spec.phases.push_back(phase);
    } else {
      result.error =
          line_error(line_no, line, "unknown keyword '" + keyword + "'");
      return result;
    }
  }

  if (spec.phases.empty()) {
    result.error = "workload has no phases";
  }
  return result;
}

ParseResult load_workload(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    ParseResult result;
    result.error = "cannot open workload file '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  ParseResult result = parse_workload(buffer.str());
  if (!result.ok()) {
    result.error = path + ": " + result.error;
  }
  return result;
}

}  // namespace pacc::apps

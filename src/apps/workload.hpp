// Phase-level application workload engine.
//
// The paper estimates application power by profiling how long applications
// spend in each collective and combining that with benchmark-derived power
// data (§VII-A). This engine mirrors that methodology: an application is a
// sequence of per-iteration phases (local compute + collectives with
// realistic message sizes); a subset of iterations is simulated and the
// totals are extrapolated by the real/simulated iteration ratio.
//
// Large transposes are exercised as `repeat` back-to-back collective calls
// over capped per-pair blocks, which keeps simulation memory bounded while
// driving the identical collective code paths.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "coll/algo.hpp"
#include "pacc/simulation.hpp"
#include "util/units.hpp"

namespace pacc::apps {

struct Phase {
  enum class Kind {
    kCompute,
    kAlltoall,
    kAlltoallv,
    kBcast,
    kReduce,
    kAllreduce,
    kAllgather,
  };
  Kind kind = Kind::kCompute;
  /// kCompute: per-rank work at fmax.
  Duration compute;
  /// Collectives: per-block / per-segment message size in bytes.
  Bytes bytes = 0;
  /// Back-to-back calls of this phase per iteration.
  int repeat = 1;
  /// kCompute: fractional random imbalance across ranks/iterations (0..1);
  /// kAlltoallv: fractional spread of the per-peer segment sizes.
  double imbalance = 0.0;
};

struct WorkloadSpec {
  std::string name;
  int simulated_iterations = 10;
  /// Ratio of real iterations to simulated ones; reported totals are
  /// multiplied by this (1.0 = everything simulated).
  double extrapolation = 1.0;
  std::vector<Phase> phases;
  std::uint64_t seed = 1;
};

/// Application-level outcome (extrapolated totals).
struct AppReport {
  std::string workload;
  coll::PowerScheme scheme = coll::PowerScheme::kNone;
  int ranks = 0;
  /// Structured outcome of the underlying run (see pacc/status.hpp).
  RunStatus status;
  Duration total_time;
  Duration alltoall_time;  ///< time rank 0 spent in Alltoall(v) phases
  Duration comm_time;      ///< time rank 0 spent in all collective phases
  Joules energy = 0.0;
  Watts mean_power = 0.0;
  /// Per-operation profile (calls / bytes / rank-time), un-extrapolated.
  std::map<std::string, mpi::OpStats> profile;
  /// Mean power per node (only with ObsOptions::per_node_meter).
  std::vector<Watts> mean_node_power;

  [[deprecated("use status.ok() / status.outcome")]] bool completed() const {
    return status.ok();
  }
};

/// Runs the workload on a simulated cluster under the given power scheme.
AppReport run_workload(const ClusterConfig& config, const WorkloadSpec& spec,
                       coll::PowerScheme scheme);

}  // namespace pacc::apps

#include "apps/workload.hpp"

#include <algorithm>
#include <memory>

#include "coll/registry.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace pacc::apps {

namespace {

Bytes round_to_doubles(Bytes n) { return (n + 7) / 8 * 8; }

/// Deterministic hash in [-1, 1] shared by every rank: used for compute
/// imbalance and alltoallv segment-size perturbation.
double signed_hash(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  Rng rng(seed ^ (a * 0x9E3779B97F4A7C15ULL) ^ (b << 32));
  return rng.uniform(-1.0, 1.0);
}

/// Per-peer alltoallv segment size for data flowing src -> dst. Both sides
/// compute the same value, keeping the exchange consistent.
Bytes alltoallv_segment(const Phase& phase, std::uint64_t seed, int src,
                        int dst) {
  const double jitter =
      phase.imbalance * signed_hash(seed, static_cast<std::uint64_t>(src),
                                    static_cast<std::uint64_t>(dst));
  const auto scaled =
      static_cast<Bytes>(static_cast<double>(phase.bytes) * (1.0 + jitter));
  return round_to_doubles(std::max<Bytes>(8, scaled));
}

struct Accounting {
  TimePoint start;
  TimePoint end;
  Joules e0 = 0.0;
  Joules e1 = 0.0;
  Duration alltoall;  // rank-0 time inside alltoall(v) phases
  Duration comm;      // rank-0 time inside all collective phases
};

struct RankBuffers {
  std::vector<std::byte> a2a_send, a2a_recv;
  std::vector<std::byte> v_send, v_recv;
  std::vector<Bytes> v_send_counts, v_recv_counts;
  std::vector<std::byte> red_send, red_recv;
  std::vector<std::byte> gat_send, gat_recv;
  std::vector<std::byte> bcast_buf;
};

RankBuffers make_buffers(const WorkloadSpec& spec, int ranks, int me) {
  RankBuffers b;
  const auto P = static_cast<std::size_t>(ranks);
  Bytes a2a = 0, red = 0, bc = 0, gat = 0;
  bool has_v = false;
  for (const auto& ph : spec.phases) {
    switch (ph.kind) {
      case Phase::Kind::kCompute:
        break;
      case Phase::Kind::kAlltoall:
        a2a = std::max(a2a, round_to_doubles(ph.bytes));
        break;
      case Phase::Kind::kAlltoallv: {
        has_v = true;
        std::size_t send_total = 0, recv_total = 0;
        b.v_send_counts.assign(P, 0);
        b.v_recv_counts.assign(P, 0);
        for (int peer = 0; peer < ranks; ++peer) {
          const Bytes out = alltoallv_segment(ph, spec.seed, me, peer);
          const Bytes in = alltoallv_segment(ph, spec.seed, peer, me);
          b.v_send_counts[static_cast<std::size_t>(peer)] = out;
          b.v_recv_counts[static_cast<std::size_t>(peer)] = in;
          send_total += static_cast<std::size_t>(out);
          recv_total += static_cast<std::size_t>(in);
        }
        b.v_send.resize(send_total);
        b.v_recv.resize(recv_total);
        break;
      }
      case Phase::Kind::kBcast:
        bc = std::max(bc, round_to_doubles(ph.bytes));
        break;
      case Phase::Kind::kReduce:
      case Phase::Kind::kAllreduce:
        red = std::max(red, round_to_doubles(ph.bytes));
        break;
      case Phase::Kind::kAllgather:
        gat = std::max(gat, round_to_doubles(ph.bytes));
        break;
    }
  }
  if (a2a > 0) {
    b.a2a_send.resize(P * static_cast<std::size_t>(a2a));
    b.a2a_recv.resize(P * static_cast<std::size_t>(a2a));
  }
  if (red > 0) {
    b.red_send.resize(static_cast<std::size_t>(red));
    b.red_recv.resize(static_cast<std::size_t>(red));
  }
  if (bc > 0) b.bcast_buf.resize(static_cast<std::size_t>(bc));
  if (gat > 0) {
    b.gat_send.resize(static_cast<std::size_t>(gat));
    b.gat_recv.resize(P * static_cast<std::size_t>(gat));
  }
  (void)has_v;
  return b;
}

}  // namespace

AppReport run_workload(const ClusterConfig& config, const WorkloadSpec& spec,
                       coll::PowerScheme scheme) {
  PACC_EXPECTS(spec.simulated_iterations >= 1);
  PACC_EXPECTS(spec.extrapolation >= 1.0);

  Simulation sim(config);
  auto acct = std::make_shared<Accounting>();

  auto body = [&sim, &spec, scheme, acct](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    RankBuffers buffers = make_buffers(spec, world.size(), me);

    if (self.id() == 0) {
      acct->start = self.engine().now();
      acct->e0 = self.machine().total_energy();
    }

    for (int iter = 0; iter < spec.simulated_iterations; ++iter) {
      for (const auto& phase : spec.phases) {
        const TimePoint before = self.engine().now();
        const bool is_a2a = phase.kind == Phase::Kind::kAlltoall ||
                            phase.kind == Phase::Kind::kAlltoallv;
        for (int r = 0; r < phase.repeat; ++r) {
          switch (phase.kind) {
            case Phase::Kind::kCompute: {
              const double jitter =
                  phase.imbalance *
                  signed_hash(spec.seed,
                              static_cast<std::uint64_t>(self.id()),
                              static_cast<std::uint64_t>(iter * 131 + r));
              co_await self.compute(phase.compute * (1.0 + jitter));
              break;
            }
            case Phase::Kind::kAlltoall:
              co_await coll::alltoall(self, world, buffers.a2a_send,
                                      buffers.a2a_recv,
                                      round_to_doubles(phase.bytes),
                                      {.scheme = scheme});
              break;
            case Phase::Kind::kAlltoallv:
              co_await coll::alltoallv(self, world, buffers.v_send,
                                       buffers.v_send_counts, buffers.v_recv,
                                       buffers.v_recv_counts,
                                       {.scheme = scheme});
              break;
            case Phase::Kind::kBcast:
              co_await coll::bcast(self, world, buffers.bcast_buf, 0,
                                   {.scheme = scheme});
              break;
            case Phase::Kind::kReduce:
              co_await coll::reduce(self, world, buffers.red_send,
                                    buffers.red_recv, 0, {.scheme = scheme});
              break;
            case Phase::Kind::kAllreduce:
              co_await coll::allreduce(self, world, buffers.red_send,
                                       buffers.red_recv, {.scheme = scheme});
              break;
            case Phase::Kind::kAllgather:
              co_await coll::allgather(self, world, buffers.gat_send,
                                       buffers.gat_recv,
                                       round_to_doubles(phase.bytes),
                                       {.scheme = scheme});
              break;
          }
        }
        if (self.id() == 0 && phase.kind != Phase::Kind::kCompute) {
          const Duration spent = self.engine().now() - before;
          acct->comm += spent;
          if (is_a2a) acct->alltoall += spent;
        }
      }
    }

    if (self.id() == 0) {
      acct->end = self.engine().now();
      acct->e1 = self.machine().total_energy();
    }
  };

  const RunReport run = sim.run(body);

  AppReport report;
  report.workload = spec.name;
  report.scheme = scheme;
  report.ranks = config.ranks;
  report.status = run.status;
  const Duration measured = acct->end - acct->start;
  report.total_time = measured * spec.extrapolation;
  report.alltoall_time = acct->alltoall * spec.extrapolation;
  report.comm_time = acct->comm * spec.extrapolation;
  report.energy = (acct->e1 - acct->e0) * spec.extrapolation;
  if (measured.ns() > 0) {
    report.mean_power = (acct->e1 - acct->e0) / measured.sec();
  }
  for (const auto& [name, stats] : sim.runtime().profiler().stats()) {
    report.profile.emplace(name, stats);
  }
  for (const auto& series : run.node_power) {
    report.mean_node_power.push_back(series.mean_watts());
  }
  return report;
}

}  // namespace pacc::apps

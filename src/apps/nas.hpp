// NAS Parallel Benchmark kernels FT and IS, class-C-shaped (§VII-G).
//
// FT iterates evolve + 3-D FFT whose transpose is one large MPI_Alltoall;
// IS iterates a bucketed integer sort: local ranking, an Allreduce of the
// bucket histogram and an MPI_Alltoallv of the keys. The profiles keep the
// kernels' per-iteration structure and communication/computation balance at
// the paper's 32/64-process strong-scaling points, with per-pair blocks
// capped (see apps/workload.hpp) so that the simulation stays in bounded
// memory while exercising the identical collective code paths.
#pragma once

#include "apps/workload.hpp"

namespace pacc::apps {

/// FT class-C-shaped profile at `ranks` processes.
WorkloadSpec nas_ft(int ranks);

/// IS class-C-shaped profile at `ranks` processes.
WorkloadSpec nas_is(int ranks);

}  // namespace pacc::apps

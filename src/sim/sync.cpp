#include "sim/sync.hpp"

#include <utility>

#include "util/expect.hpp"

namespace pacc::sim {

void Signal::pulse() {
  // Swap out first: a resumed waiter may immediately wait again, and that
  // re-registration must target the *next* pulse.
  std::vector<std::coroutine_handle<>> batch;
  batch.swap(waiters_);
  for (auto h : batch) {
    engine_.schedule(Duration::zero(), [h] { h.resume(); });
  }
}

void Latch::fire() {
  if (fired_) return;
  fired_ = true;
  std::vector<std::coroutine_handle<>> batch;
  batch.swap(waiters_);
  for (auto h : batch) {
    engine_.schedule(Duration::zero(), [h] { h.resume(); });
  }
}

Barrier::Barrier(Engine& engine, std::size_t parties)
    : engine_(engine), parties_(parties) {
  PACC_EXPECTS(parties >= 1);
}

bool Barrier::arrive(std::coroutine_handle<> h) {
  PACC_ASSERT(waiting_.size() < parties_);
  if (waiting_.size() + 1 == parties_) {
    std::vector<std::coroutine_handle<>> batch;
    batch.swap(waiting_);
    for (auto w : batch) {
      engine_.schedule(Duration::zero(), [w] { w.resume(); });
    }
    return false;  // last arriver continues without suspending
  }
  waiting_.push_back(h);
  return true;
}

}  // namespace pacc::sim

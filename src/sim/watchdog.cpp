#include "sim/watchdog.hpp"

#include <utility>

#include "util/expect.hpp"

namespace pacc::sim {

Watchdog::Watchdog(Engine& engine, Params params, ProgressProbe probe)
    : engine_(engine), params_(params), probe_(std::move(probe)) {
  PACC_EXPECTS(params_.interval.ns() > 0 && params_.stall_ticks >= 1);
  PACC_EXPECTS(probe_ != nullptr);
}

void Watchdog::start() {
  last_mark_ = probe_();
  strikes_ = 0;
  fired_ = false;
  pending_ = engine_.schedule(params_.interval, [this] { tick(); });
}

void Watchdog::stop() {
  if (pending_ != 0) {
    engine_.cancel(pending_);
    pending_ = 0;
  }
}

void Watchdog::tick() {
  pending_ = 0;
  const std::uint64_t mark = probe_();
  if (mark != last_mark_) {
    last_mark_ = mark;
    strikes_ = 0;
  } else if (++strikes_ >= params_.stall_ticks) {
    // Nothing retried, nothing landed for the whole stall window — every
    // rank is waiting on a message that no pending event can produce. Stop
    // now instead of simulating to the max_sim_time bound.
    fired_ = true;
    engine_.request_stop();
    return;
  }
  pending_ = engine_.schedule(params_.interval, [this] { tick(); });
}

}  // namespace pacc::sim

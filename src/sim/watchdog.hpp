// Quiescence watchdog: distinguishes true deadlock from fault-induced stall.
//
// Under fault injection a run can look stuck while it is actually retrying:
// a dropped message's retransmit timer is a pending event, so the engine's
// "queue drained" deadlock signal never fires, and without help a genuinely
// deadlocked faulted run would burn simulated time all the way to the
// max_sim_time safety bound (the injector's own flap timers keep the queue
// non-empty forever). The watchdog samples an externally supplied progress
// counter — transmission attempts + deliveries + bytes on the wire — at a
// fixed interval; only when the counter has not moved for a whole stall
// window does it declare deadlock and stop the engine.
//
// The interval must comfortably exceed the longest legitimate quiet gap
// (the retransmit layer's maximum backoff), and the probe must NOT count
// injector timer events: link flaps fire during a true deadlock too.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "util/units.hpp"

namespace pacc::sim {

class Watchdog {
 public:
  struct Params {
    Duration interval = Duration::millis(50.0);
    int stall_ticks = 4;  ///< consecutive still intervals before firing
  };

  /// Monotone counter that moves whenever the run makes real progress.
  using ProgressProbe = std::function<std::uint64_t()>;

  Watchdog(Engine& engine, Params params, ProgressProbe probe);
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Begins sampling; the first check fires one interval from now.
  void start();

  /// Cancels the pending sample. Call before classifying a run's outcome —
  /// a live watchdog event would read as pending forward progress.
  void stop();

  /// Whether the watchdog declared deadlock (and stopped the engine).
  bool fired() const { return fired_; }

  /// Quiet time needed to fire: interval × stall_ticks.
  Duration stall_window() const {
    return Duration::nanos(params_.interval.ns() * params_.stall_ticks);
  }

 private:
  void tick();

  Engine& engine_;
  Params params_;
  ProgressProbe probe_;
  EventId pending_ = 0;
  std::uint64_t last_mark_ = 0;
  int strikes_ = 0;
  bool fired_ = false;
};

}  // namespace pacc::sim

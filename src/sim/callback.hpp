// Small-buffer-optimized callback for the event core.
//
// Event callbacks in the hot path capture at most a couple of pointers (a
// coroutine handle, an object pointer plus an id), so the common case stores
// the callable inline in 24 bytes with no heap allocation and a trivial
// (memcpy) move. Larger or non-trivially-copyable callables — e.g. an eager
// delivery closure owning a message payload — fall back to a single heap
// allocation, which keeps the type fully general without penalising the
// simulator's dominant event shapes.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/expect.hpp"

namespace pacc::sim {

/// Move-only type-erased `void()` callable with small-buffer optimization.
class Callback {
 public:
  /// Inline storage: three pointers' worth covers every hot-path capture
  /// (engine/network pointer + 64-bit id + spare).
  static constexpr std::size_t kInlineSize = 3 * sizeof(void*);

  Callback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback>>>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                      // the std::function parameter it replaces.
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(store_.buf)) D(std::forward<F>(fn));
      invoke_ = [](Callback& self) {
        (*std::launder(reinterpret_cast<D*>(self.store_.buf)))();
      };
      drop_ = nullptr;  // trivially destructible by construction
    } else {
      store_.ptr = new D(std::forward<F>(fn));
      invoke_ = [](Callback& self) { (*static_cast<D*>(self.store_.ptr))(); };
      drop_ = [](Callback& self) { delete static_cast<D*>(self.store_.ptr); };
    }
  }

  Callback(Callback&& other) noexcept
      : invoke_(other.invoke_), drop_(other.drop_), store_(other.store_) {
    other.invoke_ = nullptr;
    other.drop_ = nullptr;
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      drop_ = other.drop_;
      store_ = other.store_;
      other.invoke_ = nullptr;
      other.drop_ = nullptr;
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() {
    PACC_ASSERT(invoke_ != nullptr);
    invoke_(*this);
  }

  void reset() noexcept {
    if (drop_) drop_(*this);
    invoke_ = nullptr;
    drop_ = nullptr;
  }

  /// Whether a callable of type D takes the no-allocation inline path.
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(void*) &&
           std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

 private:
  using Invoke = void (*)(Callback&);
  using Drop = void (*)(Callback&);

  Invoke invoke_ = nullptr;
  Drop drop_ = nullptr;  ///< non-null only for heap-allocated callables
  union Storage {
    void* ptr;
    alignas(void*) std::byte buf[kInlineSize];
  } store_{};
};

}  // namespace pacc::sim

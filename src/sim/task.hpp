// Coroutine task type for simulated processes.
//
// Every simulated MPI rank — and every collective algorithm it calls — is a
// coroutine returning sim::Task<T>. Tasks are lazily started: a child task
// begins executing when its parent co_awaits it (symmetric transfer), and a
// top-level task begins when Engine::spawn schedules its first resume. The
// whole cluster therefore runs deterministically on one OS thread.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/expect.hpp"

namespace pacc::sim {

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool finished = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      p.finished = true;
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept {
    // Simulated processes must not leak exceptions: the event loop has no
    // sensible place to rethrow them deterministically.
    std::terminate();
  }
};

}  // namespace detail

/// A lazily-started coroutine producing a T (or nothing for T = void).
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  ~Task() {
    if (h_) h_.destroy();
  }

  bool done() const { return h_ && h_.promise().finished; }

  /// Awaiting a task starts it and suspends the parent until it finishes.
  auto operator co_await() noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return h.promise().finished; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        PACC_ASSERT(h.promise().value.has_value());
        return std::move(*h.promise().value);
      }
    };
    PACC_EXPECTS_MSG(h_ != nullptr, "awaiting a moved-from Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  Handle h_{};

  friend class Engine;
  template <typename>
  friend class Task;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  ~Task() {
    if (h_) h_.destroy();
  }

  bool done() const { return h_ && h_.promise().finished; }

  auto operator co_await() noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return h.promise().finished; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() const noexcept {}
    };
    PACC_EXPECTS_MSG(h_ != nullptr, "awaiting a moved-from Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  Handle h_{};

  friend class Engine;
};

}  // namespace pacc::sim

// Deterministic discrete-event engine.
//
// Events are ordered by (time, insertion sequence) so two runs of the same
// program produce byte-identical traces. Coroutine tasks suspend on
// awaitables (delay, trigger, message arrival) and are resumed by events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/task.hpp"
#include "util/expect.hpp"
#include "util/units.hpp"

namespace pacc::sim {

/// Identifier of a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// Result of draining the event queue.
struct RunResult {
  bool all_tasks_finished = false;  ///< false indicates deadlock / starvation
  std::size_t stuck_tasks = 0;      ///< spawned tasks still pending
  TimePoint end_time;               ///< simulated clock when the queue drained
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Returns an id for cancel().
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (must not be in the past).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired event is a no-op.
  void cancel(EventId id);

  /// Registers a top-level task and schedules its first resume at now().
  void spawn(Task<> task);

  /// Runs until the event queue is empty. Reports deadlock if spawned tasks
  /// remain unfinished (e.g. a recv with no matching send).
  RunResult run();

  /// Runs until the queue is empty or the clock would pass `deadline`.
  /// Events at exactly `deadline` are executed.
  RunResult run_until(TimePoint deadline);

  /// Runs until every spawned task has finished (or the queue drains, which
  /// then indicates deadlock). Use this when perpetual event sources — such
  /// as a sampling power meter — would keep a plain run() alive forever.
  RunResult run_active();

  /// run_active() with a simulated-time bound: if tasks are still pending
  /// at `deadline` (e.g. a deadlocked rank while the meter keeps ticking),
  /// stops and reports them as stuck.
  RunResult run_active_until(TimePoint deadline);

  /// Spawned tasks that have not yet finished.
  std::uint64_t active_tasks() const { return active_tasks_; }

  /// Number of events dispatched so far (for micro-benchmarks / tests).
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Awaitable that resumes the caller after `d` of simulated time.
  auto delay(Duration d) {
    struct Awaiter {
      Engine& eng;
      Duration d;
      bool await_ready() const noexcept { return d.ns() <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    PACC_EXPECTS_MSG(d.ns() >= 0, "cannot delay into the past");
    return Awaiter{*this, d};
  }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;

    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  RunResult drain(TimePoint deadline, bool stop_when_idle);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  std::vector<Task<>> spawned_;
  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::uint64_t active_tasks_ = 0;
};

}  // namespace pacc::sim

// Deterministic discrete-event engine.
//
// Events are ordered by (time, insertion sequence) so two runs of the same
// program produce byte-identical traces. Coroutine tasks suspend on
// awaitables (delay, trigger, message arrival) and are resumed by events.
//
// The event core is allocation-free in steady state: callbacks use a
// small-buffer type (sim::Callback), event nodes live in a pooled slab
// indexed by the priority heap, and cancellation is O(1) via generation
// counters — a cancelled event's heap entry becomes a lazy tombstone that is
// reclaimed when it reaches the top of the heap.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/task.hpp"
#include "util/expect.hpp"
#include "util/units.hpp"

namespace pacc::obs {
class TraceRecorder;
}  // namespace pacc::obs

namespace pacc::sim {

/// Identifier of a scheduled event, usable for cancellation. Encodes the
/// pool slot (low 32 bits) and its generation (high 32 bits); 0 is never a
/// valid id, so it can serve as a "no event" sentinel.
using EventId = std::uint64_t;

/// Result of draining the event queue.
struct RunResult {
  bool all_tasks_finished = false;  ///< false indicates deadlock / starvation
  bool stopped = false;             ///< ended early via request_stop()
  std::size_t stuck_tasks = 0;      ///< spawned tasks still pending
  TimePoint end_time;               ///< simulated clock when the queue drained
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  TimePoint now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Returns an id for cancel().
  EventId schedule(Duration delay, Callback fn);

  /// Schedules `fn` at an absolute time (must not be in the past).
  EventId schedule_at(TimePoint when, Callback fn);

  /// Cancels a pending event in O(1); cancelling an already-fired (or
  /// already-cancelled) event is a no-op and leaves no residue.
  void cancel(EventId id);

  /// Registers a top-level task and schedules its first resume at now().
  void spawn(Task<> task);

  /// Runs until the event queue is empty. Reports deadlock if spawned tasks
  /// remain unfinished (e.g. a recv with no matching send).
  RunResult run();

  /// Runs until the queue is empty or the clock would pass `deadline`.
  /// Events at exactly `deadline` are executed.
  RunResult run_until(TimePoint deadline);

  /// Runs until every spawned task has finished (or the queue drains, which
  /// then indicates deadlock). Use this when perpetual event sources — such
  /// as a sampling power meter — would keep a plain run() alive forever.
  RunResult run_active();

  /// run_active() with a simulated-time bound: if tasks are still pending
  /// at `deadline` (e.g. a deadlocked rank while the meter keeps ticking),
  /// stops and reports them as stuck.
  RunResult run_active_until(TimePoint deadline);

  /// Spawned tasks that have not yet finished.
  std::uint64_t active_tasks() const { return active_tasks_; }

  /// Cooperative abort: the current drain loop stops before dispatching the
  /// next event. For machinery that must end a run from deep inside an
  /// event callback or coroutine — exceptions cannot cross the event core
  /// (Task terminates on unhandled ones). The flag clears when the next
  /// run*() starts; the queue and task registry are left intact.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Destroys every spawned task frame, including ones still suspended
  /// after a cut-short run. Owners of objects the frames reference (ranks,
  /// communicators, buffers) must call this before those objects die: the
  /// engine outlives them in the usual member order, and destroying a
  /// suspended frame runs the destructors of its locals. The engine is
  /// reusable afterwards (the event queue is left untouched).
  void drop_tasks() {
    spawned_.clear();
    active_tasks_ = 0;
    retired_tasks_ = 0;
  }

  /// Holds run_active() open for pending work that is not a spawned task —
  /// e.g. an eager message in flight between send and delivery. Pair every
  /// retain with exactly one release (typically from the completion
  /// callback); an unreleased hold reads as a stuck task.
  void retain_active() { ++active_tasks_; }
  void release_active() { --active_tasks_; }

  /// Observability hook: components on the hot path (machine, runtime,
  /// collectives) read this pointer and skip all instrumentation when it is
  /// null — the recorder costs nothing unless a trace was requested.
  obs::TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Number of events dispatched so far (for micro-benchmarks / tests).
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Cancelled events whose heap entry has not been reclaimed yet. Always 0
  /// after a full run() — tombstones are erased as they are popped.
  std::uint64_t cancelled_backlog() const { return cancelled_backlog_; }

  /// Event-pool slots currently holding a live (scheduled, uncancelled,
  /// unfired) callback. Always 0 after a full run().
  std::size_t live_event_nodes() const {
    return nodes_.size() - free_nodes_.size();
  }

  /// Scheduled events still in the queue (tombstones excluded).
  std::size_t pending_events() const {
    return heap_.size() - static_cast<std::size_t>(cancelled_backlog_);
  }

  /// Awaitable that resumes the caller after `d` of simulated time.
  auto delay(Duration d) {
    struct Awaiter {
      Engine& eng;
      Duration d;
      bool await_ready() const noexcept { return d.ns() <= 0; }
      void await_suspend(std::coroutine_handle<> h) {
        eng.schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    PACC_EXPECTS_MSG(d.ns() >= 0, "cannot delay into the past");
    return Awaiter{*this, d};
  }

 private:
  /// Heap entry: 24 trivially-copyable bytes, so sift operations are plain
  /// memory moves. `gen` must match the node's generation or the entry is a
  /// tombstone. Ordering is (when_ns, seq), identical to the historical
  /// (time, insertion sequence) ordering.
  struct HeapEntry {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Pooled event node; generation advances every time the slot is
  /// released, invalidating outstanding EventIds and heap entries.
  struct Node {
    Callback fn;
    std::uint32_t gen = 1;
  };

  static bool heap_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.when_ns != b.when_ns) return a.when_ns < b.when_ns;
    return a.seq < b.seq;
  }

  void heap_push(HeapEntry e);
  void heap_pop_top();

  std::uint32_t alloc_node();
  void release_node(std::uint32_t slot);

  Task<> track_completion(Task<> inner);

  RunResult drain(TimePoint deadline, bool stop_when_idle);

  // 4-ary implicit min-heap: shallower than a binary heap and the four
  // children share a cache line, which measurably speeds up sift-down on
  // the simulator's event mixes.
  std::vector<HeapEntry> heap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::vector<Task<>> spawned_;
  obs::TraceRecorder* tracer_ = nullptr;
  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t active_tasks_ = 0;
  std::uint64_t retired_tasks_ = 0;  ///< finished since last reclamation
  std::uint64_t cancelled_backlog_ = 0;
  bool stop_requested_ = false;
};

}  // namespace pacc::sim

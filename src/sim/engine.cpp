#include "sim/engine.hpp"

#include <utility>

namespace pacc::sim {

EventId Engine::schedule(Duration delay, std::function<void()> fn) {
  PACC_EXPECTS(delay.ns() >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(TimePoint when, std::function<void()> fn) {
  PACC_EXPECTS_MSG(when >= now_, "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Engine::cancel(EventId id) { cancelled_.insert(id); }

namespace {

/// Wraps a spawned task so the engine can track completion in O(1).
Task<> track_completion(std::uint64_t* active, Task<> inner) {
  co_await inner;
  --*active;
}

}  // namespace

void Engine::spawn(Task<> task) {
  PACC_EXPECTS_MSG(task.h_ != nullptr, "spawning a moved-from Task");
  // Reclaim finished tasks occasionally so long simulations that spawn many
  // detached helpers (eager sends, meters) don't grow without bound.
  if (spawned_.size() >= 1024) {
    std::erase_if(spawned_, [](const Task<>& t) { return t.done(); });
  }
  ++active_tasks_;
  Task<> wrapped = track_completion(&active_tasks_, std::move(task));
  auto handle = wrapped.h_;
  spawned_.push_back(std::move(wrapped));
  schedule(Duration::zero(), [handle] { handle.resume(); });
}

RunResult Engine::run() {
  return drain(TimePoint::max(), /*stop_when_idle=*/false);
}

RunResult Engine::run_until(TimePoint deadline) {
  return drain(deadline, /*stop_when_idle=*/false);
}

RunResult Engine::run_active() {
  return drain(TimePoint::max(), /*stop_when_idle=*/true);
}

RunResult Engine::run_active_until(TimePoint deadline) {
  return drain(deadline, /*stop_when_idle=*/true);
}

RunResult Engine::drain(TimePoint deadline, bool stop_when_idle) {
  while (!queue_.empty() && queue_.top().when <= deadline &&
         !(stop_when_idle && active_tasks_ == 0)) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++dispatched_;
    ev.fn();
  }
  RunResult result;
  result.end_time = now_;
  result.stuck_tasks = static_cast<std::size_t>(active_tasks_);
  result.all_tasks_finished = result.stuck_tasks == 0;
  return result;
}

}  // namespace pacc::sim

#include "sim/engine.hpp"

#include <utility>

namespace pacc::sim {

namespace {
constexpr std::uint32_t kSlotMask = 0xffffffffu;
}  // namespace

void Engine::heap_push(HeapEntry e) {
  heap_.push_back(e);  // placeholder; filled by the hole walk below
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!heap_less(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::heap_pop_top() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_less(heap_[c], heap_[best])) best = c;
    }
    if (!heap_less(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

std::uint32_t Engine::alloc_node() {
  if (!free_nodes_.empty()) {
    const std::uint32_t slot = free_nodes_.back();
    free_nodes_.pop_back();
    return slot;
  }
  PACC_ASSERT(nodes_.size() < kSlotMask);
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Engine::release_node(std::uint32_t slot) {
  Node& node = nodes_[slot];
  node.fn.reset();
  ++node.gen;
  free_nodes_.push_back(slot);
}

EventId Engine::schedule(Duration delay, Callback fn) {
  PACC_EXPECTS(delay.ns() >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_at(TimePoint when, Callback fn) {
  PACC_EXPECTS_MSG(when >= now_, "cannot schedule into the past");
  const std::uint32_t slot = alloc_node();
  Node& node = nodes_[slot];
  node.fn = std::move(fn);
  heap_push(HeapEntry{when.ns(), next_seq_++, slot, node.gen});
  return (static_cast<EventId>(node.gen) << 32) | slot;
}

void Engine::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= nodes_.size() || nodes_[slot].gen != gen) {
    return;  // already fired or already cancelled: no residue to track
  }
  release_node(slot);
  ++cancelled_backlog_;  // the heap entry is now a tombstone
}

void Engine::spawn(Task<> task) {
  PACC_EXPECTS_MSG(task.h_ != nullptr, "spawning a moved-from Task");
  // Reclaim finished tasks once they make up half the registry, so long
  // simulations that spawn many detached helpers (eager sends, meters) stay
  // bounded at amortized O(1) per spawn — each O(n) sweep removes >= n/2
  // entries.
  if (retired_tasks_ >= 64 && retired_tasks_ * 2 >= spawned_.size()) {
    std::erase_if(spawned_, [](const Task<>& t) { return t.done(); });
    retired_tasks_ = 0;
  }
  ++active_tasks_;
  Task<> wrapped = track_completion(std::move(task));
  auto handle = wrapped.h_;
  spawned_.push_back(std::move(wrapped));
  schedule(Duration::zero(), [handle] { handle.resume(); });
}

/// Wraps a spawned task so the engine can track completion in O(1).
Task<> Engine::track_completion(Task<> inner) {
  co_await inner;
  --active_tasks_;
  ++retired_tasks_;
}

RunResult Engine::run() {
  return drain(TimePoint::max(), /*stop_when_idle=*/false);
}

RunResult Engine::run_until(TimePoint deadline) {
  return drain(deadline, /*stop_when_idle=*/false);
}

RunResult Engine::run_active() {
  return drain(TimePoint::max(), /*stop_when_idle=*/true);
}

RunResult Engine::run_active_until(TimePoint deadline) {
  return drain(deadline, /*stop_when_idle=*/true);
}

RunResult Engine::drain(TimePoint deadline, bool stop_when_idle) {
  stop_requested_ = false;
  while (!heap_.empty() && heap_[0].when_ns <= deadline.ns() &&
         !(stop_when_idle && active_tasks_ == 0) && !stop_requested_) {
    const HeapEntry top = heap_[0];
    heap_pop_top();
    Node& node = nodes_[top.slot];
    if (node.gen != top.gen) {
      --cancelled_backlog_;  // tombstone of a cancelled event: reclaim
      continue;
    }
    // Move the callback out and release the slot *before* invoking: the
    // callback may schedule new events, growing the node pool.
    Callback fn = std::move(node.fn);
    release_node(top.slot);
    now_ = TimePoint{top.when_ns};
    ++dispatched_;
    fn();
  }
  RunResult result;
  result.end_time = now_;
  result.stopped = stop_requested_;
  result.stuck_tasks = static_cast<std::size_t>(active_tasks_);
  result.all_tasks_finished = result.stuck_tasks == 0;
  return result;
}

}  // namespace pacc::sim

// Synchronisation awaitables for simulated processes.
//
// - Signal:  edge-triggered pulse; wakes everyone currently waiting.
// - Latch:   one-shot level-triggered event; waits after fire() return ready.
// - Barrier: cyclic rendezvous for a fixed party count (used for the
//            node-local phase synchronisation of the power-aware Alltoall).
#pragma once

#include <coroutine>
#include <cstddef>
#include <vector>

#include "sim/engine.hpp"

namespace pacc::sim {

/// Edge-triggered notification: pulse() wakes all coroutines that were
/// waiting at that moment; later waiters block until the next pulse.
class Signal {
 public:
  explicit Signal(Engine& engine) : engine_(engine) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  void pulse();

  auto wait() {
    struct Awaiter {
      Signal& sig;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sig.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// One-shot latch: once fired, every wait() completes immediately.
class Latch {
 public:
  explicit Latch(Engine& engine) : engine_(engine) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void fire();
  bool fired() const { return fired_; }

  auto wait() {
    struct Awaiter {
      Latch& latch;
      bool await_ready() const noexcept { return latch.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        latch.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Cyclic barrier for `parties` coroutines. The last arriver releases all and
/// the barrier resets for reuse.
class Barrier {
 public:
  Barrier(Engine& engine, std::size_t parties);
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Awaitable arrival; completes when all parties have arrived.
  auto arrive_and_wait() {
    struct Awaiter {
      Barrier& bar;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) { return bar.arrive(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t parties() const { return parties_; }

 private:
  /// Returns true if the caller must suspend (i.e. it was not the last).
  bool arrive(std::coroutine_handle<> h);

  Engine& engine_;
  std::size_t parties_;
  std::vector<std::coroutine_handle<>> waiting_;
};

}  // namespace pacc::sim

#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"

namespace pacc::net {

namespace {
// Residual bytes below this are treated as delivered (guards double error).
constexpr double kByteEpsilon = 1e-6;
}  // namespace

FlowNetwork::FlowNetwork(sim::Engine& engine, hw::ClusterShape shape,
                         NetworkParams params)
    : engine_(engine), shape_(shape), params_(params) {
  PACC_EXPECTS(shape_.valid());
  PACC_EXPECTS(params_.link_bandwidth > 0.0 && params_.shm_bandwidth > 0.0);
  PACC_EXPECTS_MSG(shape_.fabric_levels() <= kMaxFabricLevels,
                   "at most three fat-tree fabric levels are supported");
  std::size_t link_count =
      static_cast<std::size_t>(3 * shape_.nodes + 2 * shape_.racks());
  fabric_link_base_.reserve(static_cast<std::size_t>(shape_.fabric_levels()));
  for (int level = 0; level < shape_.fabric_levels(); ++level) {
    fabric_link_base_.push_back(static_cast<int>(link_count));
    link_count += static_cast<std::size_t>(2 * shape_.fabric_groups(level));
  }
  df_link_base_ = static_cast<int>(link_count);
  if (shape_.has_dragonfly()) {
    link_count += static_cast<std::size_t>(2 * shape_.df_routers_total() +
                                           2 * shape_.df_groups());
  }
  link_bandwidth_.assign(link_count, 0.0);
  for (int n = 0; n < shape_.nodes; ++n) {
    link_bandwidth_[static_cast<std::size_t>(uplink(n))] =
        params_.link_bandwidth;
    link_bandwidth_[static_cast<std::size_t>(downlink(n))] =
        params_.link_bandwidth;
    link_bandwidth_[static_cast<std::size_t>(shm_link(n))] =
        params_.shm_bandwidth;
  }
  for (int r = 0; r < shape_.racks(); ++r) {
    const double bw =
        rack_layer_enabled() ? params_.rack_bandwidth : params_.link_bandwidth;
    link_bandwidth_[static_cast<std::size_t>(rack_uplink(r))] = bw;
    link_bandwidth_[static_cast<std::size_t>(rack_downlink(r))] = bw;
  }
  for (int level = 0; level < shape_.fabric_levels(); ++level) {
    const double bw =
        shape_.fabric_link_bandwidth(level, params_.link_bandwidth);
    for (int g = 0; g < shape_.fabric_groups(level); ++g) {
      link_bandwidth_[static_cast<std::size_t>(fabric_uplink(level, g))] = bw;
      link_bandwidth_[static_cast<std::size_t>(fabric_downlink(level, g))] =
          bw;
    }
  }
  if (shape_.has_dragonfly()) {
    const double local_bw = shape_.df_local_bandwidth(params_.link_bandwidth);
    const double global_bw =
        shape_.df_global_bandwidth(params_.link_bandwidth);
    for (int r = 0; r < shape_.df_routers_total(); ++r) {
      link_bandwidth_[static_cast<std::size_t>(df_router_uplink(r))] =
          local_bw;
      link_bandwidth_[static_cast<std::size_t>(df_router_downlink(r))] =
          local_bw;
    }
    for (int g = 0; g < shape_.df_groups(); ++g) {
      link_bandwidth_[static_cast<std::size_t>(df_global_uplink(g))] =
          global_bw;
      link_bandwidth_[static_cast<std::size_t>(df_global_downlink(g))] =
          global_bw;
    }
  }
  link_efficiency_.assign(link_count, 1.0);
  link_head_.assign(link_count, kNullFlow);
  link_nflows_.assign(link_count, 0);
  residual_.assign(link_count, 0.0);
  wf_active_.assign(link_count, 0);
  link_epoch_.assign(link_count, 0);
}

double NetworkParams::wire_multiplier(double sender_freq_slowdown,
                                      double sender_throttle_slowdown,
                                      double receiver_freq_slowdown,
                                      double receiver_throttle_slowdown) const {
  auto endpoint = [this](double sf, double st) {
    return 1.0 + freq_wire_penalty * (sf - 1.0) +
           freq_wire_penalty * throttle_wire_weight * (st - 1.0);
  };
  return std::max(endpoint(sender_freq_slowdown, sender_throttle_slowdown),
                  endpoint(receiver_freq_slowdown, receiver_throttle_slowdown));
}

// ------------------------------------------------------------- slab ----

std::uint32_t FlowNetwork::alloc_flow() {
  if (!free_flows_.empty()) {
    const std::uint32_t slot = free_flows_.back();
    free_flows_.pop_back();
    return slot;
  }
  flows_.emplace_back();
  flow_epoch_.push_back(0);
  return static_cast<std::uint32_t>(flows_.size() - 1);
}

int FlowNetwork::link_index_of(const Flow& flow, std::int32_t link) const {
  for (int k = 0; k < flow.nlinks; ++k) {
    if (flow.links[k] == link) return k;
  }
  PACC_ASSERT(false);  // flow is not on this link's list
  return -1;
}

void FlowNetwork::link_flow(std::uint32_t slot) {
  Flow& flow = flows_[slot];
  for (int k = 0; k < flow.nlinks; ++k) {
    const auto l = static_cast<std::size_t>(flow.links[k]);
    const std::uint32_t head = link_head_[l];
    flow.prev[k] = kNullFlow;
    flow.next[k] = head;
    if (head != kNullFlow) {
      Flow& head_flow = flows_[head];
      head_flow.prev[link_index_of(head_flow, flow.links[k])] = slot;
    }
    link_head_[l] = slot;
    ++link_nflows_[l];
  }
}

void FlowNetwork::unlink_flow(std::uint32_t slot) {
  Flow& flow = flows_[slot];
  for (int k = 0; k < flow.nlinks; ++k) {
    const std::int32_t link = flow.links[k];
    const auto l = static_cast<std::size_t>(link);
    const std::uint32_t prev = flow.prev[k];
    const std::uint32_t next = flow.next[k];
    if (prev != kNullFlow) {
      flows_[prev].next[link_index_of(flows_[prev], link)] = next;
    } else {
      link_head_[l] = next;
    }
    if (next != kNullFlow) {
      flows_[next].prev[link_index_of(flows_[next], link)] = prev;
    }
    --link_nflows_[l];
  }
}

// ------------------------------------------------------------ API ----

sim::Task<bool> FlowNetwork::transfer(int src_node, int dst_node, Bytes bytes,
                                      bool force_loopback,
                                      double wire_multiplier, bool via_top) {
  // A down link refuses new work before any bandwidth is allocated — even
  // a zero-byte header cannot cross it.
  if (!path_up(src_node, dst_node, force_loopback, via_top)) co_return false;
  if (bytes == 0) co_return true;
  const FlowHandle h = start_flow_impl(src_node, dst_node, bytes,
                                       force_loopback, wire_multiplier, {},
                                       via_top);
  co_return co_await FlowAwaiter{*this, h};
}

FlowNetwork::FlowHandle FlowNetwork::start_flow(int src_node, int dst_node,
                                                Bytes bytes,
                                                bool force_loopback,
                                                double wire_multiplier,
                                                sim::Callback on_delivered,
                                                bool via_top) {
  if (bytes == 0) {
    // Nothing crosses the fabric; deliver from the engine at now() so the
    // callback still runs in event context, like any other delivery.
    if (on_delivered) {
      engine_.schedule(Duration::zero(), std::move(on_delivered));
    }
    return FlowHandle{};
  }
  return start_flow_impl(src_node, dst_node, bytes, force_loopback,
                         wire_multiplier, std::move(on_delivered), via_top);
}

int FlowNetwork::dragonfly_links(int src_node, int dst_node, bool via_top,
                                 std::int32_t* out) const {
  const int sr = shape_.df_router_of(src_node);
  const int dr = shape_.df_router_of(dst_node);
  const int sg = shape_.df_group_of(src_node);
  const int dg = shape_.df_group_of(dst_node);
  int n = 0;
  if (sr == dr && !via_top) return 0;  // same router: HCA links only
  if (sg == dg && !via_top) {
    // Group-local: one hop over the group's all-to-all router mesh.
    out[n++] = df_router_uplink(sr);
    out[n++] = df_router_downlink(dr);
    return n;
  }
  // Cross-group (or the collapse's forced representative path): source
  // router into the mesh, source group's global link out, destination
  // group's global link in, destination router out of the mesh.
  out[n++] = df_router_uplink(sr);
  out[n++] = df_global_uplink(sg);
  const int groups = shape_.df_groups();
  if (shape_.dragonfly.adaptive && !via_top && sg != dg && groups >= 3) {
    // Valiant detour: land in a deterministic intermediate group and
    // re-emerge onto the global plane. The intermediate is the first
    // group after the source that is neither endpoint — deterministic, so
    // runs stay byte-identical at any job count.
    int mid = (sg + 1) % groups;
    while (mid == sg || mid == dg) mid = (mid + 1) % groups;
    out[n++] = df_global_downlink(mid);
    out[n++] = df_global_uplink(mid);
  }
  out[n++] = df_global_downlink(dg);
  out[n++] = df_router_downlink(dr);
  return n;
}

void FlowNetwork::route_flow(Flow& flow, int src_node, int dst_node,
                             bool force_loopback, bool via_top) const {
  if (src_node == dst_node && !force_loopback && !via_top) {
    flow.links[0] = shm_link(src_node);
    flow.nlinks = 1;
    // One core drives this copy; it cannot exceed the per-core copy rate
    // even when the aggregate memory channel has headroom.
    flow.rate_cap = params_.shm_per_flow_bandwidth;
    return;
  }
  flow.links[0] = uplink(src_node);
  flow.links[1] = downlink(dst_node);
  flow.nlinks = 2;
  if (shape_.has_dragonfly()) {
    flow.nlinks = static_cast<std::uint8_t>(
        2 + dragonfly_links(src_node, dst_node, via_top, flow.links + 2));
    return;
  }
  if (shape_.has_fabric()) {
    // Climb level by level until the endpoints share a group (or, via_top,
    // all the way to the core crossbar): each level crossed costs the
    // source group's uplink and the destination group's downlink.
    for (int level = 0; level < shape_.fabric_levels(); ++level) {
      const int sg = shape_.fabric_group_of(src_node, level);
      const int dg = shape_.fabric_group_of(dst_node, level);
      if (sg == dg && !via_top) break;
      flow.links[flow.nlinks++] = fabric_uplink(level, sg);
      flow.links[flow.nlinks++] = fabric_downlink(level, dg);
    }
    return;
  }
  const int src_rack = shape_.rack_of(src_node);
  const int dst_rack = shape_.rack_of(dst_node);
  if (rack_layer_enabled() && (src_rack != dst_rack || via_top)) {
    flow.links[2] = rack_uplink(src_rack);
    flow.links[3] = rack_downlink(dst_rack);
    flow.nlinks = 4;
  }
}

FlowNetwork::FlowHandle FlowNetwork::start_flow_impl(
    int src_node, int dst_node, Bytes bytes, bool force_loopback,
    double wire_multiplier, sim::Callback on_delivered, bool via_top) {
  PACC_EXPECTS(src_node >= 0 && src_node < shape_.nodes);
  PACC_EXPECTS(dst_node >= 0 && dst_node < shape_.nodes);
  PACC_EXPECTS(bytes > 0);
  PACC_EXPECTS(wire_multiplier >= 1.0);
  // Down links never host flows: transfer() refuses them up front, and the
  // water-filling below relies on every participating link having capacity.
  PACC_ASSERT(path_up(src_node, dst_node, force_loopback, via_top));

  const std::uint32_t slot = alloc_flow();
  Flow& flow = flows_[slot];
  flow.rate = 0.0;
  flow.rate_cap = 0.0;
  flow.wf_rate = 0.0;
  flow.payload = bytes;
  flow.remaining = static_cast<double>(bytes) * wire_multiplier;
  flow.last_update = engine_.now();
  flow.completion = 0;
  flow.batch = kNoBatch;
  flow.waiter = {};
  flow.failed_flag = nullptr;
  flow.on_delivered = std::move(on_delivered);
  flow.active = true;

  route_flow(flow, src_node, dst_node, force_loopback, via_top);

  link_flow(slot);
  ++active_count_;
  ++flows_started_;
  note_dirty(flow.links, flow.nlinks);
  return FlowHandle{slot, flow.gen};
}

// -------------------------------------------- deferred recompute flush ----

void FlowNetwork::note_dirty(const std::int32_t* seeds, int nseeds) {
  if (!params_.coalesce_rate_recomputes) {
    recompute_component(seeds, nseeds);
    return;
  }
  ++coalesced_;
  dirty_seeds_.insert(dirty_seeds_.end(), seeds, seeds + nseeds);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    engine_.schedule(Duration::zero(), [this] { flush_dirty(); });
  }
}

void FlowNetwork::flush_dirty() {
  flush_scheduled_ = false;
  if (dirty_seeds_.empty()) return;
  ++flushes_;
  // recompute_component can enqueue follow-up dirt only through note_dirty,
  // which appends to a fresh list (this one is moved out first).
  std::vector<std::int32_t> seeds;
  seeds.swap(dirty_seeds_);
  recompute_component(seeds.data(), static_cast<int>(seeds.size()));
  seeds.clear();
  if (dirty_seeds_.empty()) dirty_seeds_.swap(seeds);  // keep the capacity
}

// ------------------------------------------------- incremental core ----

void FlowNetwork::recompute_component(const std::int32_t* seeds, int nseeds) {
  ++recomputes_;
  if (++epoch_ == 0) {  // u32 wrap: invalidate all stale stamps once
    std::fill(link_epoch_.begin(), link_epoch_.end(), 0u);
    std::fill(flow_epoch_.begin(), flow_epoch_.end(), 0u);
    epoch_ = 1;
  }

  // Dirty-set propagation: close over the flow/link incidence starting from
  // the links the triggering flow traverses. Rates outside this connected
  // component share no link with any flow inside it, so max–min filling
  // cannot change them — the component is exactly the set that needs work.
  comp_links_.clear();
  comp_flows_.clear();
  for (int i = 0; i < nseeds; ++i) {
    const std::int32_t l = seeds[i];
    if (link_epoch_[static_cast<std::size_t>(l)] != epoch_) {
      link_epoch_[static_cast<std::size_t>(l)] = epoch_;
      comp_links_.push_back(l);
    }
  }
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    const std::int32_t link = comp_links_[i];
    for (std::uint32_t f = link_head_[static_cast<std::size_t>(link)];
         f != kNullFlow;) {
      const Flow& flow = flows_[f];
      if (flow_epoch_[f] != epoch_) {
        flow_epoch_[f] = epoch_;
        comp_flows_.push_back(f);
        for (int k = 0; k < flow.nlinks; ++k) {
          const auto lf = static_cast<std::size_t>(flow.links[k]);
          if (link_epoch_[lf] != epoch_) {
            link_epoch_[lf] = epoch_;
            comp_links_.push_back(flow.links[k]);
          }
        }
      }
      f = flow.next[link_index_of(flow, link)];
    }
  }
  if (comp_flows_.empty()) return;  // e.g. the last flow on a link departed

  // Contention penalty: an HCA link serving n flows runs at reduced
  // efficiency; the shared-memory channel is exempt.
  const int first_shm_link = 2 * shape_.nodes;
  for (const std::int32_t link : comp_links_) {
    const auto l = static_cast<std::size_t>(link);
    const auto n = static_cast<int>(link_nflows_[l]);
    const bool is_shm = link >= first_shm_link;
    const double eff =
        (!is_shm && n > 1)
            ? 1.0 / (1.0 + params_.contention_penalty * (n - 1))
            : 1.0;
    wf_active_[l] = n;
    residual_[l] = link_bandwidth_[l] * link_efficiency_[l] * eff;
  }

  // Max–min fairness by progressive filling: repeatedly find the tightest
  // link (smallest equal-share), freeze its flows at that share, remove the
  // consumed bandwidth, and iterate. Each round marks first and applies
  // second, so the frozen set depends only on round-start state — the
  // result is independent of flow iteration order.
  unfrozen_.assign(comp_flows_.begin(), comp_flows_.end());
  while (!unfrozen_.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    for (const std::int32_t link : comp_links_) {
      const auto l = static_cast<std::size_t>(link);
      if (wf_active_[l] > 0) {
        best_share = std::min(best_share, residual_[l] / wf_active_[l]);
      }
    }
    PACC_ASSERT(std::isfinite(best_share) && best_share > 0.0);

    frozen_mark_.resize(unfrozen_.size());
    for (std::size_t i = 0; i < unfrozen_.size(); ++i) {
      const Flow& flow = flows_[unfrozen_[i]];
      bool bottlenecked = false;
      for (int k = 0; k < flow.nlinks; ++k) {
        const auto l = static_cast<std::size_t>(flow.links[k]);
        if (residual_[l] / wf_active_[l] <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      frozen_mark_[i] = bottlenecked ? 1 : 0;
    }

    std::size_t kept = 0;
    std::size_t frozen = 0;
    for (std::size_t i = 0; i < unfrozen_.size(); ++i) {
      const std::uint32_t slot = unfrozen_[i];
      if (frozen_mark_[i]) {
        Flow& flow = flows_[slot];
        flow.wf_rate = best_share;
        for (int k = 0; k < flow.nlinks; ++k) {
          const auto l = static_cast<std::size_t>(flow.links[k]);
          residual_[l] -= best_share;
          --wf_active_[l];
        }
        ++frozen;
      } else {
        unfrozen_[kept++] = slot;
      }
    }
    PACC_ASSERT(frozen > 0);
    unfrozen_.resize(kept);
  }

  // When the filling reproduced every flow's current (capped) rate, the
  // whole reschedule pass is moot: skip it before reading the clock or
  // touching the heap. Common after a no-op topology event or when a
  // deferred flush races an eager recompute at the same instant.
  bool any_change = false;
  for (const std::uint32_t slot : comp_flows_) {
    const Flow& flow = flows_[slot];
    double rate = flow.wf_rate;
    if (flow.rate_cap > 0.0 && rate > flow.rate_cap) rate = flow.rate_cap;
    if (rate != flow.rate) {
      any_change = true;
      break;
    }
  }
  if (!any_change) {
    ++noop_recomputes_;
    return;
  }

  // Apply per-flow ceilings (single-core copy rate on the shm channel) —
  // the unclaimed remainder stays unused, as it would on real hardware —
  // then reschedule only the completions whose rate actually changed.
  // Same-instant reschedules within this pass share one engine event
  // (steady-state fast-forward); the pass scratch tracks the batches
  // opened so far.
  const TimePoint now = engine_.now();
  pass_batch_when_.clear();
  pass_batch_ids_.clear();
  for (const std::uint32_t slot : comp_flows_) {
    Flow& flow = flows_[slot];
    double rate = flow.wf_rate;
    if (flow.rate_cap > 0.0 && rate > flow.rate_cap) rate = flow.rate_cap;
    if (rate == flow.rate) continue;  // exact equality: event stays put

    // Advance the flow's progress at the old rate before adopting the new
    // one; untouched flows keep their original (rate, completion) pair.
    const double dt = (now - flow.last_update).sec();
    if (dt > 0.0) {
      flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
    }
    flow.last_update = now;
    flow.rate = rate;

    detach_completion(flow);
    const double secs = flow.remaining / flow.rate;
    const auto delay =
        Duration::nanos(static_cast<std::int64_t>(std::ceil(secs * 1e9)));
    ++reschedules_;
    schedule_completion(slot, delay);
  }
}

void FlowNetwork::detach_completion(Flow& flow) {
  if (flow.batch != kNoBatch) {
    // Leaving a shared event: the event itself stays queued for the other
    // members; run_batch skips this flow via the membership check.
    flow.batch = kNoBatch;
  } else if (flow.completion != 0) {
    engine_.cancel(flow.completion);
    flow.completion = 0;
  }
}

void FlowNetwork::schedule_completion(std::uint32_t slot, Duration delay) {
  Flow& flow = flows_[slot];
  if (!params_.steady_state_fast_forward) {
    flow.completion = engine_.schedule(
        delay, [this, slot, gen = flow.gen] { on_complete(slot, gen); });
    return;
  }
  // One shared event per (apply pass, target instant). The per-flow events
  // this stands in for would have been scheduled back to back — their
  // sequence numbers consecutive, nothing able to queue between them — so
  // popping once and completing the members in join order reproduces the
  // per-flow pop order exactly.
  const std::int64_t when = (engine_.now() + delay).ns();
  for (std::size_t i = 0; i < pass_batch_when_.size(); ++i) {
    if (pass_batch_when_[i] == when) {
      const std::uint32_t b = pass_batch_ids_[i];
      batches_[b].members.emplace_back(slot, flow.gen);
      flow.batch = b;
      flow.completion = 0;
      return;
    }
  }
  const std::uint32_t b = alloc_batch();
  batches_[b].members.emplace_back(slot, flow.gen);
  flow.batch = b;
  flow.completion = 0;
  engine_.schedule(delay, [this, b] { run_batch(b); });
  pass_batch_when_.push_back(when);
  pass_batch_ids_.push_back(b);
}

std::uint32_t FlowNetwork::alloc_batch() {
  if (!free_batches_.empty()) {
    const std::uint32_t b = free_batches_.back();
    free_batches_.pop_back();
    return b;
  }
  batches_.emplace_back();
  return static_cast<std::uint32_t>(batches_.size() - 1);
}

void FlowNetwork::run_batch(std::uint32_t b) {
  // Deliberately indexed: a member's on_complete can re-rate later members
  // (detaching them) but never grows this batch — new reschedules always
  // open fresh batches in their own pass.
  std::uint64_t live = 0;
  for (std::size_t i = 0; i < batches_[b].members.size(); ++i) {
    const auto [slot, gen] = batches_[b].members[i];
    Flow& flow = flows_[slot];
    if (!flow.active || flow.gen != gen || flow.batch != b) continue;
    flow.batch = kNoBatch;
    ++live;
    on_complete(slot, gen);
  }
  if (live >= 2) {
    ++completion_batches_;
    batched_completions_ += live - 1;
  }
  batches_[b].members.clear();
  free_batches_.push_back(b);
}

void FlowNetwork::on_complete(std::uint32_t slot, std::uint32_t gen) {
  Flow& flow = flows_[slot];
  PACC_ASSERT(flow.active && flow.gen == gen);
  const double dt = (engine_.now() - flow.last_update).sec();
  if (dt > 0.0) {
    flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
  }
  PACC_ASSERT(flow.remaining <= 1.0 + kByteEpsilon);

  const std::coroutine_handle<> waiter = flow.waiter;
  sim::Callback on_delivered = std::move(flow.on_delivered);
  bytes_delivered_ += static_cast<std::uint64_t>(flow.payload);

  std::int32_t dead_links[kMaxLinks];
  const int nlinks = flow.nlinks;
  for (int k = 0; k < nlinks; ++k) dead_links[k] = flow.links[k];

  unlink_flow(slot);
  flow.active = false;
  flow.waiter = {};
  flow.failed_flag = nullptr;
  flow.completion = 0;
  ++flow.gen;
  free_flows_.push_back(slot);
  --active_count_;

  note_dirty(dead_links, nlinks);

  if (waiter) {
    engine_.schedule(Duration::zero(), [waiter] { waiter.resume(); });
  }
  if (on_delivered) {
    engine_.schedule(Duration::zero(), std::move(on_delivered));
  }
}

// ------------------------------------------------- link state (faults) ----

bool FlowNetwork::path_up(int src_node, int dst_node,
                          bool force_loopback, bool via_top) const {
  if (src_node == dst_node && !force_loopback && !via_top) {
    return true;  // the shared-memory channel never faults
  }
  auto up = [this](int link) {
    return link_efficiency_[static_cast<std::size_t>(link)] > 0.0;
  };
  if (!up(uplink(src_node)) || !up(downlink(dst_node))) return false;
  if (shape_.has_dragonfly()) {
    std::int32_t links[kMaxLinks - 2];
    const int n = dragonfly_links(src_node, dst_node, via_top, links);
    for (int k = 0; k < n; ++k) {
      if (!up(links[k])) return false;
    }
    return true;
  }
  if (shape_.has_fabric()) {
    for (int level = 0; level < shape_.fabric_levels(); ++level) {
      const int sg = shape_.fabric_group_of(src_node, level);
      const int dg = shape_.fabric_group_of(dst_node, level);
      if (sg == dg && !via_top) break;
      if (!up(fabric_uplink(level, sg)) || !up(fabric_downlink(level, dg))) {
        return false;
      }
    }
    return true;
  }
  if (rack_layer_enabled()) {
    const int src_rack = shape_.rack_of(src_node);
    const int dst_rack = shape_.rack_of(dst_node);
    if ((src_rack != dst_rack || via_top) &&
        (!up(rack_uplink(src_rack)) || !up(rack_downlink(dst_rack)))) {
      return false;
    }
  }
  return true;
}

void FlowNetwork::set_hca_efficiency(int node, double efficiency) {
  PACC_EXPECTS(node >= 0 && node < shape_.nodes);
  set_unit_efficiency(uplink(node), downlink(node), efficiency);
}

void FlowNetwork::set_rack_efficiency(int rack, double efficiency) {
  PACC_EXPECTS(rack >= 0 && rack < shape_.racks());
  set_unit_efficiency(rack_uplink(rack), rack_downlink(rack), efficiency);
}

double FlowNetwork::hca_efficiency(int node) const {
  PACC_EXPECTS(node >= 0 && node < shape_.nodes);
  return link_efficiency_[static_cast<std::size_t>(uplink(node))];
}

double FlowNetwork::rack_efficiency(int rack) const {
  PACC_EXPECTS(rack >= 0 && rack < shape_.racks());
  return link_efficiency_[static_cast<std::size_t>(rack_uplink(rack))];
}

void FlowNetwork::set_fabric_efficiency(int level, int group,
                                        double efficiency) {
  PACC_EXPECTS(level >= 0 && level < shape_.fabric_levels());
  PACC_EXPECTS(group >= 0 && group < shape_.fabric_groups(level));
  set_unit_efficiency(fabric_uplink(level, group),
                      fabric_downlink(level, group), efficiency);
}

double FlowNetwork::fabric_efficiency(int level, int group) const {
  PACC_EXPECTS(level >= 0 && level < shape_.fabric_levels());
  PACC_EXPECTS(group >= 0 && group < shape_.fabric_groups(level));
  return link_efficiency_[static_cast<std::size_t>(fabric_uplink(level, group))];
}

void FlowNetwork::set_dragonfly_router_efficiency(int router,
                                                  double efficiency) {
  PACC_EXPECTS(shape_.has_dragonfly());
  PACC_EXPECTS(router >= 0 && router < shape_.df_routers_total());
  set_unit_efficiency(df_router_uplink(router), df_router_downlink(router),
                      efficiency);
}

void FlowNetwork::set_dragonfly_global_efficiency(int group,
                                                  double efficiency) {
  PACC_EXPECTS(shape_.has_dragonfly());
  PACC_EXPECTS(group >= 0 && group < shape_.df_groups());
  set_unit_efficiency(df_global_uplink(group), df_global_downlink(group),
                      efficiency);
}

double FlowNetwork::dragonfly_router_efficiency(int router) const {
  PACC_EXPECTS(shape_.has_dragonfly());
  PACC_EXPECTS(router >= 0 && router < shape_.df_routers_total());
  return link_efficiency_[static_cast<std::size_t>(df_router_uplink(router))];
}

double FlowNetwork::dragonfly_global_efficiency(int group) const {
  PACC_EXPECTS(shape_.has_dragonfly());
  PACC_EXPECTS(group >= 0 && group < shape_.df_groups());
  return link_efficiency_[static_cast<std::size_t>(df_global_uplink(group))];
}

void FlowNetwork::set_unit_efficiency(std::int32_t l1, std::int32_t l2,
                                      double efficiency) {
  PACC_EXPECTS(efficiency >= 0.0 && efficiency <= 1.0);
  // Settle any rates deferred to the pending zero-delay flush before the
  // preemption below inspects and kills flows.
  flush_dirty();
  link_efficiency_[static_cast<std::size_t>(l1)] = efficiency;
  link_efficiency_[static_cast<std::size_t>(l2)] = efficiency;
  // Recompute seeds: the unit's own links plus every link of every
  // preempted flow — a departing flow frees bandwidth in components the
  // downed unit itself is not part of. Cold path; allocation is fine.
  std::vector<std::int32_t> seeds = {l1, l2};
  if (efficiency <= 0.0) {
    preempt_link_flows(l1, seeds);
    preempt_link_flows(l2, seeds);
  }
  recompute_component(seeds.data(), static_cast<int>(seeds.size()));
}

void FlowNetwork::preempt_link_flows(std::int32_t link,
                                     std::vector<std::int32_t>& seeds) {
  const auto l = static_cast<std::size_t>(link);
  std::vector<std::uint32_t> victims;
  for (std::uint32_t f = link_head_[l]; f != kNullFlow;) {
    victims.push_back(f);
    f = flows_[f].next[link_index_of(flows_[f], link)];
  }
  for (const std::uint32_t slot : victims) {
    Flow& flow = flows_[slot];
    if (!flow.active) continue;  // shared both directions: already killed
    // Only the reliability layer (transfer + awaiter) may own flows on a
    // fault-capable fabric; a fire-and-forget flow has no way to learn its
    // payload was lost.
    PACC_ASSERT(!flow.on_delivered);
    for (int k = 0; k < flow.nlinks; ++k) seeds.push_back(flow.links[k]);
    detach_completion(flow);
    const std::coroutine_handle<> waiter = flow.waiter;
    bool* failed = flow.failed_flag;
    unlink_flow(slot);
    flow.active = false;
    flow.waiter = {};
    flow.failed_flag = nullptr;
    ++flow.gen;
    free_flows_.push_back(slot);
    --active_count_;
    ++preempted_;
    if (failed != nullptr) *failed = true;
    if (waiter) {
      engine_.schedule(Duration::zero(), [waiter] { waiter.resume(); });
    }
  }
}

std::vector<FlowNetwork::FlowView> FlowNetwork::snapshot_flows() {
  flush_dirty();
  std::vector<FlowView> views;
  views.reserve(active_count_);
  for (const Flow& flow : flows_) {
    if (!flow.active) continue;
    FlowView view;
    view.links.assign(flow.links, flow.links + flow.nlinks);
    view.rate = flow.rate;
    view.rate_cap = flow.rate_cap;
    view.remaining = flow.remaining;
    views.push_back(std::move(view));
  }
  return views;
}

}  // namespace pacc::net

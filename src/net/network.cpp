#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.hpp"

namespace pacc::net {

namespace {
// Residual bytes below this are treated as delivered (guards double error).
constexpr double kByteEpsilon = 1e-6;
}  // namespace

FlowNetwork::FlowNetwork(sim::Engine& engine, hw::ClusterShape shape,
                         NetworkParams params)
    : engine_(engine), shape_(shape), params_(params) {
  PACC_EXPECTS(shape_.valid());
  PACC_EXPECTS(params_.link_bandwidth > 0.0 && params_.shm_bandwidth > 0.0);
  link_bandwidth_.assign(
      static_cast<std::size_t>(3 * shape_.nodes + 2 * shape_.racks()), 0.0);
  for (int n = 0; n < shape_.nodes; ++n) {
    link_bandwidth_[static_cast<std::size_t>(uplink(n))] =
        params_.link_bandwidth;
    link_bandwidth_[static_cast<std::size_t>(downlink(n))] =
        params_.link_bandwidth;
    link_bandwidth_[static_cast<std::size_t>(shm_link(n))] =
        params_.shm_bandwidth;
  }
  for (int r = 0; r < shape_.racks(); ++r) {
    const double bw =
        rack_layer_enabled() ? params_.rack_bandwidth : params_.link_bandwidth;
    link_bandwidth_[static_cast<std::size_t>(rack_uplink(r))] = bw;
    link_bandwidth_[static_cast<std::size_t>(rack_downlink(r))] = bw;
  }
}

double NetworkParams::wire_multiplier(double sender_freq_slowdown,
                                      double sender_throttle_slowdown,
                                      double receiver_freq_slowdown,
                                      double receiver_throttle_slowdown) const {
  auto endpoint = [this](double sf, double st) {
    return 1.0 + freq_wire_penalty * (sf - 1.0) +
           freq_wire_penalty * throttle_wire_weight * (st - 1.0);
  };
  return std::max(endpoint(sender_freq_slowdown, sender_throttle_slowdown),
                  endpoint(receiver_freq_slowdown, receiver_throttle_slowdown));
}

sim::Task<> FlowNetwork::transfer(int src_node, int dst_node, Bytes bytes,
                                  bool force_loopback,
                                  double wire_multiplier) {
  PACC_EXPECTS(src_node >= 0 && src_node < shape_.nodes);
  PACC_EXPECTS(dst_node >= 0 && dst_node < shape_.nodes);
  PACC_EXPECTS(bytes >= 0);
  PACC_EXPECTS(wire_multiplier >= 1.0);
  if (bytes == 0) co_return;

  const std::uint64_t id = next_flow_id_++;
  update_progress();
  Flow flow;
  if (src_node == dst_node && !force_loopback) {
    flow.links = {shm_link(src_node)};
    // One core drives this copy; it cannot exceed the per-core copy rate
    // even when the aggregate memory channel has headroom.
    flow.rate_cap = params_.shm_per_flow_bandwidth;
  } else {
    flow.links = {uplink(src_node), downlink(dst_node)};
    const int src_rack = shape_.rack_of(src_node);
    const int dst_rack = shape_.rack_of(dst_node);
    if (rack_layer_enabled() && src_rack != dst_rack) {
      flow.links.push_back(rack_uplink(src_rack));
      flow.links.push_back(rack_downlink(dst_rack));
    }
  }
  flow.remaining = static_cast<double>(bytes) * wire_multiplier;
  flow.last_update = engine_.now();
  flows_.emplace(id, std::move(flow));
  recompute_rates();

  co_await FlowAwaiter{*this, id};
  bytes_delivered_ += static_cast<std::uint64_t>(bytes);
}

void FlowNetwork::update_progress() {
  const TimePoint now = engine_.now();
  for (auto& [id, flow] : flows_) {
    const double dt = (now - flow.last_update).sec();
    if (dt > 0.0) {
      flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
    }
    flow.last_update = now;
  }
}

void FlowNetwork::recompute_rates() {
  // Max–min fairness by progressive filling: repeatedly find the tightest
  // link (smallest equal-share), freeze its flows at that share, remove the
  // consumed bandwidth, and iterate.
  const std::size_t link_count = link_bandwidth_.size();
  std::vector<int> active(link_count, 0);

  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    unfrozen.push_back(&flow);
    for (int l : flow.links) ++active[static_cast<std::size_t>(l)];
  }

  // Contention penalty: an HCA link serving n flows runs at reduced
  // efficiency; the shared-memory channel is exempt.
  const int first_shm_link = 2 * shape_.nodes;
  std::vector<double> residual(link_count);
  for (std::size_t l = 0; l < link_count; ++l) {
    const int n = active[l];
    const bool is_shm = static_cast<int>(l) >= first_shm_link;
    const double eff =
        (!is_shm && n > 1)
            ? 1.0 / (1.0 + params_.contention_penalty * (n - 1))
            : 1.0;
    residual[l] = link_bandwidth_[l] * eff;
  }

  while (!unfrozen.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < link_count; ++l) {
      if (active[l] > 0) {
        best_share = std::min(best_share, residual[l] / active[l]);
      }
    }
    PACC_ASSERT(std::isfinite(best_share) && best_share > 0.0);

    // Freeze every unfrozen flow that crosses a bottleneck link.
    std::vector<Flow*> still;
    still.reserve(unfrozen.size());
    for (Flow* f : unfrozen) {
      bool bottlenecked = false;
      for (int l : f->links) {
        const auto li = static_cast<std::size_t>(l);
        if (residual[li] / active[li] <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (bottlenecked) {
        f->rate = best_share;
        for (int l : f->links) {
          const auto li = static_cast<std::size_t>(l);
          residual[li] -= best_share;
          --active[li];
        }
      } else {
        still.push_back(f);
      }
    }
    PACC_ASSERT(still.size() < unfrozen.size());
    unfrozen.swap(still);
  }

  // Apply per-flow ceilings (single-core copy rate on the shm channel).
  // The unclaimed remainder stays unused, as it would on real hardware.
  for (auto& [id, flow] : flows_) {
    if (flow.rate_cap > 0.0 && flow.rate > flow.rate_cap) {
      flow.rate = flow.rate_cap;
    }
  }

  // Reschedule every flow's completion at its new finish time.
  for (auto& [id, flow] : flows_) {
    if (flow.completion != 0) engine_.cancel(flow.completion);
    const double secs = flow.remaining / flow.rate;
    const auto delay =
        Duration::nanos(static_cast<std::int64_t>(std::ceil(secs * 1e9)));
    const std::uint64_t flow_id = id;
    flow.completion =
        engine_.schedule(delay, [this, flow_id] { on_complete(flow_id); });
  }
}

void FlowNetwork::on_complete(std::uint64_t id) {
  auto it = flows_.find(id);
  PACC_ASSERT(it != flows_.end());
  update_progress();
  PACC_ASSERT(it->second.remaining <= 1.0 + kByteEpsilon);

  const std::coroutine_handle<> waiter = it->second.waiter;
  flows_.erase(it);
  recompute_rates();

  PACC_ASSERT(waiter != nullptr);
  engine_.schedule(Duration::zero(), [waiter] { waiter.resume(); });
}

}  // namespace pacc::net

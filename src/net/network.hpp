// InfiniBand-like fabric model: fluid flows with max–min fair sharing.
//
// The leaf switch is non-blocking (as the paper's Mellanox QDR switch is
// for this scale), so at the paper's scale contention arises only at the
// endpoints: every node has one HCA uplink and one downlink of fixed
// bandwidth, and one intra-node shared-memory channel. Beyond that scale
// the shape may describe a multi-level fat-tree (ClusterShape::fabric):
// each level groups nodes behind a shared pair of aggregation up/downlinks
// whose bandwidth the level's oversubscription ratio thins out, and a flow
// additionally traverses the aggregation links of every level below its
// endpoints' lowest common group. Each in-flight message is a fluid flow
// across the links it traverses; rates are recomputed by max–min
// water-filling whenever a flow starts or ends, and completion events are
// rescheduled accordingly.
//
// Hot-path structure (see docs/PERF.md): flows live in a slab
// (std::vector + free list, stable slot indices) threaded onto intrusive
// per-link lists. A flow arrival/departure recomputes rates only for the
// connected component of links it can actually affect — discovered by
// dirty-set propagation over the flow/link incidence — and reschedules only
// the completion events whose rate changed under an exact equality check.
// Rates outside the component are provably unchanged (their constraint set
// is untouched), so the incremental result is identical to a full global
// recompute.
//
// This is what makes the paper's observations emerge organically:
//  - Fig 2(a): 8 ranks/node sharing one uplink are slower than 4 ranks/node.
//  - §V-A:     scheduling only one socket's ranks onto the network at a time
//              halves endpoint contention for the power-aware Alltoall.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "hw/topology.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace pacc::net {

struct NetworkParams {
  /// Per-direction HCA link bandwidth. IB QDR signals 40 Gbit/s; after
  /// 8b/10b coding and protocol overhead ~3.2 GB/s is achievable.
  double link_bandwidth = 3.2e9;  ///< bytes/second

  /// Aggregate intra-node memory-system copy bandwidth (all cores of a
  /// node together). Nehalem-era nodes stream well above a single core's
  /// copy rate thanks to two on-die memory controllers.
  double shm_bandwidth = 16.0e9;  ///< bytes/second

  /// A single core's shared-memory copy rate: each shm flow is capped at
  /// this even when the aggregate channel has headroom.
  double shm_per_flow_bandwidth = 5.0e9;  ///< bytes/second

  /// Per-direction bandwidth of a rack's aggregation uplink (topology-aware
  /// extension, §VIII). Inter-rack traffic of all of a rack's nodes shares
  /// this; with nodes_per_rack·link_bandwidth greater than this, the fabric
  /// is oversubscribed, as production rack switches are. 0 disables the
  /// rack layer even when the shape defines racks. Ignored when the shape
  /// carries a multi-level fabric (ClusterShape::fabric), whose per-level
  /// aggregation bandwidths derive from link_bandwidth and each level's
  /// oversubscription ratio instead.
  double rack_bandwidth = 6.4e9;  ///< bytes/second

  /// Per-message CPU start-up cost for an inter-node send at fmax/T0
  /// (the MPI layer stretches it by the issuing core's cpu_slowdown).
  Duration inter_startup = Duration::micros(2.0);

  /// Per-message CPU start-up cost for an intra-node (shared memory) send.
  Duration intra_startup = Duration::micros(0.4);

  /// HCA interrupt generation + service time (blocking mode only).
  Duration interrupt_latency = Duration::micros(4.0);

  /// OS re-scheduling delay after an interrupt wake-up (blocking mode only).
  Duration reschedule_latency = Duration::micros(6.0);

  /// Messages at or below this size complete at the sender as soon as they
  /// are injected (eager); larger ones hold the sender until delivery
  /// (rendezvous), like MVAPICH2.
  Bytes eager_threshold = 8 * 1024;

  /// HCA link efficiency loss per extra concurrent flow: a link carrying n
  /// flows delivers bw / (1 + contention_penalty·(n-1)). Models packet
  /// interleaving / HoL blocking losses that make 8 ranks per HCA slower
  /// than 4 (Fig 2a) and that the proposed Alltoall halves (§V-A). The
  /// shared-memory channel is exempt: memory controllers interleave
  /// concurrent streams without this loss.
  double contention_penalty = 0.04;

  /// Wire-efficiency loss when an endpoint core runs below fmax: the
  /// protocol engine leaves gaps on the wire. A transfer whose endpoint has
  /// frequency slowdown s_f and throttle slowdown s_t occupies the wire as
  /// if it were (1 + freq_wire_penalty·(s_f−1) +
  /// freq_wire_penalty·throttle_wire_weight·(s_t−1)) times larger.
  double freq_wire_penalty = 0.2;
  double throttle_wire_weight = 0.1;

  /// Steady-state fast-forward: between rate recomputes the flow set and
  /// every rate are constant, so when one water-filling pass reschedules
  /// several flows to the same completion instant (the common case in a
  /// symmetric collective phase, where a whole socket group drains in
  /// lockstep), those completions share a single engine event instead of
  /// one heap entry each — O(flows) heap traffic per quiescent interval
  /// collapses to O(1). The shared event pops at exactly the position the
  /// first per-flow event would have (the per-flow events would have held
  /// consecutive sequence numbers, so nothing can schedule between them)
  /// and completes the members in order; any event that re-rates a member
  /// before then — a new arrival, a fault, a flap — detaches it from the
  /// batch (the epoch break), so timestamps, energy integrals and traces
  /// stay byte-identical to the per-flow path. Off = one event per
  /// completion, kept for the equivalence suite.
  bool steady_state_fast_forward = true;

  /// Coalesce same-instant rate recomputes: a flow arrival or departure
  /// only records its links as dirty seeds and schedules one zero-delay
  /// flush; the water-filling pass runs once per simulated instant over the
  /// union of dirty components instead of once per flow event. A wave of n
  /// simultaneous arrivals (a socket group released from a barrier, a
  /// completion batch draining) costs one O(component) pass instead of n.
  /// Rates and completion instants are unchanged — every deferred pass runs
  /// at the same timestamp the eager passes would have, over the same final
  /// flow set, and max–min water-filling depends only on that set — so all
  /// simulated times are identical; only the interleaving of same-instant
  /// bookkeeping events differs. Off = recompute on every event, kept for
  /// the equivalence suite.
  bool coalesce_rate_recomputes = true;

  /// Wire-occupancy multiplier for a transfer between endpoints with the
  /// given CPU slowdown factors (1.0 = full speed).
  double wire_multiplier(double sender_freq_slowdown,
                         double sender_throttle_slowdown,
                         double receiver_freq_slowdown,
                         double receiver_throttle_slowdown) const;
};

/// Fluid-flow network over a cluster.
class FlowNetwork {
 public:
  /// Stable reference to an in-flight flow: slab slot + generation. The
  /// generation disambiguates slot reuse, so a stale handle is simply
  /// "no longer active". A default-constructed handle is never active.
  struct FlowHandle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  FlowNetwork(sim::Engine& engine, hw::ClusterShape shape,
              NetworkParams params);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  const NetworkParams& params() const { return params_; }

  /// Moves `bytes` from src_node to dst_node (across the node's shared
  /// memory when src_node == dst_node); resumes the caller on delivery.
  /// With `force_loopback`, an intra-node transfer is routed out and back
  /// through the HCA instead of shared memory — the paper's blocking-mode
  /// fallback (§II-B). `wire_multiplier` inflates the transfer's wire
  /// occupancy (see NetworkParams::wire_multiplier). With `via_top` the
  /// flow climbs the whole fabric hierarchy to the core crossbar and back
  /// down regardless of where the endpoints actually sit — the
  /// symmetry-collapse runtime uses this to route a representative of a
  /// cross-group flow over the links its original would have loaded.
  /// Returns whether the payload landed: false when the path crosses a
  /// downed link, either at start or mid-flight (the flow is preempted).
  /// On a healthy fabric the result is always true.
  sim::Task<bool> transfer(int src_node, int dst_node, Bytes bytes,
                           bool force_loopback = false,
                           double wire_multiplier = 1.0,
                           bool via_top = false);

  /// Fire-and-forget variant for hot paths (e.g. eager sends): starts the
  /// flow immediately — no coroutine frame — and runs `on_delivered` from
  /// the engine once the payload lands. A zero-byte flow schedules the
  /// callback at now() and returns an inactive handle.
  FlowHandle start_flow(int src_node, int dst_node, Bytes bytes,
                        bool force_loopback, double wire_multiplier,
                        sim::Callback on_delivered, bool via_top = false);

  /// Whether the flow behind `h` is still in flight.
  bool flow_active(FlowHandle h) const {
    return h.slot < flows_.size() && flows_[h.slot].gen == h.gen &&
           flows_[h.slot].active;
  }

  // --- link state (fault layer) ---
  //
  // Efficiency of a node's HCA (both directions together) or of a rack's
  // aggregation link: 1 = healthy, in (0,1) = degraded bandwidth, 0 = down.
  // Taking a unit down preempts every flow crossing it — their transfer()
  // awaiters resume with false — and new flows across a down link are
  // refused by transfer() before any bandwidth is allocated. Only the
  // reliability layer may own flows on a fault-capable fabric:
  // fire-and-forget flows (start_flow) must not cross flapping links.

  void set_hca_efficiency(int node, double efficiency);
  void set_rack_efficiency(int rack, double efficiency);
  double hca_efficiency(int node) const;
  double rack_efficiency(int rack) const;

  /// Efficiency of one fat-tree aggregation group's up/down link pair
  /// (multi-level fabrics only; `level` / `group` follow ClusterShape's
  /// fabric indexing).
  void set_fabric_efficiency(int level, int group, double efficiency);
  double fabric_efficiency(int level, int group) const;

  /// Efficiency of one dragonfly router's local link pair (into/out of the
  /// group's all-to-all mesh) or of one group's global link pair (dragonfly
  /// shapes only; routers are numbered group-major as in ClusterShape).
  void set_dragonfly_router_efficiency(int router, double efficiency);
  void set_dragonfly_global_efficiency(int group, double efficiency);
  double dragonfly_router_efficiency(int router) const;
  double dragonfly_global_efficiency(int group) const;

  /// Whether every link of the path src→dst currently has bandwidth. The
  /// shared-memory channel never faults, so intra-node paths (unless forced
  /// through the HCA loopback) are always up.
  bool path_up(int src_node, int dst_node, bool force_loopback = false,
               bool via_top = false) const;

  /// Flows killed mid-flight by a link going down.
  std::uint64_t flows_preempted() const { return preempted_; }

  /// Flows started over the network's lifetime (shared-memory and fabric
  /// alike). Under rank-symmetry collapse each flow stands for
  /// `multiplicity` logical flows, so this is the representative count.
  std::uint64_t flows_started() const { return flows_started_; }

  /// Number of flows currently in flight (for tests / instrumentation).
  std::size_t active_flows() const { return active_count_; }

  /// Total bytes fully delivered so far.
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// Incremental rate recomputations performed (one per flow add/remove).
  std::uint64_t rate_recomputes() const { return recomputes_; }

  /// Completion events actually rescheduled — flows whose rate survived the
  /// exact-equality check are left untouched, so this is typically far
  /// below (recomputes × active flows).
  std::uint64_t completion_reschedules() const { return reschedules_; }

  /// Shared events that completed two or more same-instant flows in one
  /// heap pop (steady-state fast-forward; 0 while the toggle is off).
  std::uint64_t completion_batches() const { return completion_batches_; }

  /// Completions delivered through a shared event beyond the first member
  /// — i.e. heap events the fast-forward elided.
  std::uint64_t batched_completions() const { return batched_completions_; }

  /// Recomputes that changed no flow's rate and skipped the reschedule
  /// pass entirely (the heap is never touched).
  std::uint64_t noop_recomputes() const { return noop_recomputes_; }

  /// Deferred-recompute flushes run (coalesce_rate_recomputes on): one per
  /// simulated instant with flow churn, regardless of how many arrivals
  /// and departures that instant saw.
  std::uint64_t recompute_flushes() const { return flushes_; }

  /// Flow add/remove events whose rate recompute was folded into a flush
  /// instead of running eagerly.
  std::uint64_t coalesced_recomputes() const { return coalesced_; }

  /// Introspection snapshot of the active flows (tests / tools): links
  /// traversed, current max–min rate, and the per-flow ceiling. Settles any
  /// recompute deferred to the pending zero-delay flush first, so the rates
  /// observed are the ones the current flow set will actually run at.
  struct FlowView {
    std::vector<int> links;
    double rate = 0.0;
    double rate_cap = 0.0;
    double remaining = 0.0;
  };
  std::vector<FlowView> snapshot_flows();

 private:
  /// HCA up + down, plus an aggregation up + down pair at every fat-tree
  /// level (the legacy rack layer counts as one level).
  static constexpr int kMaxFabricLevels = 3;
  static constexpr int kMaxLinks = 2 + 2 * kMaxFabricLevels;
  static constexpr std::uint32_t kNullFlow = 0xffffffffu;
  static constexpr std::uint32_t kNoBatch = 0xffffffffu;

  /// Slab-allocated flow. Intrusive per-link list hooks (prev/next per
  /// traversed link) give O(1) unlink without touching a hash map, and the
  /// slot index stays stable for the flow's lifetime.
  struct Flow {
    double remaining = 0.0;  ///< bytes (wire-multiplied)
    double rate = 0.0;       ///< bytes/second
    double rate_cap = 0.0;   ///< per-flow ceiling; 0 = unlimited
    double wf_rate = 0.0;    ///< water-filling scratch (uncapped share)
    TimePoint last_update;   ///< when `remaining` was last advanced
    Bytes payload = 0;       ///< un-multiplied bytes, credited on delivery
    sim::EventId completion = 0;
    std::uint32_t batch = kNoBatch;  ///< shared completion event, if any
    std::coroutine_handle<> waiter;
    bool* failed_flag = nullptr;  ///< awaiter-owned; set on preemption
    sim::Callback on_delivered;
    std::uint32_t gen = 1;
    std::uint8_t nlinks = 0;
    bool active = false;
    std::int32_t links[kMaxLinks] = {};
    std::uint32_t prev[kMaxLinks] = {};  ///< intrusive list, per links[i]
    std::uint32_t next[kMaxLinks] = {};
  };

  /// The failure verdict lives in the awaiter (the caller's coroutine
  /// frame), not the flow: by the time the waiter resumes, the flow slot
  /// has already been recycled.
  struct FlowAwaiter {
    FlowNetwork& net;
    FlowHandle h;
    bool failed = false;
    bool await_ready() const noexcept { return !net.flow_active(h); }
    void await_suspend(std::coroutine_handle<> handle) {
      Flow& flow = net.flows_[h.slot];
      flow.waiter = handle;
      flow.failed_flag = &failed;
    }
    bool await_resume() const noexcept { return !failed; }
  };

  int uplink(int node) const { return node; }
  int downlink(int node) const { return shape_.nodes + node; }
  int shm_link(int node) const { return 2 * shape_.nodes + node; }
  int rack_uplink(int rack) const { return 3 * shape_.nodes + rack; }
  int rack_downlink(int rack) const {
    return 3 * shape_.nodes + shape_.racks() + rack;
  }
  // Fat-tree aggregation links live past the legacy id space; per level,
  // all up links first, then all down links.
  int fabric_uplink(int level, int group) const {
    return fabric_link_base_[static_cast<std::size_t>(level)] + group;
  }
  int fabric_downlink(int level, int group) const {
    return fabric_link_base_[static_cast<std::size_t>(level)] +
           shape_.fabric_groups(level) + group;
  }
  bool rack_layer_enabled() const {
    return shape_.has_racks() && params_.rack_bandwidth > 0.0;
  }
  // Dragonfly links live past the HCA/shm id space (fabric and dragonfly
  // are mutually exclusive): per-router local up/down pairs first, then
  // per-group global up/down pairs.
  int df_router_uplink(int router) const { return df_link_base_ + router; }
  int df_router_downlink(int router) const {
    return df_link_base_ + shape_.df_routers_total() + router;
  }
  int df_global_uplink(int group) const {
    return df_link_base_ + 2 * shape_.df_routers_total() + group;
  }
  int df_global_downlink(int group) const {
    return df_link_base_ + 2 * shape_.df_routers_total() +
           shape_.df_groups() + group;
  }

  /// Appends the dragonfly portion of the path src→dst (the links between
  /// the two HCAs) to `out`; returns how many were written (0, 2, 4 or 6).
  /// With `via_top`, the minimal cross-group path is forced even for
  /// router- or group-local endpoints — the symmetry-collapse runtime's
  /// representative routing; its six link ids are distinct even when
  /// src == dst. Adaptive routing detours cross-group traffic through a
  /// deterministic Valiant intermediate group (global links only; the
  /// intermediate group's router mesh is abstracted away), needs at least
  /// three groups, and never applies under via_top.
  int dragonfly_links(int src_node, int dst_node, bool via_top,
                      std::int32_t* out) const;

  /// Fills flow.links/nlinks with the path src→dst (see transfer() for
  /// force_loopback / via_top semantics) and sets the shm rate cap when the
  /// path is the intra-node channel.
  void route_flow(Flow& flow, int src_node, int dst_node, bool force_loopback,
                  bool via_top) const;

  FlowHandle start_flow_impl(int src_node, int dst_node, Bytes bytes,
                             bool force_loopback, double wire_multiplier,
                             sim::Callback on_delivered, bool via_top);

  /// Runs — or, with coalesce_rate_recomputes, defers to a zero-delay
  /// flush — the water-filling pass for an arrival/departure touching
  /// `seeds`.
  void note_dirty(const std::int32_t* seeds, int nseeds);

  /// Processes every deferred seed now (the scheduled flush, and fault
  /// entry points that need rates current before they act).
  void flush_dirty();

  void set_unit_efficiency(std::int32_t l1, std::int32_t l2,
                           double efficiency);
  void preempt_link_flows(std::int32_t link,
                          std::vector<std::int32_t>& seeds);

  std::uint32_t alloc_flow();
  void link_flow(std::uint32_t slot);
  void unlink_flow(std::uint32_t slot);
  int link_index_of(const Flow& flow, std::int32_t link) const;

  /// Max–min water-filling restricted to the connected component of links
  /// reachable from `seeds`; reschedules completions whose rate changed.
  void recompute_component(const std::int32_t* seeds, int nseeds);

  void on_complete(std::uint32_t slot, std::uint32_t gen);

  // --- steady-state fast-forward (shared completion events) ---

  /// One engine event standing in for the per-flow completion events of
  /// every member, in the order the per-flow path would have scheduled
  /// (and therefore popped) them.
  struct CompletionBatch {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> members;  // slot,gen
  };

  /// Removes the flow's pending completion: cancels its private event or
  /// detaches it from its shared one (remaining members are unaffected).
  void detach_completion(Flow& flow);

  /// (Re)schedules a completion `delay` from now, joining the shared event
  /// of an earlier flow in the same recompute pass when the target instant
  /// matches (fast-forward on), else as a private event.
  void schedule_completion(std::uint32_t slot, Duration delay);

  /// Completes the still-attached members of a shared event, in order.
  void run_batch(std::uint32_t b);

  std::uint32_t alloc_batch();

  sim::Engine& engine_;
  hw::ClusterShape shape_;
  NetworkParams params_;

  /// First link id of each fabric level's aggregation links.
  std::vector<int> fabric_link_base_;
  /// First link id of the dragonfly router/global links (dragonfly shapes).
  int df_link_base_ = 0;

  // Deferred-recompute state (coalesce_rate_recomputes).
  std::vector<std::int32_t> dirty_seeds_;
  bool flush_scheduled_ = false;

  // Per-link state, indexed by link id.
  std::vector<double> link_bandwidth_;
  std::vector<double> link_efficiency_;     ///< fault layer; 1 = healthy
  std::vector<std::uint32_t> link_head_;    ///< intrusive list head (slot)
  std::vector<std::uint32_t> link_nflows_;  ///< active flows crossing link

  // Flow slab.
  std::vector<Flow> flows_;
  std::vector<std::uint32_t> free_flows_;
  std::size_t active_count_ = 0;

  // Reusable recompute scratch (no allocation in steady state). Epoch
  // stamps mark visited links/flows without per-call clearing.
  std::vector<double> residual_;
  std::vector<std::int32_t> wf_active_;
  std::vector<std::uint32_t> link_epoch_;
  std::vector<std::uint32_t> flow_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<std::int32_t> comp_links_;
  std::vector<std::uint32_t> comp_flows_;
  std::vector<std::uint32_t> unfrozen_;
  std::vector<unsigned char> frozen_mark_;

  // Shared-completion-event slab (steady-state fast-forward), recycled via
  // a free list; the per-pass scratch maps a reschedule target instant to
  // the batch already opened for it in the current apply pass.
  std::vector<CompletionBatch> batches_;
  std::vector<std::uint32_t> free_batches_;
  std::vector<std::int64_t> pass_batch_when_;
  std::vector<std::uint32_t> pass_batch_ids_;

  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t recomputes_ = 0;
  std::uint64_t reschedules_ = 0;
  std::uint64_t preempted_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t completion_batches_ = 0;
  std::uint64_t batched_completions_ = 0;
  std::uint64_t noop_recomputes_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace pacc::net

// InfiniBand-like fabric model: fluid flows with max–min fair sharing.
//
// The switch is non-blocking (as the paper's Mellanox QDR switch is for this
// scale), so contention arises only at the endpoints: every node has one HCA
// uplink and one downlink of fixed bandwidth, and one intra-node
// shared-memory channel. Each in-flight message is a fluid flow across the
// links it traverses; rates are recomputed by max–min water-filling whenever
// a flow starts or ends, and completion events are rescheduled accordingly.
//
// This is what makes the paper's observations emerge organically:
//  - Fig 2(a): 8 ranks/node sharing one uplink are slower than 4 ranks/node.
//  - §V-A:     scheduling only one socket's ranks onto the network at a time
//              halves endpoint contention for the power-aware Alltoall.
#pragma once

#include <coroutine>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/topology.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace pacc::net {

struct NetworkParams {
  /// Per-direction HCA link bandwidth. IB QDR signals 40 Gbit/s; after
  /// 8b/10b coding and protocol overhead ~3.2 GB/s is achievable.
  double link_bandwidth = 3.2e9;  ///< bytes/second

  /// Aggregate intra-node memory-system copy bandwidth (all cores of a
  /// node together). Nehalem-era nodes stream well above a single core's
  /// copy rate thanks to two on-die memory controllers.
  double shm_bandwidth = 16.0e9;  ///< bytes/second

  /// A single core's shared-memory copy rate: each shm flow is capped at
  /// this even when the aggregate channel has headroom.
  double shm_per_flow_bandwidth = 5.0e9;  ///< bytes/second

  /// Per-direction bandwidth of a rack's aggregation uplink (topology-aware
  /// extension, §VIII). Inter-rack traffic of all of a rack's nodes shares
  /// this; with nodes_per_rack·link_bandwidth greater than this, the fabric
  /// is oversubscribed, as production rack switches are. 0 disables the
  /// rack layer even when the shape defines racks.
  double rack_bandwidth = 6.4e9;  ///< bytes/second

  /// Per-message CPU start-up cost for an inter-node send at fmax/T0
  /// (the MPI layer stretches it by the issuing core's cpu_slowdown).
  Duration inter_startup = Duration::micros(2.0);

  /// Per-message CPU start-up cost for an intra-node (shared memory) send.
  Duration intra_startup = Duration::micros(0.4);

  /// HCA interrupt generation + service time (blocking mode only).
  Duration interrupt_latency = Duration::micros(4.0);

  /// OS re-scheduling delay after an interrupt wake-up (blocking mode only).
  Duration reschedule_latency = Duration::micros(6.0);

  /// Messages at or below this size complete at the sender as soon as they
  /// are injected (eager); larger ones hold the sender until delivery
  /// (rendezvous), like MVAPICH2.
  Bytes eager_threshold = 8 * 1024;

  /// HCA link efficiency loss per extra concurrent flow: a link carrying n
  /// flows delivers bw / (1 + contention_penalty·(n-1)). Models packet
  /// interleaving / HoL blocking losses that make 8 ranks per HCA slower
  /// than 4 (Fig 2a) and that the proposed Alltoall halves (§V-A). The
  /// shared-memory channel is exempt: memory controllers interleave
  /// concurrent streams without this loss.
  double contention_penalty = 0.04;

  /// Wire-efficiency loss when an endpoint core runs below fmax: the
  /// protocol engine leaves gaps on the wire. A transfer whose endpoint has
  /// frequency slowdown s_f and throttle slowdown s_t occupies the wire as
  /// if it were (1 + freq_wire_penalty·(s_f−1) +
  /// freq_wire_penalty·throttle_wire_weight·(s_t−1)) times larger.
  double freq_wire_penalty = 0.2;
  double throttle_wire_weight = 0.1;

  /// Wire-occupancy multiplier for a transfer between endpoints with the
  /// given CPU slowdown factors (1.0 = full speed).
  double wire_multiplier(double sender_freq_slowdown,
                         double sender_throttle_slowdown,
                         double receiver_freq_slowdown,
                         double receiver_throttle_slowdown) const;
};

/// Fluid-flow network over a cluster.
class FlowNetwork {
 public:
  FlowNetwork(sim::Engine& engine, hw::ClusterShape shape,
              NetworkParams params);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  const NetworkParams& params() const { return params_; }

  /// Moves `bytes` from src_node to dst_node (across the node's shared
  /// memory when src_node == dst_node); resumes the caller on delivery.
  /// With `force_loopback`, an intra-node transfer is routed out and back
  /// through the HCA instead of shared memory — the paper's blocking-mode
  /// fallback (§II-B). `wire_multiplier` inflates the transfer's wire
  /// occupancy (see NetworkParams::wire_multiplier).
  sim::Task<> transfer(int src_node, int dst_node, Bytes bytes,
                       bool force_loopback = false,
                       double wire_multiplier = 1.0);

  /// Number of flows currently in flight (for tests / instrumentation).
  std::size_t active_flows() const { return flows_.size(); }

  /// Total bytes fully delivered so far.
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  struct Flow {
    std::vector<int> links;
    double remaining = 0.0;  ///< bytes
    double rate = 0.0;       ///< bytes/second
    double rate_cap = 0.0;   ///< per-flow ceiling; 0 = unlimited
    TimePoint last_update;
    sim::EventId completion = 0;
    std::coroutine_handle<> waiter;
  };

  struct FlowAwaiter {
    FlowNetwork& net;
    std::uint64_t id;
    bool await_ready() const noexcept { return !net.flows_.contains(id); }
    void await_suspend(std::coroutine_handle<> h) {
      net.flows_.at(id).waiter = h;
    }
    void await_resume() const noexcept {}
  };

  int uplink(int node) const { return node; }
  int downlink(int node) const { return shape_.nodes + node; }
  int shm_link(int node) const { return 2 * shape_.nodes + node; }
  int rack_uplink(int rack) const { return 3 * shape_.nodes + rack; }
  int rack_downlink(int rack) const {
    return 3 * shape_.nodes + shape_.racks() + rack;
  }
  bool rack_layer_enabled() const {
    return shape_.has_racks() && params_.rack_bandwidth > 0.0;
  }

  /// Advances every flow's remaining-bytes to the current time.
  void update_progress();

  /// Max–min water-filling over all active flows, then reschedules each
  /// flow's completion event.
  void recompute_rates();

  void on_complete(std::uint64_t id);

  sim::Engine& engine_;
  hw::ClusterShape shape_;
  NetworkParams params_;
  std::vector<double> link_bandwidth_;  ///< indexed by link id
  std::unordered_map<std::uint64_t, Flow> flows_;
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace pacc::net

// Shared helpers for the pacc test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "pacc/simulation.hpp"

namespace pacc::test {

/// Small cluster config for fast tests (defaults: 4 nodes × 4 ranks).
inline ClusterConfig small_cluster(int nodes = 4, int ranks = 16,
                                   int ranks_per_node = 4) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks = ranks;
  cfg.ranks_per_node = ranks_per_node;
  return cfg;
}

/// Deterministic byte identifying (src, dst, offset) — used to verify that
/// collectives deliver exactly the right data.
inline std::byte pattern(int src, int dst, std::size_t offset) {
  return static_cast<std::byte>(
      (static_cast<unsigned>(src) * 131u + static_cast<unsigned>(dst) * 31u +
       static_cast<unsigned>(offset)) &
      0xFFu);
}

/// Fills `buf` as the data rank `src` wants delivered to `dst`.
inline void fill_pattern(std::span<std::byte> buf, int src, int dst) {
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = pattern(src, dst, i);
}

/// True when `buf` matches the (src, dst) pattern.
inline bool check_pattern(std::span<const std::byte> buf, int src, int dst) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != pattern(src, dst, i)) return false;
  }
  return true;
}

/// Scheme label safe for gtest parameterized-test names (no hyphens).
inline std::string scheme_tag(coll::PowerScheme s) {
  switch (s) {
    case coll::PowerScheme::kNone:
      return "none";
    case coll::PowerScheme::kFreqScaling:
      return "dvfs";
    case coll::PowerScheme::kProposed:
      return "proposed";
  }
  return "unknown";
}

/// Runs `body` on every rank and asserts the simulation drains cleanly.
inline sim::RunResult run_all(Simulation& sim,
                              const std::function<sim::Task<>(mpi::Rank&)>& body) {
  sim.runtime().launch(body);
  return sim.engine().run();
}

}  // namespace pacc::test

// pacc::Campaign: determinism across thread counts, failure isolation,
// cancellation, timeouts, and the JSON artifact.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "pacc/campaign.hpp"
#include "test_support.hpp"

namespace pacc {
namespace {

/// Small sweep spanning ops, schemes and sizes — cheap enough to run under
/// several jobs values but wide enough to actually exercise the pool.
SweepSpec small_sweep() {
  std::vector<ClusterConfig> clusters = {test::small_cluster(2, 8, 4),
                                         test::small_cluster(2, 4, 2)};
  std::vector<CollectiveBenchSpec> benches;
  for (const coll::Op op :
       {coll::Op::kAlltoall, coll::Op::kBcast, coll::Op::kAllreduce}) {
    for (const coll::PowerScheme scheme : coll::kAllSchemes) {
      for (const Bytes message : {Bytes{4 * 1024}, Bytes{32 * 1024}}) {
        CollectiveBenchSpec spec;
        spec.op = op;
        spec.scheme = scheme;
        spec.message = message;
        spec.iterations = 2;
        spec.warmup = 1;
        benches.push_back(spec);
      }
    }
  }
  return SweepSpec::grid(clusters, benches);
}

std::string artifact(const SweepSpec& sweep,
                     const std::vector<CellResult>& results) {
  std::ostringstream out;
  write_campaign_json(out, sweep, results);
  return out.str();
}

TEST(Campaign, ResultsAreByteIdenticalAcrossJobCounts) {
  const SweepSpec sweep = small_sweep();
  Campaign serial(sweep, {.jobs = 1});
  Campaign pooled(sweep, {.jobs = 8});
  const auto a = serial.run();
  const auto b = pooled.run();
  ASSERT_EQ(a.size(), sweep.size());
  ASSERT_EQ(b.size(), sweep.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].status.ok()) << a[i].label << ": "
                                  << a[i].status.describe();
    EXPECT_EQ(a[i].report.latency.ns(), b[i].report.latency.ns()) << i;
    EXPECT_EQ(a[i].report.energy_per_op, b[i].report.energy_per_op) << i;
  }
  // The artifact is the real contract: identical bytes, any thread count.
  EXPECT_EQ(artifact(sweep, a), artifact(sweep, b));
}

TEST(Campaign, FaultedResultsAreByteIdenticalAcrossJobCounts) {
  // The stressed variant of the contract: fault draws must key off the
  // cell's index (derive_cell_seed), never the worker thread that happened
  // to pick the cell up, or --jobs would reshuffle every outcome.
  SweepSpec sweep = small_sweep();
  for (SweepCell& cell : sweep.cells) {
    cell.cluster.faults =
        *fault::FaultSpec::parse("seed=13,drop=0.01,flap=40,tfail=0.25");
  }
  Campaign serial(sweep, {.jobs = 1});
  Campaign pooled(sweep, {.jobs = 4});
  const auto a = serial.run();
  const auto b = pooled.run();
  ASSERT_EQ(a.size(), sweep.size());
  bool any_disturbed = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].status.usable() ||
                a[i].status.outcome == RunOutcome::kUnreachable)
        << a[i].label << ": " << a[i].status.describe();
    EXPECT_EQ(a[i].status.outcome, b[i].status.outcome) << a[i].label;
    EXPECT_EQ(a[i].report.latency.ns(), b[i].report.latency.ns()) << i;
    EXPECT_EQ(a[i].report.faults.retransmits, b[i].report.faults.retransmits)
        << i;
    any_disturbed |= a[i].report.faults.disturbed();
  }
  EXPECT_TRUE(any_disturbed);  // the spec actually bit somewhere
  EXPECT_EQ(artifact(sweep, a), artifact(sweep, b));
}

TEST(Campaign, DeadlockedCellIsIsolatedAsTimeout) {
  SweepSpec sweep;
  CollectiveBenchSpec ok_spec;
  ok_spec.op = coll::Op::kBcast;
  ok_spec.message = 1024;
  ok_spec.iterations = 1;
  ok_spec.warmup = 0;

  // Middle cell can never finish: it gets a cluster whose max_sim_time is
  // far below one iteration's latency, so its engine runs out of budget.
  ClusterConfig tiny = test::small_cluster(2, 8, 4);
  ClusterConfig doomed = tiny;
  doomed.max_sim_time = Duration::nanos(100);
  sweep.add(tiny, ok_spec, "before");
  sweep.add(doomed, ok_spec, "doomed");
  sweep.add(tiny, ok_spec, "after");

  const auto results = Campaign(sweep, {.jobs = 2}).run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.outcome, RunOutcome::kTimeout)
      << results[1].status.describe();
  EXPECT_TRUE(results[2].status.ok());
}

TEST(Campaign, CellTimeoutOptionOverridesEveryCell) {
  SweepSpec sweep;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 64 * 1024;
  spec.iterations = 2;
  spec.warmup = 0;
  sweep.add(test::small_cluster(2, 8, 4), spec);

  CampaignOptions options;
  options.cell_timeout = Duration::nanos(100);
  const auto results = Campaign(sweep, options).run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.outcome, RunOutcome::kTimeout);
}

TEST(Campaign, InvalidCellYieldsErrorNotAbort) {
  SweepSpec sweep;
  CollectiveBenchSpec good;
  good.op = coll::Op::kBcast;
  good.message = 1024;
  good.iterations = 1;
  good.warmup = 0;
  CollectiveBenchSpec bad = good;
  bad.iterations = 0;  // would trip measure_collective's contract check
  CollectiveBenchSpec unsupported = good;
  unsupported.op = coll::Op::kGather;
  unsupported.scheme = coll::PowerScheme::kProposed;

  ClusterConfig cluster = test::small_cluster(2, 4, 2);
  sweep.add(cluster, bad, "bad");
  sweep.add(cluster, unsupported, "unsupported");
  sweep.add(cluster, good, "good");

  const auto results = Campaign(sweep).run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status.outcome, RunOutcome::kError);
  EXPECT_EQ(results[1].status.outcome, RunOutcome::kError);
  EXPECT_TRUE(results[2].status.ok());
}

TEST(Campaign, ProgressIsOrderedAndCancelShortCircuits) {
  const SweepSpec sweep = small_sweep();
  Campaign* handle = nullptr;
  std::size_t calls = 0;
  CampaignOptions options;
  options.jobs = 1;  // serial order: cells run 0, 1, 2, ... deterministically
  options.on_progress = [&](const CampaignProgress& p) {
    ++calls;
    EXPECT_EQ(p.finished, calls);
    EXPECT_EQ(p.total, sweep.size());
    ASSERT_NE(p.last, nullptr);
    if (p.finished == 2) handle->cancel();
  };
  Campaign campaign(sweep, std::move(options));
  handle = &campaign;
  const auto results = campaign.run();
  EXPECT_EQ(calls, sweep.size());  // cancelled cells still report progress
  std::size_t cancelled = 0;
  for (const auto& r : results) {
    if (r.status.outcome == RunOutcome::kError &&
        r.status.message == "cancelled") {
      ++cancelled;
    }
  }
  EXPECT_EQ(cancelled, sweep.size() - 2);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
}

TEST(Campaign, ForEachIsolatesExceptionsPerIndex) {
  std::atomic<int> ran{0};
  const auto statuses = Campaign::for_each(16, 4, [&](std::size_t i) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (i % 5 == 0) throw std::runtime_error("boom " + std::to_string(i));
  });
  ASSERT_EQ(statuses.size(), 16u);
  EXPECT_EQ(ran.load(), 16);
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    if (i % 5 == 0) {
      EXPECT_EQ(statuses[i].outcome, RunOutcome::kError);
      EXPECT_EQ(statuses[i].message, "boom " + std::to_string(i));
    } else {
      EXPECT_TRUE(statuses[i].ok());
    }
  }
}

TEST(Campaign, WorkStealingCoversEveryIndexExactlyOnce) {
  std::mutex mu;
  std::multiset<std::size_t> seen;
  const auto statuses = Campaign::for_each(97, 8, [&](std::size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
  });
  EXPECT_EQ(statuses.size(), 97u);
  ASSERT_EQ(seen.size(), 97u);
  std::size_t expect = 0;
  for (const std::size_t i : seen) EXPECT_EQ(i, expect++);
}

TEST(Campaign, JsonArtifactIsWellFormedAndOrdered) {
  SweepSpec sweep;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kBcast;
  spec.message = 1024;
  spec.iterations = 1;
  spec.warmup = 0;
  sweep.add(test::small_cluster(2, 4, 2), spec, "quote\"and\\slash");
  const auto results = Campaign(sweep).run();
  const std::string json = artifact(sweep, results);
  EXPECT_NE(json.find("\"schema\": \"pacc-campaign-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"quote\\\"and\\\\slash\""),
            std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"op\": \"bcast\""), std::string::npos);
}

TEST(Campaign, GridIsClusterMajorWithDescriptiveLabels) {
  std::vector<ClusterConfig> clusters = {test::small_cluster(2, 4, 2),
                                         test::small_cluster(2, 8, 4)};
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 4096;
  const SweepSpec sweep = SweepSpec::grid(clusters, {spec});
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_EQ(sweep.cells[0].cluster.ranks, 4);
  EXPECT_EQ(sweep.cells[1].cluster.ranks, 8);
  EXPECT_EQ(sweep.cells[0].label, "0/alltoall/no-power/4K");
  EXPECT_EQ(sweep.cells[1].label, "1/alltoall/no-power/4K");
}

TEST(RunStatus, DescribeAndDeprecatedShim) {
  RunStatus ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(to_string(ok.outcome), "ok");
  const RunStatus err = RunStatus::error("nope");
  EXPECT_FALSE(err);
  EXPECT_EQ(err.describe(), "error: nope");

  RunReport report;
  report.status.outcome = RunOutcome::kDeadlock;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  EXPECT_FALSE(report.completed());  // the shim keeps old call sites alive
#pragma GCC diagnostic pop
}

}  // namespace
}  // namespace pacc

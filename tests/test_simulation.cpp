#include "pacc/simulation.hpp"

#include <gtest/gtest.h>

#include <array>

namespace pacc {
namespace {

TEST(Simulation, BuildsPaperTestbedByDefault) {
  ClusterConfig cfg;
  Simulation sim(cfg);
  EXPECT_EQ(sim.machine().shape().nodes, 8);
  EXPECT_EQ(sim.machine().shape().cores_per_node(), 8);
  EXPECT_EQ(sim.runtime().size(), 64);
  // Fully-loaded polling power near the paper's 2.3 KW.
  EXPECT_NEAR(sim.machine().system_power(), 2304.0, 1.0);
}

TEST(Simulation, RunReportsElapsedAndEnergy) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 4;
  cfg.ranks_per_node = 2;
  Simulation sim(cfg);
  const auto report = sim.run([](mpi::Rank& r) -> sim::Task<> {
    co_await r.compute(Duration::millis(10));
  });
  EXPECT_TRUE(report.status.ok());
  EXPECT_NEAR(report.elapsed.ms(), 10.0, 0.1);
  EXPECT_NEAR(report.energy, sim.machine().system_power() * 0.010, 1e-3);
  EXPECT_GT(report.mean_power, 0.0);
}

TEST(Simulation, MeterSamplesLongRuns) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks = 2;
  cfg.ranks_per_node = 2;
  Simulation sim(cfg);
  const auto report = sim.run([](mpi::Rank& r) -> sim::Task<> {
    co_await r.compute(Duration::seconds(2.0));
  });
  EXPECT_TRUE(report.status.ok());
  // Boundary samples at 0 and 2.0 s plus interval samples at 0.5/1.0/1.5 s.
  EXPECT_EQ(report.power.samples().size(), 5u);
}

TEST(Simulation, DeadlockSurfacesInReport) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  Simulation sim(cfg);
  const auto report = sim.run([](mpi::Rank& r) -> sim::Task<> {
    std::array<std::byte, 8> buf{};
    if (r.id() == 0) co_await r.recv(1, 1, buf);  // never sent
  });
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.outcome, RunOutcome::kDeadlock);
  EXPECT_FALSE(report.status.message.empty());
}

TEST(MeasureCollective, ProducesPlausibleAlltoallLatency) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 8;
  cfg.ranks_per_node = 4;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 64 * 1024;
  spec.iterations = 4;
  spec.warmup = 1;
  const auto report = measure_collective(cfg, spec);
  ASSERT_TRUE(report.status.ok());
  // Rough bound: 6 inter-node steps × ~(4-flow shared uplink).
  EXPECT_GT(report.latency.us(), 100.0);
  EXPECT_LT(report.latency.us(), 5000.0);
  EXPECT_GT(report.energy_per_op, 0.0);
  // 2 nodes fully polling draw 2·(120+40) + 8·16 + 8·4 = 480 W.
  EXPECT_GT(report.mean_power, 400.0);
}

TEST(MeasureCollective, WarmupExcludedFromTiming) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 4;
  cfg.ranks_per_node = 2;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kBcast;
  spec.message = 32 * 1024;
  spec.iterations = 2;

  spec.warmup = 0;
  const auto no_warm = measure_collective(cfg, spec);
  spec.warmup = 5;
  const auto with_warm = measure_collective(cfg, spec);
  ASSERT_TRUE(no_warm.status.ok() && with_warm.status.ok());
  EXPECT_NEAR(no_warm.latency.us(), with_warm.latency.us(),
              no_warm.latency.us() * 0.2);
}

TEST(MeasureCollective, BlockingModeIsSlowerButCheaper) {
  // Fig 6: blocking loses latency but saves power on large alltoalls.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 8;
  cfg.ranks_per_node = 4;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 128 * 1024;
  spec.iterations = 3;
  spec.warmup = 1;

  cfg.progress = mpi::ProgressMode::kPolling;
  const auto polling = measure_collective(cfg, spec);
  cfg.progress = mpi::ProgressMode::kBlocking;
  const auto blocking = measure_collective(cfg, spec);
  ASSERT_TRUE(polling.status.ok() && blocking.status.ok());
  EXPECT_GT(blocking.latency.ns(), polling.latency.ns());
  EXPECT_LT(blocking.mean_power, polling.mean_power);
}

TEST(Simulation, CustomNetworkParamsRespected) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 2;
  cfg.ranks_per_node = 1;
  net::NetworkParams slow = presets::paper_network();
  slow.link_bandwidth = 1e8;  // 10× slower
  cfg.network = slow;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kBcast;
  spec.message = 1 << 20;
  spec.iterations = 1;
  spec.warmup = 0;
  const auto slow_report = measure_collective(cfg, spec);

  cfg.network.reset();
  const auto fast_report = measure_collective(cfg, spec);
  ASSERT_TRUE(slow_report.status.ok() && fast_report.status.ok());
  EXPECT_GT(slow_report.latency.sec(), fast_report.latency.sec() * 5);
}

}  // namespace
}  // namespace pacc

// Randomized stress test: seeded pseudo-random schedules of mixed
// collectives over the world comm and random sub-communicators, under
// randomly chosen power schemes. Asserts completion (no deadlock, no tag
// cross-matching), data integrity on checkable ops, full core-state
// restoration, and run-to-run determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "coll/comm_split.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "coll/registry.hpp"

namespace pacc::coll {
namespace {

using test::check_pattern;
using test::fill_pattern;

struct StressOutcome {
  bool completed = false;
  int data_errors = 0;
  Joules energy = 0.0;
  std::int64_t end_ns = 0;
};

StressOutcome run_stress(std::uint64_t seed, int rounds) {
  ClusterConfig cfg = test::small_cluster(4, 16, 4);
  Simulation sim(cfg);
  std::vector<int> errors(16, 0);

  auto body = [&, seed, rounds](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    // Every rank derives the identical schedule from the seed.
    Rng schedule(seed);

    std::vector<std::byte> big_send(16 * 8192), big_recv(16 * 8192);
    std::vector<std::byte> buf(8192);
    std::vector<std::byte> red_a(1024), red_b(1024);

    for (int round = 0; round < rounds; ++round) {
      const auto op = schedule.next_below(7);
      const auto scheme = static_cast<PowerScheme>(schedule.next_below(3));
      const int root = static_cast<int>(schedule.next_below(16));
      const Bytes block = 512 << schedule.next_below(4);  // 512..4096

      // Half the rounds run on a split comm (group by rank mod 2..4).
      mpi::Comm* comm = &world;
      if (schedule.next_below(2) == 1) {
        const int groups = 2 + static_cast<int>(schedule.next_below(3));
        comm = co_await comm_split(self, world, me % groups, me);
      }
      const int sub_me = comm->comm_rank_of(self.id());
      const int sub_root = root % comm->size();
      const auto blk = static_cast<std::size_t>(block);

      switch (op) {
        case 0: {  // alltoall with data check
          const auto P = static_cast<std::size_t>(comm->size());
          for (int dst = 0; dst < comm->size(); ++dst) {
            fill_pattern(std::span(big_send).subspan(
                             static_cast<std::size_t>(dst) * blk, blk),
                         sub_me, dst);
          }
          const auto n = P * blk;
          co_await coll::alltoall(self, *comm,
                                  std::span<const std::byte>(big_send).first(n),
                                  std::span(big_recv).first(n), block,
                                  {.scheme = scheme});
          for (int src = 0; src < comm->size(); ++src) {
            if (!check_pattern(std::span<const std::byte>(big_recv).subspan(
                                   static_cast<std::size_t>(src) * blk, blk),
                               src, sub_me)) {
              ++errors[static_cast<std::size_t>(me)];
            }
          }
          break;
        }
        case 1: {  // bcast with data check
          auto span = std::span(buf).first(blk);
          if (sub_me == sub_root) fill_pattern(span, sub_root, round & 0xFF);
          co_await coll::bcast(self, *comm, span, sub_root,
                               {.scheme = scheme});
          if (!check_pattern(span, sub_root, round & 0xFF)) {
            ++errors[static_cast<std::size_t>(me)];
          }
          break;
        }
        case 2:
          co_await coll::allreduce(self, *comm, red_a, red_b,
                                   {.scheme = scheme});
          break;
        case 3:
          co_await coll::reduce(self, *comm, red_a, red_b, sub_root,
                                {.scheme = scheme});
          break;
        case 4: {
          std::vector<std::byte> gat(
              static_cast<std::size_t>(comm->size()) * blk);
          co_await coll::allgather(self, *comm, std::span(buf).first(blk),
                                   gat, block, {.scheme = scheme});
          break;
        }
        case 5:
          co_await coll::barrier(self, *comm, {.scheme = scheme});
          break;
        case 6:
          co_await coll::scan(self, *comm, red_a, red_b, {.scheme = scheme});
          break;
      }
    }
  };

  sim.runtime().launch(body);
  const auto run = sim.engine().run_active();

  StressOutcome outcome;
  outcome.completed = run.all_tasks_finished;
  for (const int e : errors) outcome.data_errors += e;
  outcome.energy = sim.machine().total_energy();
  outcome.end_ns = run.end_time.ns();

  // Core state restored after the storm.
  if (outcome.completed) {
    for (int r = 0; r < 16; ++r) {
      const auto core = sim.runtime().placement().core_of(r);
      if (sim.machine().throttle(core) != 0 ||
          sim.machine().frequency(core) != sim.machine().params().fmax) {
        ++outcome.data_errors;
      }
    }
  }
  return outcome;
}

class StressSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeeds, MixedScheduleCompletesCleanly) {
  const auto outcome = run_stress(GetParam(), 24);
  EXPECT_TRUE(outcome.completed) << "deadlock under seed " << GetParam();
  EXPECT_EQ(outcome.data_errors, 0);
  EXPECT_GT(outcome.energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Values(1u, 7u, 42u, 1234u, 0xDEADBEEFu),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

TEST(StressDeterminism, SameSeedSameTrace) {
  const auto a = run_stress(99, 16);
  const auto b = run_stress(99, 16);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_EQ(a.end_ns, b.end_ns);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

}  // namespace
}  // namespace pacc::coll

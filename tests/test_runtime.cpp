#include "mpi/runtime.hpp"

#include <gtest/gtest.h>

#include <array>

#include "test_support.hpp"

namespace pacc::mpi {
namespace {

using test::check_pattern;
using test::fill_pattern;
using test::run_all;
using test::small_cluster;

TEST(Runtime, UnoccupiedCoresStartIdle) {
  // 2 ranks per node on 8-core nodes: 6 cores per node must be idle.
  Simulation sim(test::small_cluster(2, 4, 2));
  auto& machine = sim.machine();
  int busy = 0;
  const auto& shape = machine.shape();
  for (int c = 0; c < shape.total_cores(); ++c) {
    if (machine.activity(hw::core_from_linear(shape, c)) ==
        hw::Activity::kBusy) {
      ++busy;
    }
  }
  EXPECT_EQ(busy, 4);
}

sim::Task<> ping_pong(Rank& self, Duration& rtt) {
  std::array<std::byte, 64> buf{};
  if (self.id() == 0) {
    const TimePoint start = self.engine().now();
    fill_pattern(buf, 0, 1);
    co_await self.send(1, 1, buf);
    co_await self.recv(1, 2, buf);
    rtt = self.engine().now() - start;
  } else if (self.id() == 1) {
    co_await self.recv(0, 1, buf);
    co_await self.send(0, 2, buf);
  }
}

TEST(Runtime, PingPongDeliversAndTakesTime) {
  Simulation sim(small_cluster(2, 2, 1));
  Duration rtt;
  auto result = run_all(sim, [&](Rank& r) { return ping_pong(r, rtt); });
  EXPECT_TRUE(result.all_tasks_finished);
  EXPECT_GT(rtt.ns(), 0);
}

sim::Task<> send_payload(Rank& self, Bytes n, bool& ok) {
  std::vector<std::byte> buf(static_cast<std::size_t>(n));
  if (self.id() == 0) {
    fill_pattern(buf, 0, 1);
    co_await self.send(1, 9, buf);
  } else if (self.id() == 1) {
    co_await self.recv(0, 9, buf);
    ok = check_pattern(buf, 0, 1);
  }
}

TEST(Runtime, PayloadIntegrityEager) {
  Simulation sim(small_cluster(2, 2, 1));
  bool ok = false;
  EXPECT_TRUE(
      run_all(sim, [&](Rank& r) { return send_payload(r, 1024, ok); })
          .all_tasks_finished);
  EXPECT_TRUE(ok);
}

TEST(Runtime, PayloadIntegrityRendezvous) {
  Simulation sim(small_cluster(2, 2, 1));
  bool ok = false;
  EXPECT_TRUE(
      run_all(sim, [&](Rank& r) { return send_payload(r, 256 * 1024, ok); })
          .all_tasks_finished);
  EXPECT_TRUE(ok);
}

sim::Task<> large_vs_small_sender(Rank& self, TimePoint& sender_done) {
  std::vector<std::byte> big(1 << 20);
  if (self.id() == 0) {
    co_await self.send(1, 1, big);
    sender_done = self.engine().now();
  } else {
    co_await self.recv(0, 1, big);
  }
}

TEST(Runtime, RendezvousHoldsSenderUntilDelivery) {
  Simulation sim(small_cluster(2, 2, 1));
  TimePoint sender_done;
  run_all(sim, [&](Rank& r) { return large_vs_small_sender(r, sender_done); });
  // 1 MiB at 3.2 GB/s ≈ 328 µs; an eager send would return in ~2 µs.
  EXPECT_GT(sender_done.us(), 300.0);
}

sim::Task<> eager_sender(Rank& self, TimePoint& sender_done) {
  std::vector<std::byte> small(512);
  if (self.id() == 0) {
    co_await self.send(1, 1, small);
    sender_done = self.engine().now();
    // Give the detached transfer time to complete.
    co_await self.engine().delay(Duration::millis(5));
  } else {
    co_await self.recv(0, 1, small);
  }
}

TEST(Runtime, EagerSendReturnsBeforeDelivery) {
  Simulation sim(small_cluster(2, 2, 1));
  TimePoint sender_done;
  EXPECT_TRUE(
      run_all(sim, [&](Rank& r) { return eager_sender(r, sender_done); })
          .all_tasks_finished);
  EXPECT_LT(sender_done.us(), 50.0);
}

TEST(Runtime, MissingSendIsReportedAsDeadlock) {
  Simulation sim(small_cluster(2, 2, 1));
  auto result = run_all(sim, [](Rank& r) -> sim::Task<> {
    std::array<std::byte, 8> buf{};
    if (r.id() == 1) {
      co_await r.recv(0, 1, buf);  // rank 0 never sends
    }
    co_return;
  });
  EXPECT_FALSE(result.all_tasks_finished);
  EXPECT_EQ(result.stuck_tasks, 1u);
}

sim::Task<> compute_probe(Rank& self, Duration& took) {
  const TimePoint start = self.engine().now();
  co_await self.compute(Duration::millis(10));
  took = self.engine().now() - start;
}

TEST(Runtime, ComputeScalesWithDvfs) {
  Simulation sim(small_cluster(1, 1, 1));
  Duration took;
  run_all(sim, [&](Rank& r) -> sim::Task<> {
    co_await r.dvfs(r.machine().params().fmin);
    co_await compute_probe(r, took);
  });
  // 10 ms of fmax work at 1.6/2.4 GHz takes 15 ms.
  EXPECT_NEAR(took.ms(), 15.0, 0.01);
}

TEST(Runtime, ComputeScalesWithThrottle) {
  Simulation sim(small_cluster(1, 1, 1));
  Duration took;
  run_all(sim, [&](Rank& r) -> sim::Task<> {
    co_await r.throttle(4);  // c4 = 0.5 → 2× slower
    co_await compute_probe(r, took);
    co_await r.throttle(0);
  });
  EXPECT_NEAR(took.ms(), 20.0, 0.01);
}

// --- progression modes -----------------------------------------------

sim::Task<> late_sender(Rank& self, Duration& wait_power_probe) {
  std::array<std::byte, 256> buf{};
  if (self.id() == 0) {
    co_await self.engine().delay(Duration::millis(2));
    fill_pattern(buf, 0, 1);
    co_await self.send(1, 1, buf);
  } else {
    co_await self.recv(0, 1, buf);
  }
  (void)wait_power_probe;
}

TEST(Runtime, PollingKeepsWaitingCoreBusy) {
  ClusterConfig cfg = small_cluster(2, 2, 1);
  cfg.progress = ProgressMode::kPolling;
  Simulation sim(cfg);
  Duration unused;
  run_all(sim, [&](Rank& r) { return late_sender(r, unused); });
  const auto stats = sim.machine().core_stats(sim.runtime().rank(1).core());
  EXPECT_EQ(stats.idle_time.ns(), 0);
}

TEST(Runtime, BlockingSleepsAfterSpinWindow) {
  ClusterConfig cfg = small_cluster(2, 2, 1);
  cfg.progress = ProgressMode::kBlocking;
  Simulation sim(cfg);
  Duration unused;
  run_all(sim, [&](Rank& r) { return late_sender(r, unused); });
  const auto stats = sim.machine().core_stats(sim.runtime().rank(1).core());
  // Waited ~2 ms for the sender: most of it asleep.
  EXPECT_GT(stats.idle_time.ms(), 1.0);
}

sim::Task<> local_pair(Rank& self, TimePoint& done) {
  std::vector<std::byte> buf(1 << 20);
  if (self.id() == 0) {
    co_await self.send(1, 1, buf);
  } else {
    co_await self.recv(0, 1, buf);
    done = self.engine().now();
  }
}

TEST(Runtime, BlockingModeLosesSharedMemoryPath) {
  // §II-B: blocking mode falls back to HCA loopback for intra-node pairs.
  ClusterConfig polling_cfg = small_cluster(1, 2, 2);
  Simulation polling_sim(polling_cfg);
  TimePoint polling_done;
  run_all(polling_sim, [&](Rank& r) { return local_pair(r, polling_done); });

  ClusterConfig blocking_cfg = small_cluster(1, 2, 2);
  blocking_cfg.progress = ProgressMode::kBlocking;
  Simulation blocking_sim(blocking_cfg);
  TimePoint blocking_done;
  run_all(blocking_sim, [&](Rank& r) { return local_pair(r, blocking_done); });

  EXPECT_GT(blocking_done.us(), polling_done.us() * 1.5);
}

}  // namespace
}  // namespace pacc::mpi

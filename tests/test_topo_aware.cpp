// Tests for the rack layer and the topology-aware Scatter/Gather extension
// (the paper's §VIII future work).
#include "coll/topo_aware.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "coll/power_scheme.hpp"
#include "net/network.hpp"
#include "test_support.hpp"
#include "coll/registry.hpp"

namespace pacc::coll {
namespace {

using test::check_pattern;
using test::fill_pattern;
using test::run_all;

ClusterConfig racked_cluster(int nodes = 8, int ranks = 32, int ppn = 4,
                             int nodes_per_rack = 4) {
  ClusterConfig cfg = test::small_cluster(nodes, ranks, ppn);
  cfg.nodes_per_rack = nodes_per_rack;
  return cfg;
}

TEST(RackShape, DerivedStructure) {
  hw::ClusterShape shape{8, 2, 4, /*nodes_per_rack=*/4};
  EXPECT_TRUE(shape.has_racks());
  EXPECT_EQ(shape.racks(), 2);
  EXPECT_EQ(shape.rack_of(0), 0);
  EXPECT_EQ(shape.rack_of(3), 0);
  EXPECT_EQ(shape.rack_of(4), 1);
  EXPECT_EQ(shape.rack_of(7), 1);

  hw::ClusterShape flat{8, 2, 4};
  EXPECT_FALSE(flat.has_racks());
  EXPECT_EQ(flat.racks(), 1);
  EXPECT_EQ(flat.rack_of(7), 0);
}

TEST(RackComm, StructureAndLeaders) {
  Simulation sim(racked_cluster());
  mpi::Comm& world = sim.runtime().world();
  ASSERT_EQ(world.racks().size(), 2u);
  EXPECT_EQ(world.members_on_rack(0).size(), 16u);
  EXPECT_EQ(world.rack_leader_of(0), 0);
  EXPECT_EQ(world.rack_leader_of(1), 16);
  EXPECT_TRUE(world.is_rack_leader(0));
  EXPECT_FALSE(world.is_rack_leader(1));
  mpi::Comm& leaders = world.rack_leader_comm();
  EXPECT_EQ(leaders.size(), 2);
  EXPECT_EQ(leaders.global_rank(1), 16);
}

TEST(RackNetwork, InterRackFlowsShareTheAggregationLink) {
  // Two flows from different nodes of rack 0 to rack 1 share the rack
  // uplink even though their node links are disjoint.
  sim::Engine engine;
  hw::ClusterShape shape{4, 2, 4, /*nodes_per_rack=*/2};
  net::NetworkParams params;
  params.link_bandwidth = 1e9;
  params.rack_bandwidth = 1e9;  // heavily oversubscribed: 2 nodes per rack
  params.contention_penalty = 0.0;
  net::FlowNetwork net(engine, shape, params);

  struct Probe {
    TimePoint done;
  } a, b;
  auto xfer = [&](int src, int dst, Probe& p) -> sim::Task<> {
    co_await net.transfer(src, dst, 1'000'000);
    p.done = engine.now();
  };
  engine.spawn(xfer(0, 2, a));
  engine.spawn(xfer(1, 3, b));
  EXPECT_TRUE(engine.run().all_tasks_finished);
  // Node links are disjoint (1 GB/s each) but the rack uplink carries both:
  // each flow gets 0.5 GB/s → 2 ms.
  EXPECT_NEAR(a.done.us(), 2000.0, 10.0);
  EXPECT_NEAR(b.done.us(), 2000.0, 10.0);
}

TEST(RackNetwork, IntraRackFlowsSkipTheAggregationLink) {
  sim::Engine engine;
  hw::ClusterShape shape{4, 2, 4, /*nodes_per_rack=*/2};
  net::NetworkParams params;
  params.link_bandwidth = 1e9;
  params.rack_bandwidth = 1e8;  // would be very slow if (wrongly) used
  params.contention_penalty = 0.0;
  net::FlowNetwork net(engine, shape, params);
  TimePoint done;
  auto xfer = [&]() -> sim::Task<> {
    co_await net.transfer(0, 1, 1'000'000);  // same rack
    done = engine.now();
  };
  engine.spawn(xfer());
  EXPECT_TRUE(engine.run().all_tasks_finished);
  EXPECT_NEAR(done.us(), 1000.0, 5.0);
}

TEST(TopoAware, ApplicabilityRules) {
  Simulation racked(racked_cluster());
  EXPECT_TRUE(topo_aware_applicable(racked.runtime().world()));

  Simulation flat(test::small_cluster(4, 16, 4));
  EXPECT_FALSE(topo_aware_applicable(flat.runtime().world()));
}

void verify_topo_scatter(const ClusterConfig& cfg, int root,
                         PowerScheme scheme) {
  Simulation sim(cfg);
  const int P = cfg.ranks;
  const Bytes block = 8192;
  const auto blk = static_cast<std::size_t>(block);
  std::vector<int> ok(static_cast<std::size_t>(P), 0);

  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    std::vector<std::byte> send;
    if (me == root) {
      send.resize(static_cast<std::size_t>(P) * blk);
      for (int dst = 0; dst < P; ++dst) {
        fill_pattern(
            std::span(send).subspan(static_cast<std::size_t>(dst) * blk, blk),
            root, dst);
      }
    }
    std::vector<std::byte> mine(blk);
    co_await scatter_topo_aware(self, world, send, mine, block, root,
                                {.scheme = scheme});
    ok[static_cast<std::size_t>(me)] = check_pattern(mine, root, me);
  };
  ASSERT_TRUE(run_all(sim, body).all_tasks_finished);
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "rank " << r;
  }
  // Power management must be transparent.
  for (int r = 0; r < P; ++r) {
    const auto core = sim.runtime().placement().core_of(r);
    EXPECT_EQ(sim.machine().throttle(core), 0);
    EXPECT_EQ(sim.machine().frequency(core), sim.machine().params().fmax);
  }
}

TEST(TopoAware, ScatterCorrectRootZero) {
  verify_topo_scatter(racked_cluster(), 0, PowerScheme::kNone);
}

TEST(TopoAware, ScatterCorrectNonLeaderRoot) {
  verify_topo_scatter(racked_cluster(), 21, PowerScheme::kNone);
}

TEST(TopoAware, ScatterPowerAware) {
  verify_topo_scatter(racked_cluster(), 0, PowerScheme::kProposed);
  verify_topo_scatter(racked_cluster(), 9, PowerScheme::kProposed);
}

TEST(TopoAware, ScatterFourRacks) {
  verify_topo_scatter(racked_cluster(8, 64, 8, 2), 0, PowerScheme::kProposed);
}

void verify_topo_gather(const ClusterConfig& cfg, int root,
                        PowerScheme scheme) {
  Simulation sim(cfg);
  const int P = cfg.ranks;
  const Bytes block = 8192;
  const auto blk = static_cast<std::size_t>(block);
  bool root_ok = false;

  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    std::vector<std::byte> mine(blk);
    fill_pattern(mine, me, root);
    std::vector<std::byte> gathered;
    if (me == root) gathered.resize(static_cast<std::size_t>(P) * blk);
    co_await gather_topo_aware(self, world, mine, gathered, block, root,
                               {.scheme = scheme});
    if (me == root) {
      bool good = true;
      for (int src = 0; src < P; ++src) {
        good = good && check_pattern(
                           std::span<const std::byte>(gathered).subspan(
                               static_cast<std::size_t>(src) * blk, blk),
                           src, root);
      }
      root_ok = good;
    }
  };
  ASSERT_TRUE(run_all(sim, body).all_tasks_finished);
  EXPECT_TRUE(root_ok);
}

TEST(TopoAware, GatherCorrect) {
  verify_topo_gather(racked_cluster(), 0, PowerScheme::kNone);
  verify_topo_gather(racked_cluster(), 13, PowerScheme::kFreqScaling);
}

TEST(TopoAware, FlatFallbackStillCorrect) {
  // Without racks the calls degrade to the binomial algorithms.
  ClusterConfig cfg = test::small_cluster(4, 16, 4);
  Simulation sim(cfg);
  const Bytes block = 4096;
  const auto blk = static_cast<std::size_t>(block);
  std::vector<int> ok(16, 0);
  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    std::vector<std::byte> send;
    if (me == 0) {
      send.resize(16 * blk);
      for (int dst = 0; dst < 16; ++dst) {
        fill_pattern(
            std::span(send).subspan(static_cast<std::size_t>(dst) * blk, blk),
            0, dst);
      }
    }
    std::vector<std::byte> mine(blk);
    co_await scatter_topo_aware(self, world, send, mine, block, 0,
                                {.scheme = PowerScheme::kProposed});
    ok[static_cast<std::size_t>(me)] = check_pattern(mine, 0, me);
  };
  ASSERT_TRUE(run_all(sim, body).all_tasks_finished);
  for (int r = 0; r < 16; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1);
}

TEST(TopoAware, SavesEnergyOnOversubscribedFabric) {
  // On an oversubscribed fabric the hierarchical scatter crosses each rack
  // boundary once, and the power-aware variant throttles the waiting ranks:
  // energy must drop versus the flat binomial tree.
  auto energy_with = [&](bool topo, PowerScheme scheme) {
    ClusterConfig cfg = racked_cluster(8, 64, 8, 4);
    Simulation sim(cfg);
    const Bytes block = 256 * 1024;
    const auto blk = static_cast<std::size_t>(block);
    auto body = [&, topo, scheme](mpi::Rank& self) -> sim::Task<> {
      mpi::Comm& world = sim.runtime().world();
      const int me = world.comm_rank_of(self.id());
      std::vector<std::byte> send;
      if (me == 0) send.resize(64 * blk);
      std::vector<std::byte> mine(blk);
      if (topo) {
        co_await scatter_topo_aware(self, world, send, mine, block, 0,
                                    {.scheme = scheme});
      } else {
        co_await enter_low_power(self, scheme);
        co_await scatter_binomial(self, world, send, mine, block, 0);
        co_await exit_low_power(self, scheme);
      }
    };
    EXPECT_TRUE(run_all(sim, body).all_tasks_finished);
    return sim.machine().total_energy();
  };

  const Joules flat = energy_with(false, PowerScheme::kNone);
  const Joules topo = energy_with(true, PowerScheme::kNone);
  const Joules topo_power = energy_with(true, PowerScheme::kProposed);
  EXPECT_LT(topo, flat);
  EXPECT_LT(topo_power, topo);
}

}  // namespace
}  // namespace pacc::coll

#include "sim/task.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace pacc::sim {
namespace {

Task<> delayer(Engine& e, Duration d, int id, std::vector<int>& log) {
  co_await e.delay(d);
  log.push_back(id);
}

TEST(Task, SpawnedTaskRunsToCompletion) {
  Engine e;
  std::vector<int> log;
  e.spawn(delayer(e, Duration::micros(5), 1, log));
  const RunResult r = e.run();
  EXPECT_TRUE(r.all_tasks_finished);
  EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(Task, ConcurrentTasksInterleaveByTime) {
  Engine e;
  std::vector<int> log;
  e.spawn(delayer(e, Duration::micros(20), 2, log));
  e.spawn(delayer(e, Duration::micros(10), 1, log));
  e.spawn(delayer(e, Duration::micros(30), 3, log));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

Task<> child(Engine& e, std::vector<int>& log) {
  log.push_back(1);
  co_await e.delay(Duration::micros(1));
  log.push_back(2);
}

Task<> parent(Engine& e, std::vector<int>& log) {
  log.push_back(0);
  co_await child(e, log);
  log.push_back(3);
}

TEST(Task, NestedAwaitRunsChildInline) {
  Engine e;
  std::vector<int> log;
  e.spawn(parent(e, log));
  e.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

Task<int> produce(Engine& e, int v) {
  co_await e.delay(Duration::micros(1));
  co_return v;
}

Task<> consume(Engine& e, int& out) { out = co_await produce(e, 42); }

TEST(Task, ValueTaskDeliversResult) {
  Engine e;
  int out = 0;
  e.spawn(consume(e, out));
  e.run();
  EXPECT_EQ(out, 42);
}

Task<> deep(Engine& e, int depth, int& leaves) {
  if (depth == 0) {
    ++leaves;
    co_return;
  }
  co_await deep(e, depth - 1, leaves);
}

TEST(Task, DeepNestingDoesNotOverflow) {
  Engine e;
  int leaves = 0;
  e.spawn(deep(e, 1000, leaves));
  e.run();
  EXPECT_EQ(leaves, 1);
}

Task<> never_finishes(Engine& e) {
  co_await e.delay(Duration::seconds(1e9));
}

TEST(Task, StuckTaskReportedAsDeadlock) {
  Engine e;
  e.spawn(never_finishes(e));
  const RunResult r = e.run_until(TimePoint{} + Duration::seconds(1.0));
  EXPECT_FALSE(r.all_tasks_finished);
  EXPECT_EQ(r.stuck_tasks, 1u);
}

Task<> bump_after_delay(Engine& e, int& d) {
  co_await e.delay(Duration::nanos(1));
  ++d;
}

TEST(Task, ManySpawnsGetReclaimed) {
  Engine e;
  int done = 0;
  for (int i = 0; i < 5000; ++i) {
    e.spawn(bump_after_delay(e, done));
  }
  const RunResult r = e.run();
  EXPECT_TRUE(r.all_tasks_finished);
  EXPECT_EQ(done, 5000);
}

}  // namespace
}  // namespace pacc::sim

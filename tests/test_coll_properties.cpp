// Cross-cutting property tests over the collective layer: invariants the
// paper's claims rest on, checked across operations and schemes.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "coll/alltoall_power.hpp"
#include "test_support.hpp"

namespace pacc::coll {
namespace {

/// Every (op, scheme) pair the registry's capability matrix admits.
std::vector<std::tuple<Op, PowerScheme>> supported_combos() {
  std::vector<std::tuple<Op, PowerScheme>> combos;
  for (const Op op : kAllOps) {
    for (const PowerScheme scheme : kAllSchemes) {
      if (supported(op, scheme)) combos.emplace_back(op, scheme);
    }
  }
  return combos;
}

/// Property 1: for every collective and scheme, all core states (frequency,
/// throttle, activity) are restored after the call — power management must
/// be transparent to the application.
class StateRestoration
    : public ::testing::TestWithParam<std::tuple<Op, PowerScheme>> {};

TEST_P(StateRestoration, CoresReturnToFmaxT0Busy) {
  const auto& [op, scheme] = GetParam();
  ClusterConfig cfg = test::small_cluster(2, 16, 8);
  CollectiveBenchSpec spec;
  spec.op = op;
  spec.scheme = scheme;
  spec.message = 32 * 1024;
  spec.iterations = 2;
  spec.warmup = 0;

  const CollectiveReport report = measure_collective(cfg, spec);
  ASSERT_TRUE(report.status.ok()) << to_string(op) << "/" << to_string(scheme);
  EXPECT_GT(report.latency.ns(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    OpsTimesSchemes, StateRestoration, ::testing::ValuesIn(supported_combos()),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             test::scheme_tag(std::get<1>(info.param));
    });

/// Property 2: energy ordering. For the collectives the paper optimises,
/// proposed <= freq-scaling <= default energy per operation.
class EnergyOrdering : public ::testing::TestWithParam<Op> {};

TEST_P(EnergyOrdering, ProposedNeverWorseThanDvfsOnLargeMessages) {
  // 4 nodes: the network phase must dominate for throttling to pay off,
  // exactly the regime the paper's §V-B targets (Fig 2b/2c).
  ClusterConfig cfg = test::small_cluster(4, 32, 8);
  CollectiveBenchSpec spec;
  spec.op = GetParam();
  spec.message = 1 << 20;  // the fixed O_dvfs/O_throttle costs must amortise
  spec.iterations = 3;
  spec.warmup = 1;

  std::vector<Joules> energy;
  for (const auto scheme : kAllSchemes) {
    spec.scheme = scheme;
    const auto report = measure_collective(cfg, spec);
    ASSERT_TRUE(report.status.ok());
    energy.push_back(report.energy_per_op);
  }
  EXPECT_LT(energy[1], energy[0]) << "freq-scaling must save energy";
  // The re-designed Alltoall recoups its overheads through halved
  // contention (§V-A) and must beat freq-scaling outright; for the
  // leader-based collectives the paper claims a lower power band, with
  // per-op energy within a few percent of freq-scaling.
  // Reduce/allreduce move less data through the throttled window, so the
  // fixed costs weigh more.
  double slack = 1.06;
  if (GetParam() == Op::kAlltoall) slack = 1.00;
  if (GetParam() == Op::kReduce || GetParam() == Op::kAllreduce) slack = 1.10;
  EXPECT_LT(energy[2], energy[1] * slack)
      << "proposed must not burn more than freq-scaling (+slack)";
}

INSTANTIATE_TEST_SUITE_P(Ops, EnergyOrdering,
                         ::testing::Values(Op::kAlltoall, Op::kBcast,
                                           Op::kReduce, Op::kAllreduce),
                         [](const auto& info) { return to_string(info.param); });

/// Property 3: latency overhead of power schemes is bounded (the paper's
/// central performance claim: ~10-15 % on micro-benchmarks).
class LatencyOverhead : public ::testing::TestWithParam<Op> {};

TEST_P(LatencyOverhead, PowerSchemesWithinBoundsOnLargeMessages) {
  ClusterConfig cfg = test::small_cluster(2, 16, 8);
  CollectiveBenchSpec spec;
  spec.op = GetParam();
  spec.message = 512 * 1024;
  spec.iterations = 3;
  spec.warmup = 1;

  spec.scheme = PowerScheme::kNone;
  const auto base = measure_collective(cfg, spec);
  ASSERT_TRUE(base.status.ok());
  for (const auto scheme :
       {PowerScheme::kFreqScaling, PowerScheme::kProposed}) {
    spec.scheme = scheme;
    const auto r = measure_collective(cfg, spec);
    ASSERT_TRUE(r.status.ok());
    // The proposed Alltoall's halved endpoint contention can even edge out
    // the default at some scales (§VI-A); allow a small win.
    EXPECT_GE(r.latency.sec(), base.latency.sec() * 0.93)
        << to_string(scheme) << " is implausibly faster than default";
    EXPECT_LT(r.latency.us(), base.latency.us() * 1.45)
        << to_string(scheme) << " overhead out of bounds";
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, LatencyOverhead,
                         ::testing::Values(Op::kAlltoall, Op::kBcast,
                                           Op::kAllreduce),
                         [](const auto& info) { return to_string(info.param); });

/// Property 4: latency grows monotonically with message size.
TEST(Monotonicity, AlltoallLatencyGrowsWithMessageSize) {
  ClusterConfig cfg = test::small_cluster(2, 8, 4);
  CollectiveBenchSpec spec;
  spec.op = Op::kAlltoall;
  spec.iterations = 2;
  spec.warmup = 0;
  Duration last = Duration::zero();
  for (const Bytes m : {Bytes{1024}, Bytes{16384}, Bytes{262144}}) {
    spec.message = m;
    const auto r = measure_collective(cfg, spec);
    ASSERT_TRUE(r.status.ok());
    EXPECT_GT(r.latency, last) << "at message " << m;
    last = r.latency;
  }
}

/// Property 5: mean power during a polling collective is near the
/// full-system band for the scheme (§VI-B / Figs 7b, 8b).
TEST(PowerBands, SchemesLandInPaperBands) {
  ClusterConfig cfg;  // full paper testbed: 8 nodes × 8 ranks
  cfg.nodes = 8;
  cfg.ranks = 64;
  cfg.ranks_per_node = 8;
  CollectiveBenchSpec spec;
  spec.op = Op::kAlltoall;
  spec.message = 256 * 1024;
  spec.iterations = 3;
  spec.warmup = 1;

  spec.scheme = PowerScheme::kNone;
  const auto none = measure_collective(cfg, spec);
  EXPECT_NEAR(none.mean_power, 2300.0, 150.0);

  spec.scheme = PowerScheme::kFreqScaling;
  const auto dvfs = measure_collective(cfg, spec);
  EXPECT_NEAR(dvfs.mean_power, 1800.0, 150.0);

  spec.scheme = PowerScheme::kProposed;
  const auto proposed = measure_collective(cfg, spec);
  EXPECT_NEAR(proposed.mean_power, 1650.0, 150.0);
  EXPECT_LT(proposed.mean_power, dvfs.mean_power);
}

/// Property 6: the Phase-4 tournament schedule (circle method) is a valid
/// round-robin pairing. For every N — even and odd, where the ghost node
/// idles one real node per round — the pairing must be symmetric, never
/// self-referential, and cover every unordered node pair exactly once.
TEST(TournamentSchedule, ValidRoundRobinPairingForAllN) {
  for (int N = 2; N <= 33; ++N) {
    const int rounds = tournament_rounds(N);
    std::set<std::pair<int, int>> seen;
    for (int round = 0; round < rounds; ++round) {
      int idle = 0;
      for (int i = 0; i < N; ++i) {
        const int peer = tournament_peer(i, round, N);
        if (peer < 0) {  // paired with the ghost this round (odd N only)
          ++idle;
          continue;
        }
        ASSERT_LT(peer, N) << "N=" << N << " round=" << round << " i=" << i;
        EXPECT_NE(peer, i) << "self-pairing: N=" << N << " round=" << round;
        EXPECT_EQ(tournament_peer(peer, round, N), i)
            << "asymmetric: N=" << N << " round=" << round << " i=" << i;
        if (i < peer) {
          const bool fresh = seen.emplace(i, peer).second;
          EXPECT_TRUE(fresh) << "pair (" << i << "," << peer
                             << ") repeated: N=" << N << " round=" << round;
        }
      }
      EXPECT_EQ(idle, N % 2) << "N=" << N << " round=" << round;
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(N) * (N - 1) / 2)
        << "incomplete coverage at N=" << N;
  }
}

/// Property 7: zero-byte messages. Every collective must complete cleanly
/// with empty payloads under every scheme — regression for the
/// memcpy(nullptr, nullptr, 0) UB on the own-block copy paths.
class ZeroByteMessages
    : public ::testing::TestWithParam<std::tuple<Op, PowerScheme>> {};

TEST_P(ZeroByteMessages, CompletesWithEmptyPayloads) {
  const auto& [op, scheme] = GetParam();
  ClusterConfig cfg = test::small_cluster(2, 8, 4);
  CollectiveBenchSpec spec;
  spec.op = op;
  spec.scheme = scheme;
  spec.message = 0;
  spec.iterations = 1;
  spec.warmup = 0;

  const CollectiveReport report = measure_collective(cfg, spec);
  ASSERT_TRUE(report.status.ok()) << to_string(op) << "/" << to_string(scheme);
}

INSTANTIATE_TEST_SUITE_P(
    OpsTimesSchemes, ZeroByteMessages, ::testing::ValuesIn(supported_combos()),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             test::scheme_tag(std::get<1>(info.param));
    });

/// Property 8: the capability matrix itself. Every op runs under kNone,
/// parse round-trips every name, and measure_collective rejects unsupported
/// combinations with a structured kError instead of silently ignoring the
/// scheme (the pre-matrix behaviour).
TEST(CapabilityMatrix, UnsupportedCombosYieldErrorStatus) {
  for (const Op op : kAllOps) {
    EXPECT_TRUE(supported(op, PowerScheme::kNone)) << to_string(op);
    EXPECT_EQ(parse_op(to_string(op)), op);
  }
  ClusterConfig cfg = test::small_cluster(2, 8, 4);
  for (const Op op : {Op::kGather, Op::kScatter}) {
    for (const PowerScheme scheme :
         {PowerScheme::kFreqScaling, PowerScheme::kProposed}) {
      ASSERT_FALSE(supported(op, scheme));
      CollectiveBenchSpec spec;
      spec.op = op;
      spec.scheme = scheme;
      spec.message = 1024;
      spec.iterations = 1;
      spec.warmup = 0;
      const CollectiveReport report = measure_collective(cfg, spec);
      EXPECT_EQ(report.status.outcome, RunOutcome::kError)
          << to_string(op) << "/" << to_string(scheme);
      EXPECT_FALSE(report.status.message.empty());
    }
  }
}

}  // namespace
}  // namespace pacc::coll

#include "coll/alltoall.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "test_support.hpp"

namespace pacc::coll {
namespace {

using test::check_pattern;
using test::fill_pattern;
using test::run_all;

struct Topo {
  int nodes;
  int ranks;
  int ppn;
};

/// Runs an alltoall on every rank and verifies the full permutation.
void verify_alltoall(const Topo& topo, Bytes block,
                     const AlltoallOptions& options) {
  ClusterConfig cfg = test::small_cluster(topo.nodes, topo.ranks, topo.ppn);
  Simulation sim(cfg);
  const int P = topo.ranks;
  std::vector<int> ok(static_cast<std::size_t>(P), 0);

  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    const auto blk = static_cast<std::size_t>(block);
    std::vector<std::byte> send(static_cast<std::size_t>(P) * blk);
    std::vector<std::byte> recv(send.size());
    for (int dst = 0; dst < P; ++dst) {
      fill_pattern(std::span(send).subspan(static_cast<std::size_t>(dst) * blk,
                                           blk),
                   me, dst);
    }
    co_await alltoall(self, world, send, recv, block, options);
    bool good = true;
    for (int src = 0; src < P; ++src) {
      if (!check_pattern(std::span<const std::byte>(recv).subspan(
                             static_cast<std::size_t>(src) * blk, blk),
                         src, me)) {
        good = false;
      }
    }
    ok[static_cast<std::size_t>(me)] = good ? 1 : 0;
  };

  const auto result = run_all(sim, body);
  ASSERT_TRUE(result.all_tasks_finished) << "deadlock in alltoall";
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "bad data at rank " << r;
  }
}

class AlltoallCorrectness
    : public ::testing::TestWithParam<std::tuple<Topo, Bytes, PowerScheme>> {};

TEST_P(AlltoallCorrectness, PermutesAllBlocks) {
  const auto& [topo, block, scheme] = GetParam();
  verify_alltoall(topo, block, {.scheme = scheme});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlltoallCorrectness,
    ::testing::Combine(
        ::testing::Values(Topo{2, 4, 2},    // minimal multi-node
                          Topo{4, 16, 4},   // pow2 everywhere
                          Topo{2, 16, 8},   // two full nodes
                          Topo{3, 9, 3},    // non-pow2 ranks and nodes
                          Topo{4, 8, 2}),   // wide and shallow
        ::testing::Values(Bytes{64}, Bytes{4096}, Bytes{65536}),
        ::testing::Values(PowerScheme::kNone, PowerScheme::kFreqScaling,
                          PowerScheme::kProposed)),
    [](const auto& info) {
      const Topo topo = std::get<0>(info.param);
      return std::to_string(topo.nodes) + "n" + std::to_string(topo.ranks) +
             "r" + std::to_string(topo.ppn) + "p_" +
             std::to_string(std::get<1>(info.param)) + "B_" +
             test::scheme_tag(std::get<2>(info.param));
    });

TEST(AlltoallAlgorithms, BruckMatchesPairwise) {
  // Both algorithms must produce the identical permutation.
  for (const Topo topo : {Topo{2, 6, 3}, Topo{2, 8, 4}}) {
    ClusterConfig cfg = test::small_cluster(topo.nodes, topo.ranks, topo.ppn);
    for (const bool use_bruck : {false, true}) {
      Simulation sim(cfg);
      const int P = topo.ranks;
      const Bytes block = 32;
      std::vector<int> ok(static_cast<std::size_t>(P), 0);
      auto body = [&](mpi::Rank& self) -> sim::Task<> {
        mpi::Comm& world = sim.runtime().world();
        const int me = world.comm_rank_of(self.id());
        const auto blk = static_cast<std::size_t>(block);
        std::vector<std::byte> send(static_cast<std::size_t>(P) * blk);
        std::vector<std::byte> recv(send.size());
        for (int dst = 0; dst < P; ++dst) {
          fill_pattern(
              std::span(send).subspan(static_cast<std::size_t>(dst) * blk, blk),
              me, dst);
        }
        if (use_bruck) {
          co_await alltoall_bruck(self, world, send, recv, block);
        } else {
          co_await alltoall_pairwise(self, world, send, recv, block);
        }
        bool good = true;
        for (int src = 0; src < P; ++src) {
          good = good && check_pattern(
                             std::span<const std::byte>(recv).subspan(
                                 static_cast<std::size_t>(src) * blk, blk),
                             src, me);
        }
        ok[static_cast<std::size_t>(me)] = good;
      };
      ASSERT_TRUE(run_all(sim, body).all_tasks_finished);
      for (int r = 0; r < P; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1);
    }
  }
}

TEST(AlltoallPower, FreqScalingIsSlowerButRestoresFmax) {
  const Topo topo{2, 8, 4};
  ClusterConfig cfg = test::small_cluster(topo.nodes, topo.ranks, topo.ppn);

  auto time_with = [&](PowerScheme scheme) {
    Simulation sim(cfg);
    TimePoint done;
    auto body = [&](mpi::Rank& self) -> sim::Task<> {
      mpi::Comm& world = sim.runtime().world();
      const Bytes block = 64 * 1024;
      const auto blk = static_cast<std::size_t>(block);
      std::vector<std::byte> send(8 * blk), recv(8 * blk);
      co_await alltoall(self, world, send, recv, block, {.scheme = scheme});
      done = self.engine().now();
    };
    EXPECT_TRUE(run_all(sim, body).all_tasks_finished);
    // Every core must be restored to fmax / T0 afterwards.
    for (int r = 0; r < topo.ranks; ++r) {
      const auto core = sim.runtime().placement().core_of(r);
      EXPECT_EQ(sim.machine().frequency(core), sim.machine().params().fmax);
      EXPECT_EQ(sim.machine().throttle(core), 0);
    }
    return done;
  };

  const TimePoint base = time_with(PowerScheme::kNone);
  const TimePoint dvfs = time_with(PowerScheme::kFreqScaling);
  EXPECT_GT(dvfs.ns(), base.ns());
  // Paper Fig 7a: overhead is bounded (~10-15 %, allow slack).
  EXPECT_LT(dvfs.us(), base.us() * 1.35);
}

}  // namespace
}  // namespace pacc::coll

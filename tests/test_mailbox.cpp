#include "mpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace pacc::mpi {
namespace {

Message make_msg(int src, int tag, std::size_t n = 4) {
  Message m;
  m.src = src;
  m.tag = tag;
  m.payload.assign(n, std::byte{static_cast<unsigned char>(src)});
  return m;
}

TEST(Mailbox, TryTakeMatchesSourceAndTag) {
  sim::Engine e;
  Mailbox box(e);
  box.deliver(make_msg(1, 10));
  box.deliver(make_msg(2, 10));
  EXPECT_FALSE(box.try_take(3, 10).has_value());
  EXPECT_FALSE(box.try_take(1, 11).has_value());
  const auto m = box.try_take(2, 10);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->src, 2);
  EXPECT_EQ(box.unexpected_count(), 1u);
}

TEST(Mailbox, FifoPerSourceAndTag) {
  sim::Engine e;
  Mailbox box(e);
  Message first = make_msg(1, 5);
  first.payload[0] = std::byte{0xAA};
  Message second = make_msg(1, 5);
  second.payload[0] = std::byte{0xBB};
  box.deliver(std::move(first));
  box.deliver(std::move(second));
  EXPECT_EQ(box.try_take(1, 5)->payload[0], std::byte{0xAA});
  EXPECT_EQ(box.try_take(1, 5)->payload[0], std::byte{0xBB});
}

sim::Task<> recv_task(Mailbox& box, int src, int tag,
                      std::optional<Message>& out) {
  out = co_await box.recv(src, tag);
}

TEST(Mailbox, PostedRecvCompletesOnDelivery) {
  sim::Engine e;
  Mailbox box(e);
  std::optional<Message> got;
  e.spawn(recv_task(box, 3, 7, got));
  e.schedule(Duration::micros(10), [&] { box.deliver(make_msg(3, 7)); });
  EXPECT_TRUE(e.run().all_tasks_finished);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 3);
  EXPECT_EQ(box.posted_count(), 0u);
}

TEST(Mailbox, RecvFindsAlreadyDeliveredMessage) {
  sim::Engine e;
  Mailbox box(e);
  box.deliver(make_msg(4, 1));
  std::optional<Message> got;
  e.spawn(recv_task(box, 4, 1, got));
  e.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 4);
}

TEST(Mailbox, DeliveryMatchesOnlyTheRightPost) {
  sim::Engine e;
  Mailbox box(e);
  std::optional<Message> got_a, got_b;
  e.spawn(recv_task(box, 1, 1, got_a));
  e.spawn(recv_task(box, 2, 1, got_b));
  e.schedule(Duration::micros(1), [&] { box.deliver(make_msg(2, 1)); });
  e.schedule(Duration::micros(2), [&] { box.deliver(make_msg(1, 1)); });
  EXPECT_TRUE(e.run().all_tasks_finished);
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(got_a->src, 1);
  EXPECT_EQ(got_b->src, 2);
}

sim::Task<> timed_recv_task(Mailbox& box, int src, int tag, Duration timeout,
                            std::optional<Message>& out, bool& resumed) {
  out = co_await box.recv_for(src, tag, timeout);
  resumed = true;
}

TEST(Mailbox, TimedRecvExpiresWithNullopt) {
  sim::Engine e;
  Mailbox box(e);
  std::optional<Message> got;
  bool resumed = false;
  e.spawn(timed_recv_task(box, 1, 1, Duration::micros(50), got, resumed));
  EXPECT_TRUE(e.run().all_tasks_finished);
  EXPECT_TRUE(resumed);
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(e.now().ns(), 50'000);
}

TEST(Mailbox, TimedRecvCompletesBeforeTimeout) {
  sim::Engine e;
  Mailbox box(e);
  std::optional<Message> got;
  bool resumed = false;
  e.spawn(timed_recv_task(box, 1, 1, Duration::micros(50), got, resumed));
  e.schedule(Duration::micros(10), [&] { box.deliver(make_msg(1, 1)); });
  EXPECT_TRUE(e.run().all_tasks_finished);
  ASSERT_TRUE(got.has_value());
  // The cancelled timer must not fire anything weird later.
  EXPECT_EQ(box.posted_count(), 0u);
}

TEST(Mailbox, MessageAfterTimeoutBecomesUnexpected) {
  sim::Engine e;
  Mailbox box(e);
  std::optional<Message> got;
  bool resumed = false;
  e.spawn(timed_recv_task(box, 1, 1, Duration::micros(5), got, resumed));
  e.schedule(Duration::micros(10), [&] { box.deliver(make_msg(1, 1)); });
  e.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(box.unexpected_count(), 1u);
  EXPECT_TRUE(box.try_take(1, 1).has_value());
}

}  // namespace
}  // namespace pacc::mpi

// Tests for the collective MPI_Comm_split and communicator interning.
#include "coll/comm_split.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_support.hpp"
#include "coll/registry.hpp"

namespace pacc::coll {
namespace {

using test::check_pattern;
using test::fill_pattern;
using test::run_all;

TEST(InternComm, SameMembersSameObject) {
  Simulation sim(test::small_cluster(2, 4, 2));
  auto& a = sim.runtime().intern_comm({0, 2});
  auto& b = sim.runtime().intern_comm({0, 2});
  auto& c = sim.runtime().intern_comm({0, 1, 2});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  // Order matters: a different rank order is a different communicator.
  auto& d = sim.runtime().intern_comm({2, 0});
  EXPECT_NE(&a, &d);
}

TEST(CommSplit, PartitionsByColorOrderedByKey) {
  Simulation sim(test::small_cluster(2, 8, 4));
  std::vector<mpi::Comm*> result(8, nullptr);

  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    // Even/odd split; key reverses the order within each group.
    result[static_cast<std::size_t>(me)] =
        co_await comm_split(self, world, me % 2, /*key=*/-me);
  };
  ASSERT_TRUE(run_all(sim, body).all_tasks_finished);

  // All evens share one comm; all odds another.
  for (int r = 2; r < 8; r += 2) EXPECT_EQ(result[0], result[static_cast<std::size_t>(r)]);
  for (int r = 3; r < 8; r += 2) EXPECT_EQ(result[1], result[static_cast<std::size_t>(r)]);
  EXPECT_NE(result[0], result[1]);
  ASSERT_NE(result[0], nullptr);
  EXPECT_EQ(result[0]->size(), 4);
  // key = -rank → descending rank order inside the group.
  EXPECT_EQ(result[0]->global_rank(0), 6);
  EXPECT_EQ(result[0]->global_rank(3), 0);
}

TEST(CommSplit, UndefinedColorGetsNull) {
  Simulation sim(test::small_cluster(2, 4, 2));
  std::vector<mpi::Comm*> result(4, reinterpret_cast<mpi::Comm*>(1));
  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    const int color = (me == 3) ? kUndefinedColor : 0;
    result[static_cast<std::size_t>(me)] =
        co_await comm_split(self, world, color, 0);
  };
  ASSERT_TRUE(run_all(sim, body).all_tasks_finished);
  EXPECT_EQ(result[3], nullptr);
  ASSERT_NE(result[0], nullptr);
  EXPECT_EQ(result[0]->size(), 3);
}

TEST(CommSplit, CollectivesRunConcurrentlyOnSplitComms) {
  // The two halves broadcast different payloads at the same time; context
  // isolation must keep the traffic apart.
  Simulation sim(test::small_cluster(2, 8, 4));
  std::vector<int> ok(8, 0);

  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    const int color = me % 2;
    mpi::Comm* half = co_await comm_split(self, world, color, me);
    if (half == nullptr) co_return;  // would fail the ok[] check below

    std::vector<std::byte> buf(16 * 1024);
    const int sub_me = half->comm_rank_of(self.id());
    if (sub_me == 0) fill_pattern(buf, color, 0x5A);
    co_await bcast(self, *half, buf, 0, {.scheme = PowerScheme::kProposed});
    ok[static_cast<std::size_t>(me)] = check_pattern(buf, color, 0x5A);
  };
  ASSERT_TRUE(run_all(sim, body).all_tasks_finished);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1);
}

TEST(CommSplit, RepeatedSplitsReuseTheSameComm) {
  Simulation sim(test::small_cluster(2, 4, 2));
  std::vector<mpi::Comm*> first(4), second(4);
  auto body = [&](mpi::Rank& self) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int me = world.comm_rank_of(self.id());
    first[static_cast<std::size_t>(me)] =
        co_await comm_split(self, world, 0, me);
    second[static_cast<std::size_t>(me)] =
        co_await comm_split(self, world, 0, me);
  };
  ASSERT_TRUE(run_all(sim, body).all_tasks_finished);
  EXPECT_EQ(first[0], second[0]);
}

}  // namespace
}  // namespace pacc::coll

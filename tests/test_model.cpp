#include <gtest/gtest.h>

#include "model/perf_model.hpp"
#include "model/power_model.hpp"
#include "pacc/simulation.hpp"

namespace pacc::model {
namespace {

PerfModelParams paper_model() {
  return PerfModelParams::from(presets::paper_machine(8),
                               presets::paper_network());
}

TEST(PerfModel, ParametersDeriveFromConfig) {
  const auto p = paper_model();
  EXPECT_DOUBLE_EQ(p.tw_inter_sec_per_byte, 1.0 / 3.2e9);
  EXPECT_DOUBLE_EQ(p.tw_intra_sec_per_byte, 1.0 / 5.0e9);
  EXPECT_EQ(p.o_dvfs, Duration::micros(12.0));
  EXPECT_EQ(p.o_throttle, Duration::micros(10.0));
  // Cthrottle: fmin (1.5) + T4 (2×): 1 + 0.2·0.5 + 0.02·1 = 1.12.
  EXPECT_NEAR(p.cthrottle, 1.12, 1e-12);
}

TEST(PerfModel, CnetGrowsWithFlows) {
  const auto p = paper_model();
  EXPECT_DOUBLE_EQ(p.cnet(1), 1.0);
  EXPECT_GT(p.cnet(8), p.cnet(4));
  EXPECT_NEAR(p.cnet(4), 4 * 1.12, 1e-9);
}

TEST(PerfModel, Equation1ScalesLinearlyInMessage) {
  const auto p = paper_model();
  const auto t1 = alltoall_pairwise_time(p, 8, 4, 1 << 18);
  const auto t2 = alltoall_pairwise_time(p, 8, 4, 1 << 19);
  EXPECT_NEAR(t2.sec() / t1.sec(), 2.0, 0.01);
}

TEST(PerfModel, EightWaySlowerThanFourWayAtSameJobSize) {
  // Fig 2a: 32 ranks as 8 nodes × 4 vs 4 nodes × 8.
  const auto p = paper_model();
  const auto four_way = alltoall_pairwise_time(p, 8, 4, 1 << 20);
  const auto eight_way = alltoall_pairwise_time(p, 4, 8, 1 << 20);
  EXPECT_GT(eight_way.sec(), four_way.sec() * 1.3);
}

TEST(PerfModel, Equation2BcastShape) {
  const auto p = paper_model();
  const auto t = bcast_scatter_allgather_time(p, 8, 1 << 20);
  // M(N-1)tw(1+1/N) with N=8, M=1MiB, tw=1/3.2e9 ≈ 2.58 ms.
  EXPECT_NEAR(t.sec(), (1 << 20) * 7.0 * (1.0 + 1.0 / 8.0) / 3.2e9, 1e-6);
}

TEST(PerfModel, ProposedAlltoallCloseToDefault) {
  // §VI-A: halved contention compensates the doubled step count, leaving
  // only the O_dvfs / O_throttle overheads (paper: "very little
  // difference").
  const auto p = paper_model();
  const auto base = alltoall_pairwise_time(p, 8, 8, 1 << 20);
  const auto prop = alltoall_power_aware_time(p, 8, 8, 1 << 20);
  EXPECT_GT(prop.sec(), base.sec() * 0.85);
  EXPECT_LT(prop.sec(), base.sec() * 1.15);
}

TEST(PerfModel, ProposedBcastCarriesCthrottle) {
  const auto p = paper_model();
  const auto base = bcast_scatter_allgather_time(p, 8, 1 << 20);
  const auto prop = bcast_power_aware_time(p, 8, 1 << 20);
  EXPECT_NEAR(prop.sec() / base.sec(), 1.12, 0.02);
}

TEST(PowerModel, EquationOrdering) {
  const auto p = PowerModelParams::from(presets::paper_machine(8), 64);
  const Duration op = Duration::millis(100);
  const Joules e5 = energy_default(p, op);
  const Joules e6 = energy_dvfs_only(p, op);
  const Joules e7 = energy_alltoall_proposed(p, op);
  const Joules e8 = energy_bcast_proposed(p, op);
  EXPECT_GT(e5, e6);
  EXPECT_GT(e6, e7);
  EXPECT_GT(e6, e8);
}

TEST(PowerModel, DvfsOnlyPaysIfNotTooMuchSlower) {
  // The paper's point: DVFS saves energy only when the stretched interval
  // t2' does not eat the savings. Find the break-even stretch.
  const auto p = PowerModelParams::from(presets::paper_machine(8), 64);
  const Duration op = Duration::millis(100);
  const Joules base = energy_default(p, op);
  // At equal time, DVFS wins.
  EXPECT_LT(energy_dvfs_only(p, op), base);
  // At a 30 % stretch, it must still win with these constants.
  EXPECT_LT(energy_dvfs_only(p, op * 1.3), base);
  // At a 60 % stretch the benefit is gone (sanity of the trade-off).
  EXPECT_GT(energy_dvfs_only(p, op * 1.6), base * 0.95);
}

TEST(ModelVsSimulation, AlltoallWithinTolerance) {
  // E13: eq (1) against the simulator. 4 nodes × 8 ranks: the model drops
  // the intra-node steps (§VI: "we are not going to include these times"),
  // which only holds once inter-node steps dominate.
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.ranks = 32;
  cfg.ranks_per_node = 8;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 256 * 1024;
  spec.iterations = 3;
  spec.warmup = 1;
  const auto report = measure_collective(cfg, spec);
  ASSERT_TRUE(report.status.ok());

  const auto p = paper_model();
  const auto predicted = alltoall_pairwise_time(p, 4, 8, spec.message);
  EXPECT_NEAR(report.latency.sec() / predicted.sec(), 1.0, 0.35)
      << "model " << predicted.us() << " us vs sim " << report.latency.us()
      << " us";
}

TEST(ModelVsSimulation, BcastWithinTolerance) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.ranks = 32;
  cfg.ranks_per_node = 8;
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kBcast;
  spec.message = 1 << 20;
  spec.iterations = 3;
  spec.warmup = 1;
  const auto report = measure_collective(cfg, spec);
  ASSERT_TRUE(report.status.ok());

  const auto p = paper_model();
  const auto predicted = bcast_scatter_allgather_time(p, 4, spec.message);
  // The model serialises the scatter/allgather chunks while the fluid
  // network overlaps them (faster), but it also ignores the intra-node
  // fan-out (slower); the two must land in the same band.
  EXPECT_GT(report.latency.sec(), predicted.sec() * 0.6);
  EXPECT_LT(report.latency.sec(), predicted.sec() * 2.5);
}

}  // namespace
}  // namespace pacc::model

// Fault-injection subsystem: spec parsing, deterministic draws, recovery
// (retransmit / unreachable / watchdog), graceful power-scheme degradation,
// and the zero-rate byte-identity property (an inactive FaultSpec must not
// change one byte of any artifact).
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>
#include <vector>

#include "pacc/campaign.hpp"
#include "pacc/simulation.hpp"
#include "coll/registry.hpp"

namespace pacc {
namespace {

using fault::FaultSpec;

TEST(FaultSpec, ParsesKeyValueList) {
  std::string error;
  const auto spec = FaultSpec::parse(
      "seed=9,drop=0.25,delay=0.5,delay-us=80,flap=12.5,down-us=300,"
      "degrade=0.1,stragglers=2,slow=3,tfail=0.4,tstretch=0.2,stretch-max=6,"
      "ack-us=25,backoff=1.5,retries=4",
      &error);
  ASSERT_TRUE(spec) << error;
  EXPECT_EQ(spec->seed, 9u);
  EXPECT_DOUBLE_EQ(spec->drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec->delay_rate, 0.5);
  EXPECT_DOUBLE_EQ(spec->delay_max.us(), 80.0);
  EXPECT_DOUBLE_EQ(spec->flap_rate_hz, 12.5);
  EXPECT_DOUBLE_EQ(spec->down_mean.us(), 300.0);
  EXPECT_DOUBLE_EQ(spec->degrade_factor, 0.1);
  EXPECT_EQ(spec->stragglers, 2);
  EXPECT_DOUBLE_EQ(spec->straggler_slowdown, 3.0);
  EXPECT_DOUBLE_EQ(spec->transition_fail_rate, 0.4);
  EXPECT_DOUBLE_EQ(spec->transition_stretch_rate, 0.2);
  EXPECT_DOUBLE_EQ(spec->transition_stretch_max, 6.0);
  EXPECT_DOUBLE_EQ(spec->ack_timeout.us(), 25.0);
  EXPECT_DOUBLE_EQ(spec->backoff_factor, 1.5);
  EXPECT_EQ(spec->retry_budget, 4);
  EXPECT_TRUE(spec->active());
}

TEST(FaultSpec, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(FaultSpec::parse("bogus=1", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultSpec::parse("drop=1.5", &error));  // probability > 1
  EXPECT_FALSE(FaultSpec::parse("drop", &error));      // missing value
  EXPECT_FALSE(FaultSpec::parse("drop=abc", &error));
  EXPECT_FALSE(FaultSpec::parse("retries=-1", &error));
}

TEST(FaultSpec, DefaultIsInactive) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.active());
  EXPECT_FALSE(spec.message_faults());
  // Stragglers with no slowdown change nothing.
  FaultSpec s2;
  s2.stragglers = 3;
  EXPECT_FALSE(s2.active());
}

TEST(FaultSpec, DeriveCellSeedIsIndexKeyedAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 100; ++i) {
    seeds.insert(fault::derive_cell_seed(7, i));
  }
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_EQ(fault::derive_cell_seed(7, 42), fault::derive_cell_seed(7, 42));
  EXPECT_NE(fault::derive_cell_seed(7, 42), fault::derive_cell_seed(8, 42));
}

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks = 8;
  cfg.ranks_per_node = 4;
  return cfg;
}

CollectiveBenchSpec alltoall_spec(coll::PowerScheme scheme = {}) {
  CollectiveBenchSpec spec;
  spec.op = coll::Op::kAlltoall;
  spec.message = 16 * 1024;
  spec.scheme = scheme;
  spec.iterations = 2;
  spec.warmup = 1;
  return spec;
}

TEST(FaultRecovery, DroppedMessagesAreRetransmittedAndValidated) {
  ClusterConfig cfg = small_cluster();
  cfg.faults = *FaultSpec::parse("seed=3,drop=0.05");
  Simulation sim(cfg);
  int wrong_bytes = 0;
  const auto report = sim.run([&](mpi::Rank& r) -> sim::Task<> {
    mpi::Comm& world = sim.runtime().world();
    const int P = world.size();
    const std::size_t blk = 2048;
    std::vector<std::byte> send(static_cast<std::size_t>(P) * blk);
    std::vector<std::byte> recv(send.size());
    for (int peer = 0; peer < P; ++peer) {
      for (std::size_t b = 0; b < blk; ++b) {
        send[static_cast<std::size_t>(peer) * blk + b] =
            static_cast<std::byte>((r.id() * 31 + peer * 7 + b) & 0xff);
      }
    }
    co_await coll::alltoall(r, world, send, recv, blk, {});
    for (int peer = 0; peer < P; ++peer) {
      for (std::size_t b = 0; b < blk; ++b) {
        const auto expect =
            static_cast<std::byte>((peer * 31 + r.id() * 7 + b) & 0xff);
        if (recv[static_cast<std::size_t>(peer) * blk + b] != expect) {
          ++wrong_bytes;
        }
      }
    }
  });
  EXPECT_EQ(wrong_bytes, 0);
  ASSERT_EQ(report.status.outcome, RunOutcome::kFaulted)
      << report.status.describe();
  EXPECT_TRUE(report.status.usable());
  EXPECT_GT(report.faults.drops, 0u);
  EXPECT_GT(report.faults.retransmits, 0u);
  EXPECT_EQ(report.faults.messages_abandoned, 0u);
}

TEST(FaultRecovery, TotalLossExhaustsRetryBudgetAsUnreachable) {
  ClusterConfig cfg = small_cluster();
  cfg.faults = *FaultSpec::parse("seed=3,drop=1,ack-us=5,retries=3");
  const auto report = measure_collective(cfg, alltoall_spec());
  EXPECT_EQ(report.status.outcome, RunOutcome::kUnreachable);
  EXPECT_FALSE(report.status.usable());
  EXPECT_NE(report.status.message.find("unreachable"), std::string::npos)
      << report.status.message;
  EXPECT_GT(report.faults.messages_abandoned, 0u);
}

TEST(FaultRecovery, WatchdogCallsTrueDeadlockDespiteLiveFlapTimers) {
  ClusterConfig cfg = small_cluster();
  // Flap timers keep the event queue non-empty forever, so the engine's
  // "queue drained" deadlock signal can never fire; without the watchdog
  // this run would burn simulated time to max_sim_time (an hour).
  cfg.faults = *FaultSpec::parse("seed=3,flap=5");
  Simulation sim(cfg);
  const auto report = sim.run([](mpi::Rank& r) -> sim::Task<> {
    std::array<std::byte, 8> buf{};
    if (r.id() == 0) co_await r.recv(1, 99, buf);  // never sent
  });
  EXPECT_EQ(report.status.outcome, RunOutcome::kDeadlock);
  EXPECT_NE(report.status.message.find("watchdog"), std::string::npos)
      << report.status.message;
  // Caught within the stall window, not at the hour-long safety bound.
  EXPECT_LT(report.elapsed.sec(), 1.0);
}

TEST(FaultRecovery, LinkFlapsPreemptFlowsAndRecover) {
  ClusterConfig cfg = small_cluster();
  cfg.faults = *FaultSpec::parse("seed=5,flap=2000,down-us=100");
  const auto report = measure_collective(cfg, alltoall_spec());
  ASSERT_TRUE(report.status.usable()) << report.status.describe();
  EXPECT_EQ(report.status.outcome, RunOutcome::kFaulted);
  EXPECT_GT(report.faults.link_flaps, 0u);
}

TEST(FaultDegradation, DoomedTransitionsFallBackSymmetrically) {
  ClusterConfig cfg = small_cluster();
  cfg.faults = *FaultSpec::parse("seed=3,tfail=1");
  const auto spec = alltoall_spec(coll::PowerScheme::kProposed);
  const auto report = measure_collective(cfg, spec);
  ASSERT_TRUE(report.status.usable()) << report.status.describe();
  // Every power-seeking call (warmup + timed) degraded; the interposed
  // barriers request kNone and never draw. With the fallback active no
  // machine transition is ever attempted, so only the fallback counter
  // moves.
  EXPECT_EQ(report.faults.scheme_fallbacks,
            static_cast<std::uint64_t>(spec.warmup + spec.iterations));
}

TEST(FaultDegradation, FallbackRunMatchesDefaultSchemeShape) {
  // With every transition doomed, 'proposed' must behave like the default
  // algorithm plus one wasted O_dvfs per call: slower than a plain
  // no-power run, but faster than a healthy fmin run of 'proposed' (whose
  // collective executes with stretched CPU costs and pays O_dvfs twice).
  ClusterConfig cfg = small_cluster();
  cfg.faults = *FaultSpec::parse("seed=3,tfail=1");
  const auto doomed =
      measure_collective(cfg, alltoall_spec(coll::PowerScheme::kProposed));
  const auto none =
      measure_collective(small_cluster(), alltoall_spec());
  const auto healthy =
      measure_collective(small_cluster(),
                         alltoall_spec(coll::PowerScheme::kProposed));
  ASSERT_TRUE(doomed.status.usable());
  ASSERT_TRUE(none.status.ok());
  ASSERT_TRUE(healthy.status.ok());
  EXPECT_GT(doomed.latency.us(), none.latency.us());
  EXPECT_LT(doomed.latency.us(), healthy.latency.us());
}

TEST(FaultInjection, StragglersSlowTheRunDown) {
  ClusterConfig cfg = small_cluster();
  cfg.faults = *FaultSpec::parse("seed=3,stragglers=1,slow=2");
  Simulation sim(cfg);
  // Pure compute: the run ends when the last rank finishes, and ranks on
  // the straggler node take slowdown × the work.
  const auto report = sim.run([](mpi::Rank& r) -> sim::Task<> {
    co_await r.compute(Duration::millis(1.0));
  });
  ASSERT_TRUE(report.status.usable()) << report.status.describe();
  EXPECT_NEAR(report.elapsed.ms(), 2.0, 0.01);
}

TEST(FaultInjection, SameSeedReproducesByteIdenticalArtifacts) {
  ClusterConfig cfg = small_cluster();
  cfg.faults = *FaultSpec::parse("seed=17,drop=0.02,flap=50,tfail=0.3");
  cfg.obs.trace = true;
  const auto a = measure_collective(cfg, alltoall_spec());
  const auto b = measure_collective(cfg, alltoall_spec());
  ASSERT_TRUE(a.status.usable()) << a.status.describe();
  EXPECT_EQ(a.status.outcome, b.status.outcome);
  EXPECT_EQ(a.latency.ns(), b.latency.ns());
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_EQ(a.faults.retransmits, b.faults.retransmits);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

// --- the zero-rate property: an all-zero-rate FaultSpec is indistinguishable
// --- from no FaultSpec at all, byte for byte, across the Fig-7 op × scheme
// --- sweep (tables, traces and campaign JSON).

SweepSpec fig7_sweep(bool zero_rate_spec) {
  // Fig-7 configuration (64 ranks, 8 per node), one small size per op ×
  // scheme so the full grid stays test-sized.
  SweepSpec sweep;
  for (const coll::Op op :
       {coll::Op::kAlltoall, coll::Op::kBcast, coll::Op::kAllreduce}) {
    for (const coll::PowerScheme scheme :
         {coll::PowerScheme::kNone, coll::PowerScheme::kFreqScaling,
          coll::PowerScheme::kProposed}) {
      ClusterConfig cfg;  // defaults: 64 ranks, 8 ppn — the Fig-7 testbed
      if (zero_rate_spec) {
        // Non-rate knobs set, every rate zero: must inject nothing.
        cfg.faults.seed = 99;
        cfg.faults.delay_max = Duration::micros(10.0);
        cfg.faults.retry_budget = 2;
        cfg.faults.stragglers = 4;  // slowdown stays 1.0: inactive
      }
      CollectiveBenchSpec bench;
      bench.op = op;
      bench.scheme = scheme;
      bench.message = 16 * 1024;
      bench.iterations = 1;
      bench.warmup = 0;
      sweep.add(cfg, bench,
                coll::to_string(op) + "/" + coll::to_string(scheme));
    }
  }
  return sweep;
}

TEST(FaultZeroRate, ByteIdenticalCampaignJsonAcrossFig7Sweep) {
  const SweepSpec plain = fig7_sweep(false);
  const SweepSpec zeroed = fig7_sweep(true);
  CampaignOptions opts;
  opts.jobs = 0;
  const auto plain_results = Campaign(plain, opts).run();
  const auto zeroed_results = Campaign(zeroed, opts).run();
  std::ostringstream plain_json, zeroed_json;
  write_campaign_json(plain_json, plain, plain_results);
  write_campaign_json(zeroed_json, zeroed, zeroed_results);
  EXPECT_EQ(plain_json.str(), zeroed_json.str());
  for (const CellResult& r : plain_results) {
    EXPECT_TRUE(r.status.ok()) << r.label << ": " << r.status.describe();
  }
}

TEST(FaultZeroRate, ByteIdenticalChromeTrace) {
  ClusterConfig plain;  // Fig-7 testbed
  plain.obs.trace = true;
  ClusterConfig zeroed = plain;
  zeroed.faults.seed = 1234;       // differs, but no rate is set
  zeroed.faults.retry_budget = 1;  // recovery knobs alone are inert
  const auto spec = alltoall_spec(coll::PowerScheme::kProposed);
  const auto a = measure_collective(plain, spec);
  const auto b = measure_collective(zeroed, spec);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  ASSERT_FALSE(a.trace_json.empty());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.latency.ns(), b.latency.ns());
  EXPECT_EQ(a.energy_per_op, b.energy_per_op);
}

}  // namespace
}  // namespace pacc

#include "hw/meter.hpp"

#include <gtest/gtest.h>

#include "pacc/presets.hpp"

namespace pacc::hw {
namespace {

class MeterTest : public ::testing::Test {
 protected:
  MeterTest() : machine_(engine_, presets::paper_machine(1)) {}

  sim::Engine engine_;
  Machine machine_;
};

TEST_F(MeterTest, SamplesAtConfiguredInterval) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  engine_.schedule(Duration::seconds(2.9), [&] { meter.stop(); });
  engine_.run();
  // Samples at 0.5, 1.0, 1.5, 2.0, 2.5 s.
  EXPECT_EQ(meter.series().samples().size(), 5u);
  EXPECT_EQ(meter.series().samples().front().time.ns(), 500'000'000);
}

TEST_F(MeterTest, SamplesReflectCurrentPower) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  const Watts full = machine_.system_power();
  engine_.schedule(Duration::millis(700), [&] {
    for (int s = 0; s < 2; ++s) {
      for (int k = 0; k < 4; ++k) {
        machine_.set_activity(CoreId{0, s, k}, Activity::kIdle);
      }
    }
  });
  engine_.schedule(Duration::millis(1600), [&] { meter.stop(); });
  engine_.run();
  const auto& samples = meter.series().samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_NEAR(samples[0].watts, full, 1e-9);   // 0.5 s: all busy
  EXPECT_LT(samples[1].watts, full);           // 1.0 s: idle
  EXPECT_NEAR(samples[1].watts, samples[2].watts, 1e-9);
}

TEST_F(MeterTest, StopPreventsFurtherEvents) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  meter.stop();
  const auto r = engine_.run();
  EXPECT_TRUE(r.all_tasks_finished);
  EXPECT_TRUE(meter.series().empty());
}

TEST_F(MeterTest, DestructorStopsCleanly) {
  {
    SamplingMeter meter(machine_, Duration::millis(500));
    meter.start();
  }
  // The pending sample was cancelled; the queue drains with no crash.
  EXPECT_TRUE(engine_.run().all_tasks_finished);
}

TEST_F(MeterTest, RestartAfterStop) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  engine_.schedule(Duration::millis(600), [&] { meter.stop(); });
  engine_.run();
  const auto first = meter.series().samples().size();
  meter.start();
  engine_.schedule(Duration::millis(1200), [&] { meter.stop(); });
  engine_.run();
  EXPECT_GT(meter.series().samples().size(), first);
}

}  // namespace
}  // namespace pacc::hw

#include "hw/meter.hpp"

#include <gtest/gtest.h>

#include "pacc/presets.hpp"

namespace pacc::hw {
namespace {

class MeterTest : public ::testing::Test {
 protected:
  MeterTest() : machine_(engine_, presets::paper_machine(1)) {}

  sim::Engine engine_;
  Machine machine_;
};

TEST_F(MeterTest, SamplesAtConfiguredInterval) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  engine_.schedule(Duration::seconds(2.9), [&] { meter.stop(); });
  engine_.run();
  // Boundary sample at 0, interval samples at 0.5..2.5, boundary at 2.9 s.
  EXPECT_EQ(meter.series().samples().size(), 7u);
  EXPECT_EQ(meter.series().samples().front().time.ns(), 0);
  EXPECT_EQ(meter.series().samples()[1].time.ns(), 500'000'000);
  EXPECT_EQ(meter.series().samples().back().time.ns(), 2'900'000'000);
}

TEST_F(MeterTest, SamplesReflectCurrentPower) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  const Watts full = machine_.system_power();
  engine_.schedule(Duration::millis(700), [&] {
    for (int s = 0; s < 2; ++s) {
      for (int k = 0; k < 4; ++k) {
        machine_.set_activity(CoreId{0, s, k}, Activity::kIdle);
      }
    }
  });
  engine_.schedule(Duration::millis(1600), [&] { meter.stop(); });
  engine_.run();
  // Samples at 0 (boundary), 0.5, 1.0, 1.5, 1.6 s (boundary).
  const auto& samples = meter.series().samples();
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_NEAR(samples[0].watts, full, 1e-9);   // 0 s: all busy
  EXPECT_NEAR(samples[1].watts, full, 1e-9);   // 0.5 s: all busy
  EXPECT_LT(samples[2].watts, full);           // 1.0 s: idle
  EXPECT_NEAR(samples[2].watts, samples[3].watts, 1e-9);
  EXPECT_NEAR(samples[3].watts, samples[4].watts, 1e-9);
}

TEST_F(MeterTest, StopPreventsFurtherEvents) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  meter.stop();
  const auto r = engine_.run();
  EXPECT_TRUE(r.all_tasks_finished);
  // Only the start-boundary sample: stop() at the same instant must not
  // record a duplicate, and no interval sample may fire afterwards.
  EXPECT_EQ(meter.series().samples().size(), 1u);
  EXPECT_EQ(meter.series().samples().front().time.ns(), 0);
}

TEST_F(MeterTest, DestructorStopsCleanly) {
  {
    SamplingMeter meter(machine_, Duration::millis(500));
    meter.start();
  }
  // The pending sample was cancelled; the queue drains with no crash.
  EXPECT_TRUE(engine_.run().all_tasks_finished);
}

TEST_F(MeterTest, RestartAfterStop) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  engine_.schedule(Duration::millis(600), [&] { meter.stop(); });
  engine_.run();
  const auto first = meter.series().samples().size();
  meter.start();
  engine_.schedule(Duration::millis(1200), [&] { meter.stop(); });
  engine_.run();
  EXPECT_GT(meter.series().samples().size(), first);
}

// Regression for the boundary-sample bug: start() never recorded t=0 and
// stop() discarded the final partial interval, so a run shorter than one
// interval produced an empty series and zero integrated energy.
TEST_F(MeterTest, ShortRunIsBracketedByBoundarySamples) {
  SamplingMeter meter(machine_, Duration::millis(500));
  meter.start();
  engine_.schedule(Duration::millis(200), [&] { meter.stop(); });
  engine_.run();
  const auto& samples = meter.series().samples();
  ASSERT_EQ(samples.size(), 2u);  // t = 0 and t = 0.2 s, no interval sample
  EXPECT_EQ(samples.front().time.ns(), 0);
  EXPECT_EQ(samples.back().time.ns(), 200'000'000);
  EXPECT_NEAR(samples.front().watts, machine_.system_power(), 1e-9);
}

// The meter is a view: its window energy is Machine's event-driven
// integral sliced at start/stop, not a Riemann sum of the samples.
TEST_F(MeterTest, WindowEnergyMatchesMachineIntegral) {
  SamplingMeter meter(machine_, Duration::millis(500));
  engine_.schedule(Duration::millis(250), [&] { meter.start(); });
  engine_.schedule(Duration::millis(1250), [&] { meter.stop(); });
  engine_.run();
  // Constant power over the window: the exact integral is power × 1 s.
  const Joules expected = machine_.system_power() * 1.0;
  EXPECT_NEAR(meter.window_energy(), expected, 1e-6);
  // And the window slice is consistent with the machine's total integral.
  EXPECT_LT(meter.window_energy(), machine_.total_energy());
}

}  // namespace
}  // namespace pacc::hw
